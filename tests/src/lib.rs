//! Support crate for cross-crate integration tests (see `tests/tests/`).
//!
//! The test files themselves live in this package's `tests/` directory so
//! `cargo test --workspace` runs them; this library intentionally exports
//! nothing.
