//! Robustness: adversarial ingestion and the deterministic fault matrix.
//!
//! Two contracts from DESIGN.md §8 are checked end to end:
//!
//! 1. **Quarantine over abort** — a corpus laced with malformed sources
//!    (truncated JSON, mismatched XML, schema-conflicting collections,
//!    degenerate documents) must still produce a working engine, with every
//!    exclusion accounted for in the [`IngestReport`].
//! 2. **Graceful degradation under injected faults** — for every
//!    single-fault plan over the faultkit site registry (plus seeded
//!    multi-site plans), the full e-commerce and healthcare QA workloads
//!    complete without panicking, every downgraded answer carries a
//!    non-empty `degradations` trail, and answers are byte-identical
//!    between 1-thread and 4-thread engines under the same fault seed.

use unisem_core::{
    Answer, Database, EngineBuilder, EngineConfig, EntityKind, FaultPlan, FaultSite,
    GovernorConfig, IngestReport, Lexicon, ParallelConfig, Route, UnifiedEngine,
};
use unisem_semistore::SemiStore;
use unisem_workloads::ecommerce::DocSpec;
use unisem_workloads::{
    EcommerceConfig, EcommerceWorkload, HealthcareConfig, HealthcareWorkload, QaItem,
};

// ---------------------------------------------------------------- helpers

fn small_ecommerce() -> EcommerceWorkload {
    EcommerceWorkload::generate(EcommerceConfig {
        products: 6,
        quarters: 3,
        reviews_per_product: 2,
        qa_per_category: 2,
        seed: 0xFA_D5EED,
        name_offset: 0,
    })
}

fn small_healthcare() -> HealthcareWorkload {
    HealthcareWorkload::generate(HealthcareConfig {
        drugs: 4,
        patients: 6,
        trials_per_drug: 2,
        qa_per_category: 2,
        seed: 0x4EA17,
    })
}

/// Builds an engine over every modality of a workload (tables + JSON
/// collections + documents), mirroring the bench harness.
fn build_from_parts(
    lexicon: Lexicon,
    db: &Database,
    semi: &SemiStore,
    documents: &[DocSpec],
    config: EngineConfig,
) -> (UnifiedEngine, IngestReport) {
    let mut b = EngineBuilder::with_config(lexicon, config);
    for name in db.table_names() {
        b.add_table(name, db.table(name).expect("listed").clone()).expect("fresh");
    }
    for coll in semi.collections() {
        for doc in semi.docs(coll) {
            b.add_json(coll, doc.clone());
        }
    }
    for d in documents {
        b.add_document(d.title.clone(), d.text.clone(), d.source.clone());
    }
    b.build()
}

/// The ladder invariants every answer must satisfy, faults or not:
/// well-formed confidence, and a non-empty degradation trail on any
/// answer that did not take the best route it attempted.
fn check_invariants(a: &Answer, question: &str, ctx: &str) {
    assert!(
        a.confidence.is_finite() && (0.0..=1.0).contains(&a.confidence),
        "{ctx}: malformed confidence {} for: {question}",
        a.confidence
    );
    match &a.route {
        Route::Hybrid { .. } | Route::Abstained => {
            assert!(
                a.is_degraded(),
                "{ctx}: downgraded answer ({}) with empty degradations for: {question}",
                a.route.label()
            );
        }
        Route::Structured { .. } | Route::Unstructured { .. } => {}
    }
    for d in &a.degradations {
        assert!(
            !d.component.is_empty() && !d.reason.is_empty(),
            "{ctx}: blank degradation record for: {question}"
        );
    }
    if a.is_abstention() {
        assert!(!a.text.is_empty(), "{ctx}: abstention must still say so in text");
    }
}

// ------------------------------------------------- adversarial ingestion

/// A corpus laced with malformed sources must still yield a working
/// engine: bad sources are quarantined with typed reasons, good sources
/// survive, and the engine answers without panicking.
#[test]
fn adversarial_corpus_quarantines_and_still_answers() {
    let mut lexicon = Lexicon::new();
    lexicon.add("widget", EntityKind::Product);
    lexicon.add("gizmo", EntityKind::Product);

    let mut b = EngineBuilder::with_config(lexicon, EngineConfig::default());

    // Good JSON documents.
    b.add_json_text("catalog", r#"{"product": "widget", "price": 10}"#).expect("good json");
    b.add_json_text("catalog", r#"{"product": "gizmo", "price": 25}"#).expect("good json");
    // Truncated JSON: rejected at the gate *and* quarantined.
    assert!(b.add_json_text("catalog", r#"{"product": "broken", "price"#).is_err());
    // Empty JSON document.
    assert!(b.add_json_text("catalog", "").is_err());
    // Mismatched XML tags.
    assert!(b.add_xml("configs", "<a><b>oops</a>").is_err());
    // Unquoted XML attribute.
    assert!(b.add_xml("configs", "<a k=v/>").is_err());
    // Schema-conflicting collection: an array root cannot flatten into a
    // relational table, so the whole collection is quarantined at build.
    b.add_json_text("telemetry", "[1, 2, 3]").expect("parses as json");

    // Degenerate documents: empty text, zero-width characters, and a
    // single huge token. None of these may break chunking or retrieval.
    b.add_document("empty", String::new(), "test");
    b.add_document("zero-width", "\u{200b}\u{200b}\u{feff} widget", "test");
    b.add_document("huge-token", format!("widget {}", "x".repeat(4096)), "test");
    b.add_document("plain", "The widget sells well. The gizmo is a premium widget.", "test");

    let (engine, report) = b.build();

    assert!(!report.is_clean());
    assert_eq!(report.quarantined_by_kind("json").len(), 2, "{report}");
    assert_eq!(report.quarantined_by_kind("xml").len(), 2, "{report}");
    assert_eq!(report.quarantined_by_kind("flatten").len(), 1, "{report}");
    assert_eq!(report.num_quarantined(), 5, "{report}");
    assert_eq!(engine.ingest_report(), &report);
    // The good collection and the documents made it in.
    assert_eq!(report.documents, 4, "{report}");
    assert!(report.tables >= 1, "{report}");

    for q in ["What is the price of widget?", "Tell me about gizmo", "?", ""] {
        let a = engine.answer(q);
        check_invariants(&a, q, "adversarial corpus");
    }
}

/// An engine built from nothing at all still answers every question by
/// abstaining with a reason, rather than panicking.
#[test]
fn empty_engine_abstains_gracefully() {
    let (engine, report) =
        EngineBuilder::with_config(Lexicon::new(), EngineConfig::default()).build();
    assert!(report.is_clean());
    for q in ["What is the average price?", "widget", ""] {
        let a = engine.answer(q);
        check_invariants(&a, q, "empty engine");
        assert!(a.is_abstention(), "empty engine must abstain on: {q}");
        assert!(a.is_degraded(), "empty-engine abstention must carry a reason");
    }
}

// ------------------------------------------------------- the fault matrix

/// Runs one workload under one fault plan at 1 and 4 threads and checks
/// the full robustness contract.
fn run_fault_case(
    label: &str,
    plan: FaultPlan,
    build: &dyn Fn(EngineConfig) -> (UnifiedEngine, IngestReport),
    qa: &[QaItem],
) {
    let config = |threads: usize| EngineConfig {
        seed: 0xABCD_1234,
        faults: plan,
        parallel: ParallelConfig::with_threads(threads),
        ..EngineConfig::default()
    };
    let (e1, r1) = build(config(1));
    let (e4, r4) = build(config(4));
    // Ingestion (including which sources the plan quarantined) must not
    // depend on the thread count.
    assert_eq!(r1, r4, "{label}: ingest reports diverge across thread counts");

    for item in qa {
        let a1 = e1.answer(&item.question);
        let a4 = e4.answer(&item.question);
        check_invariants(&a1, &item.question, label);

        // A generator fault always forces the abstention rung, with the
        // failing site named in the trail.
        if plan.fires(FaultSite::SlmGenerate, &item.question) {
            assert!(a1.is_abstention(), "{label}: slm fault must abstain: {}", item.question);
            assert_eq!(a1.degradations[0].component, "slm.generate", "{label}");
        }

        // Byte-identical replay across the thread matrix.
        assert_eq!(a1.text.as_bytes(), a4.text.as_bytes(), "{label} text: {}", item.question);
        assert_eq!(a1.route, a4.route, "{label} route: {}", item.question);
        assert_eq!(
            a1.confidence.to_bits(),
            a4.confidence.to_bits(),
            "{label} confidence: {}",
            item.question
        );
        assert_eq!(a1, a4, "{label} full answer: {}", item.question);
    }
}

/// Every single-fault plan over the site registry, plus seeded multi-site
/// plans, over both QA workloads: zero panics, degradations always
/// reported, byte-identical at 1 vs 4 threads.
#[test]
fn fault_matrix_completes_and_replays_across_thread_counts() {
    let ew = small_ecommerce();
    let hw = small_healthcare();
    let build_ecom = |config: EngineConfig| {
        build_from_parts(ew.lexicon.clone(), &ew.db, &ew.semi, &ew.documents, config)
    };
    let build_health = |config: EngineConfig| {
        build_from_parts(hw.lexicon.clone(), &hw.db, &hw.semi, &hw.documents, config)
    };

    let mut plans: Vec<(String, FaultPlan)> = FaultSite::ALL
        .iter()
        .map(|&site| (format!("single:{site}"), FaultPlan::single(site).with_seed(0xFA17)))
        .collect();
    // Seeded plans derive their armed sites and probabilities from the
    // seed alone — the replay handle an operator would pin in CI.
    plans.push(("seeded:0xFA17".into(), FaultPlan::from_seed(0xFA17)));
    plans.push(("seeded:7".into(), FaultPlan::from_seed(7)));

    for (label, plan) in &plans {
        run_fault_case(&format!("{label}/ecommerce"), *plan, &build_ecom, &ew.qa);
        run_fault_case(&format!("{label}/healthcare"), *plan, &build_health, &hw.qa);
    }
}

/// A flatten fault quarantines every JSON collection while leaving the
/// native tables and documents intact — partial service, not an abort.
#[test]
fn flatten_fault_quarantines_collections_only() {
    let ew = small_ecommerce();
    let config = EngineConfig {
        seed: 0xABCD_1234,
        faults: FaultPlan::single(FaultSite::SemiFlatten),
        ..EngineConfig::default()
    };
    let (engine, report) =
        build_from_parts(ew.lexicon.clone(), &ew.db, &ew.semi, &ew.documents, config);
    let injected = report.quarantined_by_kind("injected-fault");
    assert_eq!(injected.len(), ew.semi.collections().len(), "{report}");
    assert_eq!(report.collections_flattened, 0, "{report}");
    assert_eq!(report.documents, ew.documents.len(), "{report}");
    for item in &ew.qa {
        check_invariants(&engine.answer(&item.question), &item.question, "flatten fault");
    }
}

/// Tight resource governors (tiny traversal frontier, small join budget)
/// degrade deterministically: the engine keeps answering, every answer is
/// well-formed, and the 1- vs 4-thread engines agree byte for byte.
#[test]
fn strict_governors_degrade_deterministically() {
    let ew = small_ecommerce();
    let config = |threads: usize| EngineConfig {
        seed: 0xABCD_1234,
        governors: GovernorConfig {
            max_traversal_frontier: 2,
            max_join_rows: 8,
            entropy_sample_floor: 2,
        },
        parallel: ParallelConfig::with_threads(threads),
        ..EngineConfig::default()
    };
    let (e1, _) = build_from_parts(ew.lexicon.clone(), &ew.db, &ew.semi, &ew.documents, config(1));
    let (e4, _) = build_from_parts(ew.lexicon.clone(), &ew.db, &ew.semi, &ew.documents, config(4));
    for item in &ew.qa {
        let a1 = e1.answer(&item.question);
        let a4 = e4.answer(&item.question);
        check_invariants(&a1, &item.question, "strict governors");
        assert_eq!(a1, a4, "strict governors: {}", item.question);
    }
}

/// `UNISEM_FAULTS`-style specs round-trip through parse, so a failure
/// seen in CI is reproducible from the logged spec string alone.
#[test]
fn fault_spec_round_trips_for_replay() {
    for plan in [
        FaultPlan::single(FaultSite::RelExec).with_seed(99),
        FaultPlan::from_seed(0xFA17),
        FaultPlan::disabled(),
    ] {
        let spec = plan.spec();
        let reparsed = FaultPlan::parse(&spec).expect("spec must reparse");
        assert_eq!(reparsed.spec(), spec, "round-trip diverged for {spec}");
    }
}
