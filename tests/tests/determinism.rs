//! Whole-system determinism: identical seeds reproduce identical engines,
//! answers, and experiment measurements — the property every experiment in
//! EXPERIMENTS.md relies on.

use unisem_core::{
    EngineBuilder, EngineConfig, FaultPlan, FlameGraph, ParallelConfig, UnifiedEngine,
};
use unisem_workloads::{EcommerceConfig, EcommerceWorkload};

fn engine(seed: u64) -> (EcommerceWorkload, UnifiedEngine) {
    let w = EcommerceWorkload::generate(EcommerceConfig {
        products: 6,
        quarters: 3,
        reviews_per_product: 2,
        qa_per_category: 2,
        seed,
        name_offset: 0,
    });
    let mut b = EngineBuilder::with_config(w.lexicon.clone(), EngineConfig::default());
    for name in w.db.table_names() {
        b.add_table(name, w.db.table(name).unwrap().clone()).unwrap();
    }
    for d in &w.documents {
        b.add_document(d.title.clone(), d.text.clone(), d.source.clone());
    }
    let e = b.build().0;
    (w, e)
}

#[test]
fn same_seed_same_everything() {
    let (w1, e1) = engine(42);
    let (w2, e2) = engine(42);
    assert_eq!(w1.qa, w2.qa);
    assert_eq!(e1.graph().num_nodes(), e2.graph().num_nodes());
    assert_eq!(e1.graph().num_edges(), e2.graph().num_edges());
    for item in &w1.qa {
        assert_eq!(e1.answer(&item.question), e2.answer(&item.question), "{}", item.question);
    }
}

/// Two engines built independently from the same `EngineConfig::seed` must
/// agree byte-for-byte: identical answer text, identical routing decisions,
/// and bit-identical confidence scores. This is the hermetic-build guarantee
/// the detkit PRNG makes checkable — no platform- or run-dependent entropy
/// anywhere in the pipeline.
#[test]
fn same_engine_seed_byte_identical_answers_routes_confidence() {
    let w = EcommerceWorkload::generate(EcommerceConfig {
        products: 6,
        quarters: 3,
        reviews_per_product: 2,
        qa_per_category: 2,
        seed: 0xD5EED,
        name_offset: 0,
    });
    let build = || {
        let config = EngineConfig { seed: 0xABCD_1234, ..EngineConfig::default() };
        let mut b = EngineBuilder::with_config(w.lexicon.clone(), config);
        for name in w.db.table_names() {
            b.add_table(name, w.db.table(name).unwrap().clone()).unwrap();
        }
        for d in &w.documents {
            b.add_document(d.title.clone(), d.text.clone(), d.source.clone());
        }
        b.build().0
    };
    let e1 = build();
    let e2 = build();
    for item in &w.qa {
        let a1 = e1.answer(&item.question);
        let a2 = e2.answer(&item.question);
        assert_eq!(a1.text.as_bytes(), a2.text.as_bytes(), "text: {}", item.question);
        assert_eq!(a1.route, a2.route, "route: {}", item.question);
        assert_eq!(
            a1.confidence.to_bits(),
            a2.confidence.to_bits(),
            "confidence: {}",
            item.question
        );
        assert_eq!(a1, a2, "full answer: {}", item.question);
    }
}

/// The thread-matrix suite: the full QA workload, answered by engines
/// configured at 1, 2, 4, and 8 threads — both singly (`answer`) and in a
/// batch (`answer_batch`) — must agree byte-for-byte with the 1-thread
/// reference. Answer text compares as raw bytes, routes structurally, and
/// confidence bit-for-bit, so any scheduling leak (merge order, float
/// association, RNG sharing) fails loudly. This is the determinism
/// contract of DESIGN.md §6 checked end to end.
#[test]
fn thread_matrix_byte_identical_answers_routes_confidence() {
    let w = EcommerceWorkload::generate(EcommerceConfig {
        products: 6,
        quarters: 3,
        reviews_per_product: 2,
        qa_per_category: 2,
        seed: 0xD5EED,
        name_offset: 0,
    });
    let build = |threads: usize| {
        let config = EngineConfig {
            seed: 0xABCD_1234,
            parallel: ParallelConfig::with_threads(threads),
            ..EngineConfig::default()
        };
        let mut b = EngineBuilder::with_config(w.lexicon.clone(), config);
        for name in w.db.table_names() {
            b.add_table(name, w.db.table(name).unwrap().clone()).unwrap();
        }
        for d in &w.documents {
            b.add_document(d.title.clone(), d.text.clone(), d.source.clone());
        }
        b.build().0
    };
    let questions: Vec<&str> = w.qa.iter().map(|item| item.question.as_str()).collect();

    let reference_engine = build(1);
    let reference: Vec<_> = questions.iter().map(|q| reference_engine.answer(q)).collect();

    for threads in [1, 2, 4, 8] {
        let e = build(threads);
        // Single-question path.
        for (item, expected) in w.qa.iter().zip(&reference) {
            let a = e.answer(&item.question);
            assert_eq!(
                a.text.as_bytes(),
                expected.text.as_bytes(),
                "threads={threads} text: {}",
                item.question
            );
            assert_eq!(a.route, expected.route, "threads={threads} route: {}", item.question);
            assert_eq!(
                a.confidence.to_bits(),
                expected.confidence.to_bits(),
                "threads={threads} confidence: {}",
                item.question
            );
            assert_eq!(&a, expected, "threads={threads} full answer: {}", item.question);
        }
        // Batch path: input-ordered and identical to the sequential loop.
        let batch = e.answer_batch(&questions);
        assert_eq!(batch.len(), reference.len());
        for ((q, got), expected) in questions.iter().zip(&batch).zip(&reference) {
            assert_eq!(got, expected, "threads={threads} batch answer: {q}");
        }
    }
}

/// DESIGN.md §9: explain traces and metrics snapshots are covered by the
/// same determinism contract as answers — byte-identical at any thread
/// count, with and without a pinned fault plan. The fault plan is passed
/// programmatically (never via `UNISEM_FAULTS`) so the test is hermetic.
#[test]
fn trace_and_metrics_byte_identical_across_threads_and_faults() {
    let w = EcommerceWorkload::generate(EcommerceConfig {
        products: 6,
        quarters: 3,
        reviews_per_product: 2,
        qa_per_category: 2,
        seed: 0xD5EED,
        name_offset: 0,
    });
    let questions: Vec<&str> = w.qa.iter().map(|item| item.question.as_str()).collect();
    let plans = [
        FaultPlan::disabled(),
        // Sub-unity probabilities: whether a site fires is a pure function
        // of (plan, site, key), so the firing pattern itself must replay
        // identically at every width.
        FaultPlan::parse("seed:0xC1,relstore.exec@64,hetgraph.traverse@96").expect("valid spec"),
    ];
    for plan in plans {
        let build = |threads: usize| {
            let config = EngineConfig {
                seed: 0xABCD_1234,
                trace: true,
                faults: plan,
                parallel: ParallelConfig::with_threads(threads),
                ..EngineConfig::default()
            };
            let mut b = EngineBuilder::with_config(w.lexicon.clone(), config);
            for name in w.db.table_names() {
                b.add_table(name, w.db.table(name).unwrap().clone()).unwrap();
            }
            for d in &w.documents {
                b.add_document(d.title.clone(), d.text.clone(), d.source.clone());
            }
            b.build().0
        };
        // Trace JSON covers the meter; the folded flamegraph and the
        // metrics snapshot (with its meter histograms) are additionally
        // compared as rendered bytes.
        let render = |e: &UnifiedEngine| -> (Vec<String>, Vec<String>) {
            e.answer_batch(&questions)
                .iter()
                .map(|a| {
                    let t = a.trace.as_ref().expect("trace opted in");
                    (t.to_jsonl(), FlameGraph::from_trace(t).to_folded())
                })
                .unzip()
        };
        let spec = plan.spec();
        let reference_engine = build(1);
        let (reference_traces, reference_folded) = render(&reference_engine);
        let reference_metrics = reference_engine.metrics_report().to_json();
        for threads in [2, 4, 8] {
            let e = build(threads);
            let (traces, folded) = render(&e);
            for ((q, got), want) in questions.iter().zip(&traces).zip(&reference_traces) {
                assert_eq!(
                    got.as_bytes(),
                    want.as_bytes(),
                    "threads={threads} faults='{spec}' trace: {q}"
                );
            }
            for ((q, got), want) in questions.iter().zip(&folded).zip(&reference_folded) {
                assert_eq!(
                    got.as_bytes(),
                    want.as_bytes(),
                    "threads={threads} faults='{spec}' flamegraph: {q}"
                );
            }
            assert_eq!(
                e.metrics_report().to_json().as_bytes(),
                reference_metrics.as_bytes(),
                "threads={threads} faults='{spec}' metrics snapshot"
            );
        }
    }
}

#[test]
fn different_seed_different_corpus() {
    let (w1, _) = engine(1);
    let (w2, _) = engine(2);
    assert_ne!(w1.documents, w2.documents);
}

#[test]
fn repeated_answers_are_stable() {
    let (w, e) = engine(7);
    let q = &w.qa[0].question;
    let first = e.answer(q);
    for _ in 0..3 {
        assert_eq!(e.answer(q), first);
    }
}

#[test]
fn retrieval_is_deterministic() {
    let (w, e) = engine(9);
    let q = &w.qa[1].question;
    assert_eq!(e.retrieve(q, 5), e.retrieve(q, 5));
}
