//! Golden explain-plan snapshots (DESIGN.md §11): the optimized physical
//! plan rendered into `Answer::trace` is compared byte-for-byte against
//! committed snapshots in `tests/golden/`, one file per workload, twelve
//! queries each (two per QA category).
//!
//! To bless new snapshots after an intentional planner change:
//!
//! ```text
//! UNISEM_BLESS=1 cargo test -p unisem-tests --test planner_golden
//! ```
//!
//! then commit the rewritten files. The diff IS the review artifact: any
//! cost-model or plan-shape change shows up as plan text.

use unisem_core::{EngineBuilder, EngineConfig, UnifiedEngine};
use unisem_workloads::ecommerce::DocSpec;
use unisem_workloads::{
    EcommerceConfig, EcommerceWorkload, HealthcareConfig, HealthcareWorkload, QaItem,
};

struct Workload {
    file: &'static str,
    lexicon: unisem_slm::Lexicon,
    db: unisem_relstore::Database,
    semi: unisem_semistore::SemiStore,
    documents: Vec<DocSpec>,
    qa: Vec<QaItem>,
}

fn workloads() -> Vec<Workload> {
    let e = EcommerceWorkload::generate(EcommerceConfig {
        products: 6,
        quarters: 3,
        reviews_per_product: 2,
        qa_per_category: 2,
        seed: 0xD1FF,
        name_offset: 0,
    });
    let h = HealthcareWorkload::generate(HealthcareConfig {
        drugs: 4,
        patients: 6,
        trials_per_drug: 2,
        qa_per_category: 2,
        seed: 0x4EA17,
    });
    vec![
        Workload {
            file: "ecommerce_plans.txt",
            lexicon: e.lexicon,
            db: e.db,
            semi: e.semi,
            documents: e.documents,
            qa: e.qa,
        },
        Workload {
            file: "healthcare_plans.txt",
            lexicon: h.lexicon,
            db: h.db,
            semi: h.semi,
            documents: h.documents,
            qa: h.qa,
        },
    ]
}

fn build(w: &Workload) -> UnifiedEngine {
    // Faults explicitly disabled: the snapshots must not depend on any
    // ambient `UNISEM_FAULTS` plan the surrounding CI gate has armed.
    let config = EngineConfig {
        seed: 0xABCD_1234,
        trace: true,
        faults: unisem_core::FaultPlan::disabled(),
        ..EngineConfig::default()
    };
    let mut b = EngineBuilder::with_config(w.lexicon.clone(), config);
    for name in w.db.table_names() {
        b.add_table(name, w.db.table(name).expect("listed").clone()).expect("fresh");
    }
    for coll in w.semi.collections() {
        for doc in w.semi.docs(coll) {
            b.add_json(coll, doc.clone());
        }
    }
    for d in &w.documents {
        b.add_document(d.title.clone(), d.text.clone(), d.source.clone());
    }
    b.build().0
}

/// Renders every workload query's optimized physical plan into one
/// deterministic snapshot document.
fn snapshot(w: &Workload) -> String {
    let engine = build(w);
    let mut out = String::new();
    for item in &w.qa {
        let answer = engine.answer(&item.question);
        let trace = answer.trace.as_ref().expect("trace opted in");
        let plan = trace.plan.as_deref().unwrap_or("(no plan recorded)");
        out.push_str("=== Q: ");
        out.push_str(&item.question);
        out.push('\n');
        out.push_str(plan);
        if !plan.ends_with('\n') {
            out.push('\n');
        }
        out.push('\n');
    }
    out
}

fn golden_path(file: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("golden").join(file)
}

#[test]
fn explain_plans_match_golden_snapshots() {
    let bless = std::env::var_os("UNISEM_BLESS").is_some();
    for w in workloads() {
        let actual = snapshot(&w);
        assert!(actual.contains("[est rows~"), "{}: plans carry estimates", w.file);
        let path = golden_path(w.file);
        if bless {
            std::fs::write(&path, &actual)
                .unwrap_or_else(|e| panic!("bless {}: {e}", path.display()));
            continue;
        }
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!("missing golden {} ({e}); run with UNISEM_BLESS=1 to create it", path.display())
        });
        if expected != actual {
            let diverges = expected
                .lines()
                .zip(actual.lines())
                .position(|(e, a)| e != a)
                .unwrap_or_else(|| expected.lines().count().min(actual.lines().count()));
            panic!(
                "{} diverges from golden snapshot at line {} \
                 (UNISEM_BLESS=1 to re-bless an intentional change)\n\
                 expected: {:?}\n  actual: {:?}",
                w.file,
                diverges + 1,
                expected.lines().nth(diverges).unwrap_or("<eof>"),
                actual.lines().nth(diverges).unwrap_or("<eof>"),
            );
        }
    }
}
