//! Scale smoke test: a larger corpus still builds quickly, answers
//! accurately, and keeps index sizes in the expected relative order.

use std::sync::Arc;

use unisem_core::{EngineBuilder, EngineConfig};
use unisem_retrieval::{ChunkRetriever, DenseRetriever};
use unisem_workloads::{answer_matches, EcommerceConfig, EcommerceWorkload};

#[test]
fn large_workload_end_to_end() {
    let w = EcommerceWorkload::generate(EcommerceConfig {
        products: 24,
        quarters: 4,
        reviews_per_product: 4,
        qa_per_category: 4,
        seed: 0x5CA1E,
        name_offset: 0,
    });
    let mut b = EngineBuilder::with_config(w.lexicon.clone(), EngineConfig::default());
    for name in w.db.table_names() {
        b.add_table(name, w.db.table(name).unwrap().clone()).unwrap();
    }
    for coll in w.semi.collections() {
        for doc in w.semi.docs(coll) {
            b.add_json(coll, doc.clone());
        }
    }
    for d in &w.documents {
        b.add_document(d.title.clone(), d.text.clone(), d.source.clone());
    }
    let engine = b.build().0;

    assert!(engine.docs().num_documents() > 200);
    assert!(engine.graph().num_nodes() > 400);

    let mut correct = 0;
    for item in &w.qa {
        if answer_matches(&item.gold, &engine.answer(&item.question).text) {
            correct += 1;
        }
    }
    let acc = correct as f64 / w.qa.len() as f64;
    assert!(acc >= 0.85, "accuracy at scale: {acc:.2} ({correct}/{})", w.qa.len());
}

#[test]
fn index_size_ordering_holds_at_scale() {
    // §I gap 1: the graph index should not dwarf its corpus, and should
    // stay below the dense-vector index it replaces.
    let w = EcommerceWorkload::generate(EcommerceConfig {
        products: 32,
        quarters: 4,
        reviews_per_product: 3,
        qa_per_category: 1,
        seed: 0x517E,
        name_offset: 0,
    });
    let docs = Arc::new(w.docstore());
    let slm = unisem_slm::Slm::new(unisem_slm::SlmConfig {
        lexicon: w.lexicon.clone(),
        ..unisem_slm::SlmConfig::default()
    });
    let mut gb = unisem_hetgraph::GraphBuilder::new(slm.clone());
    gb.add_docstore(&docs);
    let (graph, stats) = gb.finish();
    assert_eq!(stats.chunks, docs.num_chunks());

    let dense = DenseRetriever::build(slm, &docs);
    assert!(
        graph.approx_bytes() < dense.index_bytes(),
        "graph {} bytes vs dense {} bytes",
        graph.approx_bytes(),
        dense.index_bytes()
    );
}
