//! Persistent-storage integration suite (DESIGN.md §12).
//!
//! Three contracts, enforced end-to-end through the public engine API:
//!
//! 1. **Snapshot round-trip differential**: an engine reopened from a
//!    snapshot answers every workload query byte-identically — text,
//!    confidence, entropy report, route, provenance, degradations, and
//!    the full explain trace — to the engine that saved it, at 1, 2, 4,
//!    and 8 threads.
//! 2. **Byte-stable snapshot files**: two engines built from the same
//!    inputs with the same seed write byte-identical snapshot files,
//!    regardless of build thread count; the per-page image table is
//!    pinned by a golden snapshot (`UNISEM_BLESS=1` re-blesses).
//! 3. **Crash consistency**: across a matrix of injected torn-page and
//!    failed-flush faults, a failed save returns a typed error, never
//!    corrupts the previously committed snapshot, and the target stays
//!    cleanly reopenable.

use std::path::PathBuf;

use storekit::{Pager, StoreError};
use unisem_core::{
    Answer, EngineBuilder, EngineConfig, EngineError, FaultPlan, FaultSite, ParallelConfig,
    UnifiedEngine,
};
use unisem_relstore::{DataType, Schema, Table, Value};
use unisem_slm::{EntityKind, Lexicon};
use unisem_workloads::ecommerce::DocSpec;
use unisem_workloads::{
    EcommerceConfig, EcommerceWorkload, HealthcareConfig, HealthcareWorkload, QaItem,
};

struct Workload {
    name: &'static str,
    lexicon: Lexicon,
    db: unisem_relstore::Database,
    semi: unisem_semistore::SemiStore,
    documents: Vec<DocSpec>,
    qa: Vec<QaItem>,
}

fn workloads() -> Vec<Workload> {
    let e = EcommerceWorkload::generate(EcommerceConfig {
        products: 6,
        quarters: 3,
        reviews_per_product: 2,
        qa_per_category: 2,
        seed: 0xD1FF,
        name_offset: 0,
    });
    let h = HealthcareWorkload::generate(HealthcareConfig {
        drugs: 4,
        patients: 6,
        trials_per_drug: 2,
        qa_per_category: 2,
        seed: 0x4EA17,
    });
    vec![
        Workload {
            name: "ecommerce",
            lexicon: e.lexicon,
            db: e.db,
            semi: e.semi,
            documents: e.documents,
            qa: e.qa,
        },
        Workload {
            name: "healthcare",
            lexicon: h.lexicon,
            db: h.db,
            semi: h.semi,
            documents: h.documents,
            qa: h.qa,
        },
    ]
}

fn config(threads: usize) -> EngineConfig {
    // Faults explicitly disabled: byte-identity must not depend on any
    // ambient `UNISEM_FAULTS` plan the surrounding CI gate has armed.
    EngineConfig {
        seed: 0xABCD_1234,
        trace: true,
        faults: FaultPlan::disabled(),
        parallel: ParallelConfig::with_threads(threads),
        ..EngineConfig::default()
    }
}

fn build(w: &Workload, threads: usize) -> UnifiedEngine {
    let mut b = EngineBuilder::with_config(w.lexicon.clone(), config(threads));
    for name in w.db.table_names() {
        b.add_table(name, w.db.table(name).expect("listed").clone()).expect("fresh");
    }
    for coll in w.semi.collections() {
        for doc in w.semi.docs(coll) {
            b.add_json(coll, doc.clone());
        }
    }
    for d in &w.documents {
        b.add_document(d.title.clone(), d.text.clone(), d.source.clone());
    }
    b.build().0
}

/// A tiny fixed-input engine for the fault matrix and the golden page
/// check: three lexicon entries, one table, two documents, one JSON
/// collection — every modality, minimal pages.
fn tiny_engine(faults: FaultPlan) -> UnifiedEngine {
    let lexicon = Lexicon::new().with_entries([
        ("Aero Widget", EntityKind::Product),
        ("Nova Speaker", EntityKind::Product),
        ("Acme Corp", EntityKind::Organization),
    ]);
    let mut b = EngineBuilder::with_config(
        lexicon,
        EngineConfig { seed: 0x0BAD_CAFE, trace: true, faults, ..EngineConfig::default() },
    );
    let sales = Table::from_rows(
        Schema::of(&[
            ("product", DataType::Str),
            ("quarter", DataType::Str),
            ("amount", DataType::Float),
        ]),
        vec![
            vec![Value::str("Aero Widget"), Value::str("Q1 2024"), Value::Float(100.0)],
            vec![Value::str("Aero Widget"), Value::str("Q2 2024"), Value::Float(150.0)],
            vec![Value::str("Nova Speaker"), Value::str("Q1 2024"), Value::Float(90.0)],
        ],
    )
    .expect("typed rows");
    b.add_table("sales", sales).expect("fresh");
    b.add_document(
        "news",
        "Acme Corp launched the Aero Widget. The Aero Widget is manufactured by Acme Corp.",
        "news",
    );
    b.add_document(
        "report",
        "In Q2 2024, Aero Widget sales increased 50% to $150. Customers were pleased.",
        "report",
    );
    b.add_json(
        "orders",
        unisem_semistore::parse_json(
            r#"{"product": "Aero Widget", "quarter": "Q1 2024", "units": 10}"#,
        )
        .expect("valid json"),
    );
    b.build().0
}

fn tmp_path(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("unisem-storage-{}-{tag}.usk", std::process::id()));
    p
}

fn answers(engine: &UnifiedEngine, qa: &[QaItem]) -> Vec<Answer> {
    qa.iter().map(|item| engine.answer(&item.question)).collect()
}

#[test]
fn snapshot_round_trip_answers_byte_identical() {
    for w in workloads() {
        let engine = build(&w, 1);
        let path = tmp_path(&format!("roundtrip-{}", w.name));
        engine.save_snapshot(&path).expect("save");
        let baseline = answers(&engine, &w.qa);
        assert!(!baseline.is_empty(), "{}: workload has queries", w.name);
        for threads in [1usize, 2, 4, 8] {
            let (reopened, report) =
                EngineBuilder::open_snapshot(&path, config(threads)).expect("open");
            assert_eq!(
                report,
                *engine.ingest_report(),
                "{}: ingest report survives the round trip",
                w.name
            );
            assert_eq!(
                reopened.stats().render(),
                engine.stats().render(),
                "{}: statistics catalog survives the round trip",
                w.name
            );
            let got = answers(&reopened, &w.qa);
            for (a, b) in baseline.iter().zip(&got) {
                assert_eq!(a, b, "{} at {threads} threads: answer diverged", w.name);
                assert!(a.trace.is_some(), "{}: traces were opted in", w.name);
            }
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn same_seed_builds_write_byte_identical_files() {
    for w in workloads() {
        // Thread count is the one knob that must never leak into the
        // bytes: build at 1 and 4 threads, compare whole files.
        let p1 = tmp_path(&format!("bytes1-{}", w.name));
        let p4 = tmp_path(&format!("bytes4-{}", w.name));
        build(&w, 1).save_snapshot(&p1).expect("save at 1 thread");
        build(&w, 4).save_snapshot(&p4).expect("save at 4 threads");
        let b1 = std::fs::read(&p1).expect("read");
        let b4 = std::fs::read(&p4).expect("read");
        assert!(!b1.is_empty());
        assert_eq!(b1, b4, "{}: snapshot bytes depend on build thread count", w.name);
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p4).ok();
    }
}

/// Renders the page-image table of a snapshot file: one line per page
/// with its kind tag and content checksum. Pinning this is pinning the
/// physical layout — any page-format, allocation-order, or encoding
/// change shows up as a diff to bless.
fn page_image_table(path: &std::path::Path) -> String {
    let mut pager = Pager::open(path, FaultPlan::disabled()).expect("open pager");
    let mut out = String::new();
    for id in 0..pager.num_pages() {
        let page = pager.read_page(id).expect("page verifies");
        out.push_str(&format!(
            "page {id}: kind={:?} checksum={:016x}\n",
            page.kind(),
            page.checksum()
        ));
    }
    out
}

#[test]
fn snapshot_page_images_match_golden() {
    let engine = tiny_engine(FaultPlan::disabled());
    let path = tmp_path("golden");
    engine.save_snapshot(&path).expect("save");
    let actual = page_image_table(&path);
    std::fs::remove_file(&path).ok();

    let golden = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("golden/storage_pages.txt");
    if std::env::var_os("UNISEM_BLESS").is_some() {
        std::fs::write(&golden, &actual).expect("bless golden");
        return;
    }
    let expected = std::fs::read_to_string(&golden).unwrap_or_else(|_| {
        panic!("missing golden file {}; run UNISEM_BLESS=1 to create it", golden.display())
    });
    assert_eq!(
        actual, expected,
        "snapshot page images diverged from golden; \
         re-bless with UNISEM_BLESS=1 if the change is intentional"
    );
}

#[test]
fn crash_fault_matrix_preserves_committed_snapshot() {
    let path = tmp_path("faults");
    let clean = tiny_engine(FaultPlan::disabled());
    clean.save_snapshot(&path).expect("initial save");
    let committed = std::fs::read(&path).expect("read committed");
    let question = "What was the total sales amount of Aero Widget across all quarters?";
    let baseline = clean.answer(question);

    // The matrix: each store fault site, armed at probability 1 (fires at
    // the first touch of the site) and at ~1/2 under several seeds (fires
    // at different pages / flushes per seed — distinct fault points).
    let mut plans: Vec<(String, FaultPlan)> = Vec::new();
    for site in [FaultSite::StorePageWrite, FaultSite::StoreFlush] {
        plans.push((format!("{site:?}-always"), FaultPlan::single(site)));
        for seed in 1u64..=4 {
            plans.push((
                format!("{site:?}-half-seed{seed}"),
                FaultPlan::unset().with_site(site, 128).with_seed(seed),
            ));
        }
    }

    let mut fired = 0usize;
    for (tag, plan) in plans {
        let engine = tiny_engine(plan);
        match engine.save_snapshot(&path) {
            Err(EngineError::Store(StoreError::Fault(f))) => {
                fired += 1;
                assert!(
                    matches!(f.site, FaultSite::StorePageWrite | FaultSite::StoreFlush),
                    "{tag}: fault at unexpected site {:?}",
                    f.site
                );
            }
            Err(other) => panic!("{tag}: expected a typed injected-fault error, got {other}"),
            // A probabilistic plan may spare every page this run; then the
            // save must have committed a byte-identical file.
            Ok(()) => {}
        }
        let now = std::fs::read(&path).expect("target readable after faulted save");
        assert_eq!(
            now, committed,
            "{tag}: a faulted or re-run save changed the committed snapshot"
        );
        // The committed snapshot stays cleanly reopenable and equivalent.
        let (reopened, _) =
            EngineBuilder::open_snapshot(&path, clean.config()).expect("reopen after fault");
        assert_eq!(reopened.answer(question), baseline, "{tag}: reopened answer diverged");
    }
    assert!(fired >= 4, "fault matrix too soft: only {fired} injected failures fired");
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupt_snapshot_is_rejected_with_typed_error() {
    let path = tmp_path("corrupt");
    tiny_engine(FaultPlan::disabled()).save_snapshot(&path).expect("save");
    let mut bytes = std::fs::read(&path).expect("read");
    // Flip one payload byte in the middle of the file: the page checksum
    // must catch it at open.
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, &bytes).expect("write corrupted");
    match EngineBuilder::open_snapshot(&path, config(1)) {
        Err(EngineError::Store(StoreError::Corrupt { .. })) => {}
        Err(other) => panic!("expected a corruption error, got {other}"),
        Ok(_) => panic!("corrupted snapshot opened cleanly"),
    }
    // Truncation is rejected too (file no longer a whole number of pages).
    let shorter = &bytes[..bytes.len() - 100];
    std::fs::write(&path, shorter).expect("write truncated");
    match EngineBuilder::open_snapshot(&path, config(1)) {
        Err(EngineError::Store(_)) => {}
        Err(other) => panic!("expected a storage error, got {other}"),
        Ok(_) => panic!("truncated snapshot opened cleanly"),
    }
    std::fs::remove_file(&path).ok();
}
