//! Crash-recovery integration suite for the write-ahead log
//! (DESIGN.md §13).
//!
//! The contract under test: an engine that crashes at **any** WAL record
//! boundary — torn append, lost flush, or mid-checkpoint — recovers to a
//! state that answers every workload query **byte-identically** (text,
//! routes, confidence, degradations, full explain trace) to an engine
//! that never crashed, at 1, 2, 4, and 8 threads. Alongside the matrix:
//! same-seed delta streams must produce byte-identical WAL segment
//! files, and the planner's statistics catalog must reflect post-delta
//! cardinalities (no stale row counts in explain traces).

use std::path::{Path, PathBuf};

use storekit::{StoreError, Wal};
use unisem_core::{
    Answer, Delta, EngineBuilder, EngineConfig, EngineError, FaultPlan, FaultSite, ParallelConfig,
    UnifiedEngine,
};
use unisem_hetgraph::EdgeKind;
use unisem_relstore::{DataType, Schema, Table, Value};
use unisem_slm::{EntityKind, Lexicon};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Questions exercising every route against the tiny fixture — the
/// byte-identity check covers the analytical (TableQA), lookup
/// (topology retrieval), and graph-flavoured paths.
const QUERIES: [&str; 4] = [
    "What was the total sales amount of Aero Widget across all quarters?",
    "Who manufactures the Aero Widget?",
    "What happened to Aero Widget sales in Q2 2024?",
    "What was the total sales amount of Nova Speaker across all quarters?",
];

fn config(threads: usize, faults: FaultPlan) -> EngineConfig {
    EngineConfig {
        seed: 0x0BAD_CAFE,
        trace: true,
        faults,
        parallel: ParallelConfig::with_threads(threads),
        ..EngineConfig::default()
    }
}

/// The same tiny fixed-input engine the storage suite pins: every
/// modality, minimal pages.
fn tiny_engine() -> UnifiedEngine {
    let lexicon = Lexicon::new().with_entries([
        ("Aero Widget", EntityKind::Product),
        ("Nova Speaker", EntityKind::Product),
        ("Acme Corp", EntityKind::Organization),
    ]);
    let mut b = EngineBuilder::with_config(lexicon, config(1, FaultPlan::disabled()));
    let sales = Table::from_rows(
        Schema::of(&[
            ("product", DataType::Str),
            ("quarter", DataType::Str),
            ("amount", DataType::Float),
        ]),
        vec![
            vec![Value::str("Aero Widget"), Value::str("Q1 2024"), Value::Float(100.0)],
            vec![Value::str("Aero Widget"), Value::str("Q2 2024"), Value::Float(150.0)],
            vec![Value::str("Nova Speaker"), Value::str("Q1 2024"), Value::Float(90.0)],
        ],
    )
    .expect("typed rows");
    b.add_table("sales", sales).expect("fresh");
    b.add_document(
        "news",
        "Acme Corp launched the Aero Widget. The Aero Widget is manufactured by Acme Corp.",
        "news",
    );
    b.add_document(
        "report",
        "In Q2 2024, Aero Widget sales increased 50% to $150. Customers were pleased.",
        "report",
    );
    b.add_json(
        "orders",
        unisem_semistore::parse_json(
            r#"{"product": "Aero Widget", "quarter": "Q1 2024", "units": 10}"#,
        )
        .expect("valid json"),
    );
    b.build().0
}

/// The incremental workload: one delta per variant, ordered so edge
/// endpoints exist when the edge arrives. Pure data — same stream every
/// call, which is what the byte-identical-segments check relies on.
fn delta_stream() -> Vec<Delta> {
    vec![
        Delta::DocAdd {
            title: "forecast".into(),
            text: "Acme Corp expects Nova Speaker sales to grow in Q3 2024. \
                   The Nova Speaker is gaining customers."
                .into(),
            source: "forecast".into(),
        },
        Delta::TableRow {
            table: "sales".into(),
            values: vec![Value::str("Nova Speaker"), Value::str("Q2 2024"), Value::Float(120.0)],
        },
        Delta::SemiFragment {
            collection: "orders".into(),
            json: r#"{"product": "Nova Speaker", "quarter": "Q2 2024", "units": 4}"#.into(),
        },
        Delta::GraphEntity { name: "Cobalt Labs".into(), kind: EntityKind::Organization },
        Delta::GraphEntity { name: "Nova Speaker".into(), kind: EntityKind::Product },
        Delta::GraphEdge {
            a: "Cobalt Labs".into(),
            b: "Nova Speaker".into(),
            kind: EdgeKind::RelatesTo("supplies".into()),
        },
    ]
}

fn tmp_path(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("unisem-recovery-{}-{tag}", std::process::id()));
    p
}

fn remove_wal(base: &Path) {
    for seg in Wal::segment_paths(base) {
        std::fs::remove_file(seg).ok();
    }
}

/// Freezes the on-disk WAL (all segments) so one crash image can be
/// recovered repeatedly — recovery truncates torn tails and appends, so
/// each recovery run needs its own copy.
fn freeze_wal(base: &Path) -> Vec<(PathBuf, Vec<u8>)> {
    Wal::segment_paths(base)
        .into_iter()
        .map(|p| {
            let bytes = std::fs::read(&p).expect("read segment");
            (p, bytes)
        })
        .collect()
}

fn thaw_wal(frozen: &[(PathBuf, Vec<u8>)], from_base: &Path, to_base: &Path) {
    remove_wal(to_base);
    let from = from_base.to_string_lossy().into_owned();
    let to = to_base.to_string_lossy().into_owned();
    for (path, bytes) in frozen {
        let dest = path.to_string_lossy().replace(&from, &to);
        std::fs::write(dest, bytes).expect("write segment copy");
    }
}

fn answers(engine: &UnifiedEngine) -> Vec<Answer> {
    QUERIES.iter().map(|q| engine.answer(q)).collect()
}

/// The never-crashed reference at a given thread count: reopen the base
/// snapshot and apply the full delta stream in order. (Delta application
/// order determines graph node-id assignment, so the reference must take
/// the same path as the crashed engine — base state plus the same
/// stream — not a from-scratch build.)
fn reference_answers(snap: &Path, deltas: &[Delta], threads: usize) -> Vec<Answer> {
    let (mut engine, _) =
        EngineBuilder::open_snapshot(snap, config(threads, FaultPlan::disabled()))
            .expect("open reference snapshot");
    for d in deltas {
        engine.ingest_delta(d.clone()).expect("reference ingest");
    }
    answers(&engine)
}

enum Crash {
    /// The append of delta `k` tears mid-frame.
    Append,
    /// Delta `k` is appended but the flush loses it.
    Flush,
}

#[test]
fn crash_matrix_recovers_byte_identically() {
    let deltas = delta_stream();
    let snap = tmp_path("matrix-base.usk");
    tiny_engine().save_snapshot(&snap).expect("save base snapshot");

    let reference: Vec<Vec<Answer>> =
        THREAD_COUNTS.iter().map(|&t| reference_answers(&snap, &deltas, t)).collect();
    for t in &reference {
        for a in t {
            assert!(a.trace.is_some(), "traces were opted in");
        }
    }

    let mut scenarios = 0usize;
    for crash in [Crash::Append, Crash::Flush] {
        for k in 0..deltas.len() {
            let tag = match crash {
                Crash::Append => format!("append-{k}"),
                Crash::Flush => format!("flush-{k}"),
            };
            let wal = tmp_path(&format!("{tag}.wal"));
            remove_wal(&wal);

            // Phase 1: a clean engine makes deltas[..k] durable.
            {
                let (mut engine, _, replayed) = EngineBuilder::open_snapshot_with_wal(
                    &snap,
                    &wal,
                    config(1, FaultPlan::disabled()),
                )
                .expect("phase-1 open");
                assert_eq!(replayed, 0, "{tag}: fresh log has nothing to replay");
                for d in &deltas[..k] {
                    engine.ingest_delta(d.clone()).expect("phase-1 ingest");
                }
            }

            // Phase 2: crash on delta k at the armed boundary.
            let site = match crash {
                Crash::Append => FaultSite::WalAppend,
                Crash::Flush => FaultSite::WalFlush,
            };
            {
                let (mut engine, _, replayed) = EngineBuilder::open_snapshot_with_wal(
                    &snap,
                    &wal,
                    config(1, FaultPlan::single(site)),
                )
                .expect("phase-2 open (replay does not touch the armed site)");
                assert_eq!(replayed, k, "{tag}: durable prefix replays");
                let seq_before = engine.applied_seq();
                match engine.ingest_delta(deltas[k].clone()) {
                    Err(EngineError::Store(StoreError::Fault(f))) => {
                        assert_eq!(f.site, site, "{tag}: fault at the armed site");
                    }
                    Err(other) => panic!("{tag}: expected injected fault, got {other}"),
                    Ok(_) => panic!("{tag}: armed boundary did not fire"),
                }
                assert_eq!(
                    engine.applied_seq(),
                    seq_before,
                    "{tag}: an unacknowledged delta must not advance the applied sequence"
                );
            }

            // Phase 3: recover the crash image at every thread count.
            let frozen = freeze_wal(&wal);
            assert!(!frozen.is_empty(), "{tag}: crash image has segments");
            for &threads in &THREAD_COUNTS {
                let twal = tmp_path(&format!("{tag}-t{threads}.wal"));
                thaw_wal(&frozen, &wal, &twal);
                let (mut recovered, _, replayed) = EngineBuilder::open_snapshot_with_wal(
                    &snap,
                    &twal,
                    config(threads, FaultPlan::disabled()),
                )
                .expect("recovery open");
                assert_eq!(replayed, k, "{tag} at {threads} threads: exactly the durable prefix");
                assert_eq!(recovered.applied_seq(), k as u64);
                // Resubmit the lost delta and the rest of the stream —
                // the client's retry after a failed acknowledgement.
                for d in &deltas[k..] {
                    recovered.ingest_delta(d.clone()).expect("re-ingest after recovery");
                }
                let got = answers(&recovered);
                let want = &reference[THREAD_COUNTS.iter().position(|&t| t == threads).unwrap()];
                for (g, w) in got.iter().zip(want) {
                    assert_eq!(g, w, "{tag} at {threads} threads: answer diverged");
                }
                remove_wal(&twal);
            }
            remove_wal(&wal);
            scenarios += 1;
        }
    }
    assert_eq!(scenarios, 2 * deltas.len(), "full boundary matrix ran");
    std::fs::remove_file(&snap).ok();
}

#[test]
fn checkpoint_crashes_recover_byte_identically() {
    let deltas = delta_stream();
    let snap = tmp_path("ckpt-base.usk");
    tiny_engine().save_snapshot(&snap).expect("save base snapshot");
    let reference = reference_answers(&snap, &deltas, 1);

    // Crash A: before the snapshot fold ("begin") — the checkpoint is a
    // no-op, the log stays authoritative.
    {
        let wal = tmp_path("ckpt-begin.wal");
        remove_wal(&wal);
        let ckpt = tmp_path("ckpt-begin.usk");
        std::fs::remove_file(&ckpt).ok();
        let (mut engine, _, _) = EngineBuilder::open_snapshot_with_wal(
            &snap,
            &wal,
            config(1, FaultPlan::single(FaultSite::WalCheckpoint)),
        )
        .expect("open");
        for d in &deltas {
            engine.ingest_delta(d.clone()).expect("ingest");
        }
        match engine.checkpoint(&ckpt) {
            Err(EngineError::Fault(f)) => {
                assert_eq!(f.site, FaultSite::WalCheckpoint);
                assert_eq!(f.key, "begin");
            }
            other => panic!("expected fault at checkpoint begin, got {other:?}"),
        }
        assert!(!ckpt.exists(), "begin-crash must not leave a partial checkpoint");
        drop(engine);
        let (recovered, _, replayed) =
            EngineBuilder::open_snapshot_with_wal(&snap, &wal, config(1, FaultPlan::disabled()))
                .expect("recover from old snapshot + intact log");
        assert_eq!(replayed, deltas.len(), "every delta replays from the log");
        for (g, w) in answers(&recovered).iter().zip(&reference) {
            assert_eq!(g, w, "begin-crash recovery diverged");
        }
        remove_wal(&wal);
    }

    // Crash B: after the snapshot fold, before log truncation
    // ("truncate") — the new snapshot already holds every delta, and
    // recovery must skip the now-stale log records by sequence number.
    {
        // A probabilistic plan whose decision hash spares "begin" but
        // fires at "truncate" — searched deterministically, so the
        // scenario is stable across runs.
        let plan = (0u64..10_000)
            .map(|s| FaultPlan::unset().with_seed(s).with_site(FaultSite::WalCheckpoint, 128))
            .find(|p| {
                !p.fires(FaultSite::WalCheckpoint, "begin")
                    && p.fires(FaultSite::WalCheckpoint, "truncate")
            })
            .expect("a seed separating the two checkpoint keys exists");
        let wal = tmp_path("ckpt-truncate.wal");
        remove_wal(&wal);
        let ckpt = tmp_path("ckpt-truncate.usk");
        std::fs::remove_file(&ckpt).ok();
        let (mut engine, _, _) =
            EngineBuilder::open_snapshot_with_wal(&snap, &wal, config(1, plan)).expect("open");
        for d in &deltas {
            engine.ingest_delta(d.clone()).expect("ingest");
        }
        match engine.checkpoint(&ckpt) {
            Err(EngineError::Store(StoreError::Fault(f))) => {
                assert_eq!(f.site, FaultSite::WalCheckpoint);
                assert_eq!(f.key, "truncate");
            }
            other => panic!("expected fault at checkpoint truncate, got {other:?}"),
        }
        assert!(ckpt.exists(), "the folded snapshot committed before the crash");
        assert!(!Wal::segment_paths(&wal).is_empty(), "truncate-crash leaves the stale log behind");
        drop(engine);
        let (recovered, _, replayed) =
            EngineBuilder::open_snapshot_with_wal(&ckpt, &wal, config(1, FaultPlan::disabled()))
                .expect("recover from folded snapshot + stale log");
        assert_eq!(replayed, 0, "stale records are skipped by sequence, not re-applied");
        assert_eq!(recovered.applied_seq(), deltas.len() as u64);
        for (g, w) in answers(&recovered).iter().zip(&reference) {
            assert_eq!(g, w, "truncate-crash recovery diverged");
        }
        remove_wal(&wal);
        std::fs::remove_file(&ckpt).ok();
    }
    std::fs::remove_file(&snap).ok();
}

#[test]
fn same_seed_delta_streams_write_byte_identical_segments() {
    let deltas = delta_stream();
    let snap = tmp_path("bytes-base.usk");
    tiny_engine().save_snapshot(&snap).expect("save base snapshot");

    // Thread count is the one knob that must never leak into the log
    // bytes: ingest the same stream at 1 and 4 threads, compare segments.
    let mut images: Vec<Vec<(String, Vec<u8>)>> = Vec::new();
    for threads in [1usize, 4] {
        let wal = tmp_path(&format!("bytes-t{threads}.wal"));
        remove_wal(&wal);
        let (mut engine, _, _) = EngineBuilder::open_snapshot_with_wal(
            &snap,
            &wal,
            config(threads, FaultPlan::disabled()),
        )
        .expect("open");
        for d in &deltas {
            engine.ingest_delta(d.clone()).expect("ingest");
        }
        let base = wal.to_string_lossy().into_owned();
        images.push(
            Wal::segment_paths(&wal)
                .into_iter()
                .map(|p| {
                    let rel = p.to_string_lossy().replace(&base, "<wal>");
                    (rel, std::fs::read(&p).expect("read segment"))
                })
                .collect(),
        );
        remove_wal(&wal);
    }
    assert!(!images[0].is_empty(), "the stream produced at least one segment");
    assert_eq!(images[0], images[1], "WAL segment bytes depend on thread count");
    std::fs::remove_file(&snap).ok();
}

#[test]
fn stats_catalog_tracks_post_delta_cardinalities() {
    let mut engine = tiny_engine();
    let question = "What was the total sales amount of Aero Widget across all quarters?";

    // The base-table scan's estimate comes straight from the statistics
    // catalog, so its `rows~` figure is the stale-stats canary.
    fn scan_line(engine: &UnifiedEngine, question: &str) -> String {
        let plan = engine
            .answer(question)
            .trace
            .expect("traces on")
            .plan
            .expect("analytical route planned");
        plan.lines()
            .find(|l| l.contains("Scan: sales"))
            .unwrap_or_else(|| panic!("no sales scan in plan:\n{plan}"))
            .to_string()
    }

    let rows_before = engine.stats().table("sales").expect("sales stats").rows;
    assert_eq!(rows_before, 3);
    let before = scan_line(&engine, question);
    assert!(before.contains("rows~3"), "pre-delta scan estimates 3 rows: {before}");

    engine
        .ingest_deltas(&delta_stream())
        .expect("ingest the full stream (no WAL attached — in-memory path)");

    // The statistics catalog is recollected on ingest, so the planner's
    // explain trace shows the new cardinality — never a stale count.
    assert_eq!(engine.stats().table("sales").expect("sales stats").rows, 4);
    assert_eq!(engine.stats().table("orders").expect("orders stats").rows, 2);
    let after = scan_line(&engine, question);
    assert!(after.contains("rows~4"), "post-delta scan estimates 4 rows: {after}");
    assert!(!after.contains("rows~3"), "stale cardinality leaked into the scan: {after}");
}
