//! Cross-crate pipelines: each modality flows end-to-end into queryable
//! form, and the modalities interconnect through the graph.

use unisem_extract::TableGenerator;
use unisem_hetgraph::algo::shortest_path;
use unisem_hetgraph::GraphBuilder;
use unisem_relstore::{Database, Value};
use unisem_semistore::{parse_json, SemiStore};
use unisem_slm::{EntityKind, Lexicon, Slm, SlmConfig};

fn slm() -> Slm {
    Slm::new(SlmConfig {
        lexicon: Lexicon::new().with_entries([
            ("Aero Widget", EntityKind::Product),
            ("Acme Corp", EntityKind::Organization),
        ]),
        ..SlmConfig::default()
    })
}

/// JSON logs → flattened table → SQL aggregate.
#[test]
fn json_to_sql_roundtrip() {
    let mut store = SemiStore::new();
    for (p, u) in [("a", 3.0), ("a", 5.0), ("b", 2.0)] {
        store.insert(
            "orders",
            parse_json(&format!(r#"{{"product": "{p}", "units": {u}}}"#)).unwrap(),
        );
    }
    let table = store.to_table("orders").unwrap();
    let mut db = Database::new();
    db.create_table("orders", table).unwrap();
    let out = db
        .run_sql(
            "SELECT product, SUM(units) AS total FROM orders GROUP BY product ORDER BY product",
        )
        .unwrap();
    assert_eq!(out.num_rows(), 2);
    assert_eq!(out.cell(0, 1), &Value::Int(8));
    assert_eq!(out.cell(1, 1), &Value::Int(2));
}

/// Free text → extracted table → SQL (§III.C hybrid pipeline, steps 1+2).
#[test]
fn text_to_extraction_to_sql() {
    let gen = TableGenerator::new(slm());
    let (table, stats) = gen
        .generate_table(&[
            "Aero Widget sales increased 20% in Q1 2024.",
            "Aero Widget sales decreased 10% in Q2 2024.",
        ])
        .unwrap();
    assert_eq!(stats.records, 2);
    let mut db = Database::new();
    db.create_table("extracted", table).unwrap();
    let out = db.run_sql("SELECT AVG(change_pct) AS avg_change FROM extracted").unwrap();
    assert_eq!(out.cell(0, 0), &Value::Float(5.0));
}

/// Text chunk + relational record about the same entity are connected in
/// the graph (the cross-modal context of §I).
#[test]
fn graph_connects_modalities() {
    use unisem_docstore::DocStore;
    use unisem_relstore::{DataType, Schema, Table};

    let mut docs = DocStore::default();
    docs.add_document("news", "Acme Corp launched the Aero Widget today.", "news");
    let table = Table::from_rows(
        Schema::of(&[("product", DataType::Str), ("price", DataType::Float)]),
        vec![vec![Value::str("Aero Widget"), Value::Float(99.0)]],
    )
    .unwrap();

    let mut gb = GraphBuilder::new(slm());
    gb.add_docstore(&docs);
    gb.add_table("catalog", &table);
    let (graph, _) = gb.finish();

    let record = graph.record_node("catalog", 0).expect("record node");
    let chunk = graph.chunk_node(0).expect("chunk node");
    let path = shortest_path(&graph, record, chunk).expect("cross-modal path");
    assert!(path.len() <= 3, "record → entity → chunk, got {path:?}");
}

/// Retrieval → evidence → entropy: weak retrieval produces measurably
/// higher uncertainty than strong retrieval.
#[test]
fn retrieval_strength_drives_entropy() {
    use unisem_entropy::EntropyEstimator;
    use unisem_slm::SupportedAnswer;

    let est = EntropyEstimator::new(slm());
    let strong = est.estimate(
        "Who makes the Aero Widget?",
        &[SupportedAnswer::new("Acme Corp makes the Aero Widget", 8.0)],
    );
    let weak = est.estimate("Who makes the Aero Widget?", &[]);
    assert!(strong.discrete_semantic_entropy < weak.discrete_semantic_entropy);
    assert!(weak.n_clusters >= 2);
}
