//! Observability contract (DESIGN.md §9), checked end to end: tracing is
//! zero-cost when disabled (the ci.sh `UNISEM_TRACE=off` gate lives here),
//! explain traces are opt-in and deterministic, the memory sink captures
//! emitted blocks, batch emission is input-ordered and byte-identical to
//! sequential emission, and the closed metric registry is populated.

use std::sync::Arc;

use unisem_core::{
    EngineBuilder, EngineConfig, EntityKind, FlameGraph, Lexicon, Route, TraceSink, UnifiedEngine,
};
use unisem_relstore::{DataType, Schema, Table, Value};

fn lexicon() -> Lexicon {
    Lexicon::new().with_entries([
        ("Aero Widget", EntityKind::Product),
        ("Nova Speaker", EntityKind::Product),
        ("Acme Corp", EntityKind::Organization),
    ])
}

fn engine_with(config: EngineConfig) -> UnifiedEngine {
    let mut b = EngineBuilder::with_config(lexicon(), config);
    let sales = Table::from_rows(
        Schema::of(&[
            ("product", DataType::Str),
            ("quarter", DataType::Str),
            ("amount", DataType::Float),
        ]),
        vec![
            vec![Value::str("Aero Widget"), Value::str("Q1 2024"), Value::Float(100.0)],
            vec![Value::str("Aero Widget"), Value::str("Q2 2024"), Value::Float(150.0)],
            vec![Value::str("Nova Speaker"), Value::str("Q1 2024"), Value::Float(90.0)],
        ],
    )
    .unwrap();
    b.add_table("sales", sales).unwrap();
    b.add_document(
        "news",
        "Acme Corp launched the Aero Widget. The Aero Widget is manufactured by Acme Corp.",
        "news",
    );
    b.add_document(
        "report",
        "In Q2 2024, Aero Widget sales increased 50% to $150. Customers were pleased.",
        "report",
    );
    b.build().0
}

const QUESTIONS: [&str; 3] = [
    "What was the total sales amount of Aero Widget across all quarters?",
    "Which manufacturer makes the Aero Widget?",
    "What was the total sales of the Phantom Gizmo in Q2 2024?",
];

/// The ci.sh zero-cost gate: with `UNISEM_TRACE=off` (an explicitly off
/// sink) and `trace: false`, the hot path must never touch the sink — the
/// sink's write counter counts *every* `write_block` call, including no-ops
/// on an off sink, so even a guarded-away call would be visible here.
#[test]
fn off_sink_sees_zero_writes_and_answers_carry_no_trace() {
    let mut e = engine_with(EngineConfig::default());
    e.set_trace_sink(Arc::new(TraceSink::off()));
    for q in QUESTIONS {
        assert!(e.answer(q).trace.is_none(), "trace must be opt-in: {q}");
    }
    let batch = e.answer_batch(&QUESTIONS);
    assert_eq!(batch.len(), QUESTIONS.len());
    assert_eq!(e.trace_sink().writes(), 0, "trace-sink write on the disabled hot path");
}

#[test]
fn opt_in_trace_records_rungs_route_and_entropy() {
    let e = engine_with(EngineConfig { trace: true, ..EngineConfig::default() });

    let structured = e.answer(QUESTIONS[0]);
    let t = structured.trace.as_ref().expect("opted in");
    assert_eq!(t.route, structured.route.label());
    assert!(t.rungs.iter().any(|r| r.rung == "structured"), "{:?}", t.rungs);
    assert!(t.plan.as_deref().unwrap_or("").contains("Scan"), "synthesized plan recorded");
    assert!(t.entropy.is_some());

    let lookup = e.answer(QUESTIONS[1]);
    let t = lookup.trace.as_ref().expect("opted in");
    assert!(matches!(lookup.route, Route::Unstructured { .. }));
    assert!(t.traversal.is_some(), "retrieval route records traversal stats");
    assert!(t.events.iter().any(|ev| ev.name == "intent.parsed"));
    // Logical clock: event sequence numbers are strictly increasing.
    for pair in t.events.windows(2) {
        assert!(pair[0].seq < pair[1].seq, "{:?}", t.events);
    }

    let abstained = e.answer(QUESTIONS[2]);
    let t = abstained.trace.as_ref().expect("opted in");
    assert_eq!(t.route, "abstained");
    assert!(t.entropy.as_ref().is_some_and(|v| v.abstained));

    // Determinism: the rendered trace replays byte-for-byte.
    for q in QUESTIONS {
        let a = e.answer(q).trace.unwrap().to_jsonl();
        let b = e.answer(q).trace.unwrap().to_jsonl();
        assert_eq!(a.as_bytes(), b.as_bytes(), "{q}");
    }
}

#[test]
fn memory_sink_captures_one_block_per_query() {
    let mut e = engine_with(EngineConfig::default());
    e.set_trace_sink(Arc::new(TraceSink::memory()));
    e.answer(QUESTIONS[1]);
    assert_eq!(e.trace_sink().writes(), 1);
    let emitted = e.trace_sink().drain_memory();
    assert!(emitted.contains("Which manufacturer makes the Aero Widget?"), "{emitted}");
    for line in emitted.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "JSON-lines framing: {line}");
    }
}

/// Batch emission renders blocks inside the parallel map but writes them
/// sequentially in input order, so the sink output is byte-identical to a
/// sequential `answer` loop — cross-query interleaving is unrepresentable.
#[test]
fn batch_sink_output_is_input_ordered_and_matches_sequential() {
    let config = EngineConfig {
        parallel: unisem_core::ParallelConfig::with_threads(4),
        ..EngineConfig::default()
    };
    let mut sequential = engine_with(config);
    sequential.set_trace_sink(Arc::new(TraceSink::memory()));
    for q in QUESTIONS {
        sequential.answer(q);
    }
    let want = sequential.trace_sink().drain_memory();

    let mut batched = engine_with(config);
    batched.set_trace_sink(Arc::new(TraceSink::memory()));
    batched.answer_batch(&QUESTIONS);
    let got = batched.trace_sink().drain_memory();

    assert!(!want.is_empty());
    assert_eq!(got.as_bytes(), want.as_bytes());
    assert_eq!(batched.trace_sink().writes(), QUESTIONS.len() as u64);
}

#[test]
fn metrics_report_covers_build_and_query_pipeline() {
    let e = engine_with(EngineConfig::default());
    for q in QUESTIONS {
        e.answer(q);
    }
    let m = e.metrics_report();
    assert_eq!(m.get("query.answered"), Some(3));
    assert_eq!(m.get("ingest.tables"), Some(2), "sales + extracted");
    assert!(m.get("graph.nodes").unwrap_or(0) > 0);
    assert!(m.get("traverse.queries").unwrap_or(0) > 0);
    assert!(m.get("relstore.plans_executed").unwrap_or(0) > 0);
    assert!(m.get("entropy.estimates").unwrap_or(0) >= 3);
    // Closed registry: unknown names are unrepresentable, not zero.
    assert_eq!(m.get("not.a.metric"), None);
    let json = m.to_json();
    assert!(json.contains("\"query.answered\":3"), "{json}");
    assert!(json.contains("\"meter.slm_calls\""), "meter histograms in the snapshot: {json}");
    // Wall-clock timings live in a separate report with recorded stages.
    let timings = e.timing_report();
    assert!(timings.count("answer.total") >= Some(3));
    assert!(!json.contains("total_ns"), "no wall-clock values in the metrics snapshot");
}

/// The per-query resource meter and the closed registry are two views of
/// the same work: summed per-query meters must equal the registry's
/// counters, and each meter field records exactly one histogram
/// observation per query.
#[test]
fn meter_totals_match_registry_counters_and_histograms() {
    let e = engine_with(EngineConfig { trace: true, ..EngineConfig::default() });
    let mut nodes_popped = 0u64;
    let mut slm_samples = 0u64;
    for q in QUESTIONS {
        let a = e.answer(q);
        let meter = a.trace.as_ref().and_then(|t| t.meter).expect("traced answers carry a meter");
        assert!(meter.slm_calls >= 2, "intent parse + entropy estimate: {q}");
        nodes_popped += meter.nodes_popped;
        slm_samples += meter.slm_samples;
    }
    let m = e.metrics_report();
    assert_eq!(m.get("traverse.nodes_popped"), Some(nodes_popped));
    assert_eq!(m.get("entropy.samples"), Some(slm_samples));
    for hist in [
        "meter.pages_read",
        "meter.postings_scanned",
        "meter.nodes_popped",
        "meter.dense_compared",
        "meter.slm_calls",
        "meter.slm_samples",
        "meter.wal_bytes",
        "query.degradation_depth",
        "query.provenance_items",
    ] {
        assert_eq!(m.hist_total(hist), Some(QUESTIONS.len() as u64), "{hist}");
    }
    // Histograms are closed-registry too, and bucket layouts end in the
    // overflow bucket.
    assert_eq!(m.hist("not.a.hist"), None);
    let buckets = m.hist("meter.slm_calls").expect("registered");
    assert_eq!(buckets.last().map(|(le, _)| *le), Some(None), "overflow bucket last");
    assert!(m.hist_quantile("meter.slm_calls", 0.5).unwrap() >= 2);
}

/// Flamegraph folding is deterministic (same trace, same bytes), sorted in
/// its folded output, and conserves weights from the trace it folds.
#[test]
fn flamegraph_folding_is_sorted_and_stable() {
    let e = engine_with(EngineConfig { trace: true, ..EngineConfig::default() });
    let trace = e.answer(QUESTIONS[1]).trace.expect("opted in");
    let folded = FlameGraph::from_trace(&trace).to_folded();
    assert!(folded.lines().all(|l| l.starts_with("answer")), "{folded}");
    assert!(folded.contains("answer;entropy;sample"), "{folded}");
    assert!(folded.contains("answer;meter;slm_calls"), "{folded}");
    let mut lines: Vec<&str> = folded.lines().collect();
    let original = lines.clone();
    lines.sort_unstable();
    assert_eq!(lines, original, "folded stacks emitted in sorted order");
    // Byte-stable across re-answers of the same question.
    let again = FlameGraph::from_trace(&e.answer(QUESTIONS[1]).trace.expect("opted in"));
    assert_eq!(again.to_folded().as_bytes(), folded.as_bytes());
}
