//! Differential plan testing (DESIGN.md §11): the cost-based planner and
//! the legacy degradation ladder must produce **byte-identical** answers
//! for every workload query — text as raw bytes, routes structurally,
//! confidence bit-for-bit, degradations and entropy reports included —
//! at multiple thread counts and under a pinned fault plan. The ladder
//! is the oracle; any drift is a planner bug by definition.
//!
//! Also here: the statistics-collection determinism contract — building
//! with stats enabled (always) must stay byte-identical across thread
//! counts, for both the catalog rendering and the metrics snapshot.

use unisem_core::{EngineBuilder, EngineConfig, FaultPlan, ParallelConfig, UnifiedEngine};
use unisem_workloads::ecommerce::DocSpec;
use unisem_workloads::{
    EcommerceConfig, EcommerceWorkload, HealthcareConfig, HealthcareWorkload, QaItem,
};

struct Workload {
    name: &'static str,
    lexicon: unisem_slm::Lexicon,
    db: unisem_relstore::Database,
    semi: unisem_semistore::SemiStore,
    documents: Vec<DocSpec>,
    qa: Vec<QaItem>,
}

fn workloads() -> Vec<Workload> {
    let e = EcommerceWorkload::generate(EcommerceConfig {
        products: 6,
        quarters: 3,
        reviews_per_product: 2,
        qa_per_category: 2,
        seed: 0xD1FF,
        name_offset: 0,
    });
    let h = HealthcareWorkload::generate(HealthcareConfig {
        drugs: 4,
        patients: 6,
        trials_per_drug: 2,
        qa_per_category: 2,
        seed: 0x4EA17,
    });
    vec![
        Workload {
            name: "ecommerce",
            lexicon: e.lexicon,
            db: e.db,
            semi: e.semi,
            documents: e.documents,
            qa: e.qa,
        },
        Workload {
            name: "healthcare",
            lexicon: h.lexicon,
            db: h.db,
            semi: h.semi,
            documents: h.documents,
            qa: h.qa,
        },
    ]
}

fn build(w: &Workload, config: EngineConfig) -> UnifiedEngine {
    let mut b = EngineBuilder::with_config(w.lexicon.clone(), config);
    for name in w.db.table_names() {
        b.add_table(name, w.db.table(name).expect("listed").clone()).expect("fresh");
    }
    for coll in w.semi.collections() {
        for doc in w.semi.docs(coll) {
            b.add_json(coll, doc.clone());
        }
    }
    for d in &w.documents {
        b.add_document(d.title.clone(), d.text.clone(), d.source.clone());
    }
    b.build().0
}

/// The fault plans the differential harness pins: none, and the exact
/// plan ci.sh exports for its robustness gates. Passed programmatically
/// so the suite is hermetic even when `UNISEM_FAULTS` is set outside.
fn fault_plans() -> Vec<FaultPlan> {
    vec![
        FaultPlan::disabled(),
        FaultPlan::parse("seed:0xC1,relstore.exec@64,hetgraph.traverse@96").expect("valid spec"),
    ]
}

/// The tentpole contract: for every workload query, at 1 and 4 threads,
/// with and without the pinned fault plan, the planner's `Answer` is
/// byte-identical to the ladder's.
#[test]
fn planner_and_ladder_answers_byte_identical() {
    for w in workloads() {
        for faults in fault_plans() {
            let spec = faults.spec();
            for threads in [1usize, 4] {
                let config = EngineConfig {
                    seed: 0xABCD_1234,
                    faults,
                    parallel: ParallelConfig::with_threads(threads),
                    ..EngineConfig::default()
                };
                let planner = build(&w, EngineConfig { legacy_ladder: false, ..config });
                let ladder = build(&w, EngineConfig { legacy_ladder: true, ..config });
                for item in &w.qa {
                    let p = planner.answer(&item.question);
                    let l = ladder.answer(&item.question);
                    let ctx = format!(
                        "workload={} threads={threads} faults='{spec}' q: {}",
                        w.name, item.question
                    );
                    assert_eq!(p.text.as_bytes(), l.text.as_bytes(), "text: {ctx}");
                    assert_eq!(p.route, l.route, "route: {ctx}");
                    assert_eq!(p.confidence.to_bits(), l.confidence.to_bits(), "confidence: {ctx}");
                    assert_eq!(p.degradations, l.degradations, "degradations: {ctx}");
                    assert_eq!(p.entropy, l.entropy, "entropy: {ctx}");
                    assert_eq!(p, l, "full answer: {ctx}");
                }
            }
        }
    }
}

/// The batch path goes through the same dispatcher; spot-check it against
/// the ladder's batch output so parallel answering can't diverge either.
#[test]
fn planner_and_ladder_batches_match() {
    for w in workloads() {
        let config = EngineConfig {
            seed: 0xABCD_1234,
            parallel: ParallelConfig::with_threads(4),
            ..EngineConfig::default()
        };
        let planner = build(&w, EngineConfig { legacy_ladder: false, ..config });
        let ladder = build(&w, EngineConfig { legacy_ladder: true, ..config });
        let questions: Vec<&str> = w.qa.iter().map(|i| i.question.as_str()).collect();
        assert_eq!(
            planner.answer_batch(&questions),
            ladder.answer_batch(&questions),
            "workload={}",
            w.name
        );
    }
}

/// Statistics collection must not perturb determinism: builds at 1, 2,
/// 4, and 8 threads produce byte-identical statistics catalogs and
/// byte-identical build-metrics snapshots.
#[test]
fn stats_catalog_byte_identical_across_build_threads() {
    for w in workloads() {
        let build_at = |threads: usize| {
            build(
                &w,
                EngineConfig {
                    seed: 0xABCD_1234,
                    faults: FaultPlan::disabled(),
                    parallel: ParallelConfig::with_threads(threads),
                    ..EngineConfig::default()
                },
            )
        };
        let reference = build_at(1);
        let ref_stats = reference.stats().render();
        let ref_metrics = reference.metrics_report().to_json();
        assert!(ref_stats.contains("table "), "catalog has tables: {ref_stats}");
        for threads in [2usize, 4, 8] {
            let e = build_at(threads);
            assert_eq!(
                e.stats().render().as_bytes(),
                ref_stats.as_bytes(),
                "workload={} threads={threads} stats catalog",
                w.name
            );
            assert_eq!(
                e.metrics_report().to_json().as_bytes(),
                ref_metrics.as_bytes(),
                "workload={} threads={threads} build metrics",
                w.name
            );
        }
    }
}

/// `Answer::trace` in planner mode carries the optimized physical plan
/// with per-node estimated vs actual costs (the ISSUE's acceptance
/// criterion for explain output).
#[test]
fn planner_trace_shows_estimated_and_actual_costs() {
    for w in workloads() {
        let e = build(
            &w,
            EngineConfig {
                seed: 0xABCD_1234,
                trace: true,
                faults: FaultPlan::disabled(),
                ..EngineConfig::default()
            },
        );
        let mut saw_structured_plan = false;
        for item in &w.qa {
            let a = e.answer(&item.question);
            let t = a.trace.as_ref().expect("trace opted in");
            let plan = t.plan.as_deref().unwrap_or_default();
            assert!(
                plan.contains("EntropyGate"),
                "workload={} plan missing root gate: {plan}",
                w.name
            );
            assert!(
                plan.contains("[est rows~"),
                "workload={} plan missing estimates: {plan}",
                w.name
            );
            assert!(plan.contains("| actual:"), "workload={} plan missing actuals: {plan}", w.name);
            if plan.contains("Scan:") {
                saw_structured_plan = true;
            }
        }
        assert!(
            saw_structured_plan,
            "workload={}: no query exercised an embedded relational plan",
            w.name
        );
    }
}
