//! Property suite for the `UNISEM_FAULTS` spec grammar (detkit prop
//! harness): every plan the engine can carry must survive a
//! parse → render → parse round trip — including multi-site specs,
//! `@p` probabilities, pinned seeds, and seed-derived scenarios — and
//! malformed specs must be rejected, never mis-parsed.

use detkit::prop::{self, one_of, string_of, u64s, u8s, vec_of, zip, Gen};
use detkit::{prop_assert, prop_assert_eq, prop_check};
use faultkit::{FaultPlan, Site};

/// Keys a firing-equivalence check probes (covers empty, short, long,
/// and structured keys like the engine's `table:row` style).
const PROBE_KEYS: [&str; 5] = ["", "k", "sales", "page:17", "a-much-longer-key/with/segments"];

/// True when the two plans make identical firing decisions at every
/// site for every probe key — behavioral equality, which is what the
/// round-trip must preserve (plans also compare structurally below
/// where the grammar guarantees it).
fn fires_identically(a: &FaultPlan, b: &FaultPlan) -> bool {
    Site::ALL.into_iter().all(|s| PROBE_KEYS.iter().all(|k| a.fires(s, k) == b.fires(s, k)))
}

/// An arbitrary registered site.
fn sites() -> Gen<Site> {
    one_of(Site::ALL.into_iter().map(prop::just).collect())
}

/// An arbitrary armed plan: 1..=4 `(site, prob)` arms (later arms win on
/// duplicate sites, matching `with_site`) plus an optional pinned seed.
fn armed_plans() -> Gen<FaultPlan> {
    let arms = vec_of(&zip(&sites(), &u8s(1, 255)), 1, 4);
    zip(&arms, &u64s(0, u64::MAX)).map(|(arms, seed)| {
        let mut plan = FaultPlan::unset().with_seed(*seed);
        for (site, prob) in arms {
            plan = plan.with_site(*site, *prob);
        }
        plan
    })
}

/// Any plan the engine can carry: armed, disabled, unset, seed-derived.
fn any_plans() -> Gen<FaultPlan> {
    one_of(vec![
        armed_plans(),
        prop::just(FaultPlan::disabled()),
        prop::just(FaultPlan::unset()),
        u64s(0, u64::MAX).map(|&s| FaultPlan::from_seed(s)),
    ])
}

prop_check!(armed_plans_round_trip_structurally, armed_plans(), |plan| {
    let spec = plan.spec();
    let reparsed =
        FaultPlan::parse(&spec).map_err(|e| format!("spec {spec:?} failed to reparse: {e}"))?;
    // Explicit-site specs carry the full probability table, so the
    // round trip is exact, not just behavioral.
    prop_assert_eq!(plan, &reparsed, "spec {:?} reparsed to a different plan", spec);
    Ok(())
});

prop_check!(render_parse_render_is_identity, any_plans(), |plan| {
    let first = plan.spec();
    let reparsed =
        FaultPlan::parse(&first).map_err(|e| format!("spec {first:?} failed to reparse: {e}"))?;
    prop_assert_eq!(first, reparsed.spec());
    prop_assert!(
        fires_identically(plan, &reparsed),
        "spec {:?}: reparsed plan fires differently",
        first
    );
    Ok(())
});

prop_check!(seed_derived_plans_round_trip, u64s(0, u64::MAX), |&seed| {
    let plan = FaultPlan::from_seed(seed);
    prop_assert_eq!(plan, FaultPlan::from_seed(seed), "from_seed must be deterministic");
    let armed = plan.armed_sites();
    prop_assert!((1..=2).contains(&armed.len()), "seed {} armed {} sites", seed, armed.len());
    // A seed-derived plan serializes site-by-site (plus the pinned
    // seed), so its spec reparses to identical firing behavior even
    // though `seed:<n>` alone would re-derive the table.
    let reparsed = FaultPlan::parse(&plan.spec())
        .map_err(|e| format!("spec {:?} failed to reparse: {e}", plan.spec()))?;
    prop_assert!(fires_identically(&plan, &reparsed), "seed {}: firing diverged", seed);
    Ok(())
});

prop_check!(parse_is_whitespace_insensitive, zip(&armed_plans(), &u8s(0, 3)), |(plan, pad)| {
    let spec = plan.spec();
    let padding = " ".repeat(*pad as usize);
    let padded: String = spec
        .split(',')
        .map(|part| format!("{padding}{part}{padding}"))
        .collect::<Vec<_>>()
        .join(",");
    let reparsed = FaultPlan::parse(&padded)
        .map_err(|e| format!("padded spec {padded:?} failed to parse: {e}"))?;
    prop_assert_eq!(plan, &reparsed, "padding changed the parse of {:?}", padded);
    Ok(())
});

prop_check!(
    junk_site_names_are_rejected,
    // No registered site name, `off`, or `seed:` prefix can be built
    // from this pool, so every non-empty draw must be rejected.
    string_of("zqjk7", 1, 16),
    |junk| {
        prop_assert!(FaultPlan::parse(junk).is_err(), "junk spec {:?} parsed successfully", junk);
        Ok(())
    }
);

prop_check!(bad_probabilities_are_rejected, zip(&sites(), &u64s(256, u64::MAX)), |(site, prob)| {
    let spec = format!("{}@{}", site.name(), prob);
    prop_assert!(FaultPlan::parse(&spec).is_err(), "out-of-range {:?} parsed", spec);
    Ok(())
});
