//! # faultkit
//!
//! Deterministic, seed-driven fault injection for the unisem engine
//! (DESIGN.md §8). The engine's "resource-constrained, messy sources"
//! setting (paper §I, §III) demands that every component failure be
//! *replayable*: a fault scenario is a pure value — a [`FaultPlan`] — and
//! whether a given call fails is a pure function of the plan, the
//! [`Site`], and a caller-supplied key. No clocks, no counters, no global
//! mutable state: the same plan produces bit-identical failures at any
//! thread count, which is what lets the fault matrix ride on top of the
//! workspace's determinism-under-parallelism contract (DESIGN.md §6).
//!
//! ## The site registry
//!
//! Injection points live at the engine's substrate boundaries and are
//! enumerated by [`Site`]. The registry is closed (a fixed array) so a
//! plan stays `Copy` and a seed enumerates scenarios over a known space:
//!
//! | site                | boundary                                      |
//! |---------------------|-----------------------------------------------|
//! | `semistore.parse`   | JSON/XML document parsing at ingestion        |
//! | `semistore.flatten` | collection → relational table flattening      |
//! | `relstore.exec`     | logical-plan execution (structured route)     |
//! | `extract.tablegen`  | relational table generation over documents    |
//! | `hetgraph.traverse` | topology retrieval's bounded graph traversal  |
//! | `slm.generate`      | answer sampling for semantic-entropy scoring  |
//! | `store.page_write`  | persistent page write (torn-page simulation)  |
//! | `store.flush`       | durable flush / fsync (failed-flush simulation) |
//! | `wal.append`        | WAL record append (torn-record simulation)    |
//! | `wal.flush`         | WAL durable flush (lost buffered records)     |
//! | `wal.checkpoint`    | checkpoint protocol (snapshot fold + truncate) |
//!
//! ## Activation
//!
//! Programmatic: `EngineConfig::faults = FaultPlan::single(site)` (or any
//! other constructor). Ambient: the `UNISEM_FAULTS` environment variable,
//! consulted when the config plan is [`FaultPlan::unset`]. Spec grammar,
//! comma-separated:
//!
//! - `off` — explicitly disable (wins over any other component),
//! - `seed:<n>` — derive a scenario from a [`detkit::Rng`] seed
//!   (decimal or `0x…` hex),
//! - `<site>` — arm a site at probability 1,
//! - `<site>@<p>` — arm a site at probability `p`/255.
//!
//! E.g. `UNISEM_FAULTS=relstore.exec,slm.generate@128` or
//! `UNISEM_FAULTS=seed:0xF417`.

use std::fmt;

use detkit::rng::splitmix64;
use detkit::Rng;

/// Number of registered fault sites. The registry is closed so that a
/// [`FaultPlan`] can stay `Copy` (a fixed probability table).
pub const NUM_SITES: usize = 11;

/// A registered fault-injection site: one substrate boundary of the
/// unified engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Site {
    /// JSON/XML document parsing at ingestion (`semistore.parse`).
    SemiParse,
    /// Collection flattening into a relational table (`semistore.flatten`).
    SemiFlatten,
    /// Logical-plan execution on the structured route (`relstore.exec`).
    RelExec,
    /// Relational table generation over documents (`extract.tablegen`).
    ExtractTablegen,
    /// Topology retrieval's graph traversal (`hetgraph.traverse`).
    GraphTraverse,
    /// Answer sampling for entropy estimation (`slm.generate`).
    SlmGenerate,
    /// Persistent page write in the storage layer — fires as a torn page:
    /// only a prefix of the page reaches the file (`store.page_write`).
    StorePageWrite,
    /// Durable flush (fsync) in the storage layer — fires as a failed
    /// flush: buffered writes never become durable (`store.flush`).
    StoreFlush,
    /// Write-ahead-log record append — fires as a torn record: only a
    /// prefix of the framed record reaches the segment file
    /// (`wal.append`).
    WalAppend,
    /// Write-ahead-log durable flush — fires as a lost buffer: records
    /// appended since the last successful flush never become durable
    /// (`wal.flush`).
    WalFlush,
    /// The checkpoint protocol — fires between its stages (snapshot fold,
    /// WAL truncation), leaving a stale-but-consistent WAL behind
    /// (`wal.checkpoint`).
    WalCheckpoint,
}

impl Site {
    /// Every registered site, in registry order.
    pub const ALL: [Site; NUM_SITES] = [
        Site::SemiParse,
        Site::SemiFlatten,
        Site::RelExec,
        Site::ExtractTablegen,
        Site::GraphTraverse,
        Site::SlmGenerate,
        Site::StorePageWrite,
        Site::StoreFlush,
        Site::WalAppend,
        Site::WalFlush,
        Site::WalCheckpoint,
    ];

    /// Stable registry index.
    pub fn index(self) -> usize {
        match self {
            Site::SemiParse => 0,
            Site::SemiFlatten => 1,
            Site::RelExec => 2,
            Site::ExtractTablegen => 3,
            Site::GraphTraverse => 4,
            Site::SlmGenerate => 5,
            Site::StorePageWrite => 6,
            Site::StoreFlush => 7,
            Site::WalAppend => 8,
            Site::WalFlush => 9,
            Site::WalCheckpoint => 10,
        }
    }

    /// Stable dotted name (used in specs, reports, and degradation
    /// traces). Site names are drawn from the shared component-label
    /// registry in [`tracekit::component`], so a fault report, a
    /// degradation record, and a metric about the same boundary always
    /// agree on its name.
    pub fn name(self) -> &'static str {
        match self {
            Site::SemiParse => tracekit::component::SEMI_PARSE,
            Site::SemiFlatten => tracekit::component::SEMI_FLATTEN,
            Site::RelExec => tracekit::component::REL_EXEC,
            Site::ExtractTablegen => tracekit::component::EXTRACT_TABLEGEN,
            Site::GraphTraverse => tracekit::component::GRAPH_TRAVERSE,
            Site::SlmGenerate => tracekit::component::SLM_GENERATE,
            Site::StorePageWrite => tracekit::component::STORE_PAGE_WRITE,
            Site::StoreFlush => tracekit::component::STORE_FLUSH,
            Site::WalAppend => tracekit::component::WAL_APPEND,
            Site::WalFlush => tracekit::component::WAL_FLUSH,
            Site::WalCheckpoint => tracekit::component::WAL_CHECKPOINT,
        }
    }

    /// Looks a site up by its dotted name.
    pub fn from_name(name: &str) -> Option<Site> {
        Site::ALL.into_iter().find(|s| s.name() == name)
    }
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How the plan was established — distinguishes "nothing configured" (the
/// ambient `UNISEM_FAULTS` may apply) from "explicitly disabled" (it may
/// not; tests that must run fault-free use this).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Default: no plan configured; ambient activation allowed.
    Unset,
    /// Explicitly disabled: never fires, ambient activation ignored.
    Disabled,
    /// Armed: the probability table is live.
    Armed,
}

/// A deterministic fault scenario: which sites fail, and with what
/// per-call probability.
///
/// `Copy` by design — the plan travels inside `EngineConfig` and is
/// consulted from worker threads without synchronization. Whether a call
/// fires is `fires(site, key)`: a pure hash of `(seed, site, key)`, so a
/// scenario replays bit-identically at any thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    /// Per-site firing probability in 1/255 steps; 255 = always.
    prob: [u8; NUM_SITES],
    mode: Mode,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::unset()
    }
}

/// Error raised (or simulated) at an armed injection site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// The site that fired.
    pub site: Site,
    /// The call key the decision hashed.
    pub key: String,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected fault at {} (key: {})", self.site, self.key)
    }
}

impl std::error::Error for InjectedFault {}

/// A malformed fault-spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError(pub String);

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault spec: {}", self.0)
    }
}

impl std::error::Error for FaultSpecError {}

impl FaultPlan {
    /// No plan configured. Ambient activation (`UNISEM_FAULTS`) may still
    /// supply one — see [`FaultPlan::resolve`].
    pub const fn unset() -> Self {
        Self { seed: 0, prob: [0; NUM_SITES], mode: Mode::Unset }
    }

    /// Explicitly disabled: never fires and suppresses ambient activation.
    pub const fn disabled() -> Self {
        Self { seed: 0, prob: [0; NUM_SITES], mode: Mode::Disabled }
    }

    /// Arms a single site at probability 1 — the unit of the single-fault
    /// matrix.
    pub fn single(site: Site) -> Self {
        Self::unset().with_site(site, 255)
    }

    /// Arms `site` at probability `prob`/255 (255 = every call).
    pub fn with_site(mut self, site: Site, prob: u8) -> Self {
        self.prob[site.index()] = prob;
        self.mode = Mode::Armed;
        self
    }

    /// Derives a scenario from a seed and the site registry: one or two
    /// sites, each armed at probability 1 or ~1/2. Same seed, same plan —
    /// the scenario space is enumerable by iterating seeds.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = Rng::new(seed);
        let k = rng.gen_range(1..=2usize);
        let mut plan = Self::unset();
        plan.seed = seed;
        plan.mode = Mode::Armed;
        for idx in rng.sample_indices(NUM_SITES, k) {
            plan.prob[idx] = if rng.gen_bool(0.5) { 255 } else { 128 };
        }
        plan
    }

    /// Re-seeds the per-call decision hash (irrelevant for sites armed at
    /// probability 1).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// True when this plan can never fire (unset or disabled or all-zero).
    pub fn is_off(&self) -> bool {
        self.mode != Mode::Armed || self.prob.iter().all(|&p| p == 0)
    }

    /// True when no plan was configured (ambient activation allowed).
    pub fn is_unset(&self) -> bool {
        self.mode == Mode::Unset
    }

    /// The sites this plan can fire at, registry order.
    pub fn armed_sites(&self) -> Vec<Site> {
        if self.mode != Mode::Armed {
            return Vec::new();
        }
        Site::ALL.into_iter().filter(|s| self.prob[s.index()] > 0).collect()
    }

    /// Whether the site fires for this call. Pure in `(plan, site, key)`:
    /// no state is consumed, so the decision is identical whenever and
    /// wherever (any thread) the same call is made.
    pub fn fires(&self, site: Site, key: &str) -> bool {
        if self.mode != Mode::Armed {
            return false;
        }
        let p = self.prob[site.index()];
        if p == 0 {
            return false;
        }
        if p == 255 {
            return true;
        }
        // FNV-1a over the key, salted by seed and site, finalized through
        // SplitMix64 for avalanche.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.seed ^ ((site.index() as u64) << 56);
        for b in key.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let x = splitmix64(&mut h);
        ((x >> 56) as u8) < p
    }

    /// [`Self::fires`] as a `Result`, for `?`-style hooks.
    pub fn check(&self, site: Site, key: &str) -> Result<(), InjectedFault> {
        if self.fires(site, key) {
            Err(InjectedFault { site, key: key.to_string() })
        } else {
            Ok(())
        }
    }

    /// Parses a spec string (see crate docs for the grammar).
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultSpecError> {
        let spec = spec.trim();
        if spec.is_empty() {
            return Ok(FaultPlan::unset());
        }
        // A bare `seed:<n>` derives its armed sites from the seed; a seed
        // accompanied by explicit site parts only pins the replay seed, so
        // `spec()` output reparses to the exact same plan.
        let has_sites = spec
            .split(',')
            .map(str::trim)
            .any(|p| !p.is_empty() && p != "off" && !p.starts_with("seed:"));
        let mut plan = FaultPlan::unset();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            if part == "off" {
                return Ok(FaultPlan::disabled());
            }
            if let Some(num) = part.strip_prefix("seed:") {
                let seed = parse_u64(num.trim())
                    .ok_or_else(|| FaultSpecError(format!("bad seed: {num}")))?;
                plan.seed = seed;
                plan.mode = Mode::Armed;
                if !has_sites {
                    let derived = FaultPlan::from_seed(seed);
                    for i in 0..NUM_SITES {
                        plan.prob[i] = plan.prob[i].max(derived.prob[i]);
                    }
                }
                continue;
            }
            let (name, prob) = match part.split_once('@') {
                Some((n, p)) => {
                    let p: u8 = p
                        .trim()
                        .parse()
                        .map_err(|_| FaultSpecError(format!("bad probability: {part}")))?;
                    (n.trim(), p)
                }
                None => (part, 255),
            };
            let site = Site::from_name(name)
                .ok_or_else(|| FaultSpecError(format!("unknown site: {name}")))?;
            plan = plan.with_site(site, prob);
        }
        Ok(plan)
    }

    /// The plan as a spec string round-trippable through [`Self::parse`]
    /// (seed-derived plans serialize site-by-site).
    pub fn spec(&self) -> String {
        match self.mode {
            Mode::Unset => String::new(),
            Mode::Disabled => "off".to_string(),
            Mode::Armed => {
                let mut parts: Vec<String> = Vec::new();
                if self.seed != 0 {
                    parts.push(format!("seed:{:#x}", self.seed));
                }
                for s in Site::ALL {
                    match self.prob[s.index()] {
                        0 => {}
                        255 => parts.push(s.name().to_string()),
                        p => parts.push(format!("{}@{p}", s.name())),
                    }
                }
                parts.join(",")
            }
        }
    }

    /// The ambient plan from `UNISEM_FAULTS`, if set and well-formed
    /// (malformed specs are ignored rather than crashing the host).
    pub fn from_env() -> Option<FaultPlan> {
        let spec = std::env::var("UNISEM_FAULTS").ok()?;
        FaultPlan::parse(&spec).ok().filter(|p| !p.is_unset())
    }

    /// The effective plan: this one if configured (armed or explicitly
    /// disabled), otherwise the ambient `UNISEM_FAULTS` plan, otherwise
    /// unset.
    pub fn resolve(self) -> FaultPlan {
        if self.is_unset() {
            FaultPlan::from_env().unwrap_or(self)
        } else {
            self
        }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.mode {
            Mode::Unset => f.write_str("unset"),
            Mode::Disabled => f.write_str("off"),
            Mode::Armed => f.write_str(&self.spec()),
        }
    }
}

/// Parses decimal or `0x…` hexadecimal.
fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_consistent() {
        for (i, s) in Site::ALL.into_iter().enumerate() {
            assert_eq!(s.index(), i);
            assert_eq!(Site::from_name(s.name()), Some(s));
            assert!(
                tracekit::component::is_registered(s.name()),
                "site name must be a registered component label: {s}"
            );
        }
        assert_eq!(Site::from_name("nope"), None);
        assert_eq!(Site::ALL.len(), NUM_SITES);
    }

    #[test]
    fn unset_and_disabled_never_fire() {
        for s in Site::ALL {
            assert!(!FaultPlan::unset().fires(s, "k"));
            assert!(!FaultPlan::disabled().fires(s, "k"));
        }
        assert!(FaultPlan::unset().is_off());
        assert!(FaultPlan::disabled().is_off());
        assert!(FaultPlan::unset().is_unset());
        assert!(!FaultPlan::disabled().is_unset());
    }

    #[test]
    fn single_fires_only_its_site() {
        let plan = FaultPlan::single(Site::RelExec);
        assert!(plan.fires(Site::RelExec, "sales"));
        assert!(plan.check(Site::RelExec, "sales").is_err());
        for s in Site::ALL {
            if s != Site::RelExec {
                assert!(!plan.fires(s, "sales"), "{s}");
            }
        }
        assert_eq!(plan.armed_sites(), vec![Site::RelExec]);
    }

    #[test]
    fn probabilistic_fires_are_pure_and_varied() {
        let plan = FaultPlan::unset().with_seed(7).with_site(Site::SlmGenerate, 128);
        let mut fired = 0;
        for i in 0..200 {
            let key = format!("question-{i}");
            let a = plan.fires(Site::SlmGenerate, &key);
            let b = plan.fires(Site::SlmGenerate, &key);
            assert_eq!(a, b, "decision must be pure");
            fired += a as usize;
        }
        // ~50% at p=128; generous bounds.
        assert!((40..=160).contains(&fired), "fired {fired}/200");
        // Different seed, different pattern.
        let other = FaultPlan::unset().with_seed(8).with_site(Site::SlmGenerate, 128);
        let differs = (0..200).any(|i| {
            let key = format!("question-{i}");
            plan.fires(Site::SlmGenerate, &key) != other.fires(Site::SlmGenerate, &key)
        });
        assert!(differs);
    }

    #[test]
    fn from_seed_is_deterministic_and_armed() {
        for seed in [0u64, 1, 0xF417, u64::MAX] {
            let a = FaultPlan::from_seed(seed);
            let b = FaultPlan::from_seed(seed);
            assert_eq!(a, b);
            let armed = a.armed_sites();
            assert!((1..=2).contains(&armed.len()), "seed {seed}: {armed:?}");
        }
        assert_ne!(FaultPlan::from_seed(1).armed_sites(), FaultPlan::from_seed(4).armed_sites());
    }

    #[test]
    fn spec_round_trips() {
        let cases = [
            FaultPlan::disabled(),
            FaultPlan::single(Site::SemiFlatten),
            FaultPlan::unset().with_site(Site::RelExec, 40).with_site(Site::SlmGenerate, 255),
            FaultPlan::from_seed(0xBEEF),
        ];
        for plan in cases {
            let again = FaultPlan::parse(&plan.spec()).unwrap();
            // Armed probabilities and firing behavior must survive (the
            // seed component re-derives the same table).
            for s in Site::ALL {
                for key in ["a", "b", "longer-key"] {
                    assert_eq!(plan.fires(s, key), again.fires(s, key), "{plan} vs {again}");
                }
            }
        }
    }

    #[test]
    fn parse_grammar() {
        assert!(FaultPlan::parse("").unwrap().is_unset());
        assert_eq!(FaultPlan::parse("off").unwrap(), FaultPlan::disabled());
        let p = FaultPlan::parse("relstore.exec, slm.generate@9").unwrap();
        assert!(p.fires(Site::RelExec, "any"));
        assert_eq!(p.armed_sites(), vec![Site::RelExec, Site::SlmGenerate]);
        let s = FaultPlan::parse("seed:0xF417").unwrap();
        assert_eq!(s.armed_sites(), FaultPlan::from_seed(0xF417).armed_sites());
        assert!(FaultPlan::parse("bogus.site").is_err());
        assert!(FaultPlan::parse("relstore.exec@bad").is_err());
        assert!(FaultPlan::parse("seed:zzz").is_err());
    }

    #[test]
    fn resolve_prefers_explicit_configuration() {
        // Explicitly configured plans ignore the environment entirely;
        // only `unset` consults it (exercised end-to-end by ci.sh's
        // UNISEM_FAULTS test-suite run, not here — env mutation in-process
        // would race parallel tests).
        let armed = FaultPlan::single(Site::RelExec);
        assert_eq!(armed.resolve(), armed);
        let off = FaultPlan::disabled();
        assert_eq!(off.resolve(), off);
    }

    #[test]
    fn injected_fault_display() {
        let e = InjectedFault { site: Site::GraphTraverse, key: "q".into() };
        assert!(e.to_string().contains("hetgraph.traverse"));
        assert!(FaultSpecError("x".into()).to_string().contains("x"));
    }
}
