//! Property-based tests: entropy bounds and clustering laws.

use proptest::prelude::*;
use unisem_entropy::{
    auroc, cluster_answers, discrete_semantic_entropy, lexical_variance, semantic_entropy_rao,
    ClusterConfig,
};

fn arb_answers() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(
        prop_oneof![
            Just("sales rose twenty percent".to_string()),
            Just("The answer is sales rose twenty percent.".to_string()),
            Just("revenue declined slightly".to_string()),
            Just("it cannot be determined".to_string()),
            "[a-z]{2,6}( [a-z]{2,6}){0,3}",
        ],
        1..12,
    )
}

proptest! {
    /// Clusters partition the answers: every index appears exactly once.
    #[test]
    fn clusters_partition(answers in arb_answers()) {
        let refs: Vec<&str> = answers.iter().map(String::as_str).collect();
        let clusters = cluster_answers(&refs, &ClusterConfig::default());
        let mut seen = vec![false; answers.len()];
        for c in &clusters {
            for &i in &c.member_indices {
                prop_assert!(!seen[i], "index {} in two clusters", i);
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&x| x));
    }

    /// Identical answers always form a single cluster.
    #[test]
    fn identical_answers_one_cluster(s in "[a-z]{2,8}( [a-z]{2,8}){0,3}", n in 1usize..8) {
        let answers: Vec<String> = std::iter::repeat(s).take(n).collect();
        let refs: Vec<&str> = answers.iter().map(String::as_str).collect();
        let clusters = cluster_answers(&refs, &ClusterConfig::default());
        prop_assert_eq!(clusters.len(), 1);
    }

    /// Discrete semantic entropy lies in [0, ln n].
    #[test]
    fn entropy_bounds(answers in arb_answers()) {
        let refs: Vec<&str> = answers.iter().map(String::as_str).collect();
        let clusters = cluster_answers(&refs, &ClusterConfig::default());
        let e = discrete_semantic_entropy(&clusters, answers.len());
        prop_assert!(e >= -1e-12);
        prop_assert!(e <= (answers.len() as f64).ln() + 1e-9);
    }

    /// Rao entropy with uniform log-probs equals discrete entropy.
    #[test]
    fn rao_equals_discrete_under_uniform(answers in arb_answers()) {
        let refs: Vec<&str> = answers.iter().map(String::as_str).collect();
        let clusters = cluster_answers(&refs, &ClusterConfig::default());
        let lp = (1.0 / answers.len() as f64).ln();
        let log_probs = vec![lp; answers.len()];
        let rao = semantic_entropy_rao(&clusters, &log_probs);
        let disc = discrete_semantic_entropy(&clusters, answers.len());
        prop_assert!((rao - disc).abs() < 1e-9, "{rao} vs {disc}");
    }

    /// Lexical variance lies in [0, 1].
    #[test]
    fn lexical_variance_bounds(answers in arb_answers()) {
        let refs: Vec<&str> = answers.iter().map(String::as_str).collect();
        let v = lexical_variance(&refs);
        prop_assert!((-1e-9..=1.0 + 1e-9).contains(&v));
    }

    /// AUROC is flip-symmetric: negating the scores mirrors it around 0.5.
    #[test]
    fn auroc_symmetry(
        scores in proptest::collection::vec(0.0f64..1.0, 2..20),
        flips in proptest::collection::vec(any::<bool>(), 2..20),
    ) {
        let n = scores.len().min(flips.len());
        let scores = &scores[..n];
        let labels = &flips[..n];
        let a = auroc(scores, labels);
        let negated: Vec<f64> = scores.iter().map(|s| -s).collect();
        let b = auroc(&negated, labels);
        prop_assert!((a + b - 1.0).abs() < 1e-9, "{a} + {b} != 1");
    }
}
