//! Property-based tests: entropy bounds and clustering laws (detkit
//! harness).

use detkit::prop::{bools, f64s, just, one_of, usizes, vec_of, words_of, zip, Gen};
use detkit::{prop_assert, prop_assert_eq, prop_check};
use unisem_entropy::{
    auroc, cluster_answers, discrete_semantic_entropy, lexical_variance, semantic_entropy_rao,
    ClusterConfig,
};

fn arb_answers() -> Gen<Vec<String>> {
    vec_of(
        &one_of(vec![
            just("sales rose twenty percent".to_string()),
            just("The answer is sales rose twenty percent.".to_string()),
            just("revenue declined slightly".to_string()),
            just("it cannot be determined".to_string()),
            words_of("abcdefghijklmnopqrstuvwxyz", 2, 6, 1, 4),
        ]),
        1,
        11,
    )
}

// Clusters partition the answers: every index appears exactly once.
prop_check!(clusters_partition, arb_answers(), |answers| {
    let refs: Vec<&str> = answers.iter().map(String::as_str).collect();
    let clusters = cluster_answers(&refs, &ClusterConfig::default());
    let mut seen = vec![false; answers.len()];
    for c in &clusters {
        for &i in &c.member_indices {
            prop_assert!(!seen[i], "index {} in two clusters", i);
            seen[i] = true;
        }
    }
    prop_assert!(seen.iter().all(|&x| x));
    Ok(())
});

// Identical answers always form a single cluster.
prop_check!(
    identical_answers_one_cluster,
    zip(&words_of("abcdefgh", 2, 8, 1, 4), &usizes(1, 7)),
    |t| {
        let (s, n) = t;
        let answers: Vec<String> = std::iter::repeat(s.clone()).take(*n).collect();
        let refs: Vec<&str> = answers.iter().map(String::as_str).collect();
        let clusters = cluster_answers(&refs, &ClusterConfig::default());
        prop_assert_eq!(clusters.len(), 1);
        Ok(())
    }
);

// Discrete semantic entropy lies in [0, ln n].
prop_check!(entropy_bounds, arb_answers(), |answers| {
    let refs: Vec<&str> = answers.iter().map(String::as_str).collect();
    let clusters = cluster_answers(&refs, &ClusterConfig::default());
    let e = discrete_semantic_entropy(&clusters, answers.len());
    prop_assert!(e >= -1e-12);
    prop_assert!(e <= (answers.len() as f64).ln() + 1e-9);
    Ok(())
});

// Rao entropy with uniform log-probs equals discrete entropy.
prop_check!(rao_equals_discrete_under_uniform, arb_answers(), |answers| {
    let refs: Vec<&str> = answers.iter().map(String::as_str).collect();
    let clusters = cluster_answers(&refs, &ClusterConfig::default());
    let lp = (1.0 / answers.len() as f64).ln();
    let log_probs = vec![lp; answers.len()];
    let rao = semantic_entropy_rao(&clusters, &log_probs);
    let disc = discrete_semantic_entropy(&clusters, answers.len());
    prop_assert!((rao - disc).abs() < 1e-9, "{rao} vs {disc}");
    Ok(())
});

// Lexical variance lies in [0, 1].
prop_check!(lexical_variance_bounds, arb_answers(), |answers| {
    let refs: Vec<&str> = answers.iter().map(String::as_str).collect();
    let v = lexical_variance(&refs);
    prop_assert!((-1e-9..=1.0 + 1e-9).contains(&v));
    Ok(())
});

// AUROC is flip-symmetric: negating the scores mirrors it around 0.5.
prop_check!(auroc_symmetry, zip(&vec_of(&f64s(0.0, 1.0), 2, 19), &vec_of(&bools(), 2, 19)), |t| {
    let (scores, flips) = t;
    let n = scores.len().min(flips.len());
    let scores = &scores[..n];
    let labels = &flips[..n];
    let a = auroc(scores, labels);
    let negated: Vec<f64> = scores.iter().map(|s| -s).collect();
    let b = auroc(&negated, labels);
    prop_assert!((a + b - 1.0).abs() < 1e-9, "{a} + {b} != 1");
    Ok(())
});
