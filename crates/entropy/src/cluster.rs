//! Semantic clustering of sampled answers.
//!
//! The equivalence oracle approximates bidirectional entailment (the check
//! Kuhn et al. run with an NLI model) with three deterministic signals:
//!
//! 1. **Content-word agreement** — stopwords and answer-template filler are
//!    stripped, remaining words stemmed; high Jaccard overlap or mutual
//!    containment ⇒ same meaning.
//! 2. **Number agreement** — answers asserting different numbers are never
//!    equivalent ("rose 20%" ≠ "rose 5%"), matching the entailment
//!    behaviour that matters for factual QA.
//! 3. **Polarity agreement** — a negated and a non-negated answer are never
//!    equivalent ("improves outcomes" ≠ "does not improve outcomes").

use std::collections::HashSet;

use unisem_text::normalize::{is_stopword, stem};
use unisem_text::similarity::jaccard;
use unisem_text::tokenize::{tokenize, TokenKind};

/// Words added by answer templates; never semantic content.
const TEMPLATE_FILLER: &[&str] = &[
    "answer",
    "based",
    "data",
    "according",
    "records",
    "appears",
    "available",
    "evidence",
    "from",
    "seems",
    "likely",
];

/// Negation markers for the polarity check.
const NEGATIONS: &[&str] = &["not", "no", "never", "cannot", "n't", "without", "none"];

/// Clustering thresholds.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Minimum content-word Jaccard for equivalence.
    pub min_jaccard: f64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self { min_jaccard: 0.5 }
    }
}

/// The extracted semantic signature of one answer.
#[derive(Debug, Clone, PartialEq)]
pub struct Signature {
    /// Stemmed content words.
    pub content: Vec<String>,
    /// Numbers asserted by the answer (normalized text).
    pub numbers: Vec<String>,
    /// Whether the answer contains a negation marker.
    pub negated: bool,
}

/// Extracts the semantic signature of an answer.
pub fn signature(text: &str) -> Signature {
    let mut content = Vec::new();
    let mut numbers = Vec::new();
    let mut negated = false;
    for t in tokenize(text) {
        match t.kind {
            TokenKind::Number => numbers.push(t.text.replace(',', "")),
            TokenKind::Word => {
                let lower = t.lower();
                if NEGATIONS.contains(&lower.as_str()) {
                    negated = true;
                    continue;
                }
                if is_stopword(&lower) || TEMPLATE_FILLER.contains(&lower.as_str()) {
                    continue;
                }
                content.push(stem(&lower));
            }
            TokenKind::Punct => {}
        }
    }
    content.sort();
    content.dedup();
    numbers.sort();
    Signature { content, numbers, negated }
}

/// Whether two signatures are semantically equivalent.
pub fn equivalent(a: &Signature, b: &Signature, config: &ClusterConfig) -> bool {
    // Polarity mismatch is decisive.
    if a.negated != b.negated {
        return false;
    }
    // Asserted numbers must agree when both sides assert any.
    if !a.numbers.is_empty() && !b.numbers.is_empty() && a.numbers != b.numbers {
        return false;
    }
    if a.content.is_empty() && b.content.is_empty() {
        // Pure-number answers: equality decided above.
        return a.numbers == b.numbers;
    }
    // Containment: one answer elaborates the other.
    let sa: HashSet<&String> = a.content.iter().collect();
    let sb: HashSet<&String> = b.content.iter().collect();
    if !sa.is_empty() && !sb.is_empty() && (sa.is_subset(&sb) || sb.is_subset(&sa)) {
        return true;
    }
    jaccard(&a.content, &b.content) >= config.min_jaccard
}

/// One semantic cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct SemanticCluster {
    /// Indices (into the input answer slice) of the members.
    pub member_indices: Vec<usize>,
    /// Representative signature (the first member's).
    pub signature: Signature,
}

impl SemanticCluster {
    /// Cluster size.
    pub fn len(&self) -> usize {
        self.member_indices.len()
    }

    /// True when the cluster has no members (never produced by
    /// [`cluster_answers`]).
    pub fn is_empty(&self) -> bool {
        self.member_indices.is_empty()
    }
}

/// Greedy single-pass clustering: each answer joins the first cluster whose
/// representative it is equivalent to, else starts a new cluster. Clusters
/// are returned largest-first (ties by first-member order).
pub fn cluster_answers(answers: &[&str], config: &ClusterConfig) -> Vec<SemanticCluster> {
    let sigs: Vec<Signature> = answers.iter().map(|a| signature(a)).collect();
    let mut clusters: Vec<SemanticCluster> = Vec::new();
    for (i, sig) in sigs.iter().enumerate() {
        match clusters.iter_mut().find(|c| equivalent(&c.signature, sig, config)) {
            Some(c) => c.member_indices.push(i),
            None => {
                clusters.push(SemanticCluster { member_indices: vec![i], signature: sig.clone() })
            }
        }
    }
    clusters
        .sort_by(|a, b| b.len().cmp(&a.len()).then(a.member_indices[0].cmp(&b.member_indices[0])));
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ClusterConfig {
        ClusterConfig::default()
    }

    #[test]
    fn paraphrases_cluster_together() {
        let answers = vec![
            "sales rose 20%",
            "The answer is sales rose 20%.",
            "Based on the data, sales rose 20%.",
        ];
        let clusters = cluster_answers(&answers, &cfg());
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 3);
    }

    #[test]
    fn different_numbers_split() {
        let answers = vec!["sales rose 20%", "sales rose 5%"];
        let clusters = cluster_answers(&answers, &cfg());
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn negation_splits() {
        let answers = vec!["the drug improves outcomes", "the drug does not improve outcomes"];
        let clusters = cluster_answers(&answers, &cfg());
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn paper_medical_example() {
        // §III.D: "Fever, cough, fatigue" and "Symptoms include sore throat
        // and body aches" — related but listing different symptoms; with
        // shared frame words stripped they diverge. Equivalent paraphrase
        // case must merge though:
        let same = vec!["fever, cough, fatigue", "fatigue and cough and fever"];
        assert_eq!(cluster_answers(&same, &cfg()).len(), 1);
    }

    #[test]
    fn paper_legal_example_three_clusters() {
        // §III.D: divergent answers form multiple clusters.
        let answers = vec![
            "Yes, if copyrighted",
            "No, unless consent is violated",
            "It depends on jurisdiction",
        ];
        let clusters = cluster_answers(&answers, &cfg());
        assert!(clusters.len() >= 2, "got {}", clusters.len());
    }

    #[test]
    fn containment_elaboration_merges() {
        let answers = vec!["fever", "fever and severe fever symptoms"];
        // content: {fever} ⊆ {fever, sever, symptom}
        assert_eq!(cluster_answers(&answers, &cfg()).len(), 1);
    }

    #[test]
    fn largest_cluster_first() {
        let answers = vec!["alpha result", "beta outcome", "alpha result", "alpha result"];
        let clusters = cluster_answers(&answers, &cfg());
        assert_eq!(clusters[0].len(), 3);
        assert_eq!(clusters[0].member_indices, vec![0, 2, 3]);
    }

    #[test]
    fn pure_number_answers() {
        let answers = vec!["42", "42", "17"];
        let clusters = cluster_answers(&answers, &cfg());
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0].len(), 2);
    }

    #[test]
    fn empty_input() {
        let clusters = cluster_answers(&[], &cfg());
        assert!(clusters.is_empty());
    }

    #[test]
    fn signature_extraction() {
        let s = signature("The answer is: sales did not rise 20%.");
        assert!(s.negated);
        assert_eq!(s.numbers, vec!["20"]);
        assert!(s.content.contains(&stem("sales")));
        assert!(!s.content.contains(&"answer".to_string()));
    }

    #[test]
    fn template_filler_ignored() {
        let a = signature("From the available evidence: 42 units.");
        let b = signature("42 units");
        assert!(equivalent(&a, &b, &cfg()));
    }
}
