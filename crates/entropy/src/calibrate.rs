//! Calibration metrics: does an uncertainty score predict incorrectness?
//!
//! Experiment E5 follows Kuhn et al.'s protocol: compute an uncertainty
//! score per question, label each answer correct/incorrect, and measure the
//! AUROC of "score predicts the answer is wrong". Higher AUROC = the score
//! is a better reviewer-attention signal.

/// AUROC of `score` predicting the positive class (`label = true`).
///
/// Ties in score contribute 0.5, the Mann-Whitney convention. Returns 0.5
/// when either class is empty (no ranking information).
pub fn auroc(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "auroc: length mismatch");
    let pos: Vec<f64> = scores.iter().zip(labels).filter(|(_, &l)| l).map(|(&s, _)| s).collect();
    let neg: Vec<f64> = scores.iter().zip(labels).filter(|(_, &l)| !l).map(|(&s, _)| s).collect();
    if pos.is_empty() || neg.is_empty() {
        return 0.5;
    }
    let mut wins = 0.0;
    for &p in &pos {
        for &n in &neg {
            if p > n {
                wins += 1.0;
            } else if (p - n).abs() < 1e-12 {
                wins += 0.5;
            }
        }
    }
    wins / (pos.len() * neg.len()) as f64
}

/// Rejection-accuracy curve: sort questions by ascending uncertainty, and
/// report accuracy over the kept fraction at each `fractions` point.
///
/// A well-calibrated uncertainty yields accuracy that *rises* as more
/// uncertain answers are rejected.
pub fn rejection_accuracy_curve(
    scores: &[f64],
    correct: &[bool],
    fractions: &[f64],
) -> Vec<(f64, f64)> {
    assert_eq!(scores.len(), correct.len());
    if scores.is_empty() {
        return fractions.iter().map(|&f| (f, 0.0)).collect();
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[a].partial_cmp(&scores[b]).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
    });
    fractions
        .iter()
        .map(|&f| {
            let keep = ((scores.len() as f64 * f).round() as usize).clamp(1, scores.len());
            let acc = order[..keep].iter().filter(|&&i| correct[i]).count() as f64 / keep as f64;
            (f, acc)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation() {
        let scores = [0.9, 0.8, 0.1, 0.2];
        let labels = [true, true, false, false];
        assert_eq!(auroc(&scores, &labels), 1.0);
    }

    #[test]
    fn inverted_separation() {
        let scores = [0.1, 0.2, 0.9, 0.8];
        let labels = [true, true, false, false];
        assert_eq!(auroc(&scores, &labels), 0.0);
    }

    #[test]
    fn random_is_half() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let labels = [true, false, true, false];
        assert_eq!(auroc(&scores, &labels), 0.5);
    }

    #[test]
    fn degenerate_classes() {
        assert_eq!(auroc(&[1.0, 2.0], &[true, true]), 0.5);
        assert_eq!(auroc(&[], &[]), 0.5);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        auroc(&[1.0], &[true, false]);
    }

    #[test]
    fn rejection_curve_rises_for_calibrated_scores() {
        // Low uncertainty ↔ correct.
        let scores = [0.1, 0.2, 0.3, 0.8, 0.9];
        let correct = [true, true, true, false, false];
        let curve = rejection_accuracy_curve(&scores, &correct, &[0.6, 1.0]);
        assert_eq!(curve[0], (0.6, 1.0));
        assert_eq!(curve[1].1, 0.6);
        assert!(curve[0].1 > curve[1].1);
    }

    #[test]
    fn rejection_curve_empty() {
        let curve = rejection_accuracy_curve(&[], &[], &[0.5]);
        assert_eq!(curve, vec![(0.5, 0.0)]);
    }
}
