//! Entropy measures over clustered answers.

use crate::cluster::SemanticCluster;
use unisem_text::similarity::jaccard;
use unisem_text::tokenize::tokenize_words;

/// The full uncertainty report for one question.
#[derive(Debug, Clone, PartialEq)]
pub struct EntropyReport {
    /// Number of sampled answers.
    pub n_samples: usize,
    /// Number of semantic clusters.
    pub n_clusters: usize,
    /// Rao-style semantic entropy (probability-weighted clusters).
    pub semantic_entropy: f64,
    /// Discrete semantic entropy (count-weighted clusters).
    pub discrete_semantic_entropy: f64,
    /// Predictive entropy baseline (mean negative log-probability).
    pub predictive_entropy: f64,
    /// Lexical-variance baseline (1 − mean pairwise token Jaccard).
    pub lexical_variance: f64,
    /// Core answer of the largest cluster (the system's reply).
    pub top_answer: Option<String>,
}

impl EntropyReport {
    /// Calibrated confidence: 1 − normalized discrete semantic entropy,
    /// clamped to `[0, 1]`. The normalizer is `ln(max(n_samples, 2))` — the
    /// entropy of total disagreement — so unanimous samples score 1 and
    /// all-distinct samples score 0. This is *the* confidence formula every
    /// pipeline (unified engine and baselines alike) uses, so abstention
    /// thresholds are comparable across them.
    pub fn confidence(&self) -> f64 {
        let n = self.n_samples.max(2) as f64;
        (1.0 - self.discrete_semantic_entropy / n.ln()).clamp(0.0, 1.0)
    }
}

/// Discrete semantic entropy: `−Σ (|c|/n) ln(|c|/n)` over clusters.
///
/// 0 when all samples agree; `ln(n)` when all disagree.
pub fn discrete_semantic_entropy(clusters: &[SemanticCluster], n_samples: usize) -> f64 {
    if n_samples == 0 {
        return 0.0;
    }
    let n = n_samples as f64;
    -clusters
        .iter()
        .map(|c| {
            let p = c.len() as f64 / n;
            if p > 0.0 {
                p * p.ln()
            } else {
                0.0
            }
        })
        .sum::<f64>()
}

/// Rao semantic entropy: cluster probability is the normalized sum of
/// member sequence probabilities (`exp(log_prob)`), following Kuhn et al.'s
/// length-normalized estimator.
pub fn semantic_entropy_rao(clusters: &[SemanticCluster], log_probs: &[f64]) -> f64 {
    if clusters.is_empty() {
        return 0.0;
    }
    let cluster_mass: Vec<f64> = clusters
        .iter()
        .map(|c| c.member_indices.iter().map(|&i| log_probs[i].exp()).sum::<f64>())
        .collect();
    let z: f64 = cluster_mass.iter().sum();
    if z <= 0.0 {
        return discrete_semantic_entropy(
            clusters,
            clusters.iter().map(SemanticCluster::len).sum(),
        );
    }
    -cluster_mass
        .iter()
        .map(|&m| {
            let p = m / z;
            if p > 0.0 {
                p * p.ln()
            } else {
                0.0
            }
        })
        .sum::<f64>()
}

/// Predictive entropy baseline: mean negative log-probability of the
/// samples. Ignores meaning entirely — which is exactly why semantic
/// entropy beats it when paraphrases inflate surface diversity.
pub fn predictive_entropy(log_probs: &[f64]) -> f64 {
    if log_probs.is_empty() {
        return 0.0;
    }
    -log_probs.iter().sum::<f64>() / log_probs.len() as f64
}

/// Lexical-variance baseline: `1 − mean pairwise Jaccard` over answer
/// token sets. High when answers share few words — even when they mean the
/// same thing.
pub fn lexical_variance(answers: &[&str]) -> f64 {
    if answers.len() < 2 {
        return 0.0;
    }
    let token_sets: Vec<Vec<String>> = answers.iter().map(|a| tokenize_words(a)).collect();
    let mut total = 0.0;
    let mut pairs = 0usize;
    for i in 0..token_sets.len() {
        for j in i + 1..token_sets.len() {
            total += jaccard(&token_sets[i], &token_sets[j]);
            pairs += 1;
        }
    }
    1.0 - total / pairs as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{cluster_answers, ClusterConfig};

    fn clusters_of(answers: &[&str]) -> Vec<SemanticCluster> {
        cluster_answers(answers, &ClusterConfig::default())
    }

    #[test]
    fn unanimous_is_zero() {
        let c = clusters_of(&["same", "same", "same"]);
        assert_eq!(discrete_semantic_entropy(&c, 3), 0.0);
    }

    #[test]
    fn confidence_maps_entropy_to_unit_interval() {
        let report = |n: usize, e: f64| EntropyReport {
            n_samples: n,
            n_clusters: 1,
            semantic_entropy: e,
            discrete_semantic_entropy: e,
            predictive_entropy: 0.0,
            lexical_variance: 0.0,
            top_answer: None,
        };
        assert_eq!(report(5, 0.0).confidence(), 1.0, "unanimous");
        assert_eq!(report(5, (5f64).ln()).confidence(), 0.0, "total disagreement");
        let mid = report(4, (4f64).ln() / 2.0).confidence();
        assert!((mid - 0.5).abs() < 1e-12, "{mid}");
        // Degenerate sample counts clamp instead of dividing by ln(1)=0.
        assert!(report(1, 0.3).confidence().is_finite());
        assert!((0.0..=1.0).contains(&report(0, 9.0).confidence()));
    }

    #[test]
    fn maximal_disagreement_is_ln_n() {
        let c = clusters_of(&["alpha", "beta", "gamma"]);
        let e = discrete_semantic_entropy(&c, 3);
        assert!((e - 3f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn entropy_monotone_in_disagreement() {
        let low = discrete_semantic_entropy(&clusters_of(&["x", "x", "x", "y"]), 4);
        let high = discrete_semantic_entropy(&clusters_of(&["x", "x", "y", "y"]), 4);
        assert!(low < high);
    }

    #[test]
    fn rao_weights_by_probability() {
        let c = clusters_of(&["alpha", "beta"]);
        // Equal probabilities → ln 2.
        let e = semantic_entropy_rao(&c, &[(0.5f64).ln(), (0.5f64).ln()]);
        assert!((e - 2f64.ln()).abs() < 1e-9);
        // Skewed probabilities → lower entropy.
        let skew = semantic_entropy_rao(&c, &[(0.99f64).ln(), (0.01f64).ln()]);
        assert!(skew < e);
    }

    #[test]
    fn rao_merges_same_cluster_mass() {
        // Two samples in one cluster + one alone, all equal prob: p = (2/3, 1/3).
        let c = clusters_of(&["x", "x", "y"]);
        let lp = (1.0f64 / 3.0).ln();
        let e = semantic_entropy_rao(&c, &[lp, lp, lp]);
        let expected = -(2.0 / 3.0f64 * (2.0 / 3.0f64).ln() + 1.0 / 3.0 * (1.0f64 / 3.0).ln());
        assert!((e - expected).abs() < 1e-9);
    }

    #[test]
    fn predictive_entropy_basics() {
        assert_eq!(predictive_entropy(&[]), 0.0);
        let e = predictive_entropy(&[(0.5f64).ln(), (0.25f64).ln()]);
        assert!(e > 0.0);
        // More confident samples → lower predictive entropy.
        let conf = predictive_entropy(&[(0.9f64).ln(), (0.9f64).ln()]);
        assert!(conf < e);
    }

    #[test]
    fn lexical_variance_bounds() {
        assert_eq!(lexical_variance(&["only one"]), 0.0);
        let same = lexical_variance(&["a b c", "a b c"]);
        assert!(same.abs() < 1e-9);
        let diff = lexical_variance(&["a b c", "x y z"]);
        assert!((diff - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lexical_variance_fooled_by_paraphrase_semantic_not() {
        // The distinction the paper draws: paraphrases inflate lexical
        // variance but not semantic entropy.
        let paraphrases = vec![
            "sales rose 20%",
            "Based on the data, sales rose 20%.",
            "It appears that sales rose 20%.",
        ];
        let lv = lexical_variance(&paraphrases);
        let se = discrete_semantic_entropy(&clusters_of(&paraphrases), 3);
        assert!(lv > 0.3, "lexical variance inflated: {lv}");
        assert_eq!(se, 0.0, "semantic entropy sees one meaning");
    }

    #[test]
    fn empty_everything() {
        assert_eq!(discrete_semantic_entropy(&[], 0), 0.0);
        assert_eq!(semantic_entropy_rao(&[], &[]), 0.0);
    }
}
