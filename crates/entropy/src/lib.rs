//! # unisem-entropy
//!
//! Semantic entropy for uncertainty quantification (§III.D of the paper,
//! after Kuhn et al., "Semantic Uncertainty", ICLR 2023).
//!
//! Given multiple sampled answers to the same question:
//!
//! 1. [`cluster`] groups the answers into **semantic equivalence classes** —
//!    paraphrases land together ("Fever, cough, fatigue" ≡ "Symptoms include
//!    fever and cough"), contradictions land apart ("yes, if copyrighted" vs
//!    "no, unless consent is violated").
//! 2. [`measure`] computes the **semantic entropy** over the cluster
//!    distribution: low entropy = the model keeps saying the same thing =
//!    reliable; high entropy = divergent meanings = flag for review.
//! 3. [`calibrate`] evaluates how well an uncertainty score predicts
//!    answer correctness (AUROC, rejection curves) against the
//!    predictive-entropy and lexical-variance baselines — experiment E5.

pub mod calibrate;
pub mod cluster;
pub mod measure;

pub use calibrate::{auroc, rejection_accuracy_curve};
pub use cluster::{cluster_answers, ClusterConfig, SemanticCluster};
pub use measure::{
    discrete_semantic_entropy, lexical_variance, predictive_entropy, semantic_entropy_rao,
    EntropyReport,
};

use unisem_slm::{GenConfig, Generation, Slm, SupportedAnswer};

/// End-to-end estimator: samples answers from the SLM and produces an
/// [`EntropyReport`].
#[derive(Debug, Clone)]
pub struct EntropyEstimator {
    slm: Slm,
    /// Number of samples drawn per question.
    pub n_samples: usize,
    /// Sampling temperature.
    pub temperature: f64,
    /// Clustering configuration.
    pub cluster_config: ClusterConfig,
}

impl EntropyEstimator {
    /// Creates an estimator with the paper-typical setting (10 samples at
    /// temperature 1.0).
    pub fn new(slm: Slm) -> Self {
        Self { slm, n_samples: 10, temperature: 1.0, cluster_config: ClusterConfig::default() }
    }

    /// Samples answers for `query` given evidence and measures uncertainty.
    pub fn estimate(&self, query: &str, evidence: &[SupportedAnswer]) -> EntropyReport {
        let gens = self.slm.sample_answers(
            query,
            evidence,
            &GenConfig {
                n_samples: self.n_samples,
                temperature: self.temperature,
                paraphrase: true,
                ..GenConfig::default()
            },
        );
        self.measure_generations(&gens)
    }

    /// Measures uncertainty over already-sampled generations.
    pub fn measure_generations(&self, gens: &[Generation]) -> EntropyReport {
        let texts: Vec<&str> = gens.iter().map(|g| g.text.as_str()).collect();
        let clusters = cluster_answers(&texts, &self.cluster_config);
        let log_probs: Vec<f64> = gens.iter().map(|g| g.log_prob).collect();
        EntropyReport {
            n_samples: gens.len(),
            n_clusters: clusters.len(),
            semantic_entropy: semantic_entropy_rao(&clusters, &log_probs),
            discrete_semantic_entropy: discrete_semantic_entropy(&clusters, gens.len()),
            predictive_entropy: predictive_entropy(&log_probs),
            lexical_variance: lexical_variance(&texts),
            top_answer: clusters
                .first()
                .and_then(|c| c.member_indices.first())
                .map(|&i| gens[i].core.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strong_evidence_low_entropy() {
        let slm = Slm::default();
        let est = EntropyEstimator::new(slm);
        let strong = vec![SupportedAnswer::new("sales rose 20%", 8.0)];
        let report = est.estimate("How did sales change?", &strong);
        assert_eq!(report.n_samples, 10);
        assert!(report.discrete_semantic_entropy < 0.7, "got {report:?}");
        assert!(report.top_answer.is_some());
    }

    #[test]
    fn no_evidence_high_entropy() {
        let slm = Slm::default();
        let est = EntropyEstimator::new(slm);
        let weak: Vec<SupportedAnswer> = vec![];
        let report = est.estimate("Can I be sued for sharing a photo?", &weak);
        assert!(report.n_clusters >= 2, "hallucinations diverge: {report:?}");
        assert!(report.discrete_semantic_entropy > 0.4);
    }

    #[test]
    fn entropy_separates_strong_from_weak() {
        let slm = Slm::default();
        let est = EntropyEstimator::new(slm);
        let strong = est.estimate("q-strong", &[SupportedAnswer::new("the answer is 42", 9.0)]);
        let weak = est.estimate("q-weak", &[]);
        assert!(strong.discrete_semantic_entropy < weak.discrete_semantic_entropy);
    }

    #[test]
    fn deterministic_reports() {
        let slm1 = Slm::default();
        let slm2 = Slm::default();
        let e1 = EntropyEstimator::new(slm1)
            .estimate("same question", &[SupportedAnswer::new("alpha", 1.0)]);
        let e2 = EntropyEstimator::new(slm2)
            .estimate("same question", &[SupportedAnswer::new("alpha", 1.0)]);
        assert_eq!(e1, e2);
    }
}
