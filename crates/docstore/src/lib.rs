//! # unisem-docstore
//!
//! The unstructured substrate: a document store with a chunking pipeline and
//! a BM25-searchable chunk index.
//!
//! Documents are the raw inputs of §III.A's graph construction ("text chunks
//! are the foundational segments derived from raw documents"); this crate
//! owns the document → chunk decomposition and provides the lexical search
//! baseline used in the retrieval experiments.

use std::fmt;

use unisem_text::bm25::Bm25Index;
use unisem_text::chunk::{chunk_sentences, ChunkConfig};

/// Identifier of a document (insertion order).
pub type DocumentId = usize;

/// Identifier of a chunk in the global chunk table (insertion order).
pub type ChunkId = usize;

/// A stored document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// Document id.
    pub id: DocumentId,
    /// Short human-readable title.
    pub title: String,
    /// Full text.
    pub text: String,
    /// Free-form source tag ("clinical_note", "review", …).
    pub source: String,
}

/// A chunk of a stored document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredChunk {
    /// Global chunk id.
    pub id: ChunkId,
    /// Owning document.
    pub doc_id: DocumentId,
    /// Index of this chunk within its document.
    pub index_in_doc: usize,
    /// Chunk text.
    pub text: String,
}

/// A search hit.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkHit {
    /// The matching chunk id.
    pub chunk_id: ChunkId,
    /// BM25 score.
    pub score: f64,
}

/// Errors from the document store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DocError {
    /// Unknown document id.
    UnknownDocument(DocumentId),
    /// Unknown chunk id.
    UnknownChunk(ChunkId),
}

impl fmt::Display for DocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DocError::UnknownDocument(id) => write!(f, "unknown document id: {id}"),
            DocError::UnknownChunk(id) => write!(f, "unknown chunk id: {id}"),
        }
    }
}

impl std::error::Error for DocError {}

/// The document store.
///
/// Adding a document immediately chunks it (with the store's
/// [`ChunkConfig`]) and indexes every chunk for BM25 search.
#[derive(Debug, Clone)]
pub struct DocStore {
    docs: Vec<Document>,
    chunks: Vec<StoredChunk>,
    index: Bm25Index,
    chunk_config: ChunkConfig,
}

impl Default for DocStore {
    fn default() -> Self {
        Self::new(ChunkConfig::default())
    }
}

impl DocStore {
    /// Creates an empty store with the given chunking configuration.
    pub fn new(chunk_config: ChunkConfig) -> Self {
        Self { docs: Vec::new(), chunks: Vec::new(), index: Bm25Index::default(), chunk_config }
    }

    /// Reassembles a store from snapshot parts: documents and chunks in
    /// id order plus the already-built BM25 index over the chunks. The
    /// caller is trusted to pass parts persisted from a store built with
    /// the same `chunk_config` (the snapshot layer round-trips all four).
    pub fn from_parts(
        chunk_config: ChunkConfig,
        docs: Vec<Document>,
        chunks: Vec<StoredChunk>,
        index: Bm25Index,
    ) -> Self {
        Self { docs, chunks, index, chunk_config }
    }

    /// The chunking configuration documents are ingested with.
    pub fn chunk_config(&self) -> ChunkConfig {
        self.chunk_config
    }

    /// The BM25 index over chunks (snapshot serialization reads it).
    pub fn index(&self) -> &Bm25Index {
        &self.index
    }

    /// Adds a document; returns its id.
    pub fn add_document(
        &mut self,
        title: impl Into<String>,
        text: impl Into<String>,
        source: impl Into<String>,
    ) -> DocumentId {
        let id = self.docs.len();
        let text = text.into();
        for (i, c) in chunk_sentences(&text, self.chunk_config).into_iter().enumerate() {
            let chunk_id = self.chunks.len();
            let indexed = self.index.add_document(&c.text);
            debug_assert_eq!(indexed, chunk_id, "chunk ids track BM25 doc ids");
            self.chunks.push(StoredChunk {
                id: chunk_id,
                doc_id: id,
                index_in_doc: i,
                text: c.text,
            });
        }
        self.docs.push(Document { id, title: title.into(), text, source: source.into() });
        id
    }

    /// Number of documents.
    pub fn num_documents(&self) -> usize {
        self.docs.len()
    }

    /// Number of chunks.
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// True when the store holds no documents.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Fetches a document.
    pub fn document(&self, id: DocumentId) -> Result<&Document, DocError> {
        self.docs.get(id).ok_or(DocError::UnknownDocument(id))
    }

    /// Fetches a chunk.
    pub fn chunk(&self, id: ChunkId) -> Result<&StoredChunk, DocError> {
        self.chunks.get(id).ok_or(DocError::UnknownChunk(id))
    }

    /// All chunks, in id order.
    pub fn chunks(&self) -> &[StoredChunk] {
        &self.chunks
    }

    /// All documents, in id order.
    pub fn documents(&self) -> &[Document] {
        &self.docs
    }

    /// Chunks of one document.
    pub fn chunks_of(&self, doc: DocumentId) -> impl Iterator<Item = &StoredChunk> + '_ {
        self.chunks.iter().filter(move |c| c.doc_id == doc)
    }

    /// BM25 search over chunks.
    pub fn search(&self, query: &str, top_k: usize) -> Vec<ChunkHit> {
        self.index
            .search(query, top_k)
            .into_iter()
            .map(|(chunk_id, score)| ChunkHit { chunk_id, score })
            .collect()
    }

    /// Inverted-index statistics `(distinct terms, total postings, longest
    /// posting list)` — the unstructured substrate's contribution to the
    /// planner's build-time statistics catalog.
    pub fn posting_stats(&self) -> (usize, usize, usize) {
        self.index.posting_stats()
    }

    /// Posting entries a [`Self::search`] for `query` scans — the
    /// per-query resource-meter accounting (pure function of query and
    /// corpus; independent of `top_k`).
    pub fn postings_scanned(&self, query: &str) -> usize {
        self.index.postings_scanned(query)
    }

    /// Approximate resident bytes of the inverted index (for E2).
    pub fn index_bytes(&self) -> usize {
        self.index.approx_bytes()
    }

    /// Approximate resident bytes of raw text.
    pub fn text_bytes(&self) -> usize {
        self.docs.iter().map(|d| d.text.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> DocStore {
        let mut s = DocStore::default();
        s.add_document(
            "q2 report",
            "Q2 sales increased 20 percent. Product Alpha led all categories. \
             Customer satisfaction remained high.",
            "report",
        );
        s.add_document(
            "clinical note",
            "Patient reported severe headaches. Drug A was prescribed at 10mg. \
             Symptoms improved within two weeks.",
            "note",
        );
        s
    }

    #[test]
    fn add_and_fetch() {
        let s = store();
        assert_eq!(s.num_documents(), 2);
        assert!(s.num_chunks() >= 2);
        assert_eq!(s.document(0).unwrap().title, "q2 report");
        assert!(s.document(5).is_err());
    }

    #[test]
    fn chunks_reference_docs() {
        let s = store();
        for c in s.chunks() {
            assert!(c.doc_id < s.num_documents());
            assert!(s
                .document(c.doc_id)
                .unwrap()
                .text
                .contains(c.text.split('.').next().unwrap().trim()));
        }
    }

    #[test]
    fn chunks_of_filters() {
        let s = store();
        assert!(s.chunks_of(0).all(|c| c.doc_id == 0));
        assert!(s.chunks_of(0).count() >= 1);
    }

    #[test]
    fn search_finds_relevant_chunk() {
        let s = store();
        let hits = s.search("sales increase", 5);
        assert!(!hits.is_empty());
        let top = s.chunk(hits[0].chunk_id).unwrap();
        assert_eq!(top.doc_id, 0);
    }

    #[test]
    fn search_medical_query() {
        let s = store();
        let hits = s.search("headache drug prescribed", 5);
        assert!(!hits.is_empty());
        assert_eq!(s.chunk(hits[0].chunk_id).unwrap().doc_id, 1);
    }

    #[test]
    fn search_no_match() {
        let s = store();
        assert!(s.search("zebra xylophone quantum", 5).is_empty());
    }

    #[test]
    fn small_chunks_config() {
        let mut s = DocStore::new(ChunkConfig { max_tokens: 5, overlap_sentences: 0 });
        s.add_document("t", "One two three. Four five six. Seven eight nine.", "x");
        assert!(s.num_chunks() >= 2);
    }

    #[test]
    fn byte_accounting() {
        let s = store();
        assert!(s.index_bytes() > 0);
        assert!(s.text_bytes() > 0);
    }

    #[test]
    fn empty_store() {
        let s = DocStore::default();
        assert!(s.is_empty());
        assert!(s.search("anything", 3).is_empty());
    }
}
