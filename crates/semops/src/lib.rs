//! # unisem-semops
//!
//! **Semantic Operator Synthesis** (§III.C task 2 of the paper): "the
//! translation of natural language queries into executable operations …
//! aggregations (e.g., SUM for calculating the total sales) and filtering
//! operations … Operations like SQL joins can also be synthesized".
//!
//! Three layers:
//!
//! - [`intent`]: the structured [`intent::QueryIntent`] a natural-language
//!   question is parsed into,
//! - [`parse`]: SLM-assisted question analysis (entity tagging + pattern
//!   rules) producing intents,
//! - [`synthesize`]: binding an intent to an actual table schema (fuzzy
//!   column resolution with a synonym map) and emitting a
//!   [`unisem_relstore::LogicalPlan`], including joins when the answer
//!   spans two tables,
//! - [`semantic`]: LOTUS-style semantic operators over tables —
//!   `sem_filter`, `sem_join`, `sem_topk` — which rank/match by embedding
//!   similarity instead of exact predicates.

pub mod intent;
pub mod parse;
pub mod semantic;
pub mod synthesize;

pub use intent::{CmpOp, FilterIntent, QueryIntent, SortIntent};
pub use parse::IntentParser;
pub use semantic::{sem_filter, sem_join, sem_topk};
pub use synthesize::{OperatorSynthesizer, SynthesisError};
