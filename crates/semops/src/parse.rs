//! Natural-language question analysis → [`QueryIntent`].
//!
//! The parser mirrors how the paper describes the SLM's job: "it identifies
//! the entities 'total sales', 'all products', and 'Q3'. Then, it maps these
//! to SQL-like operations such as aggregations … and filtering operations".
//! Entity identification comes from the SLM tagger; the operation mapping is
//! rule-based over the token stream.

use unisem_relstore::plan::AggFunc;
use unisem_relstore::Value;
use unisem_slm::ner::EntityKind;
use unisem_slm::Slm;
use unisem_text::normalize::stem;
use unisem_text::tokenize::{tokenize, Token, TokenKind};

use crate::intent::{CmpOp, FilterIntent, QueryIntent, SortIntent};

/// Parses questions into intents using an SLM for entity tagging.
#[derive(Debug, Clone)]
pub struct IntentParser {
    slm: Slm,
}

impl IntentParser {
    /// Creates a parser.
    pub fn new(slm: Slm) -> Self {
        Self { slm }
    }

    /// Analyzes one question.
    pub fn analyze(&self, question: &str) -> QueryIntent {
        let mentions = self.slm.tag_entities(question);
        let tokens = tokenize(question);
        let words: Vec<String> = tokens.iter().map(Token::lower).collect();

        let mut intent = QueryIntent { raw: question.to_string(), ..QueryIntent::default() };

        // ---- entities & period/subject filters ----
        let mut subjects = Vec::new();
        for m in &mentions {
            match m.kind {
                EntityKind::Quarter | EntityKind::Date => {
                    let period = crate::synthesize::display_period(&m.text);
                    intent.filters.push(FilterIntent::Period(period));
                }
                EntityKind::Metric
                | EntityKind::Quantity
                | EntityKind::Percent
                | EntityKind::Money => {}
                _ => {
                    subjects.push(m.canonical());
                    intent.entities.push(m.canonical());
                }
            }
        }
        if !subjects.is_empty() {
            intent.filters.push(FilterIntent::SubjectIn(subjects));
        }

        // ---- metric hints ----
        let metric_mentions: Vec<(usize, String)> = mentions
            .iter()
            .filter(|m| m.kind == EntityKind::Metric)
            .map(|m| (m.start, m.canonical()))
            .collect();
        let first_metric = metric_mentions.first().map(|(_, m)| m.clone());
        intent.metric_mention = first_metric.clone();
        let metric_before = |pos: usize| {
            metric_mentions
                .iter()
                .filter(|(s, _)| *s < pos)
                .last()
                .map(|(_, m)| m.clone())
                .or_else(|| first_metric.clone())
        };
        let metric_after = |pos: usize| {
            metric_mentions
                .iter()
                .find(|(s, _)| *s >= pos)
                .map(|(_, m)| m.clone())
                .or_else(|| first_metric.clone())
        };

        // ---- aggregates ----
        for (i, w) in words.iter().enumerate() {
            let start = tokens[i].start;
            let agg = match w.as_str() {
                "total" | "sum" | "overall" => Some(AggFunc::Sum),
                "average" | "mean" | "avg" => Some(AggFunc::Avg),
                "highest" | "maximum" | "max" | "most" | "best" => Some(AggFunc::Max),
                "lowest" | "minimum" | "min" | "least" | "worst" | "fewest" => Some(AggFunc::Min),
                "count" => Some(AggFunc::Count),
                "many" if i > 0 && words[i - 1] == "how" => Some(AggFunc::Count),
                "number" if words.get(i + 1).is_some_and(|n| n == "of") => Some(AggFunc::Count),
                _ => None,
            };
            if let Some(f) = agg {
                if intent.aggregate.is_none() {
                    let metric = if f == AggFunc::Count { None } else { metric_after(start) };
                    intent.aggregate = Some((f, metric));
                    // Superlatives imply ordering too.
                    if matches!(f, AggFunc::Max) {
                        intent.sort.get_or_insert(SortIntent {
                            metric_hint: metric_after(start).unwrap_or_default(),
                            descending: true,
                        });
                    } else if matches!(f, AggFunc::Min) {
                        intent.sort.get_or_insert(SortIntent {
                            metric_hint: metric_after(start).unwrap_or_default(),
                            descending: false,
                        });
                    }
                }
            }
        }

        // ---- "top N" / limits ----
        for (i, w) in words.iter().enumerate() {
            if (w == "top" || w == "first") && i + 1 < tokens.len() {
                if let Ok(n) = tokens[i + 1].text.parse::<usize>() {
                    intent.limit = Some(n);
                    if w == "top" {
                        let hint = metric_after(tokens[i].start).unwrap_or_default();
                        intent
                            .sort
                            .get_or_insert(SortIntent { metric_hint: hint, descending: true });
                    }
                }
            }
        }

        // ---- grouping ----
        for (i, w) in words.iter().enumerate() {
            let group_kw = w == "per"
                || (w == "each" && i > 0 && words[i - 1] == "for")
                || (w == "by" && i > 0 && words[i - 1] != "order");
            if group_kw {
                // The grouped dimension is the next non-stopword noun.
                if let Some(next) = tokens[i + 1..]
                    .iter()
                    .find(|t| t.kind == TokenKind::Word && !unisem_text::is_stopword(&t.lower()))
                {
                    intent.group_hint = Some(stem(&next.lower()));
                    break;
                }
            }
        }

        // ---- comparative framing ----
        if words.iter().any(|w| w == "compare" || w == "versus" || w == "vs")
            || question.to_lowercase().contains("difference between")
        {
            intent.comparative = true;
            if intent.group_hint.is_none() {
                intent.group_hint = Some("subject".to_string());
            }
        }

        // ---- numeric comparison filters ----
        self.parse_numeric_filters(&tokens, &words, &mentions, &metric_before, &mut intent);

        intent
    }

    fn parse_numeric_filters(
        &self,
        tokens: &[Token],
        words: &[String],
        mentions: &[unisem_slm::EntityMention],
        metric_before: &dyn Fn(usize) -> Option<String>,
        intent: &mut QueryIntent,
    ) {
        for (i, w) in words.iter().enumerate() {
            let op = match w.as_str() {
                "more" | "greater" | "higher" | "over" | "above" | "exceeding" => Some(CmpOp::Gt),
                "less" | "fewer" | "lower" | "under" | "below" => Some(CmpOp::Lt),
                "least" if i > 0 && words[i - 1] == "at" => Some(CmpOp::Ge),
                "most" if i > 0 && words[i - 1] == "at" => Some(CmpOp::Le),
                "exactly" => Some(CmpOp::Eq),
                _ => None,
            };
            let Some(op) = op else { continue };
            // Find the next number token within a short window.
            let num = tokens[i + 1..].iter().take(4).find(|t| t.kind == TokenKind::Number);
            let Some(num) = num else { continue };
            let value_text = num.text.replace(',', "");
            let Ok(raw) = value_text.parse::<f64>() else {
                continue;
            };
            // Is it a percent? (covered by a Percent mention)
            let is_pct = mentions
                .iter()
                .any(|m| m.kind == EntityKind::Percent && num.start >= m.start && num.end <= m.end);
            let metric_hint = if is_pct {
                "change_pct".to_string()
            } else {
                metric_before(tokens[i].start).unwrap_or_else(|| "amount".to_string())
            };
            intent.filters.push(FilterIntent::Numeric {
                metric_hint,
                op,
                value: Value::float(raw),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unisem_slm::{Lexicon, SlmConfig};

    fn parser() -> IntentParser {
        let lexicon = Lexicon::new().with_entries([
            ("Product Alpha", EntityKind::Product),
            ("Product Beta", EntityKind::Product),
            ("Drug A", EntityKind::Drug),
            ("Drug B", EntityKind::Drug),
        ]);
        IntentParser::new(Slm::new(SlmConfig { lexicon, ..SlmConfig::default() }))
    }

    #[test]
    fn paper_example_total_sales_q3() {
        // §III.C: "Find the total sales of all products in Q3".
        let i = parser().analyze("Find the total sales of all products in Q3");
        assert_eq!(i.aggregate, Some((AggFunc::Sum, Some("sales".to_string()))));
        assert!(i.filters.contains(&FilterIntent::Period("Q3".to_string())));
        assert!(!i.is_plain_lookup());
    }

    #[test]
    fn average_per_group() {
        let i = parser().analyze("What is the average rating per product?");
        assert_eq!(i.aggregate.as_ref().unwrap().0, AggFunc::Avg);
        assert_eq!(i.group_hint.as_deref(), Some("product"));
    }

    #[test]
    fn count_questions() {
        let i = parser().analyze("How many units were sold in Q2 2024?");
        assert_eq!(i.aggregate.as_ref().unwrap().0, AggFunc::Count);
        assert!(i.filters.iter().any(|f| matches!(f, FilterIntent::Period(p) if p == "Q2 2024")));
    }

    #[test]
    fn comparative_groups_by_subject() {
        let i = parser().analyze("Compare the sales of Product Alpha and Product Beta");
        assert!(i.comparative);
        assert_eq!(i.group_hint.as_deref(), Some("subject"));
        assert!(i.filters.iter().any(|f| matches!(
            f,
            FilterIntent::SubjectIn(s) if s.contains(&"product alpha".to_string())
                && s.contains(&"product beta".to_string())
        )));
    }

    #[test]
    fn numeric_threshold_percent() {
        let i = parser().analyze("Which products had a sales increase of more than 15%?");
        let f = i
            .filters
            .iter()
            .find_map(|f| match f {
                FilterIntent::Numeric { metric_hint, op, value } => {
                    Some((metric_hint.clone(), *op, value.clone()))
                }
                _ => None,
            })
            .expect("numeric filter");
        assert_eq!(f.0, "change_pct");
        assert_eq!(f.1, CmpOp::Gt);
        assert_eq!(f.2, Value::Float(15.0));
    }

    #[test]
    fn numeric_threshold_plain_metric() {
        let i = parser().analyze("List products with revenue over 1,000");
        let found = i.filters.iter().any(|f| {
            matches!(
                f,
                FilterIntent::Numeric { metric_hint, op: CmpOp::Gt, value }
                    if metric_hint == "revenue" && *value == Value::Float(1000.0)
            )
        });
        assert!(found, "filters: {:?}", i.filters);
    }

    #[test]
    fn at_least_at_most() {
        let i = parser().analyze("products with rating at least 4");
        assert!(i.filters.iter().any(|f| matches!(f, FilterIntent::Numeric { op: CmpOp::Ge, .. })));
        let i = parser().analyze("products with rating at most 2");
        assert!(i.filters.iter().any(|f| matches!(f, FilterIntent::Numeric { op: CmpOp::Le, .. })));
    }

    #[test]
    fn superlative_sets_sort() {
        let i = parser().analyze("Which product had the highest sales in Q1?");
        assert_eq!(i.aggregate.as_ref().unwrap().0, AggFunc::Max);
        let s = i.sort.as_ref().unwrap();
        assert!(s.descending);
        assert_eq!(s.metric_hint, "sales");
    }

    #[test]
    fn top_n_limit() {
        let i = parser().analyze("Show the top 3 products by sales");
        assert_eq!(i.limit, Some(3));
        assert!(i.sort.as_ref().unwrap().descending);
    }

    #[test]
    fn plain_lookup_detected() {
        let i = parser().analyze("What did patients report about Drug A?");
        assert!(i.is_plain_lookup());
        assert!(i.entities.contains(&"drug a".to_string()));
    }

    #[test]
    fn entities_extracted() {
        let i = parser().analyze("Did Drug A outperform Drug B?");
        assert_eq!(i.entities.len(), 2);
    }
}
