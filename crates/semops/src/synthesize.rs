//! Binding intents to table schemas and emitting logical plans.
//!
//! The synthesizer handles the two table shapes that occur in the system:
//!
//! - **native** tables (workload-provided), where metrics are columns
//!   (`sales`, `rating`) and subjects are key columns (`product`),
//! - **extracted** tables (from `unisem-extract`'s canonical schema), where
//!   the metric name is *data* in the `metric` column and measurements live
//!   in `amount` / `change_pct` / `quantity`.

use std::fmt;

use unisem_relstore::plan::{AggExpr, AggFunc, SortKey};
use unisem_relstore::{Database, Expr, LogicalPlan, RelError, Schema, Table, Value};
use unisem_text::similarity::jaro_winkler;

use crate::intent::{CmpOp, FilterIntent, QueryIntent, SortIntent};

/// Synthesis failures.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthesisError {
    /// No column plausibly holds the requested metric.
    NoMetricColumn(String),
    /// No column plausibly identifies the subject entities.
    NoSubjectColumn,
    /// No column plausibly holds the reporting period.
    NoPeriodColumn,
    /// The intent has no analytical structure to synthesize.
    NotAnalytical,
    /// Underlying engine error.
    Rel(RelError),
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::NoMetricColumn(h) => write!(f, "no column for metric hint '{h}'"),
            SynthesisError::NoSubjectColumn => write!(f, "no subject column"),
            SynthesisError::NoPeriodColumn => write!(f, "no period column"),
            SynthesisError::NotAnalytical => write!(f, "question has no analytical structure"),
            SynthesisError::Rel(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for SynthesisError {}

impl From<RelError> for SynthesisError {
    fn from(e: RelError) -> Self {
        SynthesisError::Rel(e)
    }
}

/// Metric-name synonym classes for column resolution.
const SYNONYMS: &[(&str, &[&str])] = &[
    ("sales", &["sales", "amount", "revenue", "total_sales", "sold"]),
    ("revenue", &["revenue", "amount", "sales", "income"]),
    ("rating", &["rating", "ratings", "satisfaction", "score", "stars"]),
    ("price", &["price", "cost", "amount"]),
    ("units", &["units", "quantity", "count", "volume"]),
    ("change_pct", &["change_pct", "change", "growth", "increase", "pct"]),
    ("efficacy", &["efficacy", "effectiveness", "response_rate", "score"]),
    ("dosage", &["dosage", "dose", "mg"]),
    ("profit", &["profit", "margin", "earnings"]),
];

/// Candidate column names identifying subjects.
const SUBJECT_COLUMNS: &[&str] =
    &["subject", "product", "name", "drug", "patient", "customer", "item", "manufacturer", "maker"];

/// Candidate column names holding periods.
const PERIOD_COLUMNS: &[&str] = &["period", "quarter", "date", "month", "when", "time"];

/// Normalizes a period mention for display/equality ("q2 2024" → "Q2 2024").
pub fn display_period(text: &str) -> String {
    let t = text.trim();
    let lower = t.to_lowercase();
    if lower.starts_with('q') {
        let rest: Vec<&str> = lower[1..].split_whitespace().collect();
        if let Some(q) = rest.first().and_then(|s| s.parse::<u8>().ok()) {
            if (1..=4).contains(&q) {
                return match rest.get(1) {
                    Some(y) => format!("Q{q} {y}"),
                    None => format!("Q{q}"),
                };
            }
        }
    }
    t.to_string()
}

/// Resolves a metric hint against a schema: exact name → synonym class →
/// fuzzy (Jaro-Winkler ≥ 0.88).
pub fn resolve_metric_column(schema: &Schema, hint: &str) -> Option<String> {
    let hint = hint.to_lowercase();
    if schema.index_of(&hint).is_some() {
        return Some(hint);
    }
    for (class, alts) in SYNONYMS {
        if *class == hint || alts.contains(&hint.as_str()) {
            for alt in *alts {
                if schema.index_of(alt).is_some() {
                    return Some((*alt).to_string());
                }
            }
        }
    }
    schema
        .columns()
        .iter()
        .map(|c| (c.name.clone(), jaro_winkler(&c.name.to_lowercase(), &hint)))
        .filter(|(_, s)| *s >= 0.88)
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(n, _)| n)
}

fn resolve_from(schema: &Schema, candidates: &[&str]) -> Option<String> {
    candidates.iter().find(|c| schema.index_of(c).is_some()).map(|c| (*c).to_string())
}

/// Resolves the subject-identifying column.
pub fn resolve_subject_column(schema: &Schema) -> Option<String> {
    resolve_from(schema, SUBJECT_COLUMNS)
}

/// Resolves the period column.
pub fn resolve_period_column(schema: &Schema) -> Option<String> {
    resolve_from(schema, PERIOD_COLUMNS)
}

/// True when the schema is the extracted canonical shape (metric-as-data).
fn is_extracted_shape(schema: &Schema) -> bool {
    schema.index_of("metric").is_some()
        && (schema.index_of("amount").is_some()
            || schema.index_of("change_pct").is_some()
            || schema.index_of("quantity").is_some())
}

/// The operator synthesizer.
#[derive(Debug, Clone, Default)]
pub struct OperatorSynthesizer;

impl OperatorSynthesizer {
    /// Creates a synthesizer.
    pub fn new() -> Self {
        Self
    }

    /// Synthesizes a logical plan for `intent` against `table` in `db`.
    pub fn synthesize(
        &self,
        intent: &QueryIntent,
        db: &Database,
        table: &str,
    ) -> Result<LogicalPlan, SynthesisError> {
        let schema = db.table(table)?.schema().clone();
        let extracted = is_extracted_shape(&schema);
        let mut plan = LogicalPlan::scan(table);
        let mut predicates: Vec<Expr> = Vec::new();
        // HAVING conditions lifted out of numeric filters (see below).
        let mut having: Vec<(CmpOp, Value)> = Vec::new();

        // Comparative questions without an explicit aggregate keyword
        // ("which drug is more effective?") still need per-entity
        // aggregation: default to AVG over the mentioned metric.
        let effective_aggregate: Option<(AggFunc, Option<String>)> = intent
            .aggregate
            .clone()
            .or_else(|| intent.comparative.then(|| (AggFunc::Avg, intent.metric_mention.clone())));

        // In extracted shape, the metric hint filters the `metric` column
        // and measurements live in a value column.
        let metric_hint = effective_aggregate
            .as_ref()
            .and_then(|(_, m)| m.clone())
            .or_else(|| {
                intent.filters.iter().find_map(|f| match f {
                    FilterIntent::Numeric { metric_hint, .. } => Some(metric_hint.clone()),
                    _ => None,
                })
            })
            .or_else(|| intent.metric_mention.clone());

        let value_column: Option<String> = if extracted {
            if let Some(h) = &metric_hint {
                if h != "change_pct" && schema.index_of(h).is_none() {
                    predicates.push(Expr::col("metric").eq(Expr::lit(Value::str(h.clone()))));
                }
            }
            // Measurement priority for extracted rows.
            let pct_asked = metric_hint.as_deref() == Some("change_pct")
                || intent.filters.iter().any(|f| {
                    matches!(f, FilterIntent::Numeric { metric_hint, .. } if metric_hint == "change_pct")
                });
            if pct_asked && schema.index_of("change_pct").is_some() {
                Some("change_pct".to_string())
            } else {
                ["amount", "change_pct", "quantity"]
                    .iter()
                    .find(|c| schema.index_of(c).is_some())
                    .map(|c| (*c).to_string())
            }
        } else {
            match metric_hint.as_ref() {
                Some(h) => resolve_metric_column(&schema, h),
                // No hint at all: fall back to the first numeric column.
                None => schema
                    .columns()
                    .iter()
                    .find(|c| {
                        matches!(
                            c.dtype,
                            unisem_relstore::DataType::Float | unisem_relstore::DataType::Int
                        )
                    })
                    .map(|c| c.name.clone()),
            }
        };

        // ---- filters ----
        for f in &intent.filters {
            match f {
                FilterIntent::Period(p) => {
                    let col =
                        resolve_period_column(&schema).ok_or(SynthesisError::NoPeriodColumn)?;
                    // Period equality is prefix-tolerant: "Q2" matches
                    // "Q2 2024" and vice versa.
                    let pat_exact =
                        Expr::Like { expr: Box::new(Expr::col(col.clone())), pattern: p.clone() };
                    let pat_prefix =
                        Expr::Like { expr: Box::new(Expr::col(col)), pattern: format!("{p} %") };
                    predicates.push(pat_exact.or(pat_prefix));
                }
                FilterIntent::SubjectIn(subjects) => {
                    let col =
                        resolve_subject_column(&schema).ok_or(SynthesisError::NoSubjectColumn)?;
                    // Case-insensitive equality via LIKE (no wildcards).
                    let mut pred: Option<Expr> = None;
                    for s in subjects {
                        let like = Expr::Like {
                            expr: Box::new(Expr::col(col.clone())),
                            pattern: s.clone(),
                        };
                        pred = Some(match pred {
                            Some(p) => p.or(like),
                            None => like,
                        });
                    }
                    if let Some(p) = pred {
                        predicates.push(p);
                    }
                }
                FilterIntent::Numeric { metric_hint: mh, op, value } => {
                    let col = if extracted {
                        value_column
                            .clone()
                            .ok_or_else(|| SynthesisError::NoMetricColumn(mh.clone()))?
                    } else {
                        resolve_metric_column(&schema, mh)
                            .ok_or_else(|| SynthesisError::NoMetricColumn(mh.clone()))?
                    };
                    // When the threshold targets the same metric the
                    // aggregate computes ("average efficacy above 72"), it
                    // is a HAVING condition over per-entity aggregates, not
                    // a row filter.
                    let agg_col = effective_aggregate
                        .as_ref()
                        .filter(|(f, _)| *f != AggFunc::Count)
                        .and_then(|(_, m)| m.as_ref())
                        .and_then(|m| {
                            if extracted {
                                value_column.clone()
                            } else {
                                resolve_metric_column(&schema, m)
                            }
                        });
                    if agg_col.as_deref() == Some(col.as_str()) {
                        having.push((*op, value.clone()));
                        continue;
                    }
                    let lhs = Expr::col(col);
                    let rhs = Expr::lit(value.clone());
                    predicates.push(match op {
                        CmpOp::Eq => lhs.eq(rhs),
                        CmpOp::Gt => lhs.gt(rhs),
                        CmpOp::Ge => lhs.ge(rhs),
                        CmpOp::Lt => lhs.lt(rhs),
                        CmpOp::Le => lhs.le(rhs),
                    });
                }
            }
        }
        if let Some(pred) = predicates.into_iter().reduce(Expr::and) {
            plan = plan.filter(pred);
        }

        // ---- aggregation ----
        let mut group_col: Option<String> = intent.group_hint.as_ref().and_then(|h| {
            if schema.index_of(h).is_some() {
                Some(h.clone())
            } else if h == "subject" || intent.comparative {
                resolve_subject_column(&schema)
            } else {
                resolve_metric_column(&schema, h).or_else(|| resolve_subject_column(&schema))
            }
        });
        // HAVING over per-entity aggregates implies grouping by the
        // entities ("which drugs had an average efficacy above 72?").
        if group_col.is_none() && (!having.is_empty() || intent.comparative) {
            group_col = resolve_subject_column(&schema);
        }

        if let Some((func, agg_metric)) = &effective_aggregate {
            let input = match func {
                AggFunc::Count => Expr::lit(1i64),
                _ => {
                    let col = value_column.clone().ok_or_else(|| {
                        SynthesisError::NoMetricColumn(agg_metric.clone().unwrap_or_default())
                    })?;
                    Expr::col(col)
                }
            };
            let out_name = format!("{}_value", func.name().to_lowercase());
            let group_by: Vec<(Expr, String)> =
                group_col.iter().map(|c| (Expr::col(c.clone()), c.clone())).collect();
            plan = plan.aggregate(
                group_by,
                vec![AggExpr { func: *func, input, output_name: out_name.clone() }],
            );
            // HAVING conditions apply over the aggregate output.
            let having_pred = having
                .iter()
                .map(|(op, v)| {
                    let lhs = Expr::col(out_name.clone());
                    let rhs = Expr::lit(v.clone());
                    match op {
                        CmpOp::Eq => lhs.eq(rhs),
                        CmpOp::Gt => lhs.gt(rhs),
                        CmpOp::Ge => lhs.ge(rhs),
                        CmpOp::Lt => lhs.lt(rhs),
                        CmpOp::Le => lhs.le(rhs),
                    }
                })
                .reduce(Expr::and);
            if let Some(pred) = having_pred {
                plan = plan.filter(pred);
            }
            // Ordering: explicit superlative first; comparative questions
            // default to descending so the winner is row 0.
            let sort_descending = intent
                .sort
                .as_ref()
                .map(|s| s.descending)
                .or_else(|| intent.comparative.then_some(true));
            if let Some(descending) = sort_descending {
                if group_col.is_some() {
                    plan = plan
                        .sort(vec![SortKey { expr: Expr::col(out_name), ascending: !descending }]);
                    if matches!(func, AggFunc::Max | AggFunc::Min) && intent.limit.is_none() {
                        plan = plan.limit(1);
                    }
                }
            }
        } else if let Some(SortIntent { metric_hint, descending }) = &intent.sort {
            let col = if extracted {
                value_column.clone()
            } else {
                resolve_metric_column(&schema, metric_hint)
            };
            if let Some(col) = col {
                plan = plan.sort(vec![SortKey { expr: Expr::col(col), ascending: !descending }]);
            }
        }

        if let Some(n) = intent.limit {
            plan = plan.limit(n);
        }
        Ok(plan)
    }

    /// Synthesizes and executes, returning the result table.
    pub fn answer(
        &self,
        intent: &QueryIntent,
        db: &Database,
        table: &str,
    ) -> Result<Table, SynthesisError> {
        let plan = self.synthesize(intent, db, table)?;
        Ok(db.run_plan(&plan)?)
    }

    /// Finds the equi-join key pair shared by two tables: an exact shared
    /// column name, else subject-ish columns on both sides. This is the
    /// join-edge inference primitive behind [`Self::join_plan`] and the
    /// core planner's join-graph construction. Returns `None` when no key
    /// exists.
    pub fn join_keys(
        &self,
        db: &Database,
        left: &str,
        right: &str,
    ) -> Result<Option<Vec<(String, String)>>, SynthesisError> {
        let ls = db.table(left)?.schema().clone();
        let rs = db.table(right)?.schema().clone();
        // Exact shared column name.
        for c in ls.columns() {
            if rs.index_of(&c.name).is_some() {
                return Ok(Some(vec![(c.name.clone(), c.name.clone())]));
            }
        }
        // Subject-ish column on the left matching a name-ish column right.
        let lsub = resolve_subject_column(&ls);
        let rsub = resolve_subject_column(&rs);
        if let (Some(l), Some(r)) = (lsub, rsub) {
            return Ok(Some(vec![(l, r)]));
        }
        Ok(None)
    }

    /// Finds a join key shared by two tables (same column name on both
    /// sides, or a `name`-like column matching a subject column) and
    /// synthesizes the joined plan. Returns `None` when no key exists.
    pub fn join_plan(
        &self,
        db: &Database,
        left: &str,
        right: &str,
    ) -> Result<Option<LogicalPlan>, SynthesisError> {
        Ok(self
            .join_keys(db, left, right)?
            .map(|on| LogicalPlan::scan(left).join(LogicalPlan::scan(right), on)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::IntentParser;
    use unisem_relstore::{DataType, Schema, Table};
    use unisem_slm::ner::EntityKind;
    use unisem_slm::{Lexicon, Slm, SlmConfig};

    fn parser() -> IntentParser {
        let lexicon = Lexicon::new().with_entries([
            ("Product Alpha", EntityKind::Product),
            ("Product Beta", EntityKind::Product),
        ]);
        IntentParser::new(Slm::new(SlmConfig { lexicon, ..SlmConfig::default() }))
    }

    fn native_db() -> Database {
        let mut db = Database::new();
        let t = Table::from_rows(
            Schema::of(&[
                ("product", DataType::Str),
                ("quarter", DataType::Str),
                ("sales", DataType::Float),
                ("rating", DataType::Float),
            ]),
            vec![
                vec![
                    Value::str("Product Alpha"),
                    Value::str("Q1"),
                    Value::Float(100.0),
                    Value::Float(4.0),
                ],
                vec![
                    Value::str("Product Alpha"),
                    Value::str("Q2"),
                    Value::Float(150.0),
                    Value::Float(4.5),
                ],
                vec![
                    Value::str("Product Beta"),
                    Value::str("Q1"),
                    Value::Float(90.0),
                    Value::Float(3.5),
                ],
                vec![
                    Value::str("Product Beta"),
                    Value::str("Q2"),
                    Value::Float(60.0),
                    Value::Float(3.0),
                ],
            ],
        )
        .unwrap();
        db.create_table("sales", t).unwrap();
        db
    }

    fn extracted_db() -> Database {
        let mut db = Database::new();
        let t = Table::from_rows(
            Schema::of(&[
                ("subject", DataType::Str),
                ("metric", DataType::Str),
                ("period", DataType::Str),
                ("change_pct", DataType::Float),
                ("amount", DataType::Float),
            ]),
            vec![
                vec![
                    Value::str("product alpha"),
                    Value::str("sales"),
                    Value::str("Q2"),
                    Value::Float(20.0),
                    Value::Float(150.0),
                ],
                vec![
                    Value::str("product beta"),
                    Value::str("sales"),
                    Value::str("Q2"),
                    Value::Float(-5.0),
                    Value::Float(60.0),
                ],
                vec![
                    Value::str("product alpha"),
                    Value::str("rating"),
                    Value::str("Q2"),
                    Value::Null,
                    Value::Float(4.5),
                ],
            ],
        )
        .unwrap();
        db.create_table("extracted", t).unwrap();
        db
    }

    #[test]
    fn total_sales_q2_native() {
        let intent = parser().analyze("What is the total sales in Q2?");
        let out = OperatorSynthesizer::new().answer(&intent, &native_db(), "sales").unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.cell(0, 0), &Value::Float(210.0));
    }

    #[test]
    fn compare_products_native() {
        let intent = parser().analyze("Compare the total sales of Product Alpha and Product Beta");
        let out = OperatorSynthesizer::new().answer(&intent, &native_db(), "sales").unwrap();
        assert_eq!(out.num_rows(), 2);
        // Grouped by product.
        let alpha = (0..2).find(|&i| out.cell(i, 0) == &Value::str("Product Alpha")).unwrap();
        assert_eq!(out.cell(alpha, 1), &Value::Float(250.0));
    }

    #[test]
    fn highest_rating_native() {
        let intent = parser().analyze("Which product had the highest average rating per product?");
        // "average rating per product" + highest: avg-grouped, max ordering.
        let out = OperatorSynthesizer::new().answer(&intent, &native_db(), "sales").unwrap();
        assert!(out.num_rows() >= 1);
        assert_eq!(out.cell(0, 0), &Value::str("Product Alpha"));
    }

    #[test]
    fn threshold_filter_extracted() {
        let intent = parser().analyze("Which products had a sales increase of more than 15%?");
        let out = OperatorSynthesizer::new().answer(&intent, &extracted_db(), "extracted").unwrap();
        assert_eq!(out.num_rows(), 1);
        let subj = out.schema().index_of("subject").unwrap();
        assert_eq!(out.cell(0, subj), &Value::str("product alpha"));
    }

    #[test]
    fn metric_as_data_filter_extracted() {
        let intent = parser().analyze("What is the total sales amount in Q2?");
        let out = OperatorSynthesizer::new().answer(&intent, &extracted_db(), "extracted").unwrap();
        // Only metric='sales' rows: 150 + 60.
        assert_eq!(out.cell(0, 0), &Value::Float(210.0));
    }

    #[test]
    fn period_prefix_tolerant() {
        let mut db = Database::new();
        let t = Table::from_rows(
            Schema::of(&[("period", DataType::Str), ("amount", DataType::Float)]),
            vec![
                vec![Value::str("Q2 2024"), Value::Float(10.0)],
                vec![Value::str("Q3 2024"), Value::Float(20.0)],
            ],
        )
        .unwrap();
        db.create_table("t", t).unwrap();
        let intent = parser().analyze("total amount in Q2");
        let out = OperatorSynthesizer::new().answer(&intent, &db, "t").unwrap();
        assert_eq!(out.cell(0, 0), &Value::Float(10.0));
    }

    #[test]
    fn missing_metric_errors() {
        let mut db = Database::new();
        let t = Table::from_rows(Schema::of(&[("x", DataType::Int)]), vec![vec![Value::Int(1)]])
            .unwrap();
        db.create_table("t", t).unwrap();
        let intent = parser().analyze("what is the average efficacy?");
        let r = OperatorSynthesizer::new().synthesize(&intent, &db, "t");
        assert!(matches!(r, Err(SynthesisError::NoMetricColumn(_))));
    }

    #[test]
    fn join_plan_shared_column() {
        let mut db = native_db();
        let makers = Table::from_rows(
            Schema::of(&[("product", DataType::Str), ("maker", DataType::Str)]),
            vec![vec![Value::str("Product Alpha"), Value::str("Acme")]],
        )
        .unwrap();
        db.create_table("makers", makers).unwrap();
        let plan = OperatorSynthesizer::new()
            .join_plan(&db, "sales", "makers")
            .unwrap()
            .expect("join key found");
        let out = db.run_plan(&plan).unwrap();
        assert_eq!(out.num_rows(), 2); // alpha rows only
        assert!(out.schema().index_of("maker").is_some());
    }

    #[test]
    fn join_plan_none_when_disjoint() {
        let mut db = Database::new();
        let a = Table::from_rows(Schema::of(&[("x", DataType::Int)]), vec![vec![Value::Int(1)]])
            .unwrap();
        let b = Table::from_rows(Schema::of(&[("y", DataType::Int)]), vec![vec![Value::Int(1)]])
            .unwrap();
        db.create_table("a", a).unwrap();
        db.create_table("b", b).unwrap();
        assert!(OperatorSynthesizer::new().join_plan(&db, "a", "b").unwrap().is_none());
    }

    #[test]
    fn display_period_forms() {
        assert_eq!(display_period("q2 2024"), "Q2 2024");
        assert_eq!(display_period("Q3"), "Q3");
        assert_eq!(display_period("March 2024"), "March 2024");
    }

    #[test]
    fn resolve_metric_synonyms() {
        let s = Schema::of(&[("amount", DataType::Float)]);
        assert_eq!(resolve_metric_column(&s, "sales"), Some("amount".into()));
        assert_eq!(resolve_metric_column(&s, "revenue"), Some("amount".into()));
        let s2 = Schema::of(&[("satisfaction", DataType::Float)]);
        assert_eq!(resolve_metric_column(&s2, "rating"), Some("satisfaction".into()));
        assert_eq!(resolve_metric_column(&s2, "unrelated_xyz"), None);
    }

    #[test]
    fn count_units_question() {
        let intent = parser().analyze("How many products are listed?");
        let out = OperatorSynthesizer::new().answer(&intent, &native_db(), "sales").unwrap();
        assert_eq!(out.cell(0, 0), &Value::Int(4));
    }
}
