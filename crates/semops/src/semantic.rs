//! LOTUS-style semantic operators over tables (paper §II.B: "semantic
//! operators extend the relational model to perform semantic queries over
//! datasets … sorting or aggregating records using natural language
//! criteria").
//!
//! Each operator scores string cells with the SLM's embedding space instead
//! of exact predicates:
//!
//! - [`sem_filter`] keeps rows whose text column is semantically similar to
//!   a natural-language criterion,
//! - [`sem_join`] matches rows across tables by embedding similarity of key
//!   columns (a fuzzy join for entity names that don't match exactly),
//! - [`sem_topk`] ranks rows by similarity and keeps the best `k`.

use unisem_relstore::{RelResult, Table, Value};
use unisem_slm::Slm;
use unisem_text::similarity::cosine_dense;

/// Keeps rows whose `column` text is semantically similar to `criterion`
/// (cosine ≥ `threshold`). NULL and non-string cells never match.
pub fn sem_filter(
    slm: &Slm,
    table: &Table,
    column: &str,
    criterion: &str,
    threshold: f64,
) -> RelResult<Table> {
    let col = table.schema().require(column)?;
    let target = slm.embed(criterion);
    let mut keep = Vec::new();
    for i in 0..table.num_rows() {
        if let Value::Str(s) = table.cell(i, col) {
            let v = slm.embed(s);
            if cosine_dense(&v, &target) >= threshold {
                keep.push(i);
            }
        }
    }
    Ok(table.take(&keep))
}

/// Ranks rows by semantic similarity of `column` to `criterion` and keeps
/// the top `k`. Ties break by row order (stable).
pub fn sem_topk(
    slm: &Slm,
    table: &Table,
    column: &str,
    criterion: &str,
    k: usize,
) -> RelResult<Table> {
    let col = table.schema().require(column)?;
    let target = slm.embed(criterion);
    let mut scored: Vec<(usize, f64)> = (0..table.num_rows())
        .filter_map(|i| match table.cell(i, col) {
            Value::Str(s) => Some((i, cosine_dense(&slm.embed(s), &target))),
            _ => None,
        })
        .collect();
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
    });
    scored.truncate(k);
    let idx: Vec<usize> = scored.into_iter().map(|(i, _)| i).collect();
    Ok(table.take(&idx))
}

/// Fuzzy equi-join: pairs `(l, r)` where the embedding similarity of
/// `left_col` and `right_col` values is ≥ `threshold`. Each left row joins
/// its best-scoring right row only (to avoid quadratic blowup on near-
/// duplicate keys).
pub fn sem_join(
    slm: &Slm,
    left: &Table,
    right: &Table,
    left_col: &str,
    right_col: &str,
    threshold: f64,
) -> RelResult<Table> {
    let lc = left.schema().require(left_col)?;
    let rc = right.schema().require(right_col)?;
    // Pre-embed the right side.
    let right_vecs: Vec<Option<Vec<f32>>> = (0..right.num_rows())
        .map(|j| match right.cell(j, rc) {
            Value::Str(s) => Some(slm.embed(s)),
            _ => None,
        })
        .collect();
    let out_schema = left.schema().join(right.schema());
    let mut out = Table::empty(out_schema);
    for i in 0..left.num_rows() {
        let Value::Str(s) = left.cell(i, lc) else {
            continue;
        };
        let lv = slm.embed(s);
        let best = right_vecs
            .iter()
            .enumerate()
            .filter_map(|(j, rv)| rv.as_ref().map(|rv| (j, cosine_dense(&lv, rv))))
            .filter(|(_, score)| *score >= threshold)
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        if let Some((j, _)) = best {
            let mut row = left.row(i);
            row.extend(right.row(j));
            out.push_row(row)?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use unisem_relstore::{DataType, Schema};

    fn reviews() -> Table {
        Table::from_rows(
            Schema::of(&[("id", DataType::Int), ("text", DataType::Str)]),
            vec![
                vec![Value::Int(1), Value::str("battery life is excellent and charging is fast")],
                vec![Value::Int(2), Value::str("the screen cracked after one week")],
                vec![Value::Int(3), Value::str("battery drains quickly, very poor battery")],
                vec![Value::Int(4), Value::Null],
            ],
        )
        .unwrap()
    }

    #[test]
    fn sem_filter_matches_related_rows() {
        let slm = Slm::default();
        let out = sem_filter(&slm, &reviews(), "text", "battery performance", 0.15).unwrap();
        let ids: Vec<&Value> = (0..out.num_rows()).map(|i| out.cell(i, 0)).collect();
        assert!(ids.contains(&&Value::Int(1)));
        assert!(ids.contains(&&Value::Int(3)));
        assert!(!ids.contains(&&Value::Int(4)), "NULL never matches");
    }

    #[test]
    fn sem_filter_threshold_one_keeps_nothing_unrelated() {
        let slm = Slm::default();
        let out =
            sem_filter(&slm, &reviews(), "text", "totally unrelated topic zebra", 0.9).unwrap();
        assert_eq!(out.num_rows(), 0);
    }

    #[test]
    fn sem_topk_ranks_by_similarity() {
        let slm = Slm::default();
        let out = sem_topk(&slm, &reviews(), "text", "battery", 2).unwrap();
        assert_eq!(out.num_rows(), 2);
        let ids: Vec<&Value> = (0..2).map(|i| out.cell(i, 0)).collect();
        assert!(ids.contains(&&Value::Int(1)));
        assert!(ids.contains(&&Value::Int(3)));
    }

    #[test]
    fn sem_topk_k_larger_than_rows() {
        let slm = Slm::default();
        let out = sem_topk(&slm, &reviews(), "text", "screen", 10).unwrap();
        assert_eq!(out.num_rows(), 3, "NULL row excluded");
        assert_eq!(out.cell(0, 0), &Value::Int(2));
    }

    #[test]
    fn sem_join_fuzzy_names() {
        let slm = Slm::default();
        let left = Table::from_rows(
            Schema::of(&[("product_name", DataType::Str)]),
            vec![vec![Value::str("Alpha Widget Pro")], vec![Value::str("Gamma Gadget")]],
        )
        .unwrap();
        let right = Table::from_rows(
            Schema::of(&[("name", DataType::Str), ("price", DataType::Float)]),
            vec![
                vec![Value::str("alpha widget pro max"), Value::Float(99.0)],
                vec![Value::str("entirely different thing"), Value::Float(5.0)],
            ],
        )
        .unwrap();
        let out = sem_join(&slm, &left, &right, "product_name", "name", 0.5).unwrap();
        assert_eq!(out.num_rows(), 1);
        let price = out.schema().index_of("price").unwrap();
        assert_eq!(out.cell(0, price), &Value::Float(99.0));
    }

    #[test]
    fn sem_join_best_match_only() {
        let slm = Slm::default();
        let left = Table::from_rows(
            Schema::of(&[("a", DataType::Str)]),
            vec![vec![Value::str("alpha widget")]],
        )
        .unwrap();
        let right = Table::from_rows(
            Schema::of(&[("b", DataType::Str)]),
            vec![vec![Value::str("alpha widget")], vec![Value::str("alpha widgets")]],
        )
        .unwrap();
        let out = sem_join(&slm, &left, &right, "a", "b", 0.3).unwrap();
        assert_eq!(out.num_rows(), 1, "one best match per left row");
        let b = out.schema().index_of("b").unwrap();
        assert_eq!(out.cell(0, b), &Value::str("alpha widget"));
    }

    #[test]
    fn unknown_column_errors() {
        let slm = Slm::default();
        assert!(sem_filter(&slm, &reviews(), "missing", "x", 0.5).is_err());
        assert!(sem_topk(&slm, &reviews(), "missing", "x", 1).is_err());
    }
}
