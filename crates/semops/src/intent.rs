//! Structured query intents.

use unisem_relstore::plan::AggFunc;
use unisem_relstore::Value;

/// Comparison operators in filter intents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equality.
    Eq,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
}

/// One filter the question implies.
#[derive(Debug, Clone, PartialEq)]
pub enum FilterIntent {
    /// Restrict to a reporting period ("in Q2 2024", "during March 2024").
    Period(String),
    /// Restrict the subject to specific entities ("for Product Alpha",
    /// "compare A and B").
    SubjectIn(Vec<String>),
    /// Numeric comparison against a metric ("more than 15%", "over $100").
    Numeric {
        /// What metric the number refers to (column *hint*, resolved later).
        metric_hint: String,
        /// Comparison operator.
        op: CmpOp,
        /// Threshold value.
        value: Value,
    },
}

/// Requested ordering.
#[derive(Debug, Clone, PartialEq)]
pub struct SortIntent {
    /// Metric hint to sort by.
    pub metric_hint: String,
    /// Descending ("top", "highest") vs ascending ("lowest").
    pub descending: bool,
}

/// The structured meaning of a natural-language analytical question.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryIntent {
    /// Aggregate to compute, with the metric hint it applies to
    /// (`None` metric = count rows).
    pub aggregate: Option<(AggFunc, Option<String>)>,
    /// Grouping dimension hint ("per product", "by manufacturer").
    pub group_hint: Option<String>,
    /// Filters.
    pub filters: Vec<FilterIntent>,
    /// Ordering.
    pub sort: Option<SortIntent>,
    /// Row limit ("top 3").
    pub limit: Option<usize>,
    /// Entities the question names (canonical forms) — used for anchor
    /// selection and comparison framing.
    pub entities: Vec<String>,
    /// True when the question compares multiple entities ("compare A
    /// with B") — forces grouping by subject.
    pub comparative: bool,
    /// First metric word the question mentions, independent of whether an
    /// aggregate keyword captured it ("efficacy" in "which drug is more
    /// effective" has no aggregate but still names the metric).
    pub metric_mention: Option<String>,
    /// The raw question.
    pub raw: String,
}

impl QueryIntent {
    /// True when no analytical structure was recognized (the question is
    /// lookup-style and should go to retrieval instead of TableQA).
    pub fn is_plain_lookup(&self) -> bool {
        self.aggregate.is_none()
            && self.group_hint.is_none()
            && self.sort.is_none()
            && !self.comparative
            && self.filters.iter().all(|f| !matches!(f, FilterIntent::Numeric { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_plain_lookup() {
        assert!(QueryIntent::default().is_plain_lookup());
    }

    #[test]
    fn aggregate_makes_analytical() {
        let mut i = QueryIntent::default();
        i.aggregate = Some((AggFunc::Sum, Some("sales".into())));
        assert!(!i.is_plain_lookup());
    }

    #[test]
    fn numeric_filter_makes_analytical() {
        let mut i = QueryIntent::default();
        i.filters.push(FilterIntent::Numeric {
            metric_hint: "sales".into(),
            op: CmpOp::Gt,
            value: Value::Float(15.0),
        });
        assert!(!i.is_plain_lookup());
    }

    #[test]
    fn period_filter_alone_still_lookup() {
        let mut i = QueryIntent::default();
        i.filters.push(FilterIntent::Period("Q2".into()));
        assert!(i.is_plain_lookup());
    }
}
