//! Engine construction from workloads, pipeline evaluation, and plain-text
//! table rendering for experiment reports.

use std::collections::BTreeMap;
use std::time::Instant;

use unisem_core::{EngineBuilder, EngineConfig, QaPipeline, UnifiedEngine};
use unisem_workloads::{answer_matches, EcommerceWorkload, HealthcareWorkload, QaCategory, QaItem};

/// Builds a [`UnifiedEngine`] over every modality of an e-commerce
/// workload.
pub fn build_ecommerce_engine(w: &EcommerceWorkload, config: EngineConfig) -> UnifiedEngine {
    let mut b = EngineBuilder::with_config(w.lexicon.clone(), config);
    for name in w.db.table_names() {
        b.add_table(name, w.db.table(name).expect("listed").clone()).expect("fresh");
    }
    for coll in w.semi.collections() {
        for doc in w.semi.docs(coll) {
            b.add_json(coll, doc.clone());
        }
    }
    for d in &w.documents {
        b.add_document(d.title.clone(), d.text.clone(), d.source.clone());
    }
    b.build().0
}

/// Builds a [`UnifiedEngine`] over a healthcare workload.
pub fn build_healthcare_engine(w: &HealthcareWorkload, config: EngineConfig) -> UnifiedEngine {
    let mut b = EngineBuilder::with_config(w.lexicon.clone(), config);
    for name in w.db.table_names() {
        b.add_table(name, w.db.table(name).expect("listed").clone()).expect("fresh");
    }
    for coll in w.semi.collections() {
        for doc in w.semi.docs(coll) {
            b.add_json(coll, doc.clone());
        }
    }
    for d in &w.documents {
        b.add_document(d.title.clone(), d.text.clone(), d.source.clone());
    }
    b.build().0
}

/// Evaluation result for one pipeline on one QA set.
#[derive(Debug, Clone, Default)]
pub struct EvalResult {
    /// `(correct, total)` per category.
    pub by_category: BTreeMap<QaCategory, (usize, usize)>,
    /// Total wall-clock seconds spent answering.
    pub elapsed_secs: f64,
    /// Per-question records: `(question id, correct, confidence,
    /// semantic entropy, predictive entropy, lexical variance)`.
    pub records: Vec<QuestionRecord>,
}

/// Per-question evaluation record (consumed by E5 calibration).
#[derive(Debug, Clone)]
pub struct QuestionRecord {
    /// QA item id.
    pub id: usize,
    /// Category.
    pub category: QaCategory,
    /// Whether the answer matched gold.
    pub correct: bool,
    /// Engine confidence.
    pub confidence: f64,
    /// Semantic entropy of the answer samples.
    pub semantic_entropy: f64,
    /// Discrete semantic entropy.
    pub discrete_entropy: f64,
    /// Predictive-entropy baseline.
    pub predictive_entropy: f64,
    /// Lexical-variance baseline.
    pub lexical_variance: f64,
}

impl EvalResult {
    /// Overall accuracy.
    pub fn overall(&self) -> f64 {
        let (c, t) = self.by_category.values().fold((0, 0), |(c, t), (ci, ti)| (c + ci, t + ti));
        c as f64 / t.max(1) as f64
    }

    /// Accuracy for one category (1.0 when the category is absent).
    pub fn accuracy(&self, cat: QaCategory) -> f64 {
        self.by_category.get(&cat).map_or(1.0, |(c, t)| *c as f64 / (*t).max(1) as f64)
    }

    /// Mean seconds per question.
    pub fn secs_per_question(&self) -> f64 {
        let n: usize = self.by_category.values().map(|(_, t)| t).sum();
        self.elapsed_secs / n.max(1) as f64
    }
}

/// Runs a pipeline over a QA set and scores it.
pub fn evaluate_pipeline(pipeline: &dyn QaPipeline, qa: &[QaItem]) -> EvalResult {
    let mut result = EvalResult::default();
    let start = Instant::now();
    for item in qa {
        let ans = pipeline.answer(&item.question);
        let correct = answer_matches(&item.gold, &ans.text);
        let entry = result.by_category.entry(item.category).or_insert((0, 0));
        entry.1 += 1;
        if correct {
            entry.0 += 1;
        }
        result.records.push(QuestionRecord {
            id: item.id,
            category: item.category,
            correct,
            confidence: ans.confidence,
            semantic_entropy: ans.entropy.semantic_entropy,
            discrete_entropy: ans.entropy.discrete_semantic_entropy,
            predictive_entropy: ans.entropy.predictive_entropy,
            lexical_variance: ans.entropy.lexical_variance,
        });
    }
    result.elapsed_secs = start.elapsed().as_secs_f64();
    result
}

/// Minimal fixed-width text-table printer for experiment reports.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with a header row.
    pub fn new<I: IntoIterator<Item = S>, S: Into<String>>(header: I) -> Self {
        Self { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header arity).
    pub fn row<I: IntoIterator<Item = S>, S: Into<String>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = line(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(out.len().saturating_sub(1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats bytes as KiB with one decimal.
pub fn kib(bytes: usize) -> String {
    format!("{:.1}", bytes as f64 / 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_table_renders_aligned() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["alpha", "1"]).row(["much longer name", "22"]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        TextTable::new(["a", "b"]).row(["only one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(f3(0.1234), "0.123");
        assert_eq!(kib(2048), "2.0");
    }
}
