//! The eight experiments of EXPERIMENTS.md.
//!
//! Each function prints the table/figure series it regenerates. The paper
//! (a 4-page vision paper) publishes no quantitative tables; these
//! experiments substantiate its textual claims — see DESIGN.md §4 for the
//! claim ↔ experiment mapping.

use std::sync::Arc;
use std::time::Instant;

use unisem_core::{DirectSlmPipeline, EngineConfig, NaiveRagPipeline, TextToSqlPipeline};
use unisem_docstore::DocStore;
use unisem_entropy::{auroc, rejection_accuracy_curve};
use unisem_extract::TableGenerator;
use unisem_hetgraph::GraphBuilder;
use unisem_retrieval::{
    ChunkRetriever, DenseRetriever, LexicalRetriever, TopologyConfig, TopologyRetriever,
};
use unisem_slm::{CostModel, ModelClass, Slm, SlmConfig};
use unisem_workloads::{
    EcommerceConfig, EcommerceWorkload, HealthcareConfig, HealthcareWorkload, QaCategory,
    ReportCorpus,
};

use crate::harness::{
    build_ecommerce_engine, build_healthcare_engine, evaluate_pipeline, f2, f3, kib, EvalResult,
    QuestionRecord, TextTable,
};

fn default_ecommerce(seed: u64) -> EcommerceWorkload {
    EcommerceWorkload::generate(EcommerceConfig {
        products: 12,
        quarters: 4,
        reviews_per_product: 3,
        qa_per_category: 5,
        seed,
        name_offset: 0,
    })
}

fn default_healthcare(seed: u64) -> HealthcareWorkload {
    HealthcareWorkload::generate(HealthcareConfig {
        drugs: 8,
        patients: 16,
        trials_per_drug: 3,
        qa_per_category: 5,
        seed,
    })
}

/// E1 / Table 1 — Multi-Entity QA accuracy across systems.
///
/// Claim (§I gap 2, §III.C): the hybrid SLM pipeline resolves Multi-Entity
/// QA that Text-to-SQL and naive RAG each miss on their own side.
pub fn e1() {
    println!("== E1 (Table 1): QA accuracy by system and category ==\n");
    for (domain, seed) in [("ecommerce", 101u64), ("healthcare", 202u64)] {
        println!("--- workload: {domain} ---");
        let (qa, engine, docs, db) = match domain {
            "ecommerce" => {
                let w = default_ecommerce(seed);
                let e = build_ecommerce_engine(&w, EngineConfig::default());
                (w.qa.clone(), e, Arc::new(w.docstore()), w.db.clone())
            }
            _ => {
                let w = default_healthcare(seed);
                let e = build_healthcare_engine(&w, EngineConfig::default());
                (w.qa.clone(), e, Arc::new(w.docstore()), w.db.clone())
            }
        };
        let slm = engine.slm().clone();
        let rag = NaiveRagPipeline::new(slm.clone(), docs, 5);
        let sql = TextToSqlPipeline::new(slm.clone(), db);
        let direct = DirectSlmPipeline::new(slm);

        let pipelines: Vec<(&str, EvalResult)> = vec![
            ("unisem (ours)", evaluate_pipeline(&engine, &qa)),
            ("naive_rag", evaluate_pipeline(&rag, &qa)),
            ("text_to_sql", evaluate_pipeline(&sql, &qa)),
            ("direct_slm", evaluate_pipeline(&direct, &qa)),
        ];

        let mut t = TextTable::new([
            "system",
            "lookup",
            "aggregate",
            "multi_entity",
            "comparative",
            "cross_modal",
            "unanswerable",
            "overall",
        ]);
        for (name, r) in &pipelines {
            t.row([
                (*name).to_string(),
                f2(r.accuracy(QaCategory::SingleEntityLookup)),
                f2(r.accuracy(QaCategory::Aggregate)),
                f2(r.accuracy(QaCategory::MultiEntityFilter)),
                f2(r.accuracy(QaCategory::Comparative)),
                f2(r.accuracy(QaCategory::CrossModal)),
                f2(r.accuracy(QaCategory::Unanswerable)),
                f2(r.overall()),
            ]);
        }
        t.print();
    }
}

/// E2 / Table 2 — index footprint and build cost vs corpus scale.
///
/// Claim (§I gap 1): graph indexing avoids "large-scale vector indexing";
/// §III.A: the graph "reduces reliance on computationally expensive dense
/// retrieval".
pub fn e2() {
    println!("== E2 (Table 2): index build time and storage vs corpus size ==\n");
    let mut t = TextTable::new([
        "docs",
        "chunks",
        "graph_ms",
        "graph_KiB",
        "nodes",
        "edges",
        "dense_ms",
        "dense_KiB",
        "bm25_KiB",
    ]);
    for products in [8usize, 16, 32, 64] {
        let w = EcommerceWorkload::generate(EcommerceConfig {
            products,
            quarters: 4,
            reviews_per_product: 3,
            qa_per_category: 1,
            seed: 300 + products as u64,
            name_offset: 0,
        });
        let docs = Arc::new(w.docstore());
        let slm = Slm::new(SlmConfig { lexicon: w.lexicon.clone(), ..SlmConfig::default() });

        let start = Instant::now();
        let mut gb = GraphBuilder::new(slm.clone());
        gb.add_docstore(&docs);
        for name in w.db.table_names() {
            gb.add_table(name, w.db.table(name).expect("listed"));
        }
        let (graph, _) = gb.finish();
        let graph_ms = start.elapsed().as_secs_f64() * 1e3;

        let start = Instant::now();
        let dense = DenseRetriever::build(slm, &docs);
        let dense_ms = start.elapsed().as_secs_f64() * 1e3;

        t.row([
            docs.num_documents().to_string(),
            docs.num_chunks().to_string(),
            f2(graph_ms),
            kib(graph.approx_bytes()),
            graph.num_nodes().to_string(),
            graph.num_edges().to_string(),
            f2(dense_ms),
            kib(dense.index_bytes()),
            kib(docs.index_bytes()),
        ]);
    }
    t.print();
}

/// E3 / Figure 2 — retrieval latency vs corpus size, per retriever.
///
/// Claim (§III.B): topology-guided traversal "reduc[es] computational
/// overhead and improv[es] response times" by scoring a sparse frontier
/// instead of every vector.
pub fn e3() {
    println!("== E3 (Figure 2): retrieval latency vs corpus size ==\n");
    let mut t = TextTable::new([
        "docs",
        "chunks",
        "topo_us_p50",
        "dense_us_p50",
        "bm25_us_p50",
        "frontier_nodes",
        "total_nodes",
    ]);
    for products in [8usize, 16, 32, 64] {
        let w = EcommerceWorkload::generate(EcommerceConfig {
            products,
            quarters: 4,
            reviews_per_product: 3,
            qa_per_category: 3,
            seed: 400 + products as u64,
            name_offset: 0,
        });
        let docs = Arc::new(w.docstore());
        let slm = Slm::new(SlmConfig { lexicon: w.lexicon.clone(), ..SlmConfig::default() });
        let mut gb = GraphBuilder::new(slm.clone());
        gb.add_docstore(&docs);
        let (graph, _) = gb.finish();
        let graph = Arc::new(graph);
        let topo = TopologyRetriever::new(
            slm.clone(),
            graph.clone(),
            docs.clone(),
            TopologyConfig::default(),
        );
        let dense = DenseRetriever::build(slm.clone(), &docs);
        let bm25 = LexicalRetriever::new(docs.clone());

        let queries: Vec<&str> = w.qa.iter().map(|i| i.question.as_str()).collect();
        let mut lat_topo = Vec::new();
        let mut lat_dense = Vec::new();
        let mut lat_bm25 = Vec::new();
        let mut frontier = Vec::new();
        for q in &queries {
            let s = Instant::now();
            let (_, stats) = topo.retrieve_with_stats(q, 5);
            lat_topo.push(s.elapsed().as_secs_f64() * 1e6);
            frontier.push(stats.nodes_touched as f64);

            let s = Instant::now();
            dense.retrieve(q, 5);
            lat_dense.push(s.elapsed().as_secs_f64() * 1e6);

            let s = Instant::now();
            bm25.retrieve(q, 5);
            lat_bm25.push(s.elapsed().as_secs_f64() * 1e6);
        }
        t.row([
            docs.num_documents().to_string(),
            docs.num_chunks().to_string(),
            f2(median(&mut lat_topo)),
            f2(median(&mut lat_dense)),
            f2(median(&mut lat_bm25)),
            f2(mean(&frontier)),
            graph.num_nodes().to_string(),
        ]);
    }
    t.print();
    println!("(series: one line per retriever, x = docs, y = p50 latency in µs)\n");

    // Multi-domain sweep: a heterogeneous data lake is many weakly-coupled
    // domains. Queries anchor inside one domain, so the traversal frontier
    // stays constant while the dense scan grows with the whole lake — the
    // crossover behind §III.B's efficiency claim.
    println!("--- multi-domain lake (8 products/domain, queries target domain 0) ---");
    let mut t = TextTable::new([
        "domains",
        "chunks",
        "topo_us_p50",
        "dense_us_p50",
        "frontier",
        "total_nodes",
    ]);
    for domains in [1usize, 2, 4, 8, 16] {
        let mut docs = DocStore::default();
        let mut lexicon = unisem_slm::Lexicon::new();
        let mut queries: Vec<String> = Vec::new();
        for d in 0..domains {
            let w = EcommerceWorkload::generate(EcommerceConfig {
                products: 8,
                quarters: 4,
                reviews_per_product: 3,
                qa_per_category: 3,
                seed: 420 + d as u64,
                name_offset: d * 8,
            });
            for spec in &w.documents {
                docs.add_document(spec.title.clone(), spec.text.clone(), spec.source.clone());
            }
            for i in 0..8 {
                lexicon.add(
                    &unisem_workloads::names::product(i + d * 8),
                    unisem_slm::EntityKind::Product,
                );
            }
            for i in 0..10 {
                lexicon.add(
                    &unisem_workloads::names::manufacturer(i),
                    unisem_slm::EntityKind::Organization,
                );
            }
            if d == 0 {
                queries = w.qa.iter().map(|i| i.question.clone()).collect();
            }
        }
        let docs = Arc::new(docs);
        let slm = Slm::new(SlmConfig { lexicon, ..SlmConfig::default() });
        let mut gb = GraphBuilder::new(slm.clone());
        gb.add_docstore(&docs);
        let (graph, _) = gb.finish();
        let graph = Arc::new(graph);
        let topo = TopologyRetriever::new(
            slm.clone(),
            graph.clone(),
            docs.clone(),
            TopologyConfig::default(),
        );
        let dense = DenseRetriever::build(slm, &docs);

        let mut lat_topo = Vec::new();
        let mut lat_dense = Vec::new();
        let mut frontier = Vec::new();
        // Warm + measure over several passes for stable medians.
        for _ in 0..3 {
            for q in &queries {
                let s = Instant::now();
                let (_, stats) = topo.retrieve_with_stats(q, 5);
                lat_topo.push(s.elapsed().as_secs_f64() * 1e6);
                frontier.push(stats.nodes_touched as f64);
                let s = Instant::now();
                dense.retrieve(q, 5);
                lat_dense.push(s.elapsed().as_secs_f64() * 1e6);
            }
        }
        t.row([
            domains.to_string(),
            docs.num_chunks().to_string(),
            f2(median(&mut lat_topo)),
            f2(median(&mut lat_dense)),
            f2(mean(&frontier)),
            graph.num_nodes().to_string(),
        ]);
    }
    t.print();
}

fn median(xs: &mut [f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    xs[xs.len() / 2]
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// E4 / Table 3 — Relational Table Generation quality.
///
/// Claim (§III.C task 1): the SLM converts free text into structured
/// tables with columns like "Quarter" and "Change Percentage".
pub fn e4() {
    println!("== E4 (Table 3): extraction quality on the sales-report corpus ==\n");
    let mut t = TextTable::new([
        "facts",
        "extracted",
        "row_precision",
        "row_recall",
        "row_f1",
        "pct_acc",
        "amount_acc",
        "docs_per_sec",
    ]);
    for n_facts in [60usize, 200] {
        let corpus = ReportCorpus::generate(n_facts, 500 + n_facts as u64);
        let mut lexicon = unisem_slm::Lexicon::new();
        for (name, kind) in &corpus.lexicon_entries {
            lexicon.add(name, *kind);
        }
        let slm = Slm::new(SlmConfig { lexicon, ..SlmConfig::default() });
        let gen = TableGenerator::new(slm);
        let texts: Vec<&str> = corpus.texts.iter().map(String::as_str).collect();

        let start = Instant::now();
        let (table, _stats) = gen.generate_table(&texts).expect("extraction");
        let secs = start.elapsed().as_secs_f64();

        let m = score_extraction(&table, &corpus);
        t.row([
            n_facts.to_string(),
            table.num_rows().to_string(),
            f2(m.precision),
            f2(m.recall),
            f2(m.f1),
            f2(m.pct_acc),
            f2(m.amount_acc),
            f2(corpus.texts.len() as f64 / secs.max(1e-9)),
        ]);
    }
    t.print();
}

/// Extraction scoring: rows match gold facts on (subject, period).
pub struct ExtractionScore {
    /// Matched extracted rows / extracted rows.
    pub precision: f64,
    /// Matched gold facts / gold facts.
    pub recall: f64,
    /// Harmonic mean.
    pub f1: f64,
    /// change_pct cell accuracy over matched pairs asserting one.
    pub pct_acc: f64,
    /// amount cell accuracy over matched pairs asserting one.
    pub amount_acc: f64,
}

/// Scores an extracted table against a gold report corpus.
pub fn score_extraction(table: &unisem_relstore::Table, corpus: &ReportCorpus) -> ExtractionScore {
    let idx = |name: &str| table.schema().index_of(name);
    let (si, pi) = match (idx("subject"), idx("period")) {
        (Some(s), Some(p)) => (s, p),
        _ => {
            return ExtractionScore {
                precision: 0.0,
                recall: 0.0,
                f1: 0.0,
                pct_acc: 0.0,
                amount_acc: 0.0,
            }
        }
    };
    let ci = idx("change_pct");
    let ai = idx("amount");

    let mut matched_rows = 0usize;
    let mut matched_gold = vec![false; corpus.facts.len()];
    let mut pct_ok = 0usize;
    let mut pct_total = 0usize;
    let mut amt_ok = 0usize;
    let mut amt_total = 0usize;

    for r in 0..table.num_rows() {
        let subject = table.cell(r, si).to_string().to_lowercase();
        let period = table.cell(r, pi).to_string();
        let gold = corpus
            .facts
            .iter()
            .enumerate()
            .find(|(gi, f)| !matched_gold[*gi] && f.subject == subject && f.period == period);
        let Some((gi, fact)) = gold else { continue };
        matched_gold[gi] = true;
        matched_rows += 1;
        if let (Some(ci), Some(gold_pct)) = (ci, fact.change_pct) {
            pct_total += 1;
            if let Some(v) = table.cell(r, ci).as_f64() {
                if (v - gold_pct).abs() < 0.11 {
                    pct_ok += 1;
                }
            }
        }
        if let (Some(ai), Some(gold_amt)) = (ai, fact.amount) {
            amt_total += 1;
            if let Some(v) = table.cell(r, ai).as_f64() {
                if (v - gold_amt).abs() < 0.51 {
                    amt_ok += 1;
                }
            }
        }
    }
    let precision = matched_rows as f64 / table.num_rows().max(1) as f64;
    let recall = matched_rows as f64 / corpus.facts.len().max(1) as f64;
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    ExtractionScore {
        precision,
        recall,
        f1,
        pct_acc: pct_ok as f64 / pct_total.max(1) as f64,
        amount_acc: amt_ok as f64 / amt_total.max(1) as f64,
    }
}

/// E5 / Figure 3 — semantic entropy predicts answer errors.
///
/// Claim (§III.D): semantic entropy is "more predictive of model accuracy
/// compared to traditional baselines"; high entropy flags outputs for
/// review.
pub fn e5() {
    println!("== E5 (Figure 3): uncertainty calibration (AUROC, error prediction) ==\n");
    // Calibration is measured on the generation path *without* abstention
    // (the naive RAG pipeline): the unified engine already consumes its own
    // entropy to abstain, which would make the evaluation circular. This
    // mirrors Kuhn et al.'s protocol — sample answers, cluster, and test
    // whether entropy predicts which answers are wrong.
    let mut records: Vec<QuestionRecord> = Vec::new();
    {
        let w = EcommerceWorkload::generate(EcommerceConfig {
            products: 12,
            quarters: 4,
            reviews_per_product: 3,
            qa_per_category: 8,
            seed: 601,
            name_offset: 0,
        });
        let slm = Slm::new(SlmConfig { lexicon: w.lexicon.clone(), ..SlmConfig::default() });
        let rag = NaiveRagPipeline::new(slm, Arc::new(w.docstore()), 5);
        records.extend(evaluate_pipeline(&rag, &w.qa).records);
    }
    {
        let w = HealthcareWorkload::generate(HealthcareConfig {
            drugs: 8,
            patients: 16,
            trials_per_drug: 3,
            qa_per_category: 8,
            seed: 602,
        });
        let slm = Slm::new(SlmConfig { lexicon: w.lexicon.clone(), ..SlmConfig::default() });
        let rag = NaiveRagPipeline::new(slm, Arc::new(w.docstore()), 5);
        records.extend(evaluate_pipeline(&rag, &w.qa).records);
    }

    let labels: Vec<bool> = records.iter().map(|r| !r.correct).collect();
    let measures: [(&str, Vec<f64>); 4] = [
        ("semantic_entropy", records.iter().map(|r| r.semantic_entropy).collect()),
        ("discrete_semantic", records.iter().map(|r| r.discrete_entropy).collect()),
        ("predictive_entropy", records.iter().map(|r| r.predictive_entropy).collect()),
        ("lexical_variance", records.iter().map(|r| r.lexical_variance).collect()),
    ];
    let mut t = TextTable::new(["uncertainty measure", "AUROC (predicting error)"]);
    for (name, scores) in &measures {
        t.row([(*name).to_string(), f3(auroc(scores, &labels))]);
    }
    t.print();

    let scores: Vec<f64> = records.iter().map(|r| r.discrete_entropy).collect();
    let correct: Vec<bool> = records.iter().map(|r| r.correct).collect();
    let curve = rejection_accuracy_curve(&scores, &correct, &[0.5, 0.6, 0.7, 0.8, 0.9, 1.0]);
    let mut t = TextTable::new(["kept fraction", "accuracy on kept"]);
    for (f, acc) in curve {
        t.row([f2(f), f2(acc)]);
    }
    println!("rejection curve (discrete semantic entropy):");
    t.print();
    println!("(n = {} questions across both workloads)\n", records.len());
}

/// E6 / Figure 4 — retrieval quality vs traversal depth and k.
///
/// Claim (§III.B): centrality/connectivity prioritization finds the
/// relevant nodes; deeper traversal trades cost for recall.
pub fn e6() {
    println!("== E6 (Figure 4): doc-level recall@k and MRR vs hops and k ==\n");
    let w = default_ecommerce(700);
    let docs = Arc::new(w.docstore());
    let slm = Slm::new(SlmConfig { lexicon: w.lexicon.clone(), ..SlmConfig::default() });
    let mut gb = GraphBuilder::new(slm.clone());
    gb.add_docstore(&docs);
    for name in w.db.table_names() {
        gb.add_table(name, w.db.table(name).expect("listed"));
    }
    let (graph, _) = gb.finish();
    let graph = Arc::new(graph);

    // Questions with retrieval ground truth.
    let items: Vec<_> = w.qa.iter().filter(|i| !i.gold_doc_ids.is_empty()).collect();

    let mut t = TextTable::new(["retriever", "hops", "recall@1", "recall@5", "recall@10", "MRR"]);
    for hops in [1usize, 2, 3, 4] {
        let topo = TopologyRetriever::new(
            slm.clone(),
            graph.clone(),
            docs.clone(),
            TopologyConfig { max_hops: hops, ..TopologyConfig::default() },
        );
        let (r1, r5, r10, m) = doc_level_metrics(&topo, &docs, &items);
        t.row(["topology".to_string(), hops.to_string(), f2(r1), f2(r5), f2(r10), f2(m)]);
    }
    // Structure-only variant (β = 0): isolates what the graph contributes
    // without the lexical fusion component.
    for hops in [1usize, 2, 3, 4] {
        let topo = TopologyRetriever::new(
            slm.clone(),
            graph.clone(),
            docs.clone(),
            TopologyConfig { max_hops: hops, alpha: 1.0, beta: 0.0, ..TopologyConfig::default() },
        );
        let (r1, r5, r10, m) = doc_level_metrics(&topo, &docs, &items);
        t.row(["topology (α only)".to_string(), hops.to_string(), f2(r1), f2(r5), f2(r10), f2(m)]);
    }
    let dense = DenseRetriever::build(slm.clone(), &docs);
    let (r1, r5, r10, m) = doc_level_metrics(&dense, &docs, &items);
    t.row(["dense".to_string(), "-".to_string(), f2(r1), f2(r5), f2(r10), f2(m)]);
    let bm25 = LexicalRetriever::new(docs.clone());
    let (r1, r5, r10, m) = doc_level_metrics(&bm25, &docs, &items);
    t.row(["bm25".to_string(), "-".to_string(), f2(r1), f2(r5), f2(r10), f2(m)]);
    t.print();
}

/// Doc-level recall@k / MRR for one retriever over gold-doc-labeled items.
fn doc_level_metrics(
    retriever: &dyn ChunkRetriever,
    docs: &DocStore,
    items: &[&unisem_workloads::QaItem],
) -> (f64, f64, f64, f64) {
    let mut r1 = 0.0;
    let mut r5 = 0.0;
    let mut r10 = 0.0;
    let mut mrr = 0.0;
    for item in items {
        let hits = retriever.retrieve(&item.question, 10);
        let hit_docs: Vec<usize> =
            hits.iter().filter_map(|h| docs.chunk(h.chunk_id).ok().map(|c| c.doc_id)).collect();
        // Dedup consecutive repeats while preserving rank order.
        let mut ranked: Vec<usize> = Vec::new();
        for d in hit_docs {
            if !ranked.contains(&d) {
                ranked.push(d);
            }
        }
        let gold = &item.gold_doc_ids;
        let hit_at = |k: usize| -> f64 {
            if ranked.iter().take(k).any(|d| gold.contains(d)) {
                1.0
            } else {
                0.0
            }
        };
        r1 += hit_at(1);
        r5 += hit_at(5);
        r10 += hit_at(10);
        mrr += ranked.iter().position(|d| gold.contains(d)).map_or(0.0, |p| 1.0 / (p + 1) as f64);
    }
    let n = items.len().max(1) as f64;
    (r1 / n, r5 / n, r10 / n, mrr / n)
}

/// E7 / Table 4 — component ablations.
///
/// Claim (§III): every component is load-bearing — topology for retrieval,
/// extraction + operator synthesis for Multi-Entity QA.
pub fn e7() {
    println!("== E7 (Table 4): ablations on the e-commerce workload ==\n");
    let w = default_ecommerce(800);

    let row_for = |t: &mut TextTable, name: &str, r: &EvalResult| {
        t.row([
            name.to_string(),
            f2(r.accuracy(QaCategory::SingleEntityLookup)),
            f2(r.accuracy(QaCategory::Aggregate)),
            f2(r.accuracy(QaCategory::MultiEntityFilter)),
            f2(r.accuracy(QaCategory::Comparative)),
            f2(r.accuracy(QaCategory::CrossModal)),
            f2(r.accuracy(QaCategory::Unanswerable)),
            f2(r.overall()),
        ]);
    };
    let header = [
        "variant",
        "lookup",
        "aggregate",
        "multi_entity",
        "comparative",
        "cross_modal",
        "unanswerable",
        "overall",
    ];

    // Scenario A: all modalities ingested (native tables present).
    println!("--- scenario A: all modalities ingested ---");
    let variants: Vec<(&str, EngineConfig)> = vec![
        ("full", EngineConfig::default()),
        (
            "- topology (dense retrieval)",
            EngineConfig { enable_topology: false, ..EngineConfig::default() },
        ),
        (
            "- operator synthesis",
            EngineConfig { enable_synthesis: false, ..EngineConfig::default() },
        ),
        ("- entity nodes", EngineConfig { enable_entity_nodes: false, ..EngineConfig::default() }),
    ];
    let mut t = TextTable::new(header);
    for (name, config) in variants {
        let engine = build_ecommerce_engine(&w, config);
        let r = evaluate_pipeline(&engine, &w.qa);
        row_for(&mut t, name, &r);
    }
    t.print();

    // Scenario B: text-only ingestion — no native tables, so every
    // analytical answer must come from Relational Table Generation. This is
    // the paper's §III.C hybrid pipeline (unstructured → tables → TableQA):
    // removing extraction should collapse the analytical categories.
    println!("--- scenario B: text-only ingestion (tables must be extracted) ---");
    let mut t = TextTable::new(header);
    for (name, config) in [
        ("full (extraction on)", EngineConfig::default()),
        ("- extraction", EngineConfig { enable_extraction: false, ..EngineConfig::default() }),
    ] {
        let mut b = unisem_core::EngineBuilder::with_config(w.lexicon.clone(), config);
        for d in &w.documents {
            b.add_document(d.title.clone(), d.text.clone(), d.source.clone());
        }
        let engine = b.build().0;
        let r = evaluate_pipeline(&engine, &w.qa);
        row_for(&mut t, name, &r);
    }
    t.print();
}

/// E8 / Figure 5 — efficiency/accuracy frontier: SLM-class vs LLM-class.
///
/// Claim (§I): LLM pipelines are "impractical for applications requiring
/// low-latency responses or deployment on devices with limited memory";
/// the SLM system keeps accuracy at a fraction of the cost.
pub fn e8() {
    println!("== E8 (Figure 5): accuracy vs simulated inference cost ==\n");
    let w = default_ecommerce(900);

    // Each system gets a fresh SLM so meters are independent.
    struct Point {
        name: &'static str,
        class: ModelClass,
        accuracy: f64,
        tokens_per_q: f64,
        latency_ms_per_q: f64,
        energy_j_per_q: f64,
        memory_gb: f64,
    }
    let mut points: Vec<Point> = Vec::new();
    let n_q = w.qa.len() as f64;

    // unisem on an SLM (the paper's system).
    {
        let engine = build_ecommerce_engine(
            &w,
            EngineConfig { model_class: ModelClass::SlmClass, ..EngineConfig::default() },
        );
        engine.meter().reset();
        let r = evaluate_pipeline(&engine, &w.qa);
        let u = engine.meter().snapshot();
        let model = CostModel::for_class(ModelClass::SlmClass);
        points.push(Point {
            name: "unisem (SLM)",
            class: ModelClass::SlmClass,
            accuracy: r.overall(),
            tokens_per_q: u.total_tokens() as f64 / n_q,
            latency_ms_per_q: model
                .latency_secs(u.embed_tokens + u.tag_tokens + u.prompt_tokens, u.decode_tokens)
                / n_q
                * 1e3,
            energy_j_per_q: model.energy_joules(u.total_tokens()) / n_q,
            memory_gb: model.memory_gb,
        });
    }

    // Conventional RAG, once costed as SLM and once as the LLM it would
    // normally require.
    for (name, class) in
        [("naive_rag (SLM)", ModelClass::SlmClass), ("naive_rag (LLM)", ModelClass::LlmClass)]
    {
        let lexicon = w.lexicon.clone();
        let slm = Slm::new(SlmConfig { lexicon, class, ..SlmConfig::default() });
        let rag = NaiveRagPipeline::new(slm.clone(), Arc::new(w.docstore()), 5);
        slm.meter().reset();
        let r = evaluate_pipeline(&rag, &w.qa);
        let u = slm.meter().snapshot();
        let model = CostModel::for_class(class);
        points.push(Point {
            name,
            class,
            accuracy: r.overall(),
            tokens_per_q: u.total_tokens() as f64 / n_q,
            latency_ms_per_q: model
                .latency_secs(u.embed_tokens + u.tag_tokens + u.prompt_tokens, u.decode_tokens)
                / n_q
                * 1e3,
            energy_j_per_q: model.energy_joules(u.total_tokens()) / n_q,
            memory_gb: model.memory_gb,
        });
    }

    let mut t = TextTable::new([
        "system",
        "class",
        "accuracy",
        "tokens/q",
        "sim_latency_ms/q",
        "sim_energy_J/q",
        "memory_GB",
    ]);
    for p in &points {
        t.row([
            p.name.to_string(),
            format!("{:?}", p.class),
            f2(p.accuracy),
            f2(p.tokens_per_q),
            f2(p.latency_ms_per_q),
            f2(p.energy_j_per_q),
            f2(p.memory_gb),
        ]);
    }
    t.print();
    println!("(frontier: accuracy vs sim_latency; the SLM system should dominate LLM RAG)\n");
}

/// Runs every experiment in order.
pub fn all() {
    e1();
    e2();
    e3();
    e4();
    e5();
    e6();
    e7();
    e8();
}
