//! Per-stage pipeline profile: builds the two evaluation workloads,
//! answers their full QA sets through [`UnifiedEngine::answer_batch`], and
//! emits every tracekit stage timing as a detkit `Stats` JSON line
//! (suite `profile`, name `<workload>.<stage>`).
//!
//! The default run regenerates `BENCH_baseline.json` in the current
//! directory; `--smoke` shrinks the workloads and prints to stdout only
//! (the ci.sh bench smoke step), leaving the committed baseline untouched.
//!
//! ```sh
//! cargo run --release -p unisem-bench --bin profile            # rewrite baseline
//! cargo run --release -p unisem-bench --bin profile -- --smoke # CI smoke
//! ```

use std::collections::BTreeMap;

use detkit::bench::Stats;
use unisem_bench::harness::{build_ecommerce_engine, build_healthcare_engine};
use unisem_core::{EngineConfig, TimingReport, UnifiedEngine};
use unisem_workloads::{EcommerceConfig, EcommerceWorkload, HealthcareConfig, HealthcareWorkload};

/// Engine builds per workload: build-stage lines get real order statistics
/// over five independent builds instead of the degenerate single sample a
/// one-shot build produces.
const BUILD_ITERS: usize = 5;

/// Flattens stage timings from several engine runs into `Stats` lines,
/// concatenating the per-call samples of the same stage across runs so
/// median/p95/min/max are computed over every recorded call.
fn stage_stats(workload: &str, reports: &[TimingReport]) -> Vec<Stats> {
    let mut order: Vec<&'static str> = Vec::new();
    let mut agg: BTreeMap<&'static str, (u64, u64, Vec<u64>)> = BTreeMap::new();
    for report in reports {
        for &(stage, count, total_ns) in &report.stages {
            if !agg.contains_key(stage) {
                order.push(stage);
            }
            let entry = agg.entry(stage).or_default();
            entry.0 += count;
            entry.1 += total_ns;
            entry.2.extend_from_slice(report.samples_of(stage));
        }
    }
    order
        .into_iter()
        .map(|stage| {
            let (count, total_ns, samples) = agg.remove(stage).expect("ordered keys");
            if samples.is_empty() {
                // Sample buffer exhausted (see MAX_STAGE_SAMPLES): fall
                // back to the aggregate mean for every field.
                let mean = total_ns / count.max(1);
                return Stats {
                    suite: "profile".to_string(),
                    name: format!("{workload}.{stage}"),
                    iters: u32::try_from(count).unwrap_or(u32::MAX),
                    mean_ns: mean,
                    median_ns: mean,
                    p95_ns: mean,
                    min_ns: mean,
                    max_ns: mean,
                };
            }
            Stats::from_samples("profile", &format!("{workload}.{stage}"), samples)
        })
        .collect()
}

fn answer_qa(engine: &UnifiedEngine, questions: Vec<String>) {
    let answers = engine.answer_batch(&questions);
    assert_eq!(answers.len(), questions.len());
}

/// Builds the engine [`BUILD_ITERS`] times (collecting each build's stage
/// timings), answers the QA set on the final build, and merges every run's
/// samples into one stats set.
fn profile_runs(
    workload: &str,
    build: impl Fn() -> UnifiedEngine,
    questions: Vec<String>,
) -> Vec<Stats> {
    let mut reports: Vec<TimingReport> = Vec::with_capacity(BUILD_ITERS);
    for _ in 0..BUILD_ITERS - 1 {
        reports.push(build().timing_report());
    }
    let engine = build();
    answer_qa(&engine, questions);
    reports.push(engine.timing_report());
    stage_stats(workload, &reports)
}

fn profile_ecommerce(smoke: bool) -> Vec<Stats> {
    let w = EcommerceWorkload::generate(EcommerceConfig {
        products: if smoke { 4 } else { 12 },
        quarters: if smoke { 2 } else { 4 },
        reviews_per_product: if smoke { 1 } else { 4 },
        qa_per_category: if smoke { 1 } else { 5 },
        seed: 0xEC0,
        name_offset: 0,
    });
    let questions = w.qa.iter().map(|q| q.question.clone()).collect();
    profile_runs("ecommerce", || build_ecommerce_engine(&w, EngineConfig::default()), questions)
}

fn profile_healthcare(smoke: bool) -> Vec<Stats> {
    let w = HealthcareWorkload::generate(HealthcareConfig {
        drugs: if smoke { 4 } else { 8 },
        patients: if smoke { 4 } else { 16 },
        trials_per_drug: if smoke { 1 } else { 3 },
        qa_per_category: if smoke { 1 } else { 5 },
        seed: 0x4EA17,
    });
    let questions = w.qa.iter().map(|q| q.question.clone()).collect();
    profile_runs("healthcare", || build_healthcare_engine(&w, EngineConfig::default()), questions)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut lines = String::new();
    for stats in profile_ecommerce(smoke).iter().chain(profile_healthcare(smoke).iter()) {
        lines.push_str(&stats.to_json_line());
        lines.push('\n');
        eprintln!("{} mean {} ns ({} samples)", stats.name, stats.mean_ns, stats.iters);
    }
    if smoke {
        print!("{lines}");
    } else {
        std::fs::write("BENCH_baseline.json", &lines).expect("write BENCH_baseline.json");
        eprintln!("wrote BENCH_baseline.json ({} stages)", lines.lines().count());
    }
}
