//! Per-stage pipeline profile: builds the two evaluation workloads,
//! answers their full QA sets through [`UnifiedEngine::answer_batch`], and
//! emits every tracekit stage timing as a detkit `Stats` JSON line
//! (suite `profile`, name `<workload>.<stage>`).
//!
//! The default run regenerates `BENCH_baseline.json` in the current
//! directory; `--smoke` shrinks the workloads and prints to stdout only
//! (the ci.sh bench smoke step), leaving the committed baseline untouched.
//!
//! ```sh
//! cargo run --release -p unisem-bench --bin profile            # rewrite baseline
//! cargo run --release -p unisem-bench --bin profile -- --smoke # CI smoke
//! ```

use detkit::bench::Stats;
use unisem_bench::harness::{build_ecommerce_engine, build_healthcare_engine};
use unisem_core::{EngineConfig, TimingReport, UnifiedEngine};
use unisem_workloads::{EcommerceConfig, EcommerceWorkload, HealthcareConfig, HealthcareWorkload};

/// Flattens one engine's stage timings into `Stats` lines, computing real
/// order statistics (median/p95/min/max) from the per-call samples the
/// registry retains — not the degenerate all-fields-equal-the-mean lines
/// the old aggregate-only path produced.
fn stage_stats(workload: &str, timings: &TimingReport) -> Vec<Stats> {
    timings
        .stages
        .iter()
        .map(|&(stage, count, total_ns)| {
            let samples = timings.samples_of(stage);
            if samples.is_empty() {
                // Sample buffer exhausted (see MAX_STAGE_SAMPLES): fall
                // back to the aggregate mean for every field.
                let mean = total_ns / count.max(1);
                return Stats {
                    suite: "profile".to_string(),
                    name: format!("{workload}.{stage}"),
                    iters: u32::try_from(count).unwrap_or(u32::MAX),
                    mean_ns: mean,
                    median_ns: mean,
                    p95_ns: mean,
                    min_ns: mean,
                    max_ns: mean,
                };
            }
            Stats::from_samples("profile", &format!("{workload}.{stage}"), samples.to_vec())
        })
        .collect()
}

fn answer_qa(engine: &UnifiedEngine, questions: Vec<String>) {
    let answers = engine.answer_batch(&questions);
    assert_eq!(answers.len(), questions.len());
}

fn profile_ecommerce(smoke: bool) -> Vec<Stats> {
    let w = EcommerceWorkload::generate(EcommerceConfig {
        products: if smoke { 4 } else { 12 },
        quarters: if smoke { 2 } else { 4 },
        reviews_per_product: if smoke { 1 } else { 4 },
        qa_per_category: if smoke { 1 } else { 5 },
        seed: 0xEC0,
        name_offset: 0,
    });
    let engine = build_ecommerce_engine(&w, EngineConfig::default());
    answer_qa(&engine, w.qa.iter().map(|q| q.question.clone()).collect());
    stage_stats("ecommerce", &engine.timing_report())
}

fn profile_healthcare(smoke: bool) -> Vec<Stats> {
    let w = HealthcareWorkload::generate(HealthcareConfig {
        drugs: if smoke { 4 } else { 8 },
        patients: if smoke { 4 } else { 16 },
        trials_per_drug: if smoke { 1 } else { 3 },
        qa_per_category: if smoke { 1 } else { 5 },
        seed: 0x4EA17,
    });
    let engine = build_healthcare_engine(&w, EngineConfig::default());
    answer_qa(&engine, w.qa.iter().map(|q| q.question.clone()).collect());
    stage_stats("healthcare", &engine.timing_report())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut lines = String::new();
    for stats in profile_ecommerce(smoke).iter().chain(profile_healthcare(smoke).iter()) {
        lines.push_str(&stats.to_json_line());
        lines.push('\n');
        eprintln!("{} mean {} ns ({} samples)", stats.name, stats.mean_ns, stats.iters);
    }
    if smoke {
        print!("{lines}");
    } else {
        std::fs::write("BENCH_baseline.json", &lines).expect("write BENCH_baseline.json");
        eprintln!("wrote BENCH_baseline.json ({} stages)", lines.lines().count());
    }
}
