//! Serving-scale macro-bench: sweeps corpus size × thread count over
//! [`UnifiedEngine::answer_batch`] and reports throughput plus latency
//! order statistics from the deterministic log-linear histogram layer.
//!
//! For each `(size, threads)` cell the harness builds a fresh engine over
//! a [`ScaleWorkload`] tier, answers the tier's seeded query batch, then
//! folds the per-query `answer.total` wall-clock samples into
//! [`tracekit::hist::Histogram`] partials built in parallel and merged
//! index-ordered — the same mergeable-histogram machinery the metric
//! registry uses — and extracts p50/p95/p99/max from the merged result.
//!
//! The default run regenerates `BENCH_scale.json` in the current
//! directory; `--smoke` shrinks the sweep and prints to stdout only (the
//! ci.sh gate), leaving the committed results untouched.
//!
//! ```sh
//! cargo run --release -p unisem-bench --bin scalebench            # rewrite results
//! cargo run --release -p unisem-bench --bin scalebench -- --smoke # CI smoke
//! ```

use tracekit::hist::Histogram;
use unisem_bench::harness::build_ecommerce_engine;
use unisem_core::{EngineConfig, ParallelConfig};
use unisem_workloads::{ScaleConfig, ScaleWorkload};

/// One measured sweep cell.
struct ScaleRow {
    size: usize,
    threads: usize,
    queries: usize,
    qps: f64,
    p50_ns: u64,
    p95_ns: u64,
    p99_ns: u64,
    max_ns: u64,
}

impl ScaleRow {
    fn to_json_line(&self) -> String {
        format!(
            "{{\"suite\":\"scale\",\"size\":{},\"threads\":{},\"queries\":{},\
             \"qps\":{:.1},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
            self.size,
            self.threads,
            self.queries,
            self.qps,
            self.p50_ns,
            self.p95_ns,
            self.p99_ns,
            self.max_ns
        )
    }
}

/// Answers one tier's batch at one thread count and measures it.
fn run_cell(tier: &ScaleWorkload, threads: usize) -> ScaleRow {
    let config =
        EngineConfig { parallel: ParallelConfig::with_threads(threads), ..EngineConfig::default() };
    let engine = build_ecommerce_engine(&tier.data, config);

    let batch = tracekit::wall::Stopwatch::start();
    let answers = engine.answer_batch(&tier.queries);
    let elapsed_ns = batch.elapsed_ns().max(1);
    assert_eq!(answers.len(), tier.queries.len());

    // Per-query latencies from the engine's own stage-sample buffer, folded
    // into histogram partials in parallel and merged index-ordered (merge
    // order cannot change a bucket count: addition commutes per index).
    let timings = engine.timing_report();
    let samples = timings.samples_of("answer.total");
    assert_eq!(samples.len(), tier.queries.len(), "one answer.total sample per query");
    let chunks: Vec<&[u64]> = samples.chunks(samples.len().div_ceil(8).max(1)).collect();
    let partials = ParallelConfig::with_threads(threads).pool().par_map(&chunks, |chunk| {
        let mut h = Histogram::new();
        for &ns in *chunk {
            h.record(ns);
        }
        h
    });
    let merged = Histogram::merge_all(partials.iter());
    assert_eq!(merged.count(), tier.queries.len() as u64);

    ScaleRow {
        size: tier.config.products,
        threads,
        queries: tier.queries.len(),
        qps: tier.queries.len() as f64 * 1e9 / elapsed_ns as f64,
        p50_ns: merged.p50(),
        p95_ns: merged.p95(),
        p99_ns: merged.p99(),
        max_ns: merged.max().unwrap_or(0),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (sizes, threads, queries): (&[usize], &[usize], usize) =
        if smoke { (&[6], &[1, 2], 12) } else { (&[8, 16, 32], &[1, 2, 4, 8], 96) };

    let mut lines = String::new();
    for &size in sizes {
        let tier = ScaleWorkload::generate(ScaleConfig {
            products: size,
            quarters: 4,
            queries,
            seed: 0x5CA1E,
        });
        for &t in threads {
            let row = run_cell(&tier, t);
            eprintln!(
                "size {} threads {}: {:.1} qps, p50 {} ns, p95 {} ns, p99 {} ns",
                row.size, row.threads, row.qps, row.p50_ns, row.p95_ns, row.p99_ns
            );
            lines.push_str(&row.to_json_line());
            lines.push('\n');
        }
    }

    if smoke {
        print!("{lines}");
    } else {
        std::fs::write("BENCH_scale.json", &lines).expect("write BENCH_scale.json");
        eprintln!("wrote BENCH_scale.json ({} rows)", lines.lines().count());
    }
}
