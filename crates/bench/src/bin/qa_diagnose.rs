//! Diagnostic: print every wrong answer of the unified engine on the
//! default experiment workloads.

use unisem_bench::harness::{build_ecommerce_engine, build_healthcare_engine};
use unisem_core::EngineConfig;
use unisem_workloads::{
    answer_matches, EcommerceConfig, EcommerceWorkload, HealthcareConfig, HealthcareWorkload,
};

fn main() {
    let w = EcommerceWorkload::generate(EcommerceConfig {
        products: 12,
        quarters: 4,
        reviews_per_product: 3,
        qa_per_category: 5,
        seed: 101,
        name_offset: 0,
    });
    let engine = build_ecommerce_engine(&w, EngineConfig::default());
    println!("--- ecommerce failures ---");
    for item in &w.qa {
        let a = engine.answer(&item.question);
        if !answer_matches(&item.gold, &a.text) {
            println!(
                "[{}] Q: {}\n  gold: {:?}\n  got ({}): {}\n",
                item.category.label(),
                item.question,
                item.gold,
                a.route.label(),
                a.text
            );
        }
    }
    let w = HealthcareWorkload::generate(HealthcareConfig {
        drugs: 8,
        patients: 16,
        trials_per_drug: 3,
        qa_per_category: 5,
        seed: 202,
    });
    let engine = build_healthcare_engine(&w, EngineConfig::default());
    println!("--- healthcare failures ---");
    for item in &w.qa {
        let a = engine.answer(&item.question);
        if !answer_matches(&item.gold, &a.text) {
            println!(
                "[{}] Q: {}\n  gold: {:?}\n  got ({}): {}\n",
                item.category.label(),
                item.question,
                item.gold,
                a.route.label(),
                a.text
            );
        }
    }
}
