//! Experiment runner: `cargo run -p unisem-bench --bin experiments -- <exp>`
//! where `<exp>` is one of `e1..e8` or `all`.

use unisem_bench::experiments;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match arg.as_str() {
        "e1" => experiments::e1(),
        "e2" => experiments::e2(),
        "e3" => experiments::e3(),
        "e4" => experiments::e4(),
        "e5" => experiments::e5(),
        "e6" => experiments::e6(),
        "e7" => experiments::e7(),
        "e8" => experiments::e8(),
        "all" => experiments::all(),
        other => {
            eprintln!("unknown experiment '{other}'; use e1..e8 or all");
            std::process::exit(2);
        }
    }
}
