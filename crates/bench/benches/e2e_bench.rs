//! Criterion: full engine answer latency per question category.

use criterion::{criterion_group, criterion_main, Criterion};
use unisem_bench::harness::build_ecommerce_engine;
use unisem_core::EngineConfig;
use unisem_workloads::{EcommerceConfig, EcommerceWorkload};

fn bench_e2e(c: &mut Criterion) {
    let w = EcommerceWorkload::generate(EcommerceConfig {
        products: 12,
        quarters: 4,
        reviews_per_product: 3,
        qa_per_category: 1,
        seed: 0xE2E,
            name_offset: 0,
    });
    let engine = build_ecommerce_engine(&w, EngineConfig::default());

    let mut g = c.benchmark_group("engine_answer");
    g.bench_function("lookup", |b| {
        b.iter(|| engine.answer("Which manufacturer makes the Nova Speaker?"))
    });
    g.bench_function("aggregate", |b| {
        b.iter(|| {
            engine.answer("What was the total sales amount of Nova Speaker across all quarters?")
        })
    });
    g.bench_function("multi_entity", |b| {
        b.iter(|| {
            engine.answer("Which products had a sales increase of more than 10% in Q2 2023?")
        })
    });
    g.bench_function("engine_build", |b| {
        b.iter(|| build_ecommerce_engine(&w, EngineConfig::default()).graph().num_nodes())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_e2e
}
criterion_main!(benches);
