//! Full engine answer latency per question category (detkit harness).

use detkit::bench::Harness;
use unisem_bench::harness::build_ecommerce_engine;
use unisem_core::EngineConfig;
use unisem_workloads::{EcommerceConfig, EcommerceWorkload};

fn main() {
    let w = EcommerceWorkload::generate(EcommerceConfig {
        products: 12,
        quarters: 4,
        reviews_per_product: 3,
        qa_per_category: 1,
        seed: 0xE2E,
        name_offset: 0,
    });
    let engine = build_ecommerce_engine(&w, EngineConfig::default());

    let mut h = Harness::new("engine_answer");
    h.set_iters(15);
    h.bench("lookup", || engine.answer("Which manufacturer makes the Nova Speaker?"));
    h.bench("aggregate", || {
        engine.answer("What was the total sales amount of Nova Speaker across all quarters?")
    });
    h.bench("multi_entity", || {
        engine.answer("Which products had a sales increase of more than 10% in Q2 2023?")
    });
    h.bench("engine_build", || {
        build_ecommerce_engine(&w, EngineConfig::default()).graph().num_nodes()
    });
    h.finish();
}
