//! Per-query retrieval latency, topology vs dense vs BM25
//! (micro-benchmark companion to experiment E3).

use std::sync::Arc;

use detkit::bench::Harness;
use unisem_bench::harness::build_ecommerce_engine;
use unisem_core::EngineConfig;
use unisem_hetgraph::GraphBuilder;
use unisem_retrieval::{
    ChunkRetriever, DenseRetriever, LexicalRetriever, TopologyConfig, TopologyRetriever,
};
use unisem_slm::{Slm, SlmConfig};
use unisem_workloads::{EcommerceConfig, EcommerceWorkload};

fn workload() -> EcommerceWorkload {
    EcommerceWorkload::generate(EcommerceConfig {
        products: 16,
        quarters: 4,
        reviews_per_product: 3,
        qa_per_category: 2,
        seed: 0xBE7C4,
        name_offset: 0,
    })
}

fn main() {
    let w = workload();
    let docs = Arc::new(w.docstore());
    let slm = Slm::new(SlmConfig { lexicon: w.lexicon.clone(), ..SlmConfig::default() });
    let mut gb = GraphBuilder::new(slm.clone());
    gb.add_docstore(&docs);
    for name in w.db.table_names() {
        gb.add_table(name, w.db.table(name).expect("listed"));
    }
    let (graph, _) = gb.finish();
    let graph = Arc::new(graph);

    let topo = TopologyRetriever::new(slm.clone(), graph, docs.clone(), TopologyConfig::default());
    let dense = DenseRetriever::build(slm.clone(), &docs);
    let bm25 = LexicalRetriever::new(docs.clone());
    let query = "Which products had a sales increase of more than 10% in Q2 2023?";

    let mut h = Harness::new("retrieve_top5");
    h.set_iters(30);
    h.bench("topology", || topo.retrieve(query, 5));
    h.bench("dense", || dense.retrieve(query, 5));
    h.bench("bm25", || bm25.retrieve(query, 5));

    // Engine-level retrieval including evidence extraction.
    let engine = build_ecommerce_engine(&w, EngineConfig::default());
    h.bench("engine_retrieve_top5", || engine.retrieve(query, 5));
    h.finish();
}
