//! Parallel scaling benchmarks: PageRank, dense scoring, and engine
//! batch answering at 1/2/4/8 threads.
//!
//! Each workload is timed once per pool width, and the summary prints the
//! speedup of every width relative to the 1-thread run. Before timing, each
//! section asserts that the multi-threaded result is bit-identical to the
//! sequential one — a benchmark that got faster by diverging would be
//! measuring the wrong thing.
//!
//! Note the reported speedup is bounded by the machine: on a single-core
//! runner every width measures ~1.0×; the scaling numbers are meaningful
//! only where `nproc` ≥ the pool width.

use detkit::bench::{Harness, Stats};
use parkit::Pool;
use unisem_core::{EngineBuilder, EngineConfig, ParallelConfig};
use unisem_hetgraph::algo::personalized_pagerank_pool;
use unisem_hetgraph::{GraphBuilder, NodeId};
use unisem_retrieval::{ChunkRetriever, DenseRetriever};
use unisem_slm::{Slm, SlmConfig};
use unisem_workloads::{EcommerceConfig, EcommerceWorkload};

const WIDTHS: [usize; 4] = [1, 2, 4, 8];

fn speedup_report(label: &str, per_width: &[(usize, Stats)]) {
    let base = per_width[0].1.median_ns.max(1) as f64;
    let line = per_width
        .iter()
        .map(|(t, s)| format!("{t}t {:.2}x", base / s.median_ns.max(1) as f64))
        .collect::<Vec<_>>()
        .join("  ");
    println!("{label} speedup vs 1 thread: {line}");
}

fn main() {
    let w = EcommerceWorkload::generate(EcommerceConfig {
        products: 24,
        quarters: 4,
        reviews_per_product: 3,
        qa_per_category: 2,
        seed: 0x9A55,
        name_offset: 0,
    });
    let docs = std::sync::Arc::new(w.docstore());
    let slm = Slm::new(SlmConfig { lexicon: w.lexicon.clone(), ..SlmConfig::default() });

    let mut gb = GraphBuilder::new(slm.clone());
    gb.add_docstore(&docs);
    for name in w.db.table_names() {
        gb.add_table(name, w.db.table(name).expect("listed"));
    }
    let (graph, _) = gb.finish();
    let seed = graph.entity_by_name("aero widget").unwrap_or(NodeId(0));

    let mut h = Harness::new("parallel");
    h.set_iters(15);

    // --- Personalized PageRank across pool widths -----------------------
    let ppr_ref = personalized_pagerank_pool(&graph, &[seed], 0.85, 25, Pool::sequential());
    let mut ppr_stats = Vec::new();
    for t in WIDTHS {
        let pool = Pool::new(t);
        let got = personalized_pagerank_pool(&graph, &[seed], 0.85, 25, pool);
        assert!(
            got.iter().zip(&ppr_ref).all(|(a, b)| a.to_bits() == b.to_bits()),
            "pagerank diverged at {t} threads"
        );
        let s = h
            .bench(&format!("ppr_25_iters_{t}t"), || {
                personalized_pagerank_pool(&graph, &[seed], 0.85, 25, pool)
            })
            .clone();
        ppr_stats.push((t, s));
    }

    // --- Dense cosine scan across pool widths ---------------------------
    let dense_ref = DenseRetriever::build_with_pool(slm.clone(), &docs, Pool::sequential());
    let hits_ref = dense_ref.retrieve("battery life of the aero widget", 10);
    let mut dense_stats = Vec::new();
    for t in WIDTHS {
        let r = DenseRetriever::build_with_pool(slm.clone(), &docs, Pool::new(t));
        assert_eq!(
            r.retrieve("battery life of the aero widget", 10),
            hits_ref,
            "dense scan diverged at {t} threads"
        );
        let s = h
            .bench(&format!("dense_scan_{t}t"), || {
                r.retrieve("battery life of the aero widget", 10)
            })
            .clone();
        dense_stats.push((t, s));
    }

    // --- Engine answer_batch across pool widths -------------------------
    let questions: Vec<&str> = w.qa.iter().map(|q| q.question.as_str()).collect();
    let build_engine = |threads: usize| {
        let config = EngineConfig {
            parallel: ParallelConfig::with_threads(threads),
            ..EngineConfig::default()
        };
        let mut b = EngineBuilder::with_config(w.lexicon.clone(), config);
        for name in w.db.table_names() {
            b.add_table(name, w.db.table(name).expect("listed").clone()).expect("add_table");
        }
        for d in &w.documents {
            b.add_document(d.title.clone(), d.text.clone(), d.source.clone());
        }
        b.build().0
    };
    let batch_ref = build_engine(1).answer_batch(&questions);
    let mut batch_stats = Vec::new();
    for t in WIDTHS {
        let e = build_engine(t);
        assert_eq!(e.answer_batch(&questions), batch_ref, "answer_batch diverged at {t} threads");
        let s = h.bench(&format!("answer_batch_{t}t"), || e.answer_batch(&questions)).clone();
        batch_stats.push((t, s));
    }

    speedup_report("ppr_25_iters", &ppr_stats);
    speedup_report("dense_scan", &dense_stats);
    speedup_report("answer_batch", &batch_stats);
    h.finish();
}
