//! Graph construction and topology algorithms (supports E2).

use detkit::bench::Harness;
use unisem_hetgraph::algo::{bfs_within, pagerank, personalized_pagerank};
use unisem_hetgraph::{GraphBuilder, NodeId};
use unisem_slm::{Slm, SlmConfig};
use unisem_workloads::{EcommerceConfig, EcommerceWorkload};

fn main() {
    let w = EcommerceWorkload::generate(EcommerceConfig {
        products: 16,
        quarters: 4,
        reviews_per_product: 3,
        qa_per_category: 1,
        seed: 0x9A4,
        name_offset: 0,
    });
    let docs = w.docstore();
    let slm = Slm::new(SlmConfig { lexicon: w.lexicon.clone(), ..SlmConfig::default() });

    let mut h = Harness::new("graph");
    h.set_iters(20);
    h.bench("graph_build_128_docs", || {
        let mut gb = GraphBuilder::new(slm.clone());
        gb.add_docstore(&docs);
        gb.finish().0.num_nodes()
    });

    let mut gb = GraphBuilder::new(slm.clone());
    gb.add_docstore(&docs);
    for name in w.db.table_names() {
        gb.add_table(name, w.db.table(name).expect("listed"));
    }
    let (graph, _) = gb.finish();
    let seed = graph.entity_by_name("aero widget").unwrap_or(NodeId(0));

    h.bench("pagerank_25_iters", || pagerank(&graph, 0.85, 25));
    h.bench("personalized_pagerank_25", || personalized_pagerank(&graph, &[seed], 0.85, 25));
    h.bench("bfs_3_hops", || bfs_within(&graph, seed, 3));
    h.finish();
}
