//! Criterion: relational engine operators (scan/filter, hash join, hash
//! aggregate) — the TableQA substrate.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use unisem_relstore::{Database, DataType, Schema, Table, Value};

fn build_db(rows: usize) -> Database {
    let mut rng = StdRng::seed_from_u64(7);
    let mut sales = Table::empty(Schema::of(&[
        ("product_id", DataType::Int),
        ("quarter", DataType::Str),
        ("amount", DataType::Float),
    ]));
    for _ in 0..rows {
        sales
            .push_row(vec![
                Value::Int(rng.gen_range(0..500)),
                Value::str(format!("Q{}", rng.gen_range(1..5))),
                Value::float(rng.gen_range(10.0..1000.0)),
            ])
            .expect("fixed schema");
    }
    let mut products = Table::empty(Schema::of(&[
        ("id", DataType::Int),
        ("name", DataType::Str),
    ]));
    for i in 0..500 {
        products
            .push_row(vec![Value::Int(i), Value::str(format!("product-{i}"))])
            .expect("fixed schema");
    }
    let mut db = Database::new();
    db.create_table("sales", sales).expect("fresh");
    db.create_table("products", products).expect("fresh");
    db
}

fn bench_relstore(c: &mut Criterion) {
    let db = build_db(10_000);

    c.bench_function("filter_scan_10k", |b| {
        b.iter(|| db.run_sql("SELECT * FROM sales WHERE amount > 900").expect("sql"))
    });
    c.bench_function("group_by_10k", |b| {
        b.iter(|| {
            db.run_sql("SELECT quarter, SUM(amount) AS total FROM sales GROUP BY quarter")
                .expect("sql")
        })
    });
    c.bench_function("hash_join_10k_x_500", |b| {
        b.iter(|| {
            db.run_sql(
                "SELECT name, amount FROM sales JOIN products ON product_id = id \
                 WHERE amount > 990",
            )
            .expect("sql")
        })
    });
    c.bench_function("sort_limit_10k", |b| {
        b.iter(|| db.run_sql("SELECT * FROM sales ORDER BY amount DESC LIMIT 10").expect("sql"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_relstore
}
criterion_main!(benches);
