//! Relational engine operators (scan/filter, hash join, hash aggregate)
//! — the TableQA substrate.

use detkit::bench::Harness;
use detkit::Rng;
use unisem_relstore::{DataType, Database, Schema, Table, Value};

fn build_db(rows: usize) -> Database {
    let mut rng = Rng::new(7);
    let mut sales = Table::empty(Schema::of(&[
        ("product_id", DataType::Int),
        ("quarter", DataType::Str),
        ("amount", DataType::Float),
    ]));
    for _ in 0..rows {
        sales
            .push_row(vec![
                Value::Int(rng.gen_range(0..500i64)),
                Value::str(format!("Q{}", rng.gen_range(1..5))),
                Value::float(rng.gen_range(10.0..1000.0)),
            ])
            .expect("fixed schema");
    }
    let mut products = Table::empty(Schema::of(&[("id", DataType::Int), ("name", DataType::Str)]));
    for i in 0..500 {
        products
            .push_row(vec![Value::Int(i), Value::str(format!("product-{i}"))])
            .expect("fixed schema");
    }
    let mut db = Database::new();
    db.create_table("sales", sales).expect("fresh");
    db.create_table("products", products).expect("fresh");
    db
}

fn main() {
    let db = build_db(10_000);

    let mut h = Harness::new("relstore");
    h.set_iters(20);
    h.bench("filter_scan_10k", || {
        db.run_sql("SELECT * FROM sales WHERE amount > 900").expect("sql")
    });
    h.bench("group_by_10k", || {
        db.run_sql("SELECT quarter, SUM(amount) AS total FROM sales GROUP BY quarter").expect("sql")
    });
    h.bench("hash_join_10k_x_500", || {
        db.run_sql(
            "SELECT name, amount FROM sales JOIN products ON product_id = id \
             WHERE amount > 990",
        )
        .expect("sql")
    });
    h.bench("sort_limit_10k", || {
        db.run_sql("SELECT * FROM sales ORDER BY amount DESC LIMIT 10").expect("sql")
    });
    h.finish();
}
