//! Semantic clustering and entropy estimation (companion to E5).

use detkit::bench::Harness;
use unisem_entropy::{cluster_answers, ClusterConfig, EntropyEstimator};
use unisem_slm::{Slm, SupportedAnswer};

fn main() {
    let answers: Vec<String> = (0..20)
        .map(|i| match i % 4 {
            0 => "sales rose 20% in the second quarter".to_string(),
            1 => "The answer is sales rose 20%.".to_string(),
            2 => "revenue declined slightly".to_string(),
            _ => format!("sample answer variant number {i}"),
        })
        .collect();
    let refs: Vec<&str> = answers.iter().map(String::as_str).collect();

    let mut h = Harness::new("entropy");
    h.set_iters(30);
    h.bench("cluster_20_answers", || cluster_answers(&refs, &ClusterConfig::default()).len());

    let est = EntropyEstimator::new(Slm::default());
    let evidence = vec![
        SupportedAnswer::new("sales rose 20%", 4.0),
        SupportedAnswer::new("sales fell 3%", 1.0),
    ];
    h.bench("estimate_10_samples", || est.estimate("How did sales change?", &evidence));
    h.finish();
}
