//! Criterion: semantic clustering and entropy estimation (companion to E5).

use criterion::{criterion_group, criterion_main, Criterion};
use unisem_entropy::{cluster_answers, ClusterConfig, EntropyEstimator};
use unisem_slm::{Slm, SupportedAnswer};

fn bench_entropy(c: &mut Criterion) {
    let answers: Vec<String> = (0..20)
        .map(|i| match i % 4 {
            0 => "sales rose 20% in the second quarter".to_string(),
            1 => "The answer is sales rose 20%.".to_string(),
            2 => "revenue declined slightly".to_string(),
            _ => format!("sample answer variant number {i}"),
        })
        .collect();
    let refs: Vec<&str> = answers.iter().map(String::as_str).collect();

    c.bench_function("cluster_20_answers", |b| {
        b.iter(|| cluster_answers(&refs, &ClusterConfig::default()).len())
    });

    let est = EntropyEstimator::new(Slm::default());
    let evidence = vec![
        SupportedAnswer::new("sales rose 20%", 4.0),
        SupportedAnswer::new("sales fell 3%", 1.0),
    ];
    c.bench_function("estimate_10_samples", |b| {
        b.iter(|| est.estimate("How did sales change?", &evidence))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_entropy
}
criterion_main!(benches);
