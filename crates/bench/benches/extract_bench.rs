//! Relational table generation throughput (companion to E4).

use detkit::bench::Harness;
use unisem_extract::TableGenerator;
use unisem_slm::{Lexicon, Slm, SlmConfig};
use unisem_workloads::ReportCorpus;

fn main() {
    let corpus = ReportCorpus::generate(100, 0xE47);
    let mut lexicon = Lexicon::new();
    for (name, kind) in &corpus.lexicon_entries {
        lexicon.add(name, *kind);
    }
    let gen = TableGenerator::new(Slm::new(SlmConfig { lexicon, ..SlmConfig::default() }));
    let texts: Vec<&str> = corpus.texts.iter().map(String::as_str).collect();

    let mut h = Harness::new("extract");
    h.set_iters(20);
    h.bench("extract_100_facts", || gen.generate_table(&texts).expect("extraction").0.num_rows());
    h.bench("extract_single_sentence", || {
        gen.extract_sentence("Aero Widget sales increased 12.5% in Q2 2024.")
    });
    h.finish();
}
