//! Criterion: relational table generation throughput (companion to E4).

use criterion::{criterion_group, criterion_main, Criterion};
use unisem_extract::TableGenerator;
use unisem_slm::{Lexicon, Slm, SlmConfig};
use unisem_workloads::ReportCorpus;

fn bench_extract(c: &mut Criterion) {
    let corpus = ReportCorpus::generate(100, 0xE47);
    let mut lexicon = Lexicon::new();
    for (name, kind) in &corpus.lexicon_entries {
        lexicon.add(name, *kind);
    }
    let gen = TableGenerator::new(Slm::new(SlmConfig { lexicon, ..SlmConfig::default() }));
    let texts: Vec<&str> = corpus.texts.iter().map(String::as_str).collect();

    c.bench_function("extract_100_facts", |b| {
        b.iter(|| gen.generate_table(&texts).expect("extraction").0.num_rows())
    });
    c.bench_function("extract_single_sentence", |b| {
        b.iter(|| gen.extract_sentence("Aero Widget sales increased 12.5% in Q2 2024."))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_extract
}
criterion_main!(benches);
