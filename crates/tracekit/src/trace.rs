//! Trace sinks and the `UNISEM_TRACE` environment spec.
//!
//! A [`TraceSink`] receives fully-rendered JSON-lines *blocks* — one block
//! per query, written atomically under a lock — so traces from concurrent
//! queries never interleave. The sink counts every write attempt
//! (including no-op writes on an `Off` sink) in [`TraceSink::writes`]:
//! the zero-cost-when-disabled gate asserts this counter stays `0` for
//! the whole query hot path, which catches an unguarded `write_block`
//! call even though an `Off` write would be harmless.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Parsed form of the `UNISEM_TRACE` environment variable.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum TraceSpec {
    /// No tracing (the default; also the fallback for malformed specs).
    #[default]
    Off,
    /// JSON-lines to standard error.
    Stderr,
    /// JSON-lines appended to a file.
    File(String),
}

impl TraceSpec {
    /// Parses a spec string: `off | stderr | file:<path>`. Unknown or
    /// malformed specs resolve to `Off` — observability must never take
    /// the engine down.
    pub fn parse(spec: &str) -> TraceSpec {
        let spec = spec.trim();
        if spec.eq_ignore_ascii_case("stderr") {
            TraceSpec::Stderr
        } else if let Some(path) = spec.strip_prefix("file:") {
            if path.is_empty() {
                TraceSpec::Off
            } else {
                TraceSpec::File(path.to_string())
            }
        } else {
            TraceSpec::Off
        }
    }

    /// Reads and parses `UNISEM_TRACE` (unset → `Off`).
    pub fn from_env() -> TraceSpec {
        match std::env::var("UNISEM_TRACE") {
            Ok(spec) => TraceSpec::parse(&spec),
            Err(_) => TraceSpec::Off,
        }
    }
}

#[derive(Debug)]
enum SinkInner {
    Off,
    Stderr,
    File(Mutex<File>),
    Memory(Mutex<String>),
}

/// Where rendered trace blocks go.
///
/// Resolved once per engine (like `FaultPlan`), then shared. `Memory` is
/// the test sink: it captures everything written so suites can assert on
/// trace content without touching the environment or the filesystem.
#[derive(Debug)]
pub struct TraceSink {
    inner: SinkInner,
    writes: AtomicU64,
}

impl TraceSink {
    /// A sink that discards everything (but still counts write attempts).
    pub fn off() -> TraceSink {
        TraceSink { inner: SinkInner::Off, writes: AtomicU64::new(0) }
    }

    /// A sink writing to standard error.
    pub fn stderr() -> TraceSink {
        TraceSink { inner: SinkInner::Stderr, writes: AtomicU64::new(0) }
    }

    /// A sink appending to `path`. Falls back to `off()` if the file
    /// cannot be opened — observability must never take the engine down.
    pub fn file(path: &str) -> TraceSink {
        match OpenOptions::new().create(true).append(true).open(path) {
            Ok(f) => TraceSink { inner: SinkInner::File(Mutex::new(f)), writes: AtomicU64::new(0) },
            Err(_) => TraceSink::off(),
        }
    }

    /// An in-memory capture sink for tests.
    pub fn memory() -> TraceSink {
        TraceSink { inner: SinkInner::Memory(Mutex::new(String::new())), writes: AtomicU64::new(0) }
    }

    /// Builds the sink a spec describes.
    pub fn from_spec(spec: &TraceSpec) -> TraceSink {
        match spec {
            TraceSpec::Off => TraceSink::off(),
            TraceSpec::Stderr => TraceSink::stderr(),
            TraceSpec::File(path) => TraceSink::file(path),
        }
    }

    /// Builds the sink `UNISEM_TRACE` describes.
    pub fn from_env() -> TraceSink {
        TraceSink::from_spec(&TraceSpec::from_env())
    }

    /// True when every write is a no-op. Callers use this to skip block
    /// rendering entirely (the zero-cost-when-disabled contract).
    pub fn is_off(&self) -> bool {
        matches!(self.inner, SinkInner::Off)
    }

    /// Write attempts so far (no-op writes on an `Off` sink included).
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Writes one query's rendered JSON-lines block atomically, so blocks
    /// from concurrent queries never interleave.
    pub fn write_block(&self, block: &str) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        match &self.inner {
            SinkInner::Off => {}
            SinkInner::Stderr => {
                let mut err = std::io::stderr().lock();
                let _ = err.write_all(block.as_bytes());
            }
            SinkInner::File(file) => {
                if let Ok(mut f) = file.lock() {
                    let _ = f.write_all(block.as_bytes());
                }
            }
            SinkInner::Memory(buf) => {
                if let Ok(mut b) = buf.lock() {
                    b.push_str(block);
                }
            }
        }
    }

    /// Drains and returns everything a `memory()` sink captured (empty
    /// string for other sink kinds).
    pub fn drain_memory(&self) -> String {
        match &self.inner {
            SinkInner::Memory(buf) => {
                buf.lock().map(|mut b| std::mem::take(&mut *b)).unwrap_or_default()
            }
            _ => String::new(),
        }
    }
}

/// True when `UNISEM_TRACE_WALL=1`: wall-clock duration lines may be
/// appended to emitted trace blocks. Off by default — wall-clock is
/// nondeterministic, so it is redacted unless explicitly requested, and
/// it never enters `QueryTrace` itself. Resolved once per process.
pub fn wall_clock_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| matches!(std::env::var("UNISEM_TRACE_WALL").as_deref(), Ok("1")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_the_grammar() {
        assert_eq!(TraceSpec::parse("off"), TraceSpec::Off);
        assert_eq!(TraceSpec::parse("OFF"), TraceSpec::Off);
        assert_eq!(TraceSpec::parse("stderr"), TraceSpec::Stderr);
        assert_eq!(TraceSpec::parse(" Stderr "), TraceSpec::Stderr);
        assert_eq!(TraceSpec::parse("file:/tmp/t.jsonl"), TraceSpec::File("/tmp/t.jsonl".into()));
        assert_eq!(TraceSpec::parse("file:"), TraceSpec::Off, "empty path is malformed");
        assert_eq!(TraceSpec::parse("bogus"), TraceSpec::Off, "malformed specs degrade to off");
        assert_eq!(TraceSpec::default(), TraceSpec::Off);
    }

    #[test]
    fn off_sink_counts_writes_but_discards() {
        let sink = TraceSink::off();
        assert!(sink.is_off());
        assert_eq!(sink.writes(), 0);
        sink.write_block("should vanish\n");
        assert_eq!(sink.writes(), 1, "write attempts are counted even when off");
        assert_eq!(sink.drain_memory(), "");
    }

    #[test]
    fn memory_sink_captures_blocks_in_write_order() {
        let sink = TraceSink::memory();
        assert!(!sink.is_off());
        sink.write_block("{\"a\":1}\n");
        sink.write_block("{\"b\":2}\n");
        assert_eq!(sink.writes(), 2);
        assert_eq!(sink.drain_memory(), "{\"a\":1}\n{\"b\":2}\n");
        assert_eq!(sink.drain_memory(), "", "drain empties the buffer");
    }

    #[test]
    fn file_sink_appends_and_bad_path_degrades_to_off() {
        let dir = std::env::temp_dir();
        let path = dir.join("tracekit_sink_test.jsonl");
        let path_str = path.to_str().unwrap();
        let _ = std::fs::remove_file(&path);
        let sink = TraceSink::file(path_str);
        sink.write_block("line-1\n");
        sink.write_block("line-2\n");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "line-1\nline-2\n");
        let _ = std::fs::remove_file(&path);

        let bad = TraceSink::file("/definitely/not/a/dir/t.jsonl");
        assert!(bad.is_off(), "unopenable file degrades to off");
    }

    #[test]
    fn from_spec_matches_variants() {
        assert!(TraceSink::from_spec(&TraceSpec::Off).is_off());
        assert!(!TraceSink::from_spec(&TraceSpec::Stderr).is_off());
    }
}
