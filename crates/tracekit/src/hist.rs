//! Deterministic log-linear histograms (DESIGN.md §14).
//!
//! One fixed bucket layout shared by the full-range [`Histogram`] used by
//! the bench binaries and the capped histograms inside
//! [`crate::metrics::MetricsRegistry`]: values `0..8` get an exact bucket
//! each, and every octave above is split into four linear sub-buckets
//! (HDR-style), so relative bucket error is bounded by 25% at any
//! magnitude while the layout stays a pure function of the value — no
//! configuration, no floating point, no allocation-order dependence.
//!
//! [`Histogram`] is a plain value type: threads record into private
//! instances and the caller folds them with [`Histogram::merge`] in index
//! order (parkit's `par_chunks` contract), which makes the merged counts —
//! and therefore every quantile drawn from them — byte-identical at any
//! thread count. Exact `count`/`sum`/`min`/`max` ride along so `max` (and
//! the quantile clamp against it) is exact rather than a bucket bound.

/// Sub-buckets per octave above the exact range (a power of two).
const SUBS: usize = 4;
/// Values below this get one exact bucket each (`2 * SUBS`).
const EXACT: u64 = 8;
/// Total buckets: 8 exact + 4 sub-buckets for each octave `2^3..=2^63`.
pub const NUM_BUCKETS: usize = EXACT as usize + (64 - 3) * SUBS;

/// Bucket index for a value; total over all of `u64`.
pub const fn bucket_index(value: u64) -> usize {
    if value < EXACT {
        value as usize
    } else {
        // floor(log2(value)) >= 3; the two bits below the leading bit pick
        // the linear sub-bucket within the octave.
        let k = 63 - value.leading_zeros() as usize;
        let sub = ((value >> (k - 2)) & 3) as usize;
        EXACT as usize + (k - 3) * SUBS + sub
    }
}

/// Smallest value that lands in bucket `index`.
pub fn bucket_lower(index: usize) -> u64 {
    assert!(index < NUM_BUCKETS, "bucket index out of range: {index}");
    if index < EXACT as usize {
        index as u64
    } else {
        let k = 3 + (index - EXACT as usize) / SUBS;
        let sub = ((index - EXACT as usize) % SUBS) as u64;
        (1u64 << k) + sub * (1u64 << (k - 2))
    }
}

/// Largest value that lands in bucket `index` (inclusive).
pub fn bucket_upper(index: usize) -> u64 {
    if index < EXACT as usize {
        index as u64
    } else {
        let k = 3 + (index - EXACT as usize) / SUBS;
        // width - 1 first: the top bucket's lower + width would overflow.
        bucket_lower(index) + ((1u64 << (k - 2)) - 1)
    }
}

/// A mergeable log-linear histogram over `u64` observations.
///
/// Quantiles are extracted by rank-walking the cumulative bucket counts
/// and reporting the bucket's inclusive upper bound, clamped to the exact
/// observed `min`/`max` — so `quantile(1.0)` is the true maximum, not a
/// bucket boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; NUM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram { counts: [0; NUM_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds another histogram into this one. Bucket-wise addition is
    /// associative and commutative, but callers merge in index order
    /// anyway so the exact `sum` saturation point is reproducible too.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Merges a sequence of per-thread partials, in iteration order.
    pub fn merge_all<'a>(parts: impl IntoIterator<Item = &'a Histogram>) -> Histogram {
        let mut out = Histogram::new();
        for part in parts {
            out.merge(part);
        }
        out
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact smallest observation, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact largest observation, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Integer mean (0 when empty).
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.sum / self.count
        }
    }

    /// Raw bucket counts, index order (see [`bucket_lower`]/[`bucket_upper`]).
    pub fn counts(&self) -> &[u64; NUM_BUCKETS] {
        &self.counts
    }

    /// The value at quantile `q` in `[0, 1]`: the inclusive upper bound of
    /// the bucket holding the rank-`ceil(q * count)` observation, clamped
    /// to the exact observed extremes. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..8u64 {
            let i = bucket_index(v);
            assert_eq!(i, v as usize);
            assert_eq!(bucket_lower(i), v);
            assert_eq!(bucket_upper(i), v);
        }
    }

    #[test]
    fn buckets_tile_the_u64_range() {
        // Every bucket starts exactly one past the previous bucket's end.
        for i in 1..NUM_BUCKETS {
            assert_eq!(bucket_lower(i), bucket_upper(i - 1) + 1, "gap at bucket {i}");
        }
        assert_eq!(bucket_lower(0), 0);
        assert_eq!(bucket_upper(NUM_BUCKETS - 1), u64::MAX);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn index_and_bounds_agree() {
        let probes = [
            0u64,
            1,
            7,
            8,
            9,
            13,
            15,
            16,
            19,
            20,
            100,
            1_000,
            65_535,
            65_536,
            1_000_000,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ];
        for v in probes {
            let i = bucket_index(v);
            assert!(bucket_lower(i) <= v && v <= bucket_upper(i), "value {v} bucket {i}");
        }
        // Relative bucket width is bounded: width <= lower/4 above EXACT.
        for i in EXACT as usize..NUM_BUCKETS {
            let width = bucket_upper(i) - bucket_lower(i) + 1;
            assert!(width * 4 <= bucket_lower(i), "bucket {i} too wide");
        }
    }

    #[test]
    fn record_and_exact_stats() {
        let mut h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.quantile(0.5), 0);
        for v in [3u64, 9, 9, 1_000, 42] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 3 + 9 + 9 + 1_000 + 42);
        assert_eq!(h.min(), Some(3));
        assert_eq!(h.max(), Some(1_000));
        assert_eq!(h.mean(), (3 + 9 + 9 + 1_000 + 42) / 5);
    }

    #[test]
    fn quantiles_walk_ranks_and_clamp_to_exact_max() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        // p50 lands in the bucket holding rank 50; bucket [48..=55] → 55.
        assert_eq!(h.p50(), bucket_upper(bucket_index(50)));
        // p100 is the exact maximum even though its bucket ends at 103.
        assert_eq!(h.quantile(1.0), 100);
        assert_eq!(h.max(), Some(100));
        assert!(h.p95() >= h.p50());
        assert!(h.p99() >= h.p95());
    }

    #[test]
    fn single_observation_quantiles_are_exact() {
        let mut h = Histogram::new();
        h.record(77);
        // Clamping to min==max makes every quantile exact.
        assert_eq!(h.p50(), 77);
        assert_eq!(h.p99(), 77);
        assert_eq!(h.quantile(0.0), 77);
    }

    #[test]
    fn merge_is_order_independent_and_matches_sequential() {
        let values: Vec<u64> = (0..1000u64).map(|i| i * i % 7919).collect();
        let mut whole = Histogram::new();
        for &v in &values {
            whole.record(v);
        }
        let parts: Vec<Histogram> = values
            .chunks(97)
            .map(|chunk| {
                let mut h = Histogram::new();
                for &v in chunk {
                    h.record(v);
                }
                h
            })
            .collect();
        let merged = Histogram::merge_all(&parts);
        assert_eq!(merged, whole);
        let mut reversed = Histogram::new();
        for part in parts.iter().rev() {
            reversed.merge(part);
        }
        assert_eq!(reversed, whole);
    }
}
