//! Deterministic span flamegraphs (DESIGN.md §14).
//!
//! [`FlameGraph`] folds [`crate::explain::QueryTrace`]s into a
//! hierarchical weight tree and renders it in the standard folded-stacks
//! text format (`frame;frame;frame weight`, one line per stack). Every
//! weight is a deterministic quantity already present in the trace —
//! rung attempts, logical-clock events, traversal work, entropy samples,
//! resource-meter totals — never a duration, so the folded text is
//! byte-identical at any thread count and can be diffed, committed, or
//! fed to any external flamegraph renderer.
//!
//! Aggregation is additive: fold any number of traces into one graph and
//! the result is independent of insertion order (weights sum; frames sort
//! lexicographically in a `BTreeMap`).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::explain::QueryTrace;

/// One frame in the flame tree.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Frame {
    /// Weight attributed to exactly this stack (not descendants).
    weight: u64,
    children: BTreeMap<String, Frame>,
}

impl Frame {
    fn total(&self) -> u64 {
        self.weight + self.children.values().map(Frame::total).sum::<u64>()
    }

    fn fold_into(&self, prefix: &str, out: &mut String) {
        if self.weight > 0 {
            out.push_str(prefix);
            let _ = writeln!(out, " {}", self.weight);
        }
        for (name, child) in &self.children {
            child.fold_into(&format!("{prefix};{name}"), out);
        }
    }

    fn render_into(&self, name: &str, depth: usize, out: &mut String) {
        let _ = writeln!(out, "{:indent$}{name} {}", "", self.total(), indent = depth * 2);
        for (child_name, child) in &self.children {
            child.render_into(child_name, depth + 1, out);
        }
    }
}

/// A deterministic, mergeable flamegraph over query traces.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlameGraph {
    roots: BTreeMap<String, Frame>,
}

impl FlameGraph {
    /// An empty graph.
    pub fn new() -> FlameGraph {
        FlameGraph::default()
    }

    /// A graph holding one trace.
    pub fn from_trace(trace: &QueryTrace) -> FlameGraph {
        let mut graph = FlameGraph::new();
        graph.add_trace(trace);
        graph
    }

    /// Adds `weight` at the stack `path` (root-first). Zero weights are
    /// dropped so code paths that did no work leave no frame behind.
    pub fn add(&mut self, path: &[&str], weight: u64) {
        if weight == 0 || path.is_empty() {
            return;
        }
        let mut frame = self.roots.entry(path[0].to_string()).or_default();
        for name in &path[1..] {
            frame = frame.children.entry((*name).to_string()).or_default();
        }
        frame.weight += weight;
    }

    /// Folds one query trace into the graph. Every weight is a
    /// deterministic quantity the trace already carries.
    pub fn add_trace(&mut self, trace: &QueryTrace) {
        for rung in &trace.rungs {
            self.add(&["answer", rung.rung, rung.outcome.label()], 1);
        }
        for event in &trace.events {
            self.add(&["answer", "event", event.name], 1);
        }
        if let Some(t) = &trace.traversal {
            self.add(&["answer", "retrieval", "traverse"], t.nodes_popped as u64);
            self.add(&["answer", "retrieval", "score"], t.chunks_scored as u64);
            if t.dense_fallback {
                self.add(&["answer", "retrieval", "dense_fallback"], 1);
            }
            if t.lexical_fallback {
                self.add(&["answer", "retrieval", "lexical_fallback"], 1);
            }
        }
        if let Some(e) = &trace.entropy {
            self.add(&["answer", "entropy", "sample"], e.n_samples as u64);
            self.add(&["answer", "entropy", "cluster"], e.n_clusters as u64);
        }
        if let Some(m) = &trace.meter {
            for (name, value) in m.fields() {
                self.add(&["answer", "meter", name], value);
            }
        }
    }

    /// Total weight across all stacks.
    pub fn total(&self) -> u64 {
        self.roots.values().map(Frame::total).sum()
    }

    /// True when no stack carries weight.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// The standard folded-stacks text: one `a;b;c weight` line per stack
    /// with nonzero self-weight, lexicographic stack order. Byte-stable
    /// input for external flamegraph renderers and determinism diffs.
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        for (name, frame) in &self.roots {
            frame.fold_into(name, &mut out);
        }
        out
    }

    /// A human-readable indented tree with cumulative weights (the
    /// `examples/observability.rs` rendering).
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        for (name, frame) in &self.roots {
            frame.render_into(name, 0, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explain::{RungOutcome, TraceScope, TraversalTrace};
    use crate::meter::ResourceMeter;

    fn sample_trace() -> QueryTrace {
        let mut scope = TraceScope::enabled("q");
        scope.event("intent.parsed", || "aggregate".to_string());
        scope.rung("structured", RungOutcome::Failed, || String::new());
        scope.rung("retrieval", RungOutcome::Succeeded, || String::new());
        scope.set_traversal(TraversalTrace {
            anchors: 2,
            nodes_touched: 9,
            nodes_popped: 7,
            chunks_scored: 4,
            ..Default::default()
        });
        scope.set_meter(ResourceMeter { slm_calls: 2, postings_scanned: 31, ..Default::default() });
        scope.finish("retrieval").unwrap()
    }

    #[test]
    fn folded_stacks_are_sorted_and_weighted() {
        let graph = FlameGraph::from_trace(&sample_trace());
        let folded = graph.to_folded();
        let lines: Vec<&str> = folded.lines().collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted, "folded stacks are emitted in sorted order:\n{folded}");
        assert!(folded.contains("answer;event;intent.parsed 1"), "{folded}");
        assert!(folded.contains("answer;retrieval;traverse 7"));
        assert!(folded.contains("answer;retrieval;score 4"));
        assert!(folded.contains("answer;structured;failed 1"));
        assert!(folded.contains("answer;meter;postings_scanned 31"));
        assert!(!folded.contains("pages_read"), "zero meter fields leave no frame");
    }

    #[test]
    fn aggregation_is_additive_and_order_independent() {
        let trace = sample_trace();
        let mut twice = FlameGraph::new();
        twice.add_trace(&trace);
        twice.add_trace(&trace);
        assert_eq!(twice.total(), 2 * FlameGraph::from_trace(&trace).total());
        assert!(twice.to_folded().contains("answer;retrieval;traverse 14"));

        let mut other = TraceScope::enabled("q2");
        other.rung("structured", RungOutcome::Succeeded, || String::new());
        let other = other.finish("structured").unwrap();
        let mut ab = FlameGraph::new();
        ab.add_trace(&trace);
        ab.add_trace(&other);
        let mut ba = FlameGraph::new();
        ba.add_trace(&other);
        ba.add_trace(&trace);
        assert_eq!(ab.to_folded(), ba.to_folded());
        assert_eq!(ab, ba);
    }

    #[test]
    fn empty_graph_and_zero_weights() {
        let mut graph = FlameGraph::new();
        assert!(graph.is_empty());
        assert_eq!(graph.to_folded(), "");
        graph.add(&["a", "b"], 0);
        assert!(graph.is_empty(), "zero weight leaves no stack");
        graph.add(&[], 5);
        assert!(graph.is_empty(), "empty path is a no-op");
        graph.add(&["a"], 3);
        assert_eq!(graph.to_folded(), "a 3\n");
    }

    #[test]
    fn tree_rendering_shows_cumulative_weights() {
        let mut graph = FlameGraph::new();
        graph.add(&["answer", "x"], 2);
        graph.add(&["answer", "y"], 3);
        let tree = graph.render_tree();
        assert!(tree.contains("answer 5"), "{tree}");
        assert!(tree.contains("  x 2"));
        assert!(tree.contains("  y 3"));
    }
}
