//! # tracekit
//!
//! Deterministic observability for the unisem engine (DESIGN.md §9):
//! structured traces, a closed-registry metrics layer, and per-query
//! explain traces. Std-only and dependency-free, matching the
//! detkit/parkit/faultkit substrate-kit pattern.
//!
//! Three pillars:
//!
//! 1. **Spans/events with a deterministic logical clock**
//!    ([`explain::TraceScope`]): every event carries a monotonic
//!    per-query sequence number instead of a wall-clock timestamp, so a
//!    trace is byte-identical at any thread count. Wall-clock durations
//!    are carried *out-of-band* (a separate, redactable JSON line — see
//!    [`trace::wall_clock_enabled`]) and never enter the deterministic
//!    payload. Traces are emitted as JSON-lines through a
//!    [`trace::TraceSink`] resolved from the `UNISEM_TRACE` environment
//!    spec (`off | stderr | file:<path>`).
//! 2. **Closed-registry metrics** ([`metrics::MetricsRegistry`]):
//!    counters, gauges, and histograms addressed only by the
//!    compile-time [`metrics::Metric`] / [`metrics::Hist`] enums — no
//!    dynamically-constructed metric names can exist, which is what lets
//!    ci.sh grep-audit the namespace. Every recorded value is a pure
//!    function of the data (row counts, frontier sizes, sample counts —
//!    never durations), so a [`metrics::MetricsReport`] snapshot is
//!    byte-identical at any thread count. Wall-clock stage timings live
//!    in the separate, deliberately *non*-deterministic
//!    [`metrics::TimingReport`].
//! 3. **Per-query explain traces** ([`explain::QueryTrace`]): the
//!    degradation-ladder rungs attempted, the synthesized operator plan,
//!    traversal statistics, and the entropy verdict — attached to
//!    `Answer::trace` when `EngineConfig::trace` opts in.
//!
//! [`component`] is the closed registry of component labels shared by
//! degradation records, fault-injection site names, and metric prefixes.

pub mod component;
pub mod explain;
pub mod flame;
pub mod hist;
pub mod meter;
pub mod metrics;
pub mod trace;
pub mod wall;

pub use explain::{
    emit, render_block, EntropyVerdict, QueryTrace, RungAttempt, RungOutcome, TraceEvent,
    TraceScope, TraversalTrace,
};
pub use flame::FlameGraph;
pub use hist::Histogram;
pub use meter::ResourceMeter;
pub use metrics::{Hist, Metric, MetricsRegistry, MetricsReport, Stage, TimingReport};
pub use trace::{TraceSink, TraceSpec};

/// Escapes a string for embedding in a JSON string literal (shared by the
/// sink and report renderers; tracekit is dependency-free by policy).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escape_covers_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }
}
