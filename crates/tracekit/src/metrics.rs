//! Closed-registry metrics.
//!
//! Metric names are compile-time enum variants — there is no string-keyed
//! API, so a dynamically-constructed metric name is unrepresentable (ci.sh
//! additionally greps call sites to keep it that way). Counters and gauges
//! are plain atomics; histograms bucket by powers of two. Every value
//! recorded into a [`MetricsRegistry`] must be a pure function of the data
//! (row counts, frontier sizes, sample counts), **never** of timing, so a
//! [`MetricsReport`] snapshot is byte-identical at any thread count.
//!
//! Wall-clock stage timings are deliberately quarantined in a separate
//! [`TimingReport`] (fed by [`MetricsRegistry::record_stage`]): they share
//! the registry's closed-name discipline but are excluded from every
//! determinism comparison and from [`MetricsReport`] itself.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::json_escape;

/// Number of registered metrics (counters + gauges).
pub const NUM_METRICS: usize = 52;
/// Number of registered histograms.
pub const NUM_HISTS: usize = 2;
/// Number of registered wall-clock stages.
pub const NUM_STAGES: usize = 10;
/// Histogram bucket upper bounds (≤, powers of two); one overflow bucket
/// follows.
pub const HIST_BOUNDS: [u64; 17] =
    [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536];
/// Buckets per histogram (bounds + overflow).
pub const NUM_BUCKETS: usize = HIST_BOUNDS.len() + 1;

/// How a metric is written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic; written with [`MetricsRegistry::add`].
    Counter,
    /// Point-in-time value; written with [`MetricsRegistry::set`] from
    /// single-threaded code (build) only, so snapshots stay deterministic.
    Gauge,
}

/// The closed metric registry: every counter and gauge the engine records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Metric {
    /// Relational tables registered at build (native + flattened +
    /// extracted).
    IngestTables,
    /// Semi-structured collections successfully flattened.
    IngestCollections,
    /// Unstructured documents indexed.
    IngestDocuments,
    /// Rows in the `extracted` table.
    IngestExtractedRows,
    /// Sources quarantined during ingestion/build.
    IngestQuarantined,
    /// Nodes in the heterogeneous graph.
    GraphNodes,
    /// Edges in the heterogeneous graph.
    GraphEdges,
    /// Distinct entity nodes created at build.
    GraphEntities,
    /// Chunks indexed into the graph.
    GraphChunks,
    /// Table records indexed into the graph.
    GraphRecords,
    /// Queries answered (including abstentions).
    QueryAnswered,
    /// Queries that ended in abstention.
    QueryAbstained,
    /// Degradation-ladder downgrades recorded across all queries.
    QueryDegradations,
    /// Queries resolved on the structured route.
    QueryStructuredHits,
    /// Topology traversals run.
    TraverseQueries,
    /// Anchor nodes linked across all traversals.
    TraverseAnchors,
    /// Distinct nodes discovered across all traversals.
    TraverseNodesTouched,
    /// Heap expansions performed across all traversals.
    TraverseNodesPopped,
    /// Chunk candidates scored across all traversals.
    TraverseChunksScored,
    /// Traversals truncated by the frontier governor.
    TraverseFrontierCapped,
    /// Traversals that fell back to pure lexical retrieval.
    TraverseLexicalFallback,
    /// Queries that fell back to dense retrieval (traversal fault).
    DenseFallbackQueries,
    /// Logical plans executed on the structured route.
    RelPlansExecuted,
    /// Base-table rows scanned by plan execution.
    RelRowsScanned,
    /// Join output rows materialized by plan execution.
    RelRowsJoined,
    /// Executions aborted by the join row budget.
    RelBudgetHits,
    /// Plan executions that failed (other than budget hits).
    RelExecErrors,
    /// Operator syntheses that failed.
    RelSynthesisErrors,
    /// Entropy estimates computed.
    EntropyEstimates,
    /// Answer samples drawn for entropy estimation.
    EntropySamples,
    /// Semantic clusters formed across all estimates.
    EntropyClusters,
    /// Deterministic fault injections that fired.
    FaultsFired,
    /// `answer_batch` invocations.
    BatchCalls,
    /// Questions submitted through `answer_batch`.
    BatchItems,
    /// parkit chunks dispatched for batch answering (width-invariant).
    BatchChunks,
    /// Tables covered by the planner's build-time statistics catalog.
    PlannerStatsTables,
    /// Column statistics (cardinality + NULL counts) collected at build.
    PlannerStatsColumns,
    /// Inverted-index postings counted into the statistics catalog.
    PlannerStatsPostings,
    /// Maximum graph node degree recorded in the statistics catalog.
    PlannerStatsMaxDegree,
    /// Logical plans synthesized and optimized by the cost-based planner.
    PlannerPlansBuilt,
    /// Join orders solved exactly (dynamic programming over subsets).
    PlannerJoinDp,
    /// Join orders solved greedily (relation count above the DP threshold).
    PlannerJoinGreedy,
    /// Buffer-pool page requests served from memory.
    StorePageHits,
    /// Buffer-pool page requests that read from the page file.
    StorePageMisses,
    /// Buffer-pool frames evicted by the clock sweep.
    StoreEvictions,
    /// Dirty pages flushed to the page file.
    StoreFlushes,
    /// Delta records appended to the write-ahead log.
    WalAppends,
    /// Payload bytes appended to the write-ahead log.
    WalAppendedBytes,
    /// Durable WAL flushes (fsync) completed.
    WalFlushes,
    /// WAL records replayed during snapshot-open recovery.
    WalReplayedRecords,
    /// Torn WAL tails truncated during recovery.
    WalTornTruncations,
    /// Checkpoints folded into a fresh snapshot.
    WalCheckpoints,
}

impl Metric {
    /// Every registered metric, in registry (declaration) order.
    pub const ALL: [Metric; NUM_METRICS] = [
        Metric::IngestTables,
        Metric::IngestCollections,
        Metric::IngestDocuments,
        Metric::IngestExtractedRows,
        Metric::IngestQuarantined,
        Metric::GraphNodes,
        Metric::GraphEdges,
        Metric::GraphEntities,
        Metric::GraphChunks,
        Metric::GraphRecords,
        Metric::QueryAnswered,
        Metric::QueryAbstained,
        Metric::QueryDegradations,
        Metric::QueryStructuredHits,
        Metric::TraverseQueries,
        Metric::TraverseAnchors,
        Metric::TraverseNodesTouched,
        Metric::TraverseNodesPopped,
        Metric::TraverseChunksScored,
        Metric::TraverseFrontierCapped,
        Metric::TraverseLexicalFallback,
        Metric::DenseFallbackQueries,
        Metric::RelPlansExecuted,
        Metric::RelRowsScanned,
        Metric::RelRowsJoined,
        Metric::RelBudgetHits,
        Metric::RelExecErrors,
        Metric::RelSynthesisErrors,
        Metric::EntropyEstimates,
        Metric::EntropySamples,
        Metric::EntropyClusters,
        Metric::FaultsFired,
        Metric::BatchCalls,
        Metric::BatchItems,
        Metric::BatchChunks,
        Metric::PlannerStatsTables,
        Metric::PlannerStatsColumns,
        Metric::PlannerStatsPostings,
        Metric::PlannerStatsMaxDegree,
        Metric::PlannerPlansBuilt,
        Metric::PlannerJoinDp,
        Metric::PlannerJoinGreedy,
        Metric::StorePageHits,
        Metric::StorePageMisses,
        Metric::StoreEvictions,
        Metric::StoreFlushes,
        Metric::WalAppends,
        Metric::WalAppendedBytes,
        Metric::WalFlushes,
        Metric::WalReplayedRecords,
        Metric::WalTornTruncations,
        Metric::WalCheckpoints,
    ];

    /// Stable registry index.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable dotted name (`subsystem.measure`).
    pub fn name(self) -> &'static str {
        match self {
            Metric::IngestTables => "ingest.tables",
            Metric::IngestCollections => "ingest.collections",
            Metric::IngestDocuments => "ingest.documents",
            Metric::IngestExtractedRows => "ingest.extracted_rows",
            Metric::IngestQuarantined => "ingest.quarantined",
            Metric::GraphNodes => "graph.nodes",
            Metric::GraphEdges => "graph.edges",
            Metric::GraphEntities => "graph.entities",
            Metric::GraphChunks => "graph.chunks",
            Metric::GraphRecords => "graph.records",
            Metric::QueryAnswered => "query.answered",
            Metric::QueryAbstained => "query.abstained",
            Metric::QueryDegradations => "query.degradations",
            Metric::QueryStructuredHits => "query.structured_hits",
            Metric::TraverseQueries => "traverse.queries",
            Metric::TraverseAnchors => "traverse.anchors",
            Metric::TraverseNodesTouched => "traverse.nodes_touched",
            Metric::TraverseNodesPopped => "traverse.nodes_popped",
            Metric::TraverseChunksScored => "traverse.chunks_scored",
            Metric::TraverseFrontierCapped => "traverse.frontier_capped",
            Metric::TraverseLexicalFallback => "traverse.lexical_fallback",
            Metric::DenseFallbackQueries => "dense.fallback_queries",
            Metric::RelPlansExecuted => "relstore.plans_executed",
            Metric::RelRowsScanned => "relstore.rows_scanned",
            Metric::RelRowsJoined => "relstore.rows_joined",
            Metric::RelBudgetHits => "relstore.budget_hits",
            Metric::RelExecErrors => "relstore.exec_errors",
            Metric::RelSynthesisErrors => "relstore.synthesis_errors",
            Metric::EntropyEstimates => "entropy.estimates",
            Metric::EntropySamples => "entropy.samples",
            Metric::EntropyClusters => "entropy.clusters",
            Metric::FaultsFired => "faultkit.fired",
            Metric::BatchCalls => "parkit.batch_calls",
            Metric::BatchItems => "parkit.batch_items",
            Metric::BatchChunks => "parkit.batch_chunks",
            Metric::PlannerStatsTables => "planner.stats_tables",
            Metric::PlannerStatsColumns => "planner.stats_columns",
            Metric::PlannerStatsPostings => "planner.stats_postings",
            Metric::PlannerStatsMaxDegree => "planner.stats_max_degree",
            Metric::PlannerPlansBuilt => "planner.plans_built",
            Metric::PlannerJoinDp => "planner.join_dp",
            Metric::PlannerJoinGreedy => "planner.join_greedy",
            Metric::StorePageHits => "store.page_hits",
            Metric::StorePageMisses => "store.page_misses",
            Metric::StoreEvictions => "store.evictions",
            Metric::StoreFlushes => "store.flushes",
            Metric::WalAppends => "wal.appends",
            Metric::WalAppendedBytes => "wal.appended_bytes",
            Metric::WalFlushes => "wal.flushes",
            Metric::WalReplayedRecords => "wal.replayed_records",
            Metric::WalTornTruncations => "wal.torn_truncations",
            Metric::WalCheckpoints => "wal.checkpoints",
        }
    }

    /// Counter or gauge.
    pub fn kind(self) -> MetricKind {
        match self {
            Metric::IngestTables
            | Metric::IngestCollections
            | Metric::IngestDocuments
            | Metric::IngestExtractedRows
            | Metric::GraphNodes
            | Metric::GraphEdges
            | Metric::GraphEntities
            | Metric::GraphChunks
            | Metric::GraphRecords
            | Metric::PlannerStatsTables
            | Metric::PlannerStatsColumns
            | Metric::PlannerStatsPostings
            | Metric::PlannerStatsMaxDegree => MetricKind::Gauge,
            _ => MetricKind::Counter,
        }
    }

    /// Looks a metric up by its dotted name.
    pub fn from_name(name: &str) -> Option<Metric> {
        Metric::ALL.into_iter().find(|m| m.name() == name)
    }
}

/// The closed histogram registry (buckets over deterministic values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Hist {
    /// Frontier size (nodes touched) per traversal.
    TraverseFrontier,
    /// Result rows per successfully executed plan.
    RelResultRows,
}

impl Hist {
    /// Every registered histogram, in registry order.
    pub const ALL: [Hist; NUM_HISTS] = [Hist::TraverseFrontier, Hist::RelResultRows];

    /// Stable registry index.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable dotted name.
    pub fn name(self) -> &'static str {
        match self {
            Hist::TraverseFrontier => "traverse.frontier_size",
            Hist::RelResultRows => "relstore.result_rows",
        }
    }
}

/// The closed wall-clock stage registry (feeds [`TimingReport`] only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stage {
    /// Whole engine build.
    BuildTotal,
    /// Semi-structured collection flattening.
    BuildFlatten,
    /// Relational table generation over documents.
    BuildExtract,
    /// Heterogeneous graph construction.
    BuildGraph,
    /// Dense retriever embedding build.
    BuildDense,
    /// Planner statistics-catalog collection.
    BuildStats,
    /// Whole `answer` call.
    AnswerTotal,
    /// Structured route (synthesis + plan execution).
    AnswerStructured,
    /// Retrieval rung (traversal or dense).
    AnswerRetrieval,
    /// Entropy estimation.
    AnswerEntropy,
}

impl Stage {
    /// Every registered stage, in registry order.
    pub const ALL: [Stage; NUM_STAGES] = [
        Stage::BuildTotal,
        Stage::BuildFlatten,
        Stage::BuildExtract,
        Stage::BuildGraph,
        Stage::BuildDense,
        Stage::BuildStats,
        Stage::AnswerTotal,
        Stage::AnswerStructured,
        Stage::AnswerRetrieval,
        Stage::AnswerEntropy,
    ];

    /// Stable registry index.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable dotted name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::BuildTotal => "build.total",
            Stage::BuildFlatten => "build.flatten",
            Stage::BuildExtract => "build.extract",
            Stage::BuildGraph => "build.graph",
            Stage::BuildDense => "build.dense",
            Stage::BuildStats => "build.stats",
            Stage::AnswerTotal => "answer.total",
            Stage::AnswerStructured => "answer.structured",
            Stage::AnswerRetrieval => "answer.retrieval",
            Stage::AnswerEntropy => "answer.entropy",
        }
    }
}

/// Thread-safe metric storage for one engine instance.
///
/// Writes are relaxed atomics: integer sums and bucket increments are
/// order-independent, so concurrent recording from a parkit pool yields
/// the same snapshot as a sequential run.
#[derive(Debug)]
pub struct MetricsRegistry {
    counters: [AtomicU64; NUM_METRICS],
    hists: [[AtomicU64; NUM_BUCKETS]; NUM_HISTS],
    stage_ns: [AtomicU64; NUM_STAGES],
    stage_count: [AtomicU64; NUM_STAGES],
    /// Per-stage wall-clock samples (capped), so [`TimingReport`] can
    /// report real order statistics instead of copying the mean into
    /// every quantile field.
    stage_samples: [Mutex<Vec<u64>>; NUM_STAGES],
}

/// Samples retained per stage; recording beyond this keeps the sums
/// exact but stops growing the per-iteration sample vector.
const MAX_STAGE_SAMPLES: usize = 65_536;

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// A zeroed registry.
    pub fn new() -> Self {
        MetricsRegistry {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            hists: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            stage_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            stage_count: std::array::from_fn(|_| AtomicU64::new(0)),
            stage_samples: std::array::from_fn(|_| Mutex::new(Vec::new())),
        }
    }

    /// Adds to a counter. Usable on gauges only from single-threaded code.
    pub fn add(&self, metric: Metric, n: u64) {
        self.counters[metric.index()].fetch_add(n, Ordering::Relaxed);
    }

    /// Increments a counter by one.
    pub fn incr(&self, metric: Metric) {
        self.add(metric, 1);
    }

    /// Sets a gauge (single-threaded build code only — last write wins).
    pub fn set(&self, metric: Metric, value: u64) {
        debug_assert_eq!(metric.kind(), MetricKind::Gauge, "set() is for gauges: {metric:?}");
        self.counters[metric.index()].store(value, Ordering::Relaxed);
    }

    /// Current value of a metric.
    pub fn get(&self, metric: Metric) -> u64 {
        self.counters[metric.index()].load(Ordering::Relaxed)
    }

    /// Records one observation into a histogram.
    pub fn observe(&self, hist: Hist, value: u64) {
        let bucket = HIST_BOUNDS.iter().position(|&b| value <= b).unwrap_or(NUM_BUCKETS - 1);
        self.hists[hist.index()][bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Records wall-clock time spent in a stage ([`TimingReport`] only;
    /// never part of the deterministic [`MetricsReport`]).
    pub fn record_stage(&self, stage: Stage, ns: u64) {
        self.stage_ns[stage.index()].fetch_add(ns, Ordering::Relaxed);
        self.stage_count[stage.index()].fetch_add(1, Ordering::Relaxed);
        if let Ok(mut samples) = self.stage_samples[stage.index()].lock() {
            if samples.len() < MAX_STAGE_SAMPLES {
                samples.push(ns);
            }
        }
    }

    /// Deterministic snapshot: every counter, gauge, and histogram, in
    /// registry order (zeros included, so the byte layout never depends on
    /// which code paths ran).
    pub fn snapshot(&self) -> MetricsReport {
        let metrics = Metric::ALL.iter().map(|&m| (m.name(), self.get(m))).collect::<Vec<_>>();
        let histograms = Hist::ALL
            .iter()
            .map(|&h| {
                let buckets = (0..NUM_BUCKETS)
                    .map(|b| {
                        let le = HIST_BOUNDS.get(b).copied();
                        (le, self.hists[h.index()][b].load(Ordering::Relaxed))
                    })
                    .collect();
                (h.name(), buckets)
            })
            .collect();
        MetricsReport { metrics, histograms }
    }

    /// Wall-clock stage timings (non-deterministic by nature; kept apart
    /// from [`MetricsReport`] so determinism comparisons never see them).
    pub fn timings(&self) -> TimingReport {
        TimingReport {
            stages: Stage::ALL
                .iter()
                .map(|&s| {
                    (
                        s.name(),
                        self.stage_count[s.index()].load(Ordering::Relaxed),
                        self.stage_ns[s.index()].load(Ordering::Relaxed),
                    )
                })
                .collect(),
            samples: Stage::ALL
                .iter()
                .map(|&s| {
                    let samples =
                        self.stage_samples[s.index()].lock().map(|g| g.clone()).unwrap_or_default();
                    (s.name(), samples)
                })
                .collect(),
        }
    }
}

/// A deterministic point-in-time snapshot of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsReport {
    /// `(name, value)` for every registered counter/gauge, registry order.
    pub metrics: Vec<(&'static str, u64)>,
    /// `(name, buckets)` for every histogram; each bucket is
    /// `(upper bound, count)` with `None` as the overflow bucket.
    pub histograms: Vec<(&'static str, Vec<(Option<u64>, u64)>)>,
}

impl MetricsReport {
    /// Looks a counter/gauge value up by name.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.metrics.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }

    /// Stable single-line JSON (key order = registry order), suitable for
    /// byte-for-byte determinism comparison and `BENCH_*.json` appending.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"metrics\":{");
        for (i, (name, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", json_escape(name)));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, buckets)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{{", json_escape(name)));
            for (j, (le, count)) in buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                match le {
                    Some(le) => out.push_str(&format!("\"le_{le}\":{count}")),
                    None => out.push_str(&format!("\"inf\":{count}")),
                }
            }
            out.push('}');
        }
        out.push_str("}}");
        out
    }
}

impl fmt::Display for MetricsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "metrics:")?;
        for (name, v) in &self.metrics {
            writeln!(f, "  {name:<26} {v}")?;
        }
        for (name, buckets) in &self.histograms {
            let total: u64 = buckets.iter().map(|(_, c)| c).sum();
            writeln!(f, "  {name:<26} {total} observations")?;
        }
        Ok(())
    }
}

/// Wall-clock stage timings: `(stage, count, total_ns)` per stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimingReport {
    /// One entry per registered [`Stage`], registry order.
    pub stages: Vec<(&'static str, u64, u64)>,
    /// Per-stage wall-clock samples (one entry per recorded call, capped
    /// at `MAX_STAGE_SAMPLES`), registry order. Feeds real order
    /// statistics (median/p95/min/max) in the bench harness.
    pub samples: Vec<(&'static str, Vec<u64>)>,
}

impl TimingReport {
    /// Total nanoseconds recorded for a stage.
    pub fn total_ns(&self, name: &str) -> Option<u64> {
        self.stages.iter().find(|(n, _, _)| *n == name).map(|(_, _, ns)| *ns)
    }

    /// Times a stage has been recorded.
    pub fn count(&self, name: &str) -> Option<u64> {
        self.stages.iter().find(|(n, _, _)| *n == name).map(|(_, c, _)| *c)
    }

    /// Per-iteration samples recorded for a stage (empty when unknown).
    pub fn samples_of(&self, name: &str) -> &[u64] {
        self.samples.iter().find(|(n, _)| *n == name).map(|(_, s)| s.as_slice()).unwrap_or(&[])
    }

    /// Stable single-line JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"timings\":{");
        for (i, (name, count, ns)) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{count},\"total_ns\":{ns}}}",
                json_escape(name)
            ));
        }
        out.push_str("}}");
        out
    }
}

impl fmt::Display for TimingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "stage timings:")?;
        for (name, count, ns) in &self.stages {
            let avg = if *count > 0 { ns / count } else { 0 };
            writeln!(f, "  {name:<20} {count:>6} × avg {avg} ns")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registries_are_consistent() {
        for (i, m) in Metric::ALL.into_iter().enumerate() {
            assert_eq!(m.index(), i, "{m:?}");
            assert_eq!(Metric::from_name(m.name()), Some(m));
            assert!(m.name().contains('.'), "{m:?}");
        }
        for (i, h) in Hist::ALL.into_iter().enumerate() {
            assert_eq!(h.index(), i);
        }
        for (i, s) in Stage::ALL.into_iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        assert_eq!(Metric::from_name("nope"), None);
        let mut names: Vec<&str> = Metric::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NUM_METRICS, "duplicate metric name");
    }

    #[test]
    fn counters_and_gauges_roundtrip() {
        let r = MetricsRegistry::new();
        r.incr(Metric::QueryAnswered);
        r.add(Metric::QueryAnswered, 2);
        r.set(Metric::GraphNodes, 41);
        assert_eq!(r.get(Metric::QueryAnswered), 3);
        assert_eq!(r.get(Metric::GraphNodes), 41);
        assert_eq!(r.get(Metric::QueryAbstained), 0);
    }

    #[test]
    fn histogram_buckets_by_powers_of_two() {
        let r = MetricsRegistry::new();
        r.observe(Hist::TraverseFrontier, 0);
        r.observe(Hist::TraverseFrontier, 1);
        r.observe(Hist::TraverseFrontier, 5);
        r.observe(Hist::TraverseFrontier, 1_000_000);
        let report = r.snapshot();
        let (_, buckets) = &report.histograms[Hist::TraverseFrontier.index()];
        assert_eq!(buckets[0], (Some(1), 2), "0 and 1 land in le_1");
        assert_eq!(buckets[3], (Some(8), 1), "5 lands in le_8");
        assert_eq!(buckets[NUM_BUCKETS - 1], (None, 1), "overflow bucket");
    }

    #[test]
    fn snapshot_is_complete_and_json_stable() {
        let r = MetricsRegistry::new();
        let report = r.snapshot();
        assert_eq!(report.metrics.len(), NUM_METRICS);
        assert_eq!(report.histograms.len(), NUM_HISTS);
        assert_eq!(report.get("query.answered"), Some(0));
        assert_eq!(report.get("bogus"), None);
        r.incr(Metric::QueryAnswered);
        let a = r.snapshot().to_json();
        let b = r.snapshot().to_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"metrics\":{\"ingest.tables\":0"), "{a}");
        assert!(a.contains("\"query.answered\":1"));
        assert!(a.contains("\"traverse.frontier_size\":{\"le_1\":0"));
        assert!(r.snapshot().to_string().contains("query.answered"));
    }

    #[test]
    fn sums_are_order_independent_across_threads() {
        let r = MetricsRegistry::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        r.incr(Metric::EntropySamples);
                        r.observe(Hist::RelResultRows, 3);
                    }
                });
            }
        });
        assert_eq!(r.get(Metric::EntropySamples), 4000);
        let report = r.snapshot();
        let (_, buckets) = &report.histograms[Hist::RelResultRows.index()];
        assert_eq!(buckets[2], (Some(4), 4000));
    }

    #[test]
    fn timings_are_separate_from_metrics() {
        let r = MetricsRegistry::new();
        r.record_stage(Stage::AnswerTotal, 500);
        r.record_stage(Stage::AnswerTotal, 700);
        let t = r.timings();
        assert_eq!(t.count("answer.total"), Some(2));
        assert_eq!(t.total_ns("answer.total"), Some(1200));
        assert_eq!(t.samples_of("answer.total"), &[500, 700], "per-call samples retained");
        assert!(t.samples_of("build.graph").is_empty());
        assert!(t.samples_of("bogus").is_empty());
        assert_eq!(t.total_ns("build.graph"), Some(0));
        assert!(t.to_json().contains("\"answer.total\":{\"count\":2,\"total_ns\":1200}"));
        assert!(t.to_string().contains("answer.total"));
        // The deterministic snapshot must not mention timings at all.
        assert!(!r.snapshot().to_json().contains("total_ns"));
    }
}
