//! Closed-registry metrics.
//!
//! Metric names are compile-time enum variants — there is no string-keyed
//! API, so a dynamically-constructed metric name is unrepresentable (ci.sh
//! additionally lints call sites to keep it that way). The
//! [`registry_enum!`] macro generates each enum, its `ALL` table, and the
//! name mappings from one variant list, so a variant missing from `ALL` or
//! `from_name` is a build error rather than a test failure. Counters and
//! gauges are plain atomics; histograms bucket on the shared log-linear
//! layout from [`crate::hist`]. Every value recorded into a
//! [`MetricsRegistry`] must be a pure function of the data (row counts,
//! frontier sizes, meter totals), **never** of timing, so a
//! [`MetricsReport`] snapshot is byte-identical at any thread count.
//!
//! Wall-clock stage timings are deliberately quarantined in a separate
//! [`TimingReport`] (fed by [`MetricsRegistry::record_stage`]): they share
//! the registry's closed-name discipline but are excluded from every
//! determinism comparison and from [`MetricsReport`] itself.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::hist;
use crate::json_escape;

/// Declares a closed registry enum. The single variant list generates the
/// enum itself plus `COUNT`, `ALL`, `index()`, `name()`, and
/// `from_name()`, so the registry cannot drift out of sync with the enum:
/// a variant that exists is in `ALL` by construction.
macro_rules! registry_enum {
    (
        $(#[$outer:meta])*
        $vis:vis enum $Enum:ident {
            $( $(#[$vmeta:meta])* $Variant:ident => $name:literal, )+
        }
    ) => {
        $(#[$outer])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        $vis enum $Enum {
            $( $(#[$vmeta])* $Variant, )+
        }

        impl $Enum {
            /// Number of registered variants.
            $vis const COUNT: usize = [$($Enum::$Variant),+].len();

            /// Every registered variant, in registry (declaration) order.
            $vis const ALL: [$Enum; Self::COUNT] = [$($Enum::$Variant),+];

            /// Stable registry index.
            $vis fn index(self) -> usize {
                self as usize
            }

            /// Stable dotted name (`subsystem.measure`).
            $vis fn name(self) -> &'static str {
                match self { $( $Enum::$Variant => $name, )+ }
            }

            /// Looks a variant up by its dotted name.
            $vis fn from_name(name: &str) -> Option<$Enum> {
                match name { $( $name => Some($Enum::$Variant), )+ _ => None }
            }
        }
    };
}

/// Number of registered metrics (counters + gauges).
pub const NUM_METRICS: usize = Metric::COUNT;
/// Number of registered histograms.
pub const NUM_HISTS: usize = Hist::COUNT;
/// Number of registered wall-clock stages.
pub const NUM_STAGES: usize = Stage::COUNT;
/// Largest value the registry histograms track in a regular bucket;
/// anything above lands in the single overflow bucket.
pub const MAX_TRACKED: u64 = 65_535;
/// Buckets per registry histogram: the log-linear buckets covering
/// `0..=MAX_TRACKED` plus one overflow bucket.
pub const NUM_BUCKETS: usize = hist::bucket_index(MAX_TRACKED) + 2;

/// How a metric is written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic; written with [`MetricsRegistry::add`].
    Counter,
    /// Point-in-time value; written with [`MetricsRegistry::set`] from
    /// single-threaded code (build) only, so snapshots stay deterministic.
    Gauge,
}

registry_enum! {
    /// The closed metric registry: every counter and gauge the engine
    /// records.
    pub enum Metric {
        /// Relational tables registered at build (native + flattened +
        /// extracted).
        IngestTables => "ingest.tables",
        /// Semi-structured collections successfully flattened.
        IngestCollections => "ingest.collections",
        /// Unstructured documents indexed.
        IngestDocuments => "ingest.documents",
        /// Rows in the `extracted` table.
        IngestExtractedRows => "ingest.extracted_rows",
        /// Sources quarantined during ingestion/build.
        IngestQuarantined => "ingest.quarantined",
        /// Nodes in the heterogeneous graph.
        GraphNodes => "graph.nodes",
        /// Edges in the heterogeneous graph.
        GraphEdges => "graph.edges",
        /// Distinct entity nodes created at build.
        GraphEntities => "graph.entities",
        /// Chunks indexed into the graph.
        GraphChunks => "graph.chunks",
        /// Table records indexed into the graph.
        GraphRecords => "graph.records",
        /// Queries answered (including abstentions).
        QueryAnswered => "query.answered",
        /// Queries that ended in abstention.
        QueryAbstained => "query.abstained",
        /// Degradation-ladder downgrades recorded across all queries.
        QueryDegradations => "query.degradations",
        /// Queries resolved on the structured route.
        QueryStructuredHits => "query.structured_hits",
        /// Topology traversals run.
        TraverseQueries => "traverse.queries",
        /// Anchor nodes linked across all traversals.
        TraverseAnchors => "traverse.anchors",
        /// Distinct nodes discovered across all traversals.
        TraverseNodesTouched => "traverse.nodes_touched",
        /// Heap expansions performed across all traversals.
        TraverseNodesPopped => "traverse.nodes_popped",
        /// Chunk candidates scored across all traversals.
        TraverseChunksScored => "traverse.chunks_scored",
        /// Traversals truncated by the frontier governor.
        TraverseFrontierCapped => "traverse.frontier_capped",
        /// Traversals that fell back to pure lexical retrieval.
        TraverseLexicalFallback => "traverse.lexical_fallback",
        /// Queries that fell back to dense retrieval (traversal fault).
        DenseFallbackQueries => "dense.fallback_queries",
        /// Logical plans executed on the structured route.
        RelPlansExecuted => "relstore.plans_executed",
        /// Base-table rows scanned by plan execution.
        RelRowsScanned => "relstore.rows_scanned",
        /// Join output rows materialized by plan execution.
        RelRowsJoined => "relstore.rows_joined",
        /// Executions aborted by the join row budget.
        RelBudgetHits => "relstore.budget_hits",
        /// Plan executions that failed (other than budget hits).
        RelExecErrors => "relstore.exec_errors",
        /// Operator syntheses that failed.
        RelSynthesisErrors => "relstore.synthesis_errors",
        /// Entropy estimates computed.
        EntropyEstimates => "entropy.estimates",
        /// Answer samples drawn for entropy estimation.
        EntropySamples => "entropy.samples",
        /// Semantic clusters formed across all estimates.
        EntropyClusters => "entropy.clusters",
        /// Deterministic fault injections that fired.
        FaultsFired => "faultkit.fired",
        /// `answer_batch` invocations.
        BatchCalls => "parkit.batch_calls",
        /// Questions submitted through `answer_batch`.
        BatchItems => "parkit.batch_items",
        /// parkit chunks dispatched for batch answering (width-invariant).
        BatchChunks => "parkit.batch_chunks",
        /// Tables covered by the planner's build-time statistics catalog.
        PlannerStatsTables => "planner.stats_tables",
        /// Column statistics (cardinality + NULL counts) collected at
        /// build.
        PlannerStatsColumns => "planner.stats_columns",
        /// Inverted-index postings counted into the statistics catalog.
        PlannerStatsPostings => "planner.stats_postings",
        /// Maximum graph node degree recorded in the statistics catalog.
        PlannerStatsMaxDegree => "planner.stats_max_degree",
        /// Logical plans synthesized and optimized by the cost-based
        /// planner.
        PlannerPlansBuilt => "planner.plans_built",
        /// Join orders solved exactly (dynamic programming over subsets).
        PlannerJoinDp => "planner.join_dp",
        /// Join orders solved greedily (relation count above the DP
        /// threshold).
        PlannerJoinGreedy => "planner.join_greedy",
        /// Buffer-pool page requests served from memory.
        StorePageHits => "store.page_hits",
        /// Buffer-pool page requests that read from the page file.
        StorePageMisses => "store.page_misses",
        /// Buffer-pool frames evicted by the clock sweep.
        StoreEvictions => "store.evictions",
        /// Dirty pages flushed to the page file.
        StoreFlushes => "store.flushes",
        /// Delta records appended to the write-ahead log.
        WalAppends => "wal.appends",
        /// Payload bytes appended to the write-ahead log.
        WalAppendedBytes => "wal.appended_bytes",
        /// Durable WAL flushes (fsync) completed.
        WalFlushes => "wal.flushes",
        /// WAL records replayed during snapshot-open recovery.
        WalReplayedRecords => "wal.replayed_records",
        /// Torn WAL tails truncated during recovery.
        WalTornTruncations => "wal.torn_truncations",
        /// Checkpoints folded into a fresh snapshot.
        WalCheckpoints => "wal.checkpoints",
    }
}

impl Metric {
    /// Counter or gauge.
    pub fn kind(self) -> MetricKind {
        match self {
            Metric::IngestTables
            | Metric::IngestCollections
            | Metric::IngestDocuments
            | Metric::IngestExtractedRows
            | Metric::GraphNodes
            | Metric::GraphEdges
            | Metric::GraphEntities
            | Metric::GraphChunks
            | Metric::GraphRecords
            | Metric::PlannerStatsTables
            | Metric::PlannerStatsColumns
            | Metric::PlannerStatsPostings
            | Metric::PlannerStatsMaxDegree => MetricKind::Gauge,
            _ => MetricKind::Counter,
        }
    }
}

registry_enum! {
    /// The closed histogram registry (distributions over deterministic
    /// values — sizes, depths, and per-query resource-meter totals; never
    /// durations).
    pub enum Hist {
        /// Frontier size (nodes touched) per traversal.
        TraverseFrontier => "traverse.frontier_size",
        /// Result rows per successfully executed plan.
        RelResultRows => "relstore.result_rows",
        /// Degradation-ladder downgrades per query.
        QueryDegradationDepth => "query.degradation_depth",
        /// Provenance items attached per answer.
        QueryProvenance => "query.provenance_items",
        /// Buffer-pool pages read per query (resource meter).
        MeterPagesRead => "meter.pages_read",
        /// Inverted-index postings scanned per query (resource meter).
        MeterPostingsScanned => "meter.postings_scanned",
        /// Graph heap expansions per query (resource meter).
        MeterNodesPopped => "meter.nodes_popped",
        /// Dense vectors compared per query (resource meter).
        MeterDenseCompared => "meter.dense_compared",
        /// SLM invocations per query (resource meter).
        MeterSlmCalls => "meter.slm_calls",
        /// SLM answer samples drawn per query (resource meter).
        MeterSlmSamples => "meter.slm_samples",
        /// WAL bytes appended per ingest batch (resource meter).
        MeterWalBytes => "meter.wal_bytes",
    }
}

registry_enum! {
    /// The closed wall-clock stage registry (feeds [`TimingReport`] only).
    pub enum Stage {
        /// Whole engine build.
        BuildTotal => "build.total",
        /// Semi-structured collection flattening.
        BuildFlatten => "build.flatten",
        /// Relational table generation over documents.
        BuildExtract => "build.extract",
        /// Heterogeneous graph construction.
        BuildGraph => "build.graph",
        /// Dense retriever embedding build.
        BuildDense => "build.dense",
        /// Planner statistics-catalog collection.
        BuildStats => "build.stats",
        /// Whole `answer` call.
        AnswerTotal => "answer.total",
        /// Structured route (synthesis + plan execution).
        AnswerStructured => "answer.structured",
        /// Retrieval rung (traversal or dense).
        AnswerRetrieval => "answer.retrieval",
        /// Entropy estimation.
        AnswerEntropy => "answer.entropy",
    }
}

/// Thread-safe metric storage for one engine instance.
///
/// Writes are relaxed atomics: integer sums and bucket increments are
/// order-independent, so concurrent recording from a parkit pool yields
/// the same snapshot as a sequential run.
#[derive(Debug)]
pub struct MetricsRegistry {
    counters: [AtomicU64; NUM_METRICS],
    hists: [[AtomicU64; NUM_BUCKETS]; NUM_HISTS],
    stage_ns: [AtomicU64; NUM_STAGES],
    stage_count: [AtomicU64; NUM_STAGES],
    /// Per-stage wall-clock samples (capped), so [`TimingReport`] can
    /// report real order statistics instead of copying the mean into
    /// every quantile field.
    stage_samples: [Mutex<Vec<u64>>; NUM_STAGES],
}

/// Samples retained per stage; recording beyond this keeps the sums
/// exact but stops growing the per-iteration sample vector.
const MAX_STAGE_SAMPLES: usize = 65_536;

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// A zeroed registry.
    pub fn new() -> Self {
        MetricsRegistry {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            hists: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            stage_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            stage_count: std::array::from_fn(|_| AtomicU64::new(0)),
            stage_samples: std::array::from_fn(|_| Mutex::new(Vec::new())),
        }
    }

    /// Adds to a counter. Usable on gauges only from single-threaded code.
    pub fn add(&self, metric: Metric, n: u64) {
        self.counters[metric.index()].fetch_add(n, Ordering::Relaxed);
    }

    /// Increments a counter by one.
    pub fn incr(&self, metric: Metric) {
        self.add(metric, 1);
    }

    /// Sets a gauge (single-threaded build code only — last write wins).
    pub fn set(&self, metric: Metric, value: u64) {
        debug_assert_eq!(metric.kind(), MetricKind::Gauge, "set() is for gauges: {metric:?}");
        self.counters[metric.index()].store(value, Ordering::Relaxed);
    }

    /// Current value of a metric.
    pub fn get(&self, metric: Metric) -> u64 {
        self.counters[metric.index()].load(Ordering::Relaxed)
    }

    /// Records one observation into a histogram. Values above
    /// [`MAX_TRACKED`] land in the overflow bucket.
    pub fn observe(&self, hist: Hist, value: u64) {
        let bucket = hist::bucket_index(value).min(NUM_BUCKETS - 1);
        self.hists[hist.index()][bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Records wall-clock time spent in a stage ([`TimingReport`] only;
    /// never part of the deterministic [`MetricsReport`]).
    pub fn record_stage(&self, stage: Stage, ns: u64) {
        self.stage_ns[stage.index()].fetch_add(ns, Ordering::Relaxed);
        self.stage_count[stage.index()].fetch_add(1, Ordering::Relaxed);
        if let Ok(mut samples) = self.stage_samples[stage.index()].lock() {
            if samples.len() < MAX_STAGE_SAMPLES {
                samples.push(ns);
            }
        }
    }

    /// Deterministic snapshot: every counter, gauge, and histogram, in
    /// registry order (zeros included, so the byte layout never depends on
    /// which code paths ran).
    pub fn snapshot(&self) -> MetricsReport {
        let metrics = Metric::ALL.iter().map(|&m| (m.name(), self.get(m))).collect::<Vec<_>>();
        let histograms = Hist::ALL
            .iter()
            .map(|&h| {
                let buckets = (0..NUM_BUCKETS)
                    .map(|b| {
                        let le = (b < NUM_BUCKETS - 1).then(|| hist::bucket_upper(b));
                        (le, self.hists[h.index()][b].load(Ordering::Relaxed))
                    })
                    .collect();
                (h.name(), buckets)
            })
            .collect();
        MetricsReport { metrics, histograms }
    }

    /// Wall-clock stage timings (non-deterministic by nature; kept apart
    /// from [`MetricsReport`] so determinism comparisons never see them).
    pub fn timings(&self) -> TimingReport {
        TimingReport {
            stages: Stage::ALL
                .iter()
                .map(|&s| {
                    (
                        s.name(),
                        self.stage_count[s.index()].load(Ordering::Relaxed),
                        self.stage_ns[s.index()].load(Ordering::Relaxed),
                    )
                })
                .collect(),
            samples: Stage::ALL
                .iter()
                .map(|&s| {
                    let samples =
                        self.stage_samples[s.index()].lock().map(|g| g.clone()).unwrap_or_default();
                    (s.name(), samples)
                })
                .collect(),
        }
    }
}

/// A deterministic point-in-time snapshot of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsReport {
    /// `(name, value)` for every registered counter/gauge, registry order.
    pub metrics: Vec<(&'static str, u64)>,
    /// `(name, buckets)` for every histogram; each bucket is
    /// `(upper bound, count)` with `None` as the overflow bucket.
    pub histograms: Vec<(&'static str, Vec<(Option<u64>, u64)>)>,
}

impl MetricsReport {
    /// Looks a counter/gauge value up by name.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.metrics.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }

    /// Histogram buckets by name.
    pub fn hist(&self, name: &str) -> Option<&[(Option<u64>, u64)]> {
        self.histograms.iter().find(|(n, _)| *n == name).map(|(_, b)| b.as_slice())
    }

    /// Total observations recorded into a histogram.
    pub fn hist_total(&self, name: &str) -> Option<u64> {
        self.hist(name).map(|buckets| buckets.iter().map(|(_, c)| c).sum())
    }

    /// Quantile `q` of a histogram, reported as the bucket's inclusive
    /// upper bound (`u64::MAX` when the rank falls in the overflow
    /// bucket; 0 when empty). The registry tracks bucket counts only, so
    /// unlike [`crate::hist::Histogram::quantile`] there is no exact
    /// min/max clamp.
    pub fn hist_quantile(&self, name: &str, q: f64) -> Option<u64> {
        let buckets = self.hist(name)?;
        let total: u64 = buckets.iter().map(|(_, c)| c).sum();
        if total == 0 {
            return Some(0);
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (le, count) in buckets {
            seen += count;
            if seen >= rank {
                return Some(le.unwrap_or(u64::MAX));
            }
        }
        Some(u64::MAX)
    }

    /// Stable single-line JSON (key order = registry order), suitable for
    /// byte-for-byte determinism comparison and `BENCH_*.json` appending.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"metrics\":{");
        for (i, (name, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", json_escape(name)));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, buckets)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{{", json_escape(name)));
            for (j, (le, count)) in buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                match le {
                    Some(le) => out.push_str(&format!("\"le_{le}\":{count}")),
                    None => out.push_str(&format!("\"inf\":{count}")),
                }
            }
            out.push('}');
        }
        out.push_str("}}");
        out
    }
}

impl fmt::Display for MetricsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "metrics:")?;
        for (name, v) in &self.metrics {
            writeln!(f, "  {name:<26} {v}")?;
        }
        for (name, buckets) in &self.histograms {
            let total: u64 = buckets.iter().map(|(_, c)| c).sum();
            writeln!(f, "  {name:<26} {total} observations")?;
        }
        Ok(())
    }
}

/// Wall-clock stage timings: `(stage, count, total_ns)` per stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimingReport {
    /// One entry per registered [`Stage`], registry order.
    pub stages: Vec<(&'static str, u64, u64)>,
    /// Per-stage wall-clock samples (one entry per recorded call, capped
    /// at `MAX_STAGE_SAMPLES`), registry order. Feeds real order
    /// statistics (median/p95/min/max) in the bench harness.
    pub samples: Vec<(&'static str, Vec<u64>)>,
}

impl TimingReport {
    /// Total nanoseconds recorded for a stage.
    pub fn total_ns(&self, name: &str) -> Option<u64> {
        self.stages.iter().find(|(n, _, _)| *n == name).map(|(_, _, ns)| *ns)
    }

    /// Times a stage has been recorded.
    pub fn count(&self, name: &str) -> Option<u64> {
        self.stages.iter().find(|(n, _, _)| *n == name).map(|(_, c, _)| *c)
    }

    /// Per-iteration samples recorded for a stage (empty when unknown).
    pub fn samples_of(&self, name: &str) -> &[u64] {
        self.samples.iter().find(|(n, _)| *n == name).map(|(_, s)| s.as_slice()).unwrap_or(&[])
    }

    /// Stable single-line JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"timings\":{");
        for (i, (name, count, ns)) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{count},\"total_ns\":{ns}}}",
                json_escape(name)
            ));
        }
        out.push_str("}}");
        out
    }
}

impl fmt::Display for TimingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "stage timings:")?;
        for (name, count, ns) in &self.stages {
            let avg = if *count > 0 { ns / count } else { 0 };
            writeln!(f, "  {name:<20} {count:>6} × avg {avg} ns")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registries_are_consistent() {
        for (i, m) in Metric::ALL.into_iter().enumerate() {
            assert_eq!(m.index(), i, "{m:?}");
            assert_eq!(Metric::from_name(m.name()), Some(m));
            assert!(m.name().contains('.'), "{m:?}");
        }
        for (i, h) in Hist::ALL.into_iter().enumerate() {
            assert_eq!(h.index(), i);
            assert_eq!(Hist::from_name(h.name()), Some(h));
        }
        for (i, s) in Stage::ALL.into_iter().enumerate() {
            assert_eq!(s.index(), i);
            assert_eq!(Stage::from_name(s.name()), Some(s));
        }
        assert_eq!(Metric::from_name("nope"), None);
        let mut names: Vec<&str> = Metric::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NUM_METRICS, "duplicate metric name");
    }

    #[test]
    fn names_use_registered_prefixes() {
        // The closed namespace: every metric and histogram name must live
        // under one of these subsystem prefixes. Adding a variant with a
        // novel prefix forces this list (and the DESIGN.md §14 table) to
        // grow in the same review.
        const PREFIXES: [&str; 13] = [
            "ingest", "graph", "query", "traverse", "dense", "relstore", "entropy", "faultkit",
            "parkit", "planner", "store", "wal", "meter",
        ];
        let check = |name: &str| {
            let prefix = name.split('.').next().unwrap_or("");
            assert!(PREFIXES.contains(&prefix), "unregistered metric prefix: {name}");
        };
        for m in Metric::ALL {
            check(m.name());
        }
        for h in Hist::ALL {
            check(h.name());
        }
    }

    #[test]
    fn counters_and_gauges_roundtrip() {
        let r = MetricsRegistry::new();
        r.incr(Metric::QueryAnswered);
        r.add(Metric::QueryAnswered, 2);
        r.set(Metric::GraphNodes, 41);
        assert_eq!(r.get(Metric::QueryAnswered), 3);
        assert_eq!(r.get(Metric::GraphNodes), 41);
        assert_eq!(r.get(Metric::QueryAbstained), 0);
    }

    #[test]
    fn histogram_buckets_are_log_linear() {
        let r = MetricsRegistry::new();
        r.observe(Hist::TraverseFrontier, 0);
        r.observe(Hist::TraverseFrontier, 1);
        r.observe(Hist::TraverseFrontier, 5);
        r.observe(Hist::TraverseFrontier, 9);
        r.observe(Hist::TraverseFrontier, 1_000_000);
        let report = r.snapshot();
        let (_, buckets) = &report.histograms[Hist::TraverseFrontier.index()];
        assert_eq!(buckets[0], (Some(0), 1), "0 lands in le_0");
        assert_eq!(buckets[1], (Some(1), 1), "1 lands in le_1");
        assert_eq!(buckets[5], (Some(5), 1), "small values get exact buckets");
        assert_eq!(buckets[8], (Some(9), 1), "9 lands in le_9");
        assert_eq!(buckets[NUM_BUCKETS - 1], (None, 1), "beyond MAX_TRACKED is overflow");
        assert_eq!(buckets[NUM_BUCKETS - 2].0, Some(MAX_TRACKED), "last regular bucket");
        assert_eq!(report.hist_total("traverse.frontier_size"), Some(5));
    }

    #[test]
    fn report_quantiles_walk_bucket_bounds() {
        let r = MetricsRegistry::new();
        for v in [1u64, 2, 3, 4] {
            r.observe(Hist::RelResultRows, v);
        }
        let report = r.snapshot();
        assert_eq!(report.hist_quantile("relstore.result_rows", 0.5), Some(2));
        assert_eq!(report.hist_quantile("relstore.result_rows", 1.0), Some(4));
        assert_eq!(report.hist_quantile("query.degradation_depth", 0.5), Some(0), "empty hist");
        assert_eq!(report.hist_quantile("bogus", 0.5), None);
        r.observe(Hist::RelResultRows, MAX_TRACKED + 1);
        assert_eq!(r.snapshot().hist_quantile("relstore.result_rows", 1.0), Some(u64::MAX));
    }

    #[test]
    fn snapshot_is_complete_and_json_stable() {
        let r = MetricsRegistry::new();
        let report = r.snapshot();
        assert_eq!(report.metrics.len(), NUM_METRICS);
        assert_eq!(report.histograms.len(), NUM_HISTS);
        assert_eq!(report.get("query.answered"), Some(0));
        assert_eq!(report.get("bogus"), None);
        r.incr(Metric::QueryAnswered);
        let a = r.snapshot().to_json();
        let b = r.snapshot().to_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"metrics\":{\"ingest.tables\":0"), "{a}");
        assert!(a.contains("\"query.answered\":1"));
        assert!(a.contains("\"traverse.frontier_size\":{\"le_0\":0"));
        assert!(a.contains("\"meter.slm_calls\":{\"le_0\":0"));
        assert!(r.snapshot().to_string().contains("query.answered"));
    }

    #[test]
    fn sums_are_order_independent_across_threads() {
        let r = MetricsRegistry::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        r.incr(Metric::EntropySamples);
                        r.observe(Hist::RelResultRows, 3);
                    }
                });
            }
        });
        assert_eq!(r.get(Metric::EntropySamples), 4000);
        let report = r.snapshot();
        let (_, buckets) = &report.histograms[Hist::RelResultRows.index()];
        assert_eq!(buckets[3], (Some(3), 4000));
    }

    #[test]
    fn timings_are_separate_from_metrics() {
        let r = MetricsRegistry::new();
        r.record_stage(Stage::AnswerTotal, 500);
        r.record_stage(Stage::AnswerTotal, 700);
        let t = r.timings();
        assert_eq!(t.count("answer.total"), Some(2));
        assert_eq!(t.total_ns("answer.total"), Some(1200));
        assert_eq!(t.samples_of("answer.total"), &[500, 700], "per-call samples retained");
        assert!(t.samples_of("build.graph").is_empty());
        assert!(t.samples_of("bogus").is_empty());
        assert_eq!(t.total_ns("build.graph"), Some(0));
        assert!(t.to_json().contains("\"answer.total\":{\"count\":2,\"total_ns\":1200}"));
        assert!(t.to_string().contains("answer.total"));
        // The deterministic snapshot must not mention timings at all.
        assert!(!r.snapshot().to_json().contains("total_ns"));
    }
}
