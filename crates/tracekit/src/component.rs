//! The closed component-label registry.
//!
//! One namespace, three consumers: `Degradation::component` labels on the
//! graceful-degradation ladder, faultkit's [`Site`] names, and the prefix
//! convention of the [`crate::metrics::Metric`] registry. Keeping the
//! labels here — and only here — means a degradation, a fault report, and
//! a metric about the same subsystem always agree on its name, and ci.sh
//! can grep for ad-hoc string labels sneaking in at call sites.
//!
//! [`Site`]: https://docs.rs/faultkit

/// JSON/XML document parsing at ingestion.
pub const SEMI_PARSE: &str = "semistore.parse";
/// Collection flattening into a relational table.
pub const SEMI_FLATTEN: &str = "semistore.flatten";
/// Logical-plan execution on the structured route.
pub const REL_EXEC: &str = "relstore.exec";
/// Relational table generation over documents.
pub const EXTRACT_TABLEGEN: &str = "extract.tablegen";
/// Topology retrieval's bounded graph traversal.
pub const GRAPH_TRAVERSE: &str = "hetgraph.traverse";
/// Answer sampling for semantic-entropy scoring.
pub const SLM_GENERATE: &str = "slm.generate";
/// Operator synthesis from a parsed intent.
pub const SEMOPS_SYNTHESIZE: &str = "semops.synthesize";
/// The structured rung as a whole (no table produced a result).
pub const ENGINE_STRUCTURED: &str = "engine.structured";
/// Grounded-evidence extraction over retrieved chunks.
pub const RETRIEVAL_EVIDENCE: &str = "retrieval.evidence";
/// The entropy sample-floor governor.
pub const ENTROPY_SAMPLES: &str = "entropy.samples";
/// The semantic-entropy confidence gate.
pub const ENTROPY_CONFIDENCE: &str = "entropy.confidence";
/// Persistent page write in the storage layer (torn-page fault site).
pub const STORE_PAGE_WRITE: &str = "store.page_write";
/// Durable flush (fsync) in the storage layer (failed-flush fault site).
pub const STORE_FLUSH: &str = "store.flush";
/// Write-ahead-log record append (torn-record fault site).
pub const WAL_APPEND: &str = "wal.append";
/// Write-ahead-log durable flush — lost buffered records on failure.
pub const WAL_FLUSH: &str = "wal.flush";
/// Checkpoint protocol (snapshot fold + WAL truncation).
pub const WAL_CHECKPOINT: &str = "wal.checkpoint";

/// Every registered component label.
pub const ALL: [&str; 16] = [
    SEMI_PARSE,
    SEMI_FLATTEN,
    REL_EXEC,
    EXTRACT_TABLEGEN,
    GRAPH_TRAVERSE,
    SLM_GENERATE,
    SEMOPS_SYNTHESIZE,
    ENGINE_STRUCTURED,
    RETRIEVAL_EVIDENCE,
    ENTROPY_SAMPLES,
    ENTROPY_CONFIDENCE,
    STORE_PAGE_WRITE,
    STORE_FLUSH,
    WAL_APPEND,
    WAL_FLUSH,
    WAL_CHECKPOINT,
];

/// True when `name` is a registered component label. `Degradation::new`
/// debug-asserts this, so an ad-hoc label fails the test suite rather
/// than silently forking the namespace.
pub fn is_registered(name: &str) -> bool {
    ALL.contains(&name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_dotted_and_duplicate_free() {
        for name in ALL {
            assert!(name.contains('.'), "component labels are `subsystem.operation`: {name}");
            assert!(is_registered(name));
        }
        let mut sorted = ALL.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ALL.len(), "duplicate component label");
        assert!(!is_registered("structured"), "bare labels must stay unregistered");
    }
}
