//! Per-query explain traces with a deterministic logical clock.
//!
//! A [`TraceScope`] rides along one `answer` call. Its clock is a plain
//! per-query sequence counter — event `seq` numbers say *in what order*
//! things happened, never *when* — so a [`QueryTrace`] is byte-identical
//! at any thread count. All recording methods take closures so a disabled
//! scope costs one branch and zero allocations.

use crate::flame::FlameGraph;
use crate::json_escape;
use crate::meter::ResourceMeter;
use crate::trace::{wall_clock_enabled, TraceSink};

/// One logical-clock event inside a query.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Monotonic per-query sequence number (the logical clock).
    pub seq: u32,
    /// Compile-time event name.
    pub name: &'static str,
    /// Data-derived detail (never timings).
    pub detail: String,
}

/// How a degradation-ladder rung ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RungOutcome {
    /// The rung produced the answer.
    Succeeded,
    /// The rung was attempted and failed (a degradation was recorded).
    Failed,
    /// The rung was disabled or short-circuited.
    Skipped,
}

impl RungOutcome {
    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            RungOutcome::Succeeded => "succeeded",
            RungOutcome::Failed => "failed",
            RungOutcome::Skipped => "skipped",
        }
    }
}

/// One degradation-ladder rung as the query saw it.
#[derive(Debug, Clone, PartialEq)]
pub struct RungAttempt {
    /// Rung name (`structured`, `retrieval`, …).
    pub rung: &'static str,
    /// How it ended.
    pub outcome: RungOutcome,
    /// Data-derived detail (component label, table tried, …).
    pub detail: String,
}

/// Traversal statistics recorded into the explain trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraversalTrace {
    /// Anchor nodes the query linked to.
    pub anchors: usize,
    /// Distinct nodes discovered.
    pub nodes_touched: usize,
    /// Heap expansions performed.
    pub nodes_popped: usize,
    /// Chunk candidates scored.
    pub chunks_scored: usize,
    /// The frontier governor truncated the traversal.
    pub frontier_capped: bool,
    /// Retrieval fell back to pure lexical scoring.
    pub lexical_fallback: bool,
    /// The query fell back to dense retrieval entirely.
    pub dense_fallback: bool,
}

/// The entropy verdict recorded into the explain trace.
#[derive(Debug, Clone, PartialEq)]
pub struct EntropyVerdict {
    /// Samples drawn.
    pub n_samples: usize,
    /// Semantic clusters formed.
    pub n_clusters: usize,
    /// Discrete semantic entropy over the clusters.
    pub discrete_semantic_entropy: f64,
    /// Calibrated confidence derived from the entropy.
    pub confidence: f64,
    /// The confidence gate abstained.
    pub abstained: bool,
}

/// The per-query explain trace (`Answer::trace`).
///
/// Deterministic by construction: every field is a pure function of the
/// engine configuration and the data. Rendering floats with `{:?}`
/// (shortest round-trip) keeps `to_jsonl` byte-stable too.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTrace {
    /// The question asked.
    pub question: String,
    /// Degradation-ladder rungs in attempt order.
    pub rungs: Vec<RungAttempt>,
    /// Display rendering of the synthesized logical plan, if any rung got
    /// that far.
    pub plan: Option<String>,
    /// Traversal statistics, if the retrieval rung ran.
    pub traversal: Option<TraversalTrace>,
    /// Entropy verdict, if estimation ran.
    pub entropy: Option<EntropyVerdict>,
    /// Physical-resource meter for the query, if the engine metered it.
    pub meter: Option<ResourceMeter>,
    /// The route the answer reports.
    pub route: String,
    /// Logical-clock event log.
    pub events: Vec<TraceEvent>,
}

impl QueryTrace {
    /// Renders the trace as a JSON-lines block: one `event` line per
    /// logical-clock event, then one `summary` line. Deterministic; the
    /// optional wall-clock line is appended by the emitter, not here.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let q = json_escape(&self.question);
        for e in &self.events {
            out.push_str(&format!(
                "{{\"type\":\"event\",\"q\":\"{q}\",\"seq\":{},\"name\":\"{}\",\"detail\":\"{}\"}}\n",
                e.seq,
                json_escape(e.name),
                json_escape(&e.detail)
            ));
        }
        out.push_str(&format!(
            "{{\"type\":\"summary\",\"q\":\"{q}\",\"route\":\"{}\",\"rungs\":[",
            json_escape(&self.route)
        ));
        for (i, r) in self.rungs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rung\":\"{}\",\"outcome\":\"{}\",\"detail\":\"{}\"}}",
                json_escape(r.rung),
                r.outcome.label(),
                json_escape(&r.detail)
            ));
        }
        out.push(']');
        match &self.plan {
            Some(p) => out.push_str(&format!(",\"plan\":\"{}\"", json_escape(p))),
            None => out.push_str(",\"plan\":null"),
        }
        match &self.traversal {
            Some(t) => out.push_str(&format!(
                ",\"traversal\":{{\"anchors\":{},\"nodes_touched\":{},\"nodes_popped\":{},\"chunks_scored\":{},\"frontier_capped\":{},\"lexical_fallback\":{},\"dense_fallback\":{}}}",
                t.anchors, t.nodes_touched, t.nodes_popped, t.chunks_scored,
                t.frontier_capped, t.lexical_fallback, t.dense_fallback
            )),
            None => out.push_str(",\"traversal\":null"),
        }
        match &self.entropy {
            Some(e) => out.push_str(&format!(
                ",\"entropy\":{{\"n_samples\":{},\"n_clusters\":{},\"discrete_semantic_entropy\":{:?},\"confidence\":{:?},\"abstained\":{}}}",
                e.n_samples, e.n_clusters, e.discrete_semantic_entropy, e.confidence, e.abstained
            )),
            None => out.push_str(",\"entropy\":null"),
        }
        match &self.meter {
            Some(m) => out.push_str(&format!(",\"meter\":{}", m.to_json())),
            None => out.push_str(",\"meter\":null"),
        }
        out.push_str("}\n");
        out
    }
}

enum ScopeState {
    Disabled,
    Enabled(Box<QueryTrace>),
}

/// Collects one query's explain trace.
///
/// Disabled scopes make every recording call a single branch with zero
/// allocation — all detail arguments are closures evaluated only when
/// enabled. The `seq` counter is the deterministic logical clock.
pub struct TraceScope {
    state: ScopeState,
    seq: u32,
}

impl TraceScope {
    /// A scope that records nothing (the hot-path default).
    pub fn disabled() -> TraceScope {
        TraceScope { state: ScopeState::Disabled, seq: 0 }
    }

    /// A scope recording a trace for `question`.
    pub fn enabled(question: &str) -> TraceScope {
        TraceScope {
            state: ScopeState::Enabled(Box::new(QueryTrace {
                question: question.to_string(),
                rungs: Vec::new(),
                plan: None,
                traversal: None,
                entropy: None,
                meter: None,
                route: String::new(),
                events: Vec::new(),
            })),
            seq: 0,
        }
    }

    /// True when recording.
    pub fn is_enabled(&self) -> bool {
        matches!(self.state, ScopeState::Enabled(_))
    }

    /// Records a logical-clock event. `detail` runs only when enabled.
    pub fn event(&mut self, name: &'static str, detail: impl FnOnce() -> String) {
        if let ScopeState::Enabled(trace) = &mut self.state {
            trace.events.push(TraceEvent { seq: self.seq, name, detail: detail() });
            self.seq += 1;
        }
    }

    /// Records a degradation-ladder rung attempt.
    pub fn rung(
        &mut self,
        rung: &'static str,
        outcome: RungOutcome,
        detail: impl FnOnce() -> String,
    ) {
        if let ScopeState::Enabled(trace) = &mut self.state {
            trace.rungs.push(RungAttempt { rung, outcome, detail: detail() });
        }
    }

    /// Records the synthesized plan (Display rendering).
    pub fn set_plan(&mut self, plan: impl FnOnce() -> String) {
        if let ScopeState::Enabled(trace) = &mut self.state {
            trace.plan = Some(plan());
        }
    }

    /// Records traversal statistics.
    pub fn set_traversal(&mut self, traversal: TraversalTrace) {
        if let ScopeState::Enabled(trace) = &mut self.state {
            trace.traversal = Some(traversal);
        }
    }

    /// Records the entropy verdict.
    pub fn set_entropy(&mut self, verdict: EntropyVerdict) {
        if let ScopeState::Enabled(trace) = &mut self.state {
            trace.entropy = Some(verdict);
        }
    }

    /// Records the per-query resource meter.
    pub fn set_meter(&mut self, meter: ResourceMeter) {
        if let ScopeState::Enabled(trace) = &mut self.state {
            trace.meter = Some(meter);
        }
    }

    /// Finishes the scope, returning the trace (None when disabled).
    pub fn finish(self, route: &str) -> Option<QueryTrace> {
        match self.state {
            ScopeState::Disabled => None,
            ScopeState::Enabled(mut trace) => {
                trace.route = route.to_string();
                Some(*trace)
            }
        }
    }
}

/// Renders one query's sink block: the deterministic JSON-lines from
/// [`QueryTrace::to_jsonl`], one folded-flamegraph line (so `UNISEM_TRACE`
/// dumps carry the span aggregation), plus — only when
/// `UNISEM_TRACE_WALL=1` — one out-of-band wall-clock line. The wall line
/// is the *only* place a duration may appear; it is redacted (absent) by
/// default.
pub fn render_block(trace: &QueryTrace, wall_ns: u64) -> String {
    let mut block = trace.to_jsonl();
    let flame = FlameGraph::from_trace(trace);
    if !flame.is_empty() {
        block.push_str(&format!(
            "{{\"type\":\"flame\",\"q\":\"{}\",\"folded\":\"{}\"}}\n",
            json_escape(&trace.question),
            json_escape(&flame.to_folded())
        ));
    }
    if wall_clock_enabled() {
        block.push_str(&format!(
            "{{\"type\":\"wall\",\"q\":\"{}\",\"total_ns\":{wall_ns}}}\n",
            json_escape(&trace.question)
        ));
    }
    block
}

/// Convenience used by emitters: render and write in one step, skipping
/// all rendering when the sink is off.
pub fn emit(sink: &TraceSink, trace: &QueryTrace, wall_ns: u64) {
    if sink.is_off() {
        return;
    }
    sink.write_block(&render_block(trace, wall_ns));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_scope() -> TraceScope {
        let mut scope = TraceScope::enabled("total revenue?");
        scope.event("intent.parsed", || "aggregate".to_string());
        scope.rung("structured", RungOutcome::Succeeded, || "table orders".to_string());
        scope.set_plan(|| "Aggregate(Scan(orders))".to_string());
        scope.set_traversal(TraversalTrace { anchors: 2, nodes_touched: 9, ..Default::default() });
        scope.set_entropy(EntropyVerdict {
            n_samples: 5,
            n_clusters: 1,
            discrete_semantic_entropy: 0.0,
            confidence: 1.0,
            abstained: false,
        });
        scope.set_meter(ResourceMeter { slm_calls: 3, postings_scanned: 12, ..Default::default() });
        scope
    }

    #[test]
    fn disabled_scope_records_nothing_and_skips_closures() {
        let mut scope = TraceScope::disabled();
        assert!(!scope.is_enabled());
        scope.event("x", || panic!("detail closure must not run when disabled"));
        scope.rung("structured", RungOutcome::Failed, || panic!("must not run"));
        scope.set_plan(|| panic!("must not run"));
        assert_eq!(scope.finish("structured"), None);
    }

    #[test]
    fn enabled_scope_sequences_events_monotonically() {
        let mut scope = TraceScope::enabled("q");
        scope.event("a", || String::new());
        scope.event("b", || String::new());
        scope.event("c", || String::new());
        let trace = scope.finish("retrieval").unwrap();
        let seqs: Vec<u32> = trace.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(trace.route, "retrieval");
    }

    #[test]
    fn trace_round_trips_through_jsonl_deterministically() {
        let trace = sample_scope().finish("structured").unwrap();
        let a = trace.to_jsonl();
        let b = trace.to_jsonl();
        assert_eq!(a, b);
        assert!(a.contains("\"type\":\"event\""), "{a}");
        assert!(a.contains("\"name\":\"intent.parsed\""));
        assert!(a.contains("\"rung\":\"structured\",\"outcome\":\"succeeded\""));
        assert!(a.contains("\"plan\":\"Aggregate(Scan(orders))\""));
        assert!(a.contains("\"anchors\":2"));
        assert!(a.contains("\"confidence\":1.0"));
        assert!(a.contains("\"meter\":{\"pages_read\":0,\"postings_scanned\":12"), "{a}");
        assert!(a.contains("\"slm_calls\":3"));
        assert!(!a.contains("_ns"), "no timings inside the deterministic block: {a}");
        for line in a.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "JSON-lines shape: {line}");
        }
    }

    #[test]
    fn empty_trace_still_renders_a_summary() {
        let trace = TraceScope::enabled("q").finish("abstain").unwrap();
        let jsonl = trace.to_jsonl();
        assert_eq!(jsonl.lines().count(), 1, "summary line only");
        assert!(jsonl.contains("\"rungs\":[]"));
        assert!(jsonl.contains("\"plan\":null"));
        assert!(jsonl.contains("\"traversal\":null"));
        assert!(jsonl.contains("\"entropy\":null"));
        assert!(jsonl.contains("\"meter\":null"));
        // An empty trace also folds to an empty flamegraph: no flame line.
        assert!(!render_block(&trace, 0).contains("\"type\":\"flame\""));
    }

    #[test]
    fn emit_skips_rendering_when_sink_is_off() {
        let trace = sample_scope().finish("structured").unwrap();
        let off = TraceSink::off();
        emit(&off, &trace, 123);
        assert_eq!(off.writes(), 0, "emit must not even touch an off sink");
        let mem = TraceSink::memory();
        emit(&mem, &trace, 123);
        assert_eq!(mem.writes(), 1);
        let captured = mem.drain_memory();
        assert!(captured.contains("\"type\":\"summary\""));
        assert!(captured.contains("\"type\":\"flame\""), "sink blocks carry the folded stacks");
        assert!(captured.contains("answer;entropy;sample 5"), "{captured}");
        // UNISEM_TRACE_WALL unset in the test env: the wall line is redacted.
        assert!(!captured.contains("\"type\":\"wall\""));
    }

    #[test]
    fn outcome_labels_are_stable() {
        assert_eq!(RungOutcome::Succeeded.label(), "succeeded");
        assert_eq!(RungOutcome::Failed.label(), "failed");
        assert_eq!(RungOutcome::Skipped.label(), "skipped");
    }
}
