//! The one blessed wall-clock read point (the `wallclock-in-hot-path`
//! lint allows no other).
//!
//! Wall-clock is inherently nondeterministic, so the determinism contract
//! (DESIGN.md §6) quarantines it: durations may only ever flow into the
//! deliberately non-deterministic [`crate::metrics::TimingReport`] or the
//! redactable wall-clock trace line (see [`crate::trace::wall_clock_enabled`]),
//! never into answer payloads, metrics, or trace sequence numbers. Keeping
//! every `Instant::now()` behind this module makes that rule *auditable*:
//! `udlint` flags any other clock read in engine code, so a reviewer only
//! has to check where `Stopwatch` values end up.

use std::time::Instant;

/// A started wall-clock timer for stage timings.
///
/// ```
/// let sw = tracekit::wall::Stopwatch::start();
/// // … stage work …
/// let ns: u64 = sw.elapsed_ns(); // TimingReport only — never the payload
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Reads the process clock and starts timing.
    pub fn start() -> Stopwatch {
        Stopwatch { start: Instant::now() }
    }

    /// Nanoseconds since [`Stopwatch::start`], saturating at `u64::MAX`.
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotonic_nonnegative() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_ns();
        let b = sw.elapsed_ns();
        assert!(b >= a);
    }
}
