//! Per-query resource meters (DESIGN.md §14).
//!
//! A [`ResourceMeter`] counts the physical work one `answer` call performs
//! — pages read, postings scanned, graph nodes popped, dense vectors
//! compared, SLM invocations/samples, WAL bytes appended. Every field is a
//! pure function of the data and the query (never of timing or thread
//! count), so meters are byte-identical at any parallelism and under the
//! pinned fault plans: they are the *measured* side of the planner's
//! estimated-vs-actual cost contract, and the per-query rows behind the
//! `meter.*` histograms in [`crate::metrics::Hist`].

use crate::json_escape;

/// Deterministic physical-resource counts for one query (or one ingest
/// batch). Carried on `QueryTrace::meter` and aggregated into the
/// `meter.*` histogram registry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceMeter {
    /// Buffer-pool pages read (storekit; 0 for purely in-memory serving).
    pub pages_read: u64,
    /// Inverted-index posting entries scanned.
    pub postings_scanned: u64,
    /// Graph traversal heap expansions.
    pub nodes_popped: u64,
    /// Dense vectors compared by cosine scans.
    pub dense_compared: u64,
    /// SLM invocations (entity tagging, embedding, answer synthesis).
    pub slm_calls: u64,
    /// SLM answer samples drawn for entropy estimation.
    pub slm_samples: u64,
    /// Bytes appended to the write-ahead log.
    pub wal_bytes: u64,
}

impl ResourceMeter {
    /// `(name, value)` for every field, in declaration order — the single
    /// source for rendering, so no consumer can skip a field silently.
    pub fn fields(&self) -> [(&'static str, u64); 7] {
        [
            ("pages_read", self.pages_read),
            ("postings_scanned", self.postings_scanned),
            ("nodes_popped", self.nodes_popped),
            ("dense_compared", self.dense_compared),
            ("slm_calls", self.slm_calls),
            ("slm_samples", self.slm_samples),
            ("wal_bytes", self.wal_bytes),
        ]
    }

    /// Stable single-line JSON object (key order = declaration order).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, v)) in self.fields().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", json_escape(name)));
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_stable_and_complete() {
        let meter = ResourceMeter {
            pages_read: 1,
            postings_scanned: 2,
            nodes_popped: 3,
            dense_compared: 4,
            slm_calls: 5,
            slm_samples: 6,
            wal_bytes: 7,
        };
        assert_eq!(
            meter.to_json(),
            "{\"pages_read\":1,\"postings_scanned\":2,\"nodes_popped\":3,\
             \"dense_compared\":4,\"slm_calls\":5,\"slm_samples\":6,\"wal_bytes\":7}"
        );
        assert_eq!(ResourceMeter::default().fields().iter().map(|(_, v)| v).sum::<u64>(), 0);
    }
}
