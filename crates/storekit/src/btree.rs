//! Persistent B-tree over the buffer pool.
//!
//! Keys and values are byte strings ordered lexicographically. Nodes are
//! slotted pages:
//!
//! - **leaf** cells: `[klen u16][vlen u16][key][value]`
//! - **internal** cells: `[klen u16][child u32][key]`, with the leftmost
//!   child (keys below every separator) in the page `aux` word. The cell
//!   at separator `k` routes keys `>= k` (up to the next separator).
//!
//! Every mutation decodes the touched node into vectors, modifies them,
//! and re-encodes the page canonically via [`Page::set_records`] — a page
//! image is a pure function of the node's logical content, which is what
//! makes same-seed snapshot files byte-identical (DESIGN.md §12).
//!
//! Balancing: a node that overflows its page splits at the middle cell
//! (leaf separators are copied up, internal separators move up). A
//! non-root node that falls below quarter occupancy after a delete merges
//! with a sibling when the combined cells fit in one page, otherwise
//! borrows one cell; empty internal roots collapse into their only
//! child. Size bounds ([`MAX_KEY`], [`MAX_VALUE`]) guarantee at least
//! two leaf cells per page, so a count split always fits.

use crate::buffer::BufferPool;
use crate::page::{Page, PageKind, PAYLOAD_SIZE};
use crate::StoreError;

/// Largest key the tree accepts, bytes.
pub const MAX_KEY: usize = 512;
/// Largest value the tree accepts, bytes; larger payloads are chunked by
/// the snapshot layer across consecutive keys.
pub const MAX_VALUE: usize = 1024;

/// Quarter occupancy: below this a non-root node seeks a merge/borrow.
const MIN_FILL: usize = PAYLOAD_SIZE / 4;

/// A persistent ordered map rooted at one page.
#[derive(Debug, Clone, Copy)]
pub struct BTree {
    root: u32,
}

enum Node {
    Leaf { entries: Vec<(Vec<u8>, Vec<u8>)> },
    Internal { leftmost: u32, entries: Vec<(Vec<u8>, u32)> },
}

impl Node {
    fn encode(&self) -> (PageKind, u32, Vec<Vec<u8>>) {
        match self {
            Node::Leaf { entries } => {
                let cells = entries
                    .iter()
                    .map(|(k, v)| {
                        let mut c = Vec::with_capacity(4 + k.len() + v.len());
                        c.extend_from_slice(&(k.len() as u16).to_le_bytes());
                        c.extend_from_slice(&(v.len() as u16).to_le_bytes());
                        c.extend_from_slice(k);
                        c.extend_from_slice(v);
                        c
                    })
                    .collect();
                (PageKind::BtreeLeaf, 0, cells)
            }
            Node::Internal { leftmost, entries } => {
                let cells = entries
                    .iter()
                    .map(|(k, child)| {
                        let mut c = Vec::with_capacity(6 + k.len());
                        c.extend_from_slice(&(k.len() as u16).to_le_bytes());
                        c.extend_from_slice(&child.to_le_bytes());
                        c.extend_from_slice(k);
                        c
                    })
                    .collect();
                (PageKind::BtreeInternal, *leftmost, cells)
            }
        }
    }

    fn size(&self) -> usize {
        let (_, _, cells) = self.encode();
        Page::records_size(&cells)
    }
}

fn corrupt(page_id: u32, reason: &str) -> StoreError {
    StoreError::Corrupt { page_id, reason: reason.to_string() }
}

fn decode_leaf_cell(page_id: u32, cell: &[u8]) -> Result<(Vec<u8>, Vec<u8>), StoreError> {
    if cell.len() < 4 {
        return Err(corrupt(page_id, "leaf cell shorter than its header"));
    }
    let klen = u16::from_le_bytes([cell[0], cell[1]]) as usize;
    let vlen = u16::from_le_bytes([cell[2], cell[3]]) as usize;
    let key =
        cell.get(4..4 + klen).ok_or_else(|| corrupt(page_id, "leaf cell key overruns cell"))?;
    let val = cell
        .get(4 + klen..4 + klen + vlen)
        .ok_or_else(|| corrupt(page_id, "leaf cell value overruns cell"))?;
    Ok((key.to_vec(), val.to_vec()))
}

fn decode_internal_cell(page_id: u32, cell: &[u8]) -> Result<(Vec<u8>, u32), StoreError> {
    if cell.len() < 6 {
        return Err(corrupt(page_id, "internal cell shorter than its header"));
    }
    let klen = u16::from_le_bytes([cell[0], cell[1]]) as usize;
    let child = u32::from_le_bytes([cell[2], cell[3], cell[4], cell[5]]);
    let key =
        cell.get(6..6 + klen).ok_or_else(|| corrupt(page_id, "internal cell key overruns cell"))?;
    Ok((key.to_vec(), child))
}

fn load(pool: &mut BufferPool, id: u32) -> Result<Node, StoreError> {
    pool.read(id, |page| -> Result<Node, StoreError> {
        match page.kind() {
            PageKind::BtreeLeaf => {
                let mut entries = Vec::with_capacity(page.slot_count() as usize);
                for slot in 0..page.slot_count() {
                    entries.push(decode_leaf_cell(id, page.record(slot)?)?);
                }
                Ok(Node::Leaf { entries })
            }
            PageKind::BtreeInternal => {
                let leftmost = page.aux();
                let mut entries = Vec::with_capacity(page.slot_count() as usize);
                for slot in 0..page.slot_count() {
                    entries.push(decode_internal_cell(id, page.record(slot)?)?);
                }
                Ok(Node::Internal { leftmost, entries })
            }
            other => Err(corrupt(id, &format!("expected b-tree node, found {other:?}"))),
        }
    })?
}

fn store(pool: &mut BufferPool, id: u32, node: &Node) -> Result<(), StoreError> {
    let (kind, aux, cells) = node.encode();
    pool.write(id, |page| -> Result<(), StoreError> {
        page.set_kind(kind);
        page.set_aux(aux);
        page.set_records(&cells)
    })?
}

/// Routes `key` to a child slot: `0` means the leftmost child, `i + 1`
/// means `entries[i].1`. Keys equal to a separator go right.
fn route(entries: &[(Vec<u8>, u32)], key: &[u8]) -> usize {
    entries.partition_point(|(k, _)| k.as_slice() <= key)
}

fn child_at(leftmost: u32, entries: &[(Vec<u8>, u32)], slot: usize) -> u32 {
    if slot == 0 {
        leftmost
    } else {
        entries[slot - 1].1
    }
}

impl BTree {
    /// Creates an empty tree, allocating its root leaf.
    pub fn create(pool: &mut BufferPool) -> Result<BTree, StoreError> {
        let root = pool.allocate(PageKind::BtreeLeaf)?;
        store(pool, root, &Node::Leaf { entries: Vec::new() })?;
        Ok(BTree { root })
    }

    /// Reattaches to a tree whose root page id was recorded elsewhere
    /// (the snapshot meta page).
    pub fn open(root: u32) -> BTree {
        BTree { root }
    }

    /// The current root page id (changes across splits and collapses —
    /// persist it after mutating).
    pub fn root(&self) -> u32 {
        self.root
    }

    /// Inserts or replaces `key`, returning the previous value if any.
    pub fn insert(
        &mut self,
        pool: &mut BufferPool,
        key: &[u8],
        value: &[u8],
    ) -> Result<Option<Vec<u8>>, StoreError> {
        if key.len() > MAX_KEY {
            return Err(StoreError::TooLarge {
                what: "b-tree key".to_string(),
                size: key.len(),
                max: MAX_KEY,
            });
        }
        if value.len() > MAX_VALUE {
            return Err(StoreError::TooLarge {
                what: "b-tree value".to_string(),
                size: value.len(),
                max: MAX_VALUE,
            });
        }
        let (old, split) = self.insert_rec(pool, self.root, key, value)?;
        if let Some((sep, right)) = split {
            let new_root = pool.allocate(PageKind::BtreeInternal)?;
            store(
                pool,
                new_root,
                &Node::Internal { leftmost: self.root, entries: vec![(sep, right)] },
            )?;
            self.root = new_root;
        }
        Ok(old)
    }

    fn insert_rec(
        &mut self,
        pool: &mut BufferPool,
        id: u32,
        key: &[u8],
        value: &[u8],
    ) -> Result<(Option<Vec<u8>>, Option<(Vec<u8>, u32)>), StoreError> {
        match load(pool, id)? {
            Node::Leaf { mut entries } => {
                let old = match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    Ok(i) => Some(std::mem::replace(&mut entries[i].1, value.to_vec())),
                    Err(i) => {
                        entries.insert(i, (key.to_vec(), value.to_vec()));
                        None
                    }
                };
                let node = Node::Leaf { entries };
                if node.size() <= PAYLOAD_SIZE {
                    store(pool, id, &node)?;
                    return Ok((old, None));
                }
                let Node::Leaf { mut entries } = node else {
                    return Err(corrupt(id, "leaf changed kind"));
                };
                let mid = entries.len() / 2;
                let right_entries = entries.split_off(mid);
                let sep = right_entries
                    .first()
                    .map(|(k, _)| k.clone())
                    .ok_or_else(|| corrupt(id, "leaf split produced empty right node"))?;
                let right = pool.allocate(PageKind::BtreeLeaf)?;
                store(pool, id, &Node::Leaf { entries })?;
                store(pool, right, &Node::Leaf { entries: right_entries })?;
                Ok((old, Some((sep, right))))
            }
            Node::Internal { leftmost, mut entries } => {
                let slot = route(&entries, key);
                let child = child_at(leftmost, &entries, slot);
                let (old, split) = self.insert_rec(pool, child, key, value)?;
                let Some((sep, new_child)) = split else {
                    return Ok((old, None));
                };
                let pos = entries.partition_point(|(k, _)| k.as_slice() < sep.as_slice());
                entries.insert(pos, (sep, new_child));
                let node = Node::Internal { leftmost, entries };
                if node.size() <= PAYLOAD_SIZE {
                    store(pool, id, &node)?;
                    return Ok((old, None));
                }
                let Node::Internal { leftmost, mut entries } = node else {
                    return Err(corrupt(id, "internal changed kind"));
                };
                let mid = entries.len() / 2;
                let mut right_entries = entries.split_off(mid);
                let (up_key, up_child) = if right_entries.is_empty() {
                    return Err(corrupt(id, "internal split produced empty right node"));
                } else {
                    right_entries.remove(0)
                };
                let right = pool.allocate(PageKind::BtreeInternal)?;
                store(pool, id, &Node::Internal { leftmost, entries })?;
                store(pool, right, &Node::Internal { leftmost: up_child, entries: right_entries })?;
                Ok((old, Some((up_key, right))))
            }
        }
    }

    /// Looks up `key`.
    pub fn get(&self, pool: &mut BufferPool, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        let mut id = self.root;
        loop {
            match load(pool, id)? {
                Node::Leaf { entries } => {
                    return Ok(entries
                        .binary_search_by(|(k, _)| k.as_slice().cmp(key))
                        .ok()
                        .map(|i| entries[i].1.clone()));
                }
                Node::Internal { leftmost, entries } => {
                    id = child_at(leftmost, &entries, route(&entries, key));
                }
            }
        }
    }

    /// Removes `key`, returning its value if present. Non-root nodes that
    /// fall below quarter occupancy merge with or borrow from a sibling;
    /// an empty internal root collapses into its only child.
    pub fn delete(
        &mut self,
        pool: &mut BufferPool,
        key: &[u8],
    ) -> Result<Option<Vec<u8>>, StoreError> {
        let (old, _under) = self.delete_rec(pool, self.root, key)?;
        if old.is_some() {
            if let Node::Internal { leftmost, entries } = load(pool, self.root)? {
                if entries.is_empty() {
                    let stale = self.root;
                    self.root = leftmost;
                    pool.free(stale)?;
                }
            }
        }
        Ok(old)
    }

    fn delete_rec(
        &mut self,
        pool: &mut BufferPool,
        id: u32,
        key: &[u8],
    ) -> Result<(Option<Vec<u8>>, bool), StoreError> {
        match load(pool, id)? {
            Node::Leaf { mut entries } => {
                let Ok(i) = entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) else {
                    return Ok((None, false));
                };
                let (_, old) = entries.remove(i);
                let node = Node::Leaf { entries };
                let under = node.size() < MIN_FILL;
                store(pool, id, &node)?;
                Ok((Some(old), under))
            }
            Node::Internal { mut leftmost, mut entries } => {
                let slot = route(&entries, key);
                let child = child_at(leftmost, &entries, slot);
                let (old, child_under) = self.delete_rec(pool, child, key)?;
                if old.is_none() {
                    return Ok((None, false));
                }
                if child_under && !entries.is_empty() {
                    rebalance_child(pool, &mut leftmost, &mut entries, slot)?;
                }
                let node = Node::Internal { leftmost, entries };
                let under = node.size() < MIN_FILL;
                store(pool, id, &node)?;
                Ok((old, under))
            }
        }
    }

    /// All entries with `lo <= key < hi` in key order (`None` bounds are
    /// open). `scan(None, None)` is a full ordered iteration.
    pub fn scan(
        &self,
        pool: &mut BufferPool,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>, StoreError> {
        let mut out = Vec::new();
        self.scan_rec(pool, self.root, lo, hi, &mut out)?;
        Ok(out)
    }

    fn scan_rec(
        &self,
        pool: &mut BufferPool,
        id: u32,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
        out: &mut Vec<(Vec<u8>, Vec<u8>)>,
    ) -> Result<(), StoreError> {
        match load(pool, id)? {
            Node::Leaf { entries } => {
                for (k, v) in entries {
                    if lo.is_some_and(|lo| k.as_slice() < lo) {
                        continue;
                    }
                    if hi.is_some_and(|hi| k.as_slice() >= hi) {
                        break;
                    }
                    out.push((k, v));
                }
            }
            Node::Internal { leftmost, entries } => {
                // Children overlapping [lo, hi): from the child routing lo
                // (or the first) through the child routing hi.
                let first = lo.map_or(0, |lo| route(&entries, lo));
                let last = hi.map_or(entries.len(), |hi| route(&entries, hi));
                for slot in first..=last {
                    self.scan_rec(pool, child_at(leftmost, &entries, slot), lo, hi, out)?;
                }
            }
        }
        Ok(())
    }

    /// Number of entries (full traversal).
    pub fn len(&self, pool: &mut BufferPool) -> Result<usize, StoreError> {
        Ok(self.scan(pool, None, None)?.len())
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self, pool: &mut BufferPool) -> Result<bool, StoreError> {
        Ok(self.len(pool)? == 0)
    }
}

/// Restores occupancy of the child at `slot` by merging with an adjacent
/// sibling when the combined cells fit in one page, or borrowing one cell
/// otherwise. `leftmost`/`entries` are the parent's decoded fields; the
/// caller re-stores the parent.
fn rebalance_child(
    pool: &mut BufferPool,
    leftmost: &mut u32,
    entries: &mut Vec<(Vec<u8>, u32)>,
    slot: usize,
) -> Result<(), StoreError> {
    // Pair the underflowing child with its left sibling when it has one,
    // else with its right sibling. `sep_idx` separates the pair.
    let (sep_idx, under_is_right) = if slot > 0 { (slot - 1, true) } else { (0, false) };
    let left_id = child_at(*leftmost, entries, sep_idx);
    let right_id = entries
        .get(sep_idx)
        .map(|(_, c)| *c)
        .ok_or_else(|| corrupt(left_id, "rebalance with no sibling"))?;
    let left = load(pool, left_id)?;
    let right = load(pool, right_id)?;
    match (left, right) {
        (Node::Leaf { entries: mut le }, Node::Leaf { entries: mut re }) => {
            let merged_size = {
                let mut all = le.clone();
                all.extend(re.iter().cloned());
                Node::Leaf { entries: all }.size()
            };
            if merged_size <= PAYLOAD_SIZE {
                le.extend(re);
                store(pool, left_id, &Node::Leaf { entries: le })?;
                pool.free(right_id)?;
                entries.remove(sep_idx);
                return Ok(());
            }
            // Borrow one cell toward the poorer side.
            if under_is_right {
                let moved = le.pop().ok_or_else(|| corrupt(left_id, "borrow from empty leaf"))?;
                re.insert(0, moved);
            } else {
                if re.is_empty() {
                    return Err(corrupt(right_id, "borrow from empty leaf"));
                }
                le.push(re.remove(0));
            }
            let new_sep = re
                .first()
                .map(|(k, _)| k.clone())
                .ok_or_else(|| corrupt(right_id, "leaf emptied by borrow"))?;
            entries[sep_idx].0 = new_sep;
            store(pool, left_id, &Node::Leaf { entries: le })?;
            store(pool, right_id, &Node::Leaf { entries: re })?;
            Ok(())
        }
        (
            Node::Internal { leftmost: l_left, entries: mut le },
            Node::Internal { leftmost: r_left, entries: mut re },
        ) => {
            let sep_key = entries[sep_idx].0.clone();
            let merged_size = {
                let mut all = le.clone();
                all.push((sep_key.clone(), r_left));
                all.extend(re.iter().cloned());
                Node::Internal { leftmost: l_left, entries: all }.size()
            };
            if merged_size <= PAYLOAD_SIZE {
                le.push((sep_key, r_left));
                le.extend(re);
                store(pool, left_id, &Node::Internal { leftmost: l_left, entries: le })?;
                pool.free(right_id)?;
                entries.remove(sep_idx);
                return Ok(());
            }
            // Rotate one separator through the parent.
            if under_is_right {
                let (lk, lc) =
                    le.pop().ok_or_else(|| corrupt(left_id, "rotate from empty internal"))?;
                re.insert(0, (sep_key, r_left));
                store(pool, right_id, &Node::Internal { leftmost: lc, entries: re })?;
                store(pool, left_id, &Node::Internal { leftmost: l_left, entries: le })?;
                entries[sep_idx].0 = lk;
            } else {
                if re.is_empty() {
                    return Err(corrupt(right_id, "rotate from empty internal"));
                }
                let (rk, rc) = re.remove(0);
                le.push((sep_key, r_left));
                store(pool, left_id, &Node::Internal { leftmost: l_left, entries: le })?;
                store(pool, right_id, &Node::Internal { leftmost: rc, entries: re })?;
                entries[sep_idx].0 = rk;
            }
            Ok(())
        }
        _ => Err(corrupt(left_id, "sibling nodes differ in kind")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::Pager;
    use faultkit::FaultPlan;

    fn pool(name: &str) -> (BufferPool, std::path::PathBuf) {
        let mut path = std::env::temp_dir();
        path.push(format!("storekit-btree-{}-{name}", std::process::id()));
        let pager = Pager::create(&path, FaultPlan::disabled()).unwrap();
        (BufferPool::new(pager, 8, None), path)
    }

    #[test]
    fn insert_get_delete_basic() {
        let (mut p, path) = pool("basic");
        let mut t = BTree::create(&mut p).unwrap();
        assert_eq!(t.insert(&mut p, b"b", b"2").unwrap(), None);
        assert_eq!(t.insert(&mut p, b"a", b"1").unwrap(), None);
        assert_eq!(t.insert(&mut p, b"a", b"one").unwrap(), Some(b"1".to_vec()));
        assert_eq!(t.get(&mut p, b"a").unwrap(), Some(b"one".to_vec()));
        assert_eq!(t.get(&mut p, b"zz").unwrap(), None);
        assert_eq!(t.delete(&mut p, b"a").unwrap(), Some(b"one".to_vec()));
        assert_eq!(t.delete(&mut p, b"a").unwrap(), None);
        assert_eq!(t.len(&mut p).unwrap(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn many_inserts_split_and_stay_ordered() {
        let (mut p, path) = pool("splits");
        let mut t = BTree::create(&mut p).unwrap();
        // Big values force multi-level splits quickly.
        for i in (0..500u32).rev() {
            let key = format!("key-{i:05}");
            let val = vec![(i % 251) as u8; 64];
            t.insert(&mut p, key.as_bytes(), &val).unwrap();
        }
        assert_eq!(t.len(&mut p).unwrap(), 500);
        let all = t.scan(&mut p, None, None).unwrap();
        let keys: Vec<_> = all.iter().map(|(k, _)| k.clone()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "ordered iteration");
        for i in 0..500u32 {
            let key = format!("key-{i:05}");
            assert_eq!(
                t.get(&mut p, key.as_bytes()).unwrap(),
                Some(vec![(i % 251) as u8; 64]),
                "{key}"
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn deletes_merge_back_down() {
        let (mut p, path) = pool("merges");
        let mut t = BTree::create(&mut p).unwrap();
        for i in 0..400u32 {
            t.insert(&mut p, format!("k{i:04}").as_bytes(), &[i as u8; 100]).unwrap();
        }
        for i in 0..400u32 {
            assert!(t.delete(&mut p, format!("k{i:04}").as_bytes()).unwrap().is_some(), "{i}");
        }
        assert!(t.is_empty(&mut p).unwrap());
        // After full deletion the root collapsed back to a single leaf.
        assert!(
            matches!(load(&mut p, t.root()).unwrap(), Node::Leaf { entries } if entries.is_empty())
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn range_scan_respects_bounds() {
        let (mut p, path) = pool("range");
        let mut t = BTree::create(&mut p).unwrap();
        for i in 0..100u32 {
            t.insert(&mut p, format!("{i:03}").as_bytes(), b"v").unwrap();
        }
        let mid = t.scan(&mut p, Some(b"010"), Some(b"020")).unwrap();
        let keys: Vec<String> =
            mid.iter().map(|(k, _)| String::from_utf8(k.clone()).unwrap()).collect();
        assert_eq!(keys, (10..20).map(|i| format!("{i:03}")).collect::<Vec<_>>());
        assert_eq!(t.scan(&mut p, Some(b"zzz"), None).unwrap(), vec![]);
        assert_eq!(t.scan(&mut p, None, Some(b"000")).unwrap(), vec![]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn oversized_keys_and_values_rejected() {
        let (mut p, path) = pool("limits");
        let mut t = BTree::create(&mut p).unwrap();
        assert!(matches!(
            t.insert(&mut p, &vec![0u8; MAX_KEY + 1], b"v"),
            Err(StoreError::TooLarge { .. })
        ));
        assert!(matches!(
            t.insert(&mut p, b"k", &vec![0u8; MAX_VALUE + 1]),
            Err(StoreError::TooLarge { .. })
        ));
        assert!(t.insert(&mut p, &vec![1u8; MAX_KEY], &vec![2u8; MAX_VALUE]).is_ok());
        let _ = std::fs::remove_file(&path);
    }
}
