//! Page-granular file I/O with injected fault sites.
//!
//! The pager owns one file handle and reads/writes whole [`Page`]s at
//! `id * PAGE_SIZE`. It hosts the two storage fault sites
//! (DESIGN.md §12):
//!
//! - [`Site::StorePageWrite`], key `page:<id>` — a *torn page*: the pager
//!   genuinely writes only the first half of the image to disk, then
//!   returns the typed [`InjectedFault`] wrapped in
//!   [`StoreError::Fault`]. The corruption is real; a later read of the
//!   page fails checksum verification with [`StoreError::Corrupt`].
//! - [`Site::StoreFlush`], key `file` — a *failed flush*: `flush`
//!   returns the typed error without syncing, modelling a lost
//!   `fsync`.
//!
//! The fault plan is passed in by the caller (the engine resolves
//! `UNISEM_FAULTS` once at the boundary); the pager itself never reads
//! the environment.

use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::Path;

use faultkit::{FaultPlan, Site};

use crate::page::{Page, PAGE_SIZE};
use crate::StoreError;

/// Whole-page file I/O.
#[derive(Debug)]
pub struct Pager {
    file: File,
    num_pages: u32,
    faults: FaultPlan,
}

impl Pager {
    /// Creates (truncating) a page file at `path`.
    pub fn create(path: &Path, faults: FaultPlan) -> Result<Pager, StoreError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| StoreError::Io(format!("create {}: {e}", path.display())))?;
        Ok(Pager { file, num_pages: 0, faults })
    }

    /// Opens an existing page file. The length must be an exact multiple
    /// of [`PAGE_SIZE`]; a trailing partial page (e.g. from a torn final
    /// write) is reported as corruption of the page it would occupy.
    pub fn open(path: &Path, faults: FaultPlan) -> Result<Pager, StoreError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| StoreError::Io(format!("open {}: {e}", path.display())))?;
        let len = file
            .metadata()
            .map_err(|e| StoreError::Io(format!("stat {}: {e}", path.display())))?
            .len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(StoreError::Corrupt {
                page_id: (len / PAGE_SIZE as u64) as u32,
                reason: format!("file length {len} is not a multiple of {PAGE_SIZE}"),
            });
        }
        let num_pages = u32::try_from(len / PAGE_SIZE as u64)
            .map_err(|_| StoreError::Io(format!("{}: too many pages", path.display())))?;
        Ok(Pager { file, num_pages, faults })
    }

    /// Pages currently in the file.
    pub fn num_pages(&self) -> u32 {
        self.num_pages
    }

    /// Reads and verifies page `id` (magic, id echo, kind tag, checksum).
    pub fn read_page(&mut self, id: u32) -> Result<Page, StoreError> {
        if id >= self.num_pages {
            return Err(StoreError::Corrupt {
                page_id: id,
                reason: format!("read past end of file ({} pages)", self.num_pages),
            });
        }
        self.file
            .seek(SeekFrom::Start(u64::from(id) * PAGE_SIZE as u64))
            .map_err(|e| StoreError::Io(format!("seek page {id}: {e}")))?;
        let mut buf = [0u8; PAGE_SIZE];
        self.file
            .read_exact(&mut buf)
            .map_err(|e| StoreError::Io(format!("read page {id}: {e}")))?;
        Page::from_bytes(id, &buf)
    }

    /// Writes a sealed page at its id, growing the file as needed.
    ///
    /// Fault site [`Site::StorePageWrite`] (key `page:<id>`): only the
    /// first `PAGE_SIZE / 2` bytes reach the file before the typed error
    /// returns — a genuine torn page that the next read detects.
    pub fn write_page(&mut self, page: &Page) -> Result<(), StoreError> {
        let id = page.id();
        debug_assert!(page.verify(), "page {id} written without seal()");
        self.file
            .seek(SeekFrom::Start(u64::from(id) * PAGE_SIZE as u64))
            .map_err(|e| StoreError::Io(format!("seek page {id}: {e}")))?;
        let torn = self.faults.check(Site::StorePageWrite, &format!("page:{id}")).err();
        let image: &[u8] =
            if torn.is_some() { &page.as_bytes()[..PAGE_SIZE / 2] } else { &page.as_bytes()[..] };
        self.file.write_all(image).map_err(|e| StoreError::Io(format!("write page {id}: {e}")))?;
        if id >= self.num_pages {
            // A torn write can still extend the file; the partial tail is
            // caught at open() / read_page() time.
            self.num_pages = id + 1;
        }
        match torn {
            Some(fault) => Err(StoreError::Fault(fault)),
            None => Ok(()),
        }
    }

    /// Flushes buffered writes and syncs file contents to disk.
    ///
    /// Fault site [`Site::StoreFlush`] (key `file`): returns the typed
    /// error without syncing, modelling a lost `fsync`.
    pub fn flush(&mut self) -> Result<(), StoreError> {
        self.faults.check(Site::StoreFlush, "file").map_err(StoreError::Fault)?;
        self.file
            .flush()
            .and_then(|()| self.file.sync_all())
            .map_err(|e| StoreError::Io(format!("flush: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageKind;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("storekit-pager-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn write_read_round_trip() {
        let path = tmp("roundtrip");
        let mut pager = Pager::create(&path, FaultPlan::disabled()).unwrap();
        let mut p = Page::new(0, PageKind::Blob);
        p.set_payload(b"hello").unwrap();
        p.seal();
        pager.write_page(&p).unwrap();
        let mut q = Page::new(1, PageKind::BtreeLeaf);
        q.set_records(&[b"k".to_vec()]).unwrap();
        q.seal();
        pager.write_page(&q).unwrap();
        assert_eq!(pager.num_pages(), 2);
        pager.flush().unwrap();

        let mut reopened = Pager::open(&path, FaultPlan::disabled()).unwrap();
        assert_eq!(reopened.num_pages(), 2);
        assert_eq!(reopened.read_page(0).unwrap().payload().unwrap(), b"hello");
        assert_eq!(reopened.read_page(1).unwrap().records().unwrap(), vec![b"k".to_vec()]);
        assert!(reopened.read_page(2).is_err(), "read past end is typed");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_page_fault_corrupts_for_real() {
        let path = tmp("torn");
        let plan = FaultPlan::single(Site::StorePageWrite).with_seed(0);
        let mut pager = Pager::create(&path, plan).unwrap();
        let mut p = Page::new(0, PageKind::Blob);
        p.set_payload(b"doomed").unwrap();
        p.seal();
        let err = pager.write_page(&p).unwrap_err();
        assert!(matches!(err, StoreError::Fault(_)), "{err}");
        // The torn image really is on disk: half a page.
        let len = std::fs::metadata(&path).unwrap().len();
        assert_eq!(len as usize, PAGE_SIZE / 2);
        assert!(Pager::open(&path, FaultPlan::disabled()).is_err(), "partial page detected");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_overwrite_fails_checksum_on_read() {
        let path = tmp("torn-overwrite");
        let mut pager = Pager::create(&path, FaultPlan::disabled()).unwrap();
        let mut a = Page::new(0, PageKind::Blob);
        // Payloads span past the page midpoint so the torn overwrite
        // really leaves a front/back hybrid on disk.
        a.set_payload(&vec![0x11; 3000]).unwrap();
        a.seal();
        pager.write_page(&a).unwrap();
        let mut b = Page::new(1, PageKind::Blob);
        b.set_payload(b"pad").unwrap();
        b.seal();
        pager.write_page(&b).unwrap();
        pager.flush().unwrap();
        drop(pager);

        // Reopen with the torn-write fault armed and overwrite page 0.
        let plan = FaultPlan::single(Site::StorePageWrite).with_seed(0);
        let mut pager = Pager::open(&path, plan).unwrap();
        let mut a2 = Page::new(0, PageKind::Blob);
        a2.set_payload(&vec![0x22; 3000]).unwrap();
        a2.seal();
        assert!(pager.write_page(&a2).is_err());
        drop(pager);

        // File length stays page-aligned, so open succeeds, but page 0 is
        // a front-half/back-half hybrid and fails its checksum.
        let mut pager = Pager::open(&path, FaultPlan::disabled()).unwrap();
        let err = pager.read_page(0).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { page_id: 0, .. }), "{err}");
        assert!(pager.read_page(1).is_ok(), "other pages unharmed");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn failed_flush_fault_is_typed() {
        let path = tmp("flush");
        let plan = FaultPlan::single(Site::StoreFlush).with_seed(0);
        let mut pager = Pager::create(&path, plan).unwrap();
        let err = pager.flush().unwrap_err();
        assert!(matches!(err, StoreError::Fault(f) if f.site == Site::StoreFlush));
        let _ = std::fs::remove_file(&path);
    }
}
