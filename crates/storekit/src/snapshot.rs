//! Snapshot files: a page 0 directory over blob sections and B-trees.
//!
//! A snapshot is one page file whose page 0 (kind [`PageKind::Meta`])
//! holds a directory:
//!
//! ```text
//! "USKSNAP1"  version u32
//! sections:   [name, first_page u32, num_pages u32, byte_len u64] ...
//! trees:      [name, root_page u32] ...
//! ```
//!
//! *Sections* are raw byte streams laid out across contiguous blob
//! pages — the natural shape for encoded columns, documents, and the
//! stats catalog. *Trees* are [`BTree`] indexes (term → postings,
//! entity → node id). Values wider than [`MAX_VALUE`] are chunked across
//! consecutive tree keys `[klen u32 BE][key][seq u32 BE]`, which keeps
//! chunk groups contiguous and ordered under the tree's lexicographic
//! key order.
//!
//! Crash consistency: [`SnapshotWriter::commit`] writes everything to
//! `<path>.tmp`, flushes, re-reads and checksum-verifies every page with
//! a fresh pager, and only then renames over `path`. A torn page or
//! failed flush (the two injected fault sites) surfaces as a typed error
//! and leaves any previous snapshot at `path` untouched.
//!
//! Determinism: identical build inputs produce identical page images
//! (canonical slotted encoding) and identical allocation order, so two
//! same-seed snapshots are byte-identical files — enforced by the golden
//! page-image test and the CI storage gate.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use faultkit::FaultPlan;
use tracekit::MetricsRegistry;

use crate::btree::{BTree, MAX_VALUE};
use crate::buffer::{BufferPool, DEFAULT_POOL_FRAMES};
use crate::codec::{Decoder, Encoder};
use crate::page::{PageKind, PAYLOAD_SIZE};
use crate::pager::Pager;
use crate::StoreError;

const SNAP_MAGIC: &str = "USKSNAP1";
const SNAP_VERSION: u32 = 1;

#[derive(Debug, Clone)]
struct SectionEntry {
    name: String,
    first_page: u32,
    num_pages: u32,
    byte_len: u64,
}

/// Builds a snapshot file section by section, tree by tree.
pub struct SnapshotWriter {
    pool: BufferPool,
    tmp_path: PathBuf,
    sections: Vec<SectionEntry>,
    trees: BTreeMap<String, BTree>,
}

impl SnapshotWriter {
    /// Starts a snapshot that will commit to `path` (building in
    /// `<path>.tmp`). Page 0 is reserved for the directory.
    pub fn create(
        path: &Path,
        faults: FaultPlan,
        metrics: Option<Arc<MetricsRegistry>>,
    ) -> Result<SnapshotWriter, StoreError> {
        let tmp_path = tmp_path_for(path);
        let pager = Pager::create(&tmp_path, faults)?;
        let mut pool = BufferPool::new(pager, DEFAULT_POOL_FRAMES, metrics);
        let meta = pool.allocate(PageKind::Meta)?;
        if meta != 0 {
            return Err(StoreError::Io(format!("meta page allocated as {meta}, expected 0")));
        }
        Ok(SnapshotWriter { pool, tmp_path, sections: Vec::new(), trees: BTreeMap::new() })
    }

    /// Writes `bytes` as section `name` across contiguous blob pages.
    pub fn add_section(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        if self.sections.iter().any(|s| s.name == name) {
            return Err(StoreError::InvalidSnapshot(format!("duplicate section {name:?}")));
        }
        let mut first_page = 0u32;
        let mut num_pages = 0u32;
        let chunks: Vec<&[u8]> =
            if bytes.is_empty() { vec![&[][..]] } else { bytes.chunks(PAYLOAD_SIZE).collect() };
        for (i, chunk) in chunks.iter().enumerate() {
            let id = self.pool.allocate(PageKind::Blob)?;
            if i == 0 {
                first_page = id;
            } else if id != first_page + i as u32 {
                return Err(StoreError::Io(format!(
                    "section {name:?} pages not contiguous: expected {}, got {id}",
                    first_page + i as u32
                )));
            }
            self.pool.write(id, |p| p.set_payload(chunk))??;
            num_pages += 1;
        }
        self.sections.push(SectionEntry {
            name: name.to_string(),
            first_page,
            num_pages,
            byte_len: bytes.len() as u64,
        });
        Ok(())
    }

    /// Inserts `key → value` into tree `name` (created on first use),
    /// chunking values wider than [`MAX_VALUE`] across consecutive keys.
    pub fn tree_insert(&mut self, name: &str, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        let mut tree = match self.trees.get(name) {
            Some(t) => *t,
            None => {
                let t = BTree::create(&mut self.pool)?;
                self.trees.insert(name.to_string(), t);
                t
            }
        };
        let chunks: Vec<&[u8]> =
            if value.is_empty() { vec![&[][..]] } else { value.chunks(MAX_VALUE).collect() };
        for (seq, chunk) in chunks.iter().enumerate() {
            let stored_key = chunk_key(key, seq as u32);
            tree.insert(&mut self.pool, &stored_key, chunk)?;
        }
        self.trees.insert(name.to_string(), tree);
        Ok(())
    }

    /// Flushes everything, verifies every page on disk, and renames the
    /// temporary file over `path`. On any error the target is untouched.
    pub fn commit(mut self, path: &Path) -> Result<(), StoreError> {
        let mut meta = Encoder::new();
        meta.str(SNAP_MAGIC);
        meta.u32(SNAP_VERSION);
        meta.u32(self.sections.len() as u32);
        for s in &self.sections {
            meta.str(&s.name);
            meta.u32(s.first_page);
            meta.u32(s.num_pages);
            meta.u64(s.byte_len);
        }
        meta.u32(self.trees.len() as u32);
        for (name, tree) in &self.trees {
            meta.str(name);
            meta.u32(tree.root());
        }
        let meta_bytes = meta.into_bytes();
        if meta_bytes.len() > PAYLOAD_SIZE {
            return Err(StoreError::TooLarge {
                what: "snapshot directory".to_string(),
                size: meta_bytes.len(),
                max: PAYLOAD_SIZE,
            });
        }
        self.pool.write(0, |p| p.set_payload(&meta_bytes))??;
        self.pool.flush_all()?;
        let num_pages = self.pool.num_pages();
        drop(self.pool);

        // Post-flush verification with a fresh pager: every page must
        // read back with a valid checksum before the snapshot becomes
        // visible at `path`.
        let mut pager = Pager::open(&self.tmp_path, FaultPlan::disabled())?;
        if pager.num_pages() != num_pages {
            return Err(StoreError::InvalidSnapshot(format!(
                "file has {} pages, expected {num_pages}",
                pager.num_pages()
            )));
        }
        for id in 0..num_pages {
            pager.read_page(id)?;
        }
        drop(pager);
        std::fs::rename(&self.tmp_path, path)
            .map_err(|e| StoreError::Io(format!("rename snapshot into place: {e}")))
    }

    /// Removes the temporary file after a failed build (best-effort).
    pub fn abandon(self) {
        let tmp = self.tmp_path.clone();
        drop(self);
        let _ = std::fs::remove_file(tmp);
    }
}

fn tmp_path_for(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

fn chunk_key(key: &[u8], seq: u32) -> Vec<u8> {
    let mut k = Vec::with_capacity(8 + key.len());
    k.extend_from_slice(&(key.len() as u32).to_be_bytes());
    k.extend_from_slice(key);
    k.extend_from_slice(&seq.to_be_bytes());
    k
}

fn split_chunk_key(stored: &[u8]) -> Result<(Vec<u8>, u32), StoreError> {
    if stored.len() < 8 {
        return Err(StoreError::InvalidSnapshot("tree key shorter than its framing".to_string()));
    }
    let klen = u32::from_be_bytes([stored[0], stored[1], stored[2], stored[3]]) as usize;
    let key = stored
        .get(4..4 + klen)
        .ok_or_else(|| StoreError::InvalidSnapshot("tree key length overruns".to_string()))?;
    let seq_raw = stored
        .get(4 + klen..4 + klen + 4)
        .ok_or_else(|| StoreError::InvalidSnapshot("tree key missing sequence".to_string()))?;
    let seq = u32::from_be_bytes([seq_raw[0], seq_raw[1], seq_raw[2], seq_raw[3]]);
    Ok((key.to_vec(), seq))
}

/// A read-open snapshot file.
pub struct Snapshot {
    pool: BufferPool,
    sections: Vec<SectionEntry>,
    trees: Vec<(String, u32)>,
}

impl Snapshot {
    /// Opens and validates the directory of a snapshot file.
    pub fn open(
        path: &Path,
        faults: FaultPlan,
        metrics: Option<Arc<MetricsRegistry>>,
    ) -> Result<Snapshot, StoreError> {
        let pager = Pager::open(path, faults)?;
        let mut pool = BufferPool::new(pager, DEFAULT_POOL_FRAMES, metrics);
        let meta_bytes = pool.read(0, |p| {
            if p.kind() != PageKind::Meta {
                return Err(StoreError::InvalidSnapshot(format!(
                    "page 0 is {:?}, not a directory",
                    p.kind()
                )));
            }
            p.payload().map(<[u8]>::to_vec)
        })??;
        let mut d = Decoder::new(&meta_bytes);
        if d.str()? != SNAP_MAGIC {
            return Err(StoreError::InvalidSnapshot("bad snapshot magic".to_string()));
        }
        let version = d.u32()?;
        if version != SNAP_VERSION {
            return Err(StoreError::InvalidSnapshot(format!(
                "unsupported snapshot version {version}"
            )));
        }
        let n_sections = d.u32()?;
        let mut sections = Vec::with_capacity(n_sections as usize);
        for _ in 0..n_sections {
            sections.push(SectionEntry {
                name: d.str()?,
                first_page: d.u32()?,
                num_pages: d.u32()?,
                byte_len: d.u64()?,
            });
        }
        let n_trees = d.u32()?;
        let mut trees = Vec::with_capacity(n_trees as usize);
        for _ in 0..n_trees {
            trees.push((d.str()?, d.u32()?));
        }
        Ok(Snapshot { pool, sections, trees })
    }

    /// Section names in directory order.
    pub fn section_names(&self) -> Vec<String> {
        self.sections.iter().map(|s| s.name.clone()).collect()
    }

    /// Tree names in directory order.
    pub fn tree_names(&self) -> Vec<String> {
        self.trees.iter().map(|(n, _)| n.clone()).collect()
    }

    /// Reads section `name` back as one byte vector.
    pub fn section(&mut self, name: &str) -> Result<Vec<u8>, StoreError> {
        let entry = self
            .sections
            .iter()
            .find(|s| s.name == name)
            .cloned()
            .ok_or_else(|| StoreError::InvalidSnapshot(format!("no section {name:?}")))?;
        let mut out = Vec::with_capacity(entry.byte_len as usize);
        for i in 0..entry.num_pages {
            let id = entry.first_page + i;
            let chunk = self.pool.read(id, |p| {
                if p.kind() != PageKind::Blob {
                    return Err(StoreError::Corrupt {
                        page_id: id,
                        reason: format!("section {name:?} page is {:?}, not blob", p.kind()),
                    });
                }
                p.payload().map(<[u8]>::to_vec)
            })??;
            out.extend_from_slice(&chunk);
        }
        if out.len() as u64 != entry.byte_len {
            return Err(StoreError::InvalidSnapshot(format!(
                "section {name:?}: directory says {} bytes, pages hold {}",
                entry.byte_len,
                out.len()
            )));
        }
        Ok(out)
    }

    /// All `key → value` pairs of tree `name` in key order, chunked
    /// values reassembled.
    pub fn tree_entries(&mut self, name: &str) -> Result<Vec<(Vec<u8>, Vec<u8>)>, StoreError> {
        let root = self
            .trees
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, r)| *r)
            .ok_or_else(|| StoreError::InvalidSnapshot(format!("no tree {name:?}")))?;
        let tree = BTree::open(root);
        let raw = tree.scan(&mut self.pool, None, None)?;
        let mut out: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for (stored_key, chunk) in raw {
            let (key, seq) = split_chunk_key(&stored_key)?;
            match out.last_mut() {
                Some((last_key, value)) if *last_key == key => {
                    if seq as usize != value.len().div_ceil(MAX_VALUE) {
                        return Err(StoreError::InvalidSnapshot(format!(
                            "tree {name:?}: chunk sequence gap at key {key:?}"
                        )));
                    }
                    value.extend_from_slice(&chunk);
                }
                _ => {
                    if seq != 0 {
                        return Err(StoreError::InvalidSnapshot(format!(
                            "tree {name:?}: first chunk of key {key:?} has seq {seq}"
                        )));
                    }
                    out.push((key, chunk));
                }
            }
        }
        // Stored keys are framed `[klen][key][seq]`, so the scan yields
        // (length, key) order; re-sort to plain key order for consumers.
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    /// Point lookup in tree `name` (chunk-reassembling).
    pub fn tree_get(&mut self, name: &str, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        let root = self
            .trees
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, r)| *r)
            .ok_or_else(|| StoreError::InvalidSnapshot(format!("no tree {name:?}")))?;
        let tree = BTree::open(root);
        let mut value: Option<Vec<u8>> = None;
        for seq in 0u32.. {
            match tree.get(&mut self.pool, &chunk_key(key, seq))? {
                Some(chunk) => {
                    let full = chunk.len() == MAX_VALUE;
                    value.get_or_insert_with(Vec::new).extend_from_slice(&chunk);
                    if !full {
                        break;
                    }
                }
                None => break,
            }
        }
        Ok(value)
    }

    /// Total pages in the snapshot file.
    pub fn num_pages(&self) -> u32 {
        self.pool.num_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PAGE_SIZE;
    use faultkit::Site;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("storekit-snap-{}-{name}.usk", std::process::id()));
        p
    }

    #[test]
    fn unknown_directory_version_is_rejected() {
        let path = tmp("verbump");
        let mut w = SnapshotWriter::create(&path, FaultPlan::disabled(), None).unwrap();
        w.add_section("docs", b"payload").unwrap();
        w.commit(&path).unwrap();

        // Bump the directory's format version in place: read page 0, patch
        // the u32 after the magic string, re-seal (the checksum must stay
        // valid — this is a future format, not a torn page), write back.
        let mut pager = Pager::open(&path, FaultPlan::disabled()).unwrap();
        let mut page = pager.read_page(0).unwrap();
        let payload = page.payload().unwrap().to_vec();
        let mut d = Decoder::new(&payload);
        assert_eq!(d.str().unwrap(), SNAP_MAGIC);
        let version_off = payload.len() - d.remaining();
        let mut patched = payload;
        patched[version_off..version_off + 4].copy_from_slice(&(SNAP_VERSION + 1).to_le_bytes());
        page.set_payload(&patched).unwrap();
        page.seal();
        pager.write_page(&page).unwrap();
        pager.flush().unwrap();

        let err = match Snapshot::open(&path, FaultPlan::disabled(), None) {
            Ok(_) => panic!("bumped-version snapshot must not open"),
            Err(e) => e,
        };
        match err {
            StoreError::InvalidSnapshot(reason) => {
                assert!(
                    reason.contains(&format!("version {}", SNAP_VERSION + 1)),
                    "reason should name the offending version: {reason}"
                );
            }
            other => panic!("expected InvalidSnapshot, got {other}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sections_and_trees_round_trip() {
        let path = tmp("roundtrip");
        let mut w = SnapshotWriter::create(&path, FaultPlan::disabled(), None).unwrap();
        let big = (0..20_000u32).flat_map(|i| i.to_le_bytes()).collect::<Vec<u8>>();
        w.add_section("docs", &big).unwrap();
        w.add_section("empty", b"").unwrap();
        w.tree_insert("postings", b"alpha", b"a-postings").unwrap();
        let wide = vec![7u8; MAX_VALUE * 3 + 17];
        w.tree_insert("postings", b"beta", &wide).unwrap();
        w.tree_insert("postings", b"gamma", b"").unwrap();
        w.commit(&path).unwrap();

        let mut s = Snapshot::open(&path, FaultPlan::disabled(), None).unwrap();
        assert_eq!(s.section_names(), vec!["docs", "empty"]);
        assert_eq!(s.tree_names(), vec!["postings"]);
        assert_eq!(s.section("docs").unwrap(), big);
        assert_eq!(s.section("empty").unwrap(), b"");
        assert!(s.section("missing").is_err());
        let entries = s.tree_entries("postings").unwrap();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0], (b"alpha".to_vec(), b"a-postings".to_vec()));
        assert_eq!(entries[1], (b"beta".to_vec(), wide.clone()));
        assert_eq!(entries[2], (b"gamma".to_vec(), Vec::new()));
        assert_eq!(s.tree_get("postings", b"beta").unwrap(), Some(wide));
        assert_eq!(s.tree_get("postings", b"nope").unwrap(), None);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn same_inputs_produce_byte_identical_files() {
        let build = |name: &str| -> Vec<u8> {
            let path = tmp(name);
            let mut w = SnapshotWriter::create(&path, FaultPlan::disabled(), None).unwrap();
            w.add_section("a", &vec![3u8; 10_000]).unwrap();
            for i in 0..200u32 {
                w.tree_insert("t", format!("k{i:04}").as_bytes(), &[i as u8; 40]).unwrap();
            }
            w.add_section("b", b"tail").unwrap();
            w.commit(&path).unwrap();
            let bytes = std::fs::read(&path).unwrap();
            let _ = std::fs::remove_file(&path);
            bytes
        };
        assert_eq!(build("ident-a"), build("ident-b"));
    }

    #[test]
    fn commit_under_torn_page_fails_and_preserves_target() {
        let path = tmp("torn-commit");
        // A previous good snapshot sits at the target.
        let mut w = SnapshotWriter::create(&path, FaultPlan::disabled(), None).unwrap();
        w.add_section("v", b"version-1").unwrap();
        w.commit(&path).unwrap();
        let before = std::fs::read(&path).unwrap();

        // Rebuild with the torn-page site firing on every write.
        let plan = FaultPlan::single(Site::StorePageWrite).with_seed(7);
        let result = SnapshotWriter::create(&path, plan, None).and_then(|mut w| {
            w.add_section("v", b"version-2")?;
            w.commit(&path)
        });
        assert!(matches!(result, Err(StoreError::Fault(_))), "{result:?}");
        assert_eq!(std::fs::read(&path).unwrap(), before, "target untouched");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(tmp_path_for(&path));
    }

    #[test]
    fn commit_under_failed_flush_fails_and_preserves_target() {
        let path = tmp("flush-commit");
        let mut w = SnapshotWriter::create(&path, FaultPlan::disabled(), None).unwrap();
        w.add_section("v", b"version-1").unwrap();
        w.commit(&path).unwrap();
        let before = std::fs::read(&path).unwrap();

        let plan = FaultPlan::single(Site::StoreFlush).with_seed(7);
        let result = SnapshotWriter::create(&path, plan, None).and_then(|mut w| {
            w.add_section("v", b"version-2")?;
            w.commit(&path)
        });
        assert!(matches!(result, Err(StoreError::Fault(_))), "{result:?}");
        assert_eq!(std::fs::read(&path).unwrap(), before, "target untouched");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(tmp_path_for(&path));
    }

    #[test]
    fn truncated_file_is_rejected_on_open() {
        let path = tmp("truncated");
        let mut w = SnapshotWriter::create(&path, FaultPlan::disabled(), None).unwrap();
        w.add_section("v", &vec![1u8; 9_000]).unwrap();
        w.commit(&path).unwrap();
        let full = std::fs::read(&path).unwrap();
        // Chop mid-page: open() rejects the ragged length outright.
        std::fs::write(&path, &full[..full.len() - 100]).unwrap();
        assert!(Snapshot::open(&path, FaultPlan::disabled(), None).is_err());
        // Chop a whole page: the directory now points past the end.
        std::fs::write(&path, &full[..full.len() - PAGE_SIZE]).unwrap();
        let mut s = Snapshot::open(&path, FaultPlan::disabled(), None).unwrap();
        assert!(s.section("v").is_err());
        let _ = std::fs::remove_file(&path);
    }
}
