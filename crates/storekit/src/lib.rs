//! `storekit` — persistent paged storage for the unified engine.
//!
//! The crate turns the engine's in-memory substrates (document store,
//! BM25 inverted index, heterogeneous graph, stats catalog) into one
//! byte-stable snapshot file, structured as:
//!
//! - [`page`] — fixed 4 KiB checksummed pages with slotted records;
//! - [`pager`] — page-granular file I/O hosting the two injected storage
//!   fault sites (torn page, failed flush);
//! - [`buffer`] — a bounded page cache with deterministic clock eviction
//!   and a closed metric set (`store.page_hits` / `page_misses` /
//!   `evictions` / `flushes`);
//! - [`btree`] — persistent B-tree indexes with split/merge balancing
//!   and ordered range scans, re-encoded canonically per operation;
//! - [`snapshot`] — the page 0 directory format, blob sections, value
//!   chunking, and the write-temp → flush → verify → rename commit
//!   protocol;
//! - [`codec`] — the little-endian byte codec snapshot payloads use.
//!
//! Determinism contract (DESIGN.md §12): page images and whole snapshot
//! files are pure functions of the logical content and operation order,
//! so two engine builds from the same seed produce byte-identical
//! snapshot files, and a reopened snapshot answers every workload query
//! byte-identically to the in-memory build that wrote it.
//!
//! Like the other engine crates, storekit is panic-free on untrusted
//! input: torn pages, truncated files, and bad directories surface as
//! typed [`StoreError`]s, and injected faults propagate as
//! [`StoreError::Fault`] for the engine's degradation ladder.

pub mod btree;
pub mod buffer;
pub mod codec;
pub mod page;
pub mod pager;
pub mod snapshot;
pub mod wal;

pub use btree::{BTree, MAX_KEY, MAX_VALUE};
pub use buffer::{BufferPool, DEFAULT_POOL_FRAMES};
pub use codec::{Decoder, Encoder};
pub use page::{Page, PageKind, PAGE_SIZE, PAYLOAD_SIZE};
pub use pager::Pager;
pub use snapshot::{Snapshot, SnapshotWriter};
pub use wal::{Wal, WalRecord, WalRecovery};

use faultkit::InjectedFault;

/// Typed storage errors: every failure mode of the paged layer, injected
/// or organic, without panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Operating-system I/O failure (open, read, write, rename).
    Io(String),
    /// A page failed structural validation: bad magic, wrong id echo,
    /// unknown kind, checksum mismatch (e.g. a torn write), or a slotted
    /// record that overruns its cell.
    Corrupt {
        /// The page that failed validation.
        page_id: u32,
        /// What was wrong with it.
        reason: String,
    },
    /// An injected fault fired at a storage site (torn page write or
    /// failed flush); carries the site and key for the trace.
    Fault(InjectedFault),
    /// A snapshot payload failed to decode (truncation, bad framing).
    Decode(String),
    /// A key, value, or directory exceeded a structural limit.
    TooLarge {
        /// What overflowed.
        what: String,
        /// Its size in bytes.
        size: usize,
        /// The limit it exceeded.
        max: usize,
    },
    /// The snapshot directory itself is malformed or inconsistent.
    InvalidSnapshot(String),
    /// A write-ahead-log segment is malformed somewhere other than its
    /// truncatable tail (bad header, non-contiguous chain, mid-log frame
    /// damage).
    WalCorrupt {
        /// The segment index that failed validation.
        segment: u32,
        /// What was wrong with it.
        reason: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "storage i/o: {e}"),
            StoreError::Corrupt { page_id, reason } => {
                write!(f, "page {page_id} corrupt: {reason}")
            }
            StoreError::Fault(fault) => write!(f, "storage fault: {fault}"),
            StoreError::Decode(e) => write!(f, "snapshot decode: {e}"),
            StoreError::TooLarge { what, size, max } => {
                write!(f, "{what} is {size} bytes, limit {max}")
            }
            StoreError::InvalidSnapshot(e) => write!(f, "invalid snapshot: {e}"),
            StoreError::WalCorrupt { segment, reason } => {
                write!(f, "wal segment {segment} corrupt: {reason}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<InjectedFault> for StoreError {
    fn from(fault: InjectedFault) -> Self {
        StoreError::Fault(fault)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_useful_context() {
        let e = StoreError::Corrupt { page_id: 9, reason: "checksum mismatch".into() };
        assert!(e.to_string().contains("page 9"));
        let e = StoreError::TooLarge { what: "b-tree key".into(), size: 600, max: 512 };
        assert!(e.to_string().contains("600"));
        assert!(e.to_string().contains("512"));
    }
}
