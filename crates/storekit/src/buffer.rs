//! Buffer pool: a bounded page cache over the [`Pager`] with
//! deterministic clock (second-chance) eviction.
//!
//! Determinism contract: cache behaviour is a pure function of the
//! access sequence. Frames are scanned by a clock hand that advances one
//! frame per probe; the page → frame map is a `BTreeMap`, so any
//! iteration (notably [`flush_all`](BufferPool::flush_all), which writes
//! dirty pages in ascending page-id order) is ordered. No wall clock,
//! no randomization, no address-keyed hashing anywhere.
//!
//! Metrics (when a registry is attached): `store.page_hits`,
//! `store.page_misses`, `store.evictions`, `store.flushes` — a closed
//! set registered in `tracekit`.

use std::collections::BTreeMap;
use std::sync::Arc;

use tracekit::{Metric, MetricsRegistry};

use crate::page::{Page, PageKind};
use crate::pager::Pager;
use crate::StoreError;

/// Default number of resident frames.
pub const DEFAULT_POOL_FRAMES: usize = 64;

#[derive(Debug)]
struct Frame {
    page: Page,
    dirty: bool,
    referenced: bool,
}

/// A bounded, write-back page cache.
#[derive(Debug)]
pub struct BufferPool {
    pager: Pager,
    frames: Vec<Option<Frame>>,
    /// page id → frame index; BTreeMap so traversals are ordered.
    map: BTreeMap<u32, usize>,
    hand: usize,
    next_page_id: u32,
    /// Recycled page ids, LIFO. In-memory only: free pages are also
    /// marked [`PageKind::Free`] on disk so reopening can rebuild state.
    free_list: Vec<u32>,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl BufferPool {
    /// A pool of `capacity` frames over `pager`.
    pub fn new(pager: Pager, capacity: usize, metrics: Option<Arc<MetricsRegistry>>) -> BufferPool {
        let capacity = capacity.max(1);
        let next_page_id = pager.num_pages();
        BufferPool {
            pager,
            frames: (0..capacity).map(|_| None).collect(),
            map: BTreeMap::new(),
            hand: 0,
            next_page_id,
            free_list: Vec::new(),
            metrics,
        }
    }

    /// Pages in the underlying file (allocated high-water mark).
    pub fn num_pages(&self) -> u32 {
        self.next_page_id
    }

    fn incr(&self, metric: Metric) {
        if let Some(m) = &self.metrics {
            m.incr(metric);
        }
    }

    /// Allocates a page id (recycling the free list LIFO) and installs a
    /// fresh page of `kind` in the cache.
    pub fn allocate(&mut self, kind: PageKind) -> Result<u32, StoreError> {
        let id = match self.free_list.pop() {
            Some(id) => id,
            None => {
                let id = self.next_page_id;
                self.next_page_id = id
                    .checked_add(1)
                    .ok_or_else(|| StoreError::Io("page id space exhausted".to_string()))?;
                id
            }
        };
        let frame_idx = self.frame_for(id, Some(Page::new(id, kind)))?;
        if let Some(frame) = &mut self.frames[frame_idx] {
            frame.dirty = true;
        }
        Ok(id)
    }

    /// Returns a page to the free list and rewrites it as
    /// [`PageKind::Free`] so the on-disk image carries no stale content.
    pub fn free(&mut self, id: u32) -> Result<(), StoreError> {
        self.write(id, |page| {
            *page = Page::new(id, PageKind::Free);
        })?;
        self.free_list.push(id);
        Ok(())
    }

    /// Reads page `id` through the cache.
    pub fn read<R>(&mut self, id: u32, f: impl FnOnce(&Page) -> R) -> Result<R, StoreError> {
        let frame_idx = self.frame_for(id, None)?;
        match &mut self.frames[frame_idx] {
            Some(frame) => {
                frame.referenced = true;
                Ok(f(&frame.page))
            }
            None => Err(StoreError::Corrupt {
                page_id: id,
                reason: "frame vanished after pin".to_string(),
            }),
        }
    }

    /// Mutates page `id` through the cache, marking it dirty. The page is
    /// sealed (checksummed) when it is eventually written back.
    pub fn write<R>(&mut self, id: u32, f: impl FnOnce(&mut Page) -> R) -> Result<R, StoreError> {
        let frame_idx = self.frame_for(id, None)?;
        match &mut self.frames[frame_idx] {
            Some(frame) => {
                frame.referenced = true;
                frame.dirty = true;
                Ok(f(&mut frame.page))
            }
            None => Err(StoreError::Corrupt {
                page_id: id,
                reason: "frame vanished after pin".to_string(),
            }),
        }
    }

    /// Writes every dirty page back in ascending page-id order, then
    /// syncs the file. Leaves the cache populated and clean.
    pub fn flush_all(&mut self) -> Result<(), StoreError> {
        let ids: Vec<u32> = self.map.keys().copied().collect();
        for id in ids {
            if let Some(&frame_idx) = self.map.get(&id) {
                let flush = match &mut self.frames[frame_idx] {
                    Some(frame) if frame.dirty => {
                        frame.page.seal();
                        frame.dirty = false;
                        Some(frame.page.clone())
                    }
                    _ => None,
                };
                if let Some(page) = flush {
                    self.incr(Metric::StoreFlushes);
                    self.pager.write_page(&page)?;
                }
            }
        }
        self.pager.flush()
    }

    /// Finds (or loads) the frame holding `id`. When `fresh` is given the
    /// page is installed without touching disk (allocation path).
    fn frame_for(&mut self, id: u32, fresh: Option<Page>) -> Result<usize, StoreError> {
        if let Some(&idx) = self.map.get(&id) {
            self.incr(Metric::StorePageHits);
            if let Some(page) = fresh {
                if let Some(frame) = &mut self.frames[idx] {
                    frame.page = page;
                    frame.dirty = true;
                }
            }
            return Ok(idx);
        }
        self.incr(Metric::StorePageMisses);
        let page = match fresh {
            Some(p) => p,
            None => self.pager.read_page(id)?,
        };
        let idx = self.victim_frame()?;
        self.frames[idx] = Some(Frame { page, dirty: false, referenced: true });
        self.map.insert(id, idx);
        Ok(idx)
    }

    /// Clock sweep: the first unreferenced frame (clearing reference bits
    /// as the hand passes) is evicted, writing it back first if dirty.
    fn victim_frame(&mut self) -> Result<usize, StoreError> {
        let capacity = self.frames.len();
        // An empty frame, if any, wins without eviction. Scan in index
        // order for determinism.
        for (idx, frame) in self.frames.iter().enumerate() {
            if frame.is_none() {
                return Ok(idx);
            }
        }
        // Two full sweeps always find a victim: the first pass clears
        // every reference bit it crosses.
        for _ in 0..2 * capacity {
            let idx = self.hand;
            self.hand = (self.hand + 1) % capacity;
            match &mut self.frames[idx] {
                Some(frame) if frame.referenced => {
                    frame.referenced = false;
                }
                Some(_) => {
                    self.evict(idx)?;
                    return Ok(idx);
                }
                None => return Ok(idx),
            }
        }
        Err(StoreError::Io("clock sweep found no victim".to_string()))
    }

    fn evict(&mut self, idx: usize) -> Result<(), StoreError> {
        let Some(frame) = self.frames[idx].take() else {
            return Ok(());
        };
        let id = frame.page.id();
        self.map.remove(&id);
        self.incr(Metric::StoreEvictions);
        if frame.dirty {
            let mut page = frame.page;
            page.seal();
            self.incr(Metric::StoreFlushes);
            self.pager.write_page(&page)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultkit::FaultPlan;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("storekit-buffer-{}-{name}", std::process::id()));
        p
    }

    fn pool(name: &str, capacity: usize) -> (BufferPool, std::path::PathBuf) {
        let path = tmp(name);
        let pager = Pager::create(&path, FaultPlan::disabled()).unwrap();
        (BufferPool::new(pager, capacity, Some(Arc::new(MetricsRegistry::new()))), path)
    }

    #[test]
    fn read_after_write_hits_cache() {
        let (mut pool, path) = pool("hits", 4);
        let id = pool.allocate(PageKind::Blob).unwrap();
        pool.write(id, |p| p.set_payload(b"cached").map(|_| ())).unwrap().unwrap();
        let got = pool.read(id, |p| p.payload().map(<[u8]>::to_vec)).unwrap().unwrap();
        assert_eq!(got, b"cached");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn eviction_under_pressure_round_trips_through_disk() {
        let (mut pool, path) = pool("pressure", 2);
        let mut ids = Vec::new();
        for i in 0..8u32 {
            let id = pool.allocate(PageKind::Blob).unwrap();
            pool.write(id, |p| p.set_payload(format!("page-{i}").as_bytes()).map(|_| ()))
                .unwrap()
                .unwrap();
            ids.push(id);
        }
        // Revisit every page — the early ones must reload from disk.
        for (i, &id) in ids.iter().enumerate() {
            let got = pool.read(id, |p| p.payload().map(<[u8]>::to_vec)).unwrap().unwrap();
            assert_eq!(got, format!("page-{i}").as_bytes(), "page {id}");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn flush_all_persists_everything() {
        let (mut pool, path) = pool("flush", 4);
        for i in 0..4u32 {
            let id = pool.allocate(PageKind::Blob).unwrap();
            pool.write(id, |p| p.set_payload(&[i as u8; 16]).map(|_| ())).unwrap().unwrap();
        }
        pool.flush_all().unwrap();
        let mut pager = Pager::open(&path, FaultPlan::disabled()).unwrap();
        assert_eq!(pager.num_pages(), 4);
        for i in 0..4u32 {
            assert_eq!(pager.read_page(i).unwrap().payload().unwrap(), &[i as u8; 16]);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn free_list_recycles_lifo() {
        let (mut pool, path) = pool("freelist", 4);
        let a = pool.allocate(PageKind::Blob).unwrap();
        let b = pool.allocate(PageKind::Blob).unwrap();
        pool.free(a).unwrap();
        pool.free(b).unwrap();
        assert_eq!(pool.allocate(PageKind::BtreeLeaf).unwrap(), b, "LIFO recycle");
        assert_eq!(pool.allocate(PageKind::BtreeLeaf).unwrap(), a);
        assert_eq!(pool.allocate(PageKind::BtreeLeaf).unwrap(), 2, "then fresh ids");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn identical_access_sequences_produce_identical_files() {
        let run = |name: &str| -> Vec<u8> {
            let (mut pool, path) = pool(name, 2);
            for i in 0..6u32 {
                let id = pool.allocate(PageKind::Blob).unwrap();
                pool.write(id, |p| p.set_payload(&[i as u8; 32]).map(|_| ())).unwrap().unwrap();
            }
            pool.free(3).unwrap();
            pool.flush_all().unwrap();
            let bytes = std::fs::read(&path).unwrap();
            let _ = std::fs::remove_file(&path);
            bytes
        };
        assert_eq!(run("det-a"), run("det-b"), "byte-identical page files");
    }
}
