//! Little-endian byte codec for snapshot payloads.
//!
//! Every serialized integer is fixed-width little-endian and every string
//! is `u32` length-prefixed UTF-8, so encoded payloads are byte-identical
//! across platforms and builds — the raw material of the snapshot
//! byte-identity contract (DESIGN.md §12). Floats travel as `to_bits`
//! images, never as text, so `-0.0`, NaN payloads, and subnormals
//! round-trip exactly.

use crate::StoreError;

/// An append-only encode buffer.
#[derive(Debug, Default, Clone)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`, little-endian two's complement.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as `u64` (fails loudly on 128-bit platforms at
    /// compile time via the cast).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f64` as its exact bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Appends a `u32`-length-prefixed byte run.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Appends a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// A cursor over encoded bytes; every read is bounds-checked and returns
/// a typed [`StoreError::Decode`] on truncation instead of panicking.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// True when the cursor has consumed every byte.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self.pos.checked_add(n).ok_or_else(|| decode_err("length overflow"))?;
        let slice = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| decode_err(&format!("truncated: need {n} bytes at {}", self.pos)))?;
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, StoreError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, StoreError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, StoreError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, StoreError> {
        Ok(self.u64()? as i64)
    }

    /// Reads a `u64` back into `usize`, rejecting values that do not fit.
    pub fn usize(&mut self) -> Result<usize, StoreError> {
        usize::try_from(self.u64()?).map_err(|_| decode_err("usize overflow"))
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `bool`, rejecting bytes other than 0/1.
    pub fn bool(&mut self) -> Result<bool, StoreError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(decode_err(&format!("invalid bool byte {b}"))),
        }
    }

    /// Reads a `u32`-length-prefixed byte run.
    pub fn bytes(&mut self) -> Result<&'a [u8], StoreError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, StoreError> {
        let raw = self.bytes()?;
        String::from_utf8(raw.to_vec()).map_err(|_| decode_err("invalid utf-8"))
    }
}

fn decode_err(reason: &str) -> StoreError {
    StoreError::Decode(reason.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_type() {
        let mut e = Encoder::new();
        e.u8(7);
        e.u16(0xBEEF);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX);
        e.i64(-42);
        e.usize(12345);
        e.f64(-0.0);
        e.bool(true);
        e.bytes(b"raw");
        e.str("héllo");
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u16().unwrap(), 0xBEEF);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.i64().unwrap(), -42);
        assert_eq!(d.usize().unwrap(), 12345);
        assert_eq!(d.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(d.bool().unwrap());
        assert_eq!(d.bytes().unwrap(), b"raw");
        assert_eq!(d.str().unwrap(), "héllo");
        assert!(d.is_done());
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let mut e = Encoder::new();
        e.u32(9);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert!(d.u64().is_err(), "reading past the end must not panic");
        let mut d2 = Decoder::new(&bytes);
        assert!(d2.bytes().is_err(), "length prefix larger than payload");
    }

    #[test]
    fn invalid_bool_and_utf8_rejected() {
        let mut d = Decoder::new(&[2]);
        assert!(d.bool().is_err());
        let mut e = Encoder::new();
        e.bytes(&[0xFF, 0xFE]);
        let bytes = e.into_bytes();
        assert!(Decoder::new(&bytes).str().is_err());
    }

    #[test]
    fn encoding_is_deterministic() {
        let enc = |x: f64| {
            let mut e = Encoder::new();
            e.f64(x);
            e.str("same");
            e.into_bytes()
        };
        assert_eq!(enc(1.5), enc(1.5));
        assert_ne!(enc(0.0), enc(-0.0), "float identity is bit-level");
    }
}
