//! Write-ahead log: checksummed, length-framed, seq-numbered delta
//! records in segment files (DESIGN.md §13).
//!
//! The log makes incremental ingestion durable under the same
//! fsync-then-ack discipline the pager commit path uses: a delta is
//! appended ([`Wal::append`]), made durable ([`Wal::flush`]), and only
//! then acknowledged and applied in memory. Recovery ([`Wal::open`])
//! replays every intact record in sequence order and *physically
//! truncates* a torn tail — the one place where losing data is correct,
//! because a torn record was never acknowledged.
//!
//! ## Segment format
//!
//! A log is a chain of segment files `<base>.NNNNNN` with contiguous
//! indices. Each segment starts with a 24-byte header:
//!
//! ```text
//! [8B magic "USKWAL01"] [u32 BE version] [u32 BE segment index] [u64 BE first seq]
//! ```
//!
//! followed by length-framed records:
//!
//! ```text
//! [u32 BE payload len] [u64 BE seq] [u64 BE checksum] [payload]
//! ```
//!
//! The checksum is FNV-1a over the len, seq, and payload bytes, so a torn
//! frame — truncated anywhere, including inside the 20-byte frame header —
//! never verifies. Sequence numbers increase by exactly 1 across segment
//! boundaries; the file bytes are a pure function of the appended payload
//! stream, so same-seed delta streams produce byte-identical segments.
//!
//! ## Fault sites
//!
//! - [`Site::WalAppend`], key `seq:<n>` — a *torn append*: only the first
//!   half of the frame reaches the file before the typed error returns.
//!   The damage is real; recovery truncates it. The log handle is
//!   poisoned afterwards (a crashed writer never appends again).
//! - [`Site::WalFlush`], key `segment:<idx>` — a *lost buffer*: frames
//!   appended since the last successful flush are rolled back (they were
//!   never durable) and the typed error returns; the log itself stays
//!   consistent at its last durable prefix.
//! - [`Site::WalCheckpoint`], key `truncate` — fires inside
//!   [`Wal::truncate_all`] before anything is deleted, modelling a crash
//!   between snapshot fold and log truncation.

use std::fs::{File, OpenOptions};
use std::io::{Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use faultkit::{FaultPlan, Site};
use tracekit::{Metric, MetricsRegistry};

use crate::StoreError;

const WAL_MAGIC: &[u8; 8] = b"USKWAL01";
const WAL_VERSION: u32 = 1;
const HEADER_LEN: u64 = 24;
const FRAME_HEADER_LEN: usize = 4 + 8 + 8;

/// Default segment roll threshold. Appends that find the current segment
/// at or past this size (and fully durable) start a new segment.
pub const DEFAULT_SEGMENT_CAP: u64 = 1 << 20;

/// One intact log record, as replayed by [`Wal::open`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Monotonic sequence number (1-based across the log's lifetime).
    pub seq: u64,
    /// The opaque payload the caller appended.
    pub payload: Vec<u8>,
}

/// What [`Wal::open`] found and repaired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalRecovery {
    /// Segments scanned.
    pub segments: usize,
    /// Intact records replayed.
    pub records: usize,
    /// 1 when a torn tail was truncated (at most one is possible).
    pub torn_truncations: usize,
    /// Bytes physically removed by tail truncation (including any
    /// dropped empty trailing segments).
    pub truncated_bytes: u64,
}

/// An append-only write-ahead log over segment files.
#[derive(Debug)]
pub struct Wal {
    base: PathBuf,
    file: File,
    faults: FaultPlan,
    metrics: Option<Arc<MetricsRegistry>>,
    /// Sequence number the next append will take.
    next_seq: u64,
    segment_index: u32,
    /// Current segment length in bytes (header + frames, incl. torn).
    segment_len: u64,
    /// Durable prefix of the current segment (advanced by flush).
    synced_len: u64,
    /// `next_seq` as of the last successful flush (flush-fault rollback
    /// restores it, so an unacknowledged append never consumes a seq).
    synced_seq: u64,
    segment_cap: u64,
    /// Set after a torn append: the handle models a crashed writer and
    /// refuses further appends/flushes.
    poisoned: bool,
}

fn io_err(ctx: &str, path: &Path, e: std::io::Error) -> StoreError {
    StoreError::Io(format!("{ctx} {}: {e}", path.display()))
}

fn wal_corrupt(segment: u32, reason: impl Into<String>) -> StoreError {
    StoreError::WalCorrupt { segment, reason: reason.into() }
}

/// FNV-1a over the frame's len, seq, and payload bytes.
fn frame_checksum(len: u32, seq: u64, payload: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for b in len.to_be_bytes() {
        eat(b);
    }
    for b in seq.to_be_bytes() {
        eat(b);
    }
    for &b in payload {
        eat(b);
    }
    h
}

fn segment_path(base: &Path, index: u32) -> PathBuf {
    let mut name = base.as_os_str().to_os_string();
    name.push(format!(".{index:06}"));
    PathBuf::from(name)
}

fn encode_header(index: u32, first_seq: u64) -> [u8; HEADER_LEN as usize] {
    let mut h = [0u8; HEADER_LEN as usize];
    h[..8].copy_from_slice(WAL_MAGIC);
    h[8..12].copy_from_slice(&WAL_VERSION.to_be_bytes());
    h[12..16].copy_from_slice(&index.to_be_bytes());
    h[16..24].copy_from_slice(&first_seq.to_be_bytes());
    h
}

impl Wal {
    /// Starts a fresh log at `base`, deleting any existing segments.
    /// Sequence numbering starts at `first_seq` (1 for a new engine; the
    /// snapshot's last applied seq + 1 after a checkpoint).
    pub fn create(
        base: &Path,
        first_seq: u64,
        faults: FaultPlan,
        metrics: Option<Arc<MetricsRegistry>>,
    ) -> Result<Wal, StoreError> {
        for path in Self::segment_paths(base) {
            std::fs::remove_file(&path).map_err(|e| io_err("remove", &path, e))?;
        }
        let path = segment_path(base, 0);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| io_err("create", &path, e))?;
        file.write_all(&encode_header(0, first_seq)).map_err(|e| io_err("write", &path, e))?;
        file.sync_all().map_err(|e| io_err("sync", &path, e))?;
        Ok(Wal {
            base: base.to_path_buf(),
            file,
            faults,
            metrics,
            next_seq: first_seq,
            segment_index: 0,
            segment_len: HEADER_LEN,
            synced_len: HEADER_LEN,
            synced_seq: first_seq,
            segment_cap: DEFAULT_SEGMENT_CAP,
            poisoned: false,
        })
    }

    /// Existing segment files of the log at `base`, in index order. The
    /// directory listing is sorted, so the result never depends on
    /// filesystem enumeration order.
    pub fn segment_paths(base: &Path) -> Vec<PathBuf> {
        let dir = base.parent().unwrap_or_else(|| Path::new("."));
        let stem = match base.file_name().and_then(|n| n.to_str()) {
            Some(s) => s,
            None => return Vec::new(),
        };
        let mut found: Vec<(u32, PathBuf)> = Vec::new();
        if let Ok(entries) = std::fs::read_dir(dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                let Some(suffix) = name.strip_prefix(stem).and_then(|r| r.strip_prefix('.')) else {
                    continue;
                };
                if suffix.len() == 6 && suffix.bytes().all(|b| b.is_ascii_digit()) {
                    if let Ok(idx) = suffix.parse::<u32>() {
                        found.push((idx, entry.path()));
                    }
                }
            }
        }
        found.sort_by_key(|(idx, _)| *idx);
        found.into_iter().map(|(_, p)| p).collect()
    }

    /// True when at least one segment of the log at `base` exists.
    pub fn exists(base: &Path) -> bool {
        !Self::segment_paths(base).is_empty()
    }

    /// Opens the log at `base`, replaying every intact record in order and
    /// truncating a torn tail (plus any segments after it). The returned
    /// handle appends after the last intact record.
    ///
    /// A malformed header, a gap in the segment chain, or a sequence
    /// discontinuity is *not* a torn tail and surfaces as
    /// [`StoreError::WalCorrupt`].
    pub fn open(
        base: &Path,
        faults: FaultPlan,
        metrics: Option<Arc<MetricsRegistry>>,
    ) -> Result<(Wal, Vec<WalRecord>, WalRecovery), StoreError> {
        let paths = Self::segment_paths(base);
        if paths.is_empty() {
            return Err(StoreError::Io(format!("no wal segments at {}", base.display())));
        }
        let mut records: Vec<WalRecord> = Vec::new();
        let mut recovery = WalRecovery { segments: paths.len(), ..WalRecovery::default() };
        let mut expected_seq: Option<u64> = None;
        // (segment index, durable end offset) of the last intact frame.
        let mut tail: (u32, u64) = (0, HEADER_LEN);
        let mut tail_first_seq = 1u64;

        for (chain_pos, path) in paths.iter().enumerate() {
            let bytes = std::fs::read(path).map_err(|e| io_err("read", path, e))?;
            let idx = chain_pos as u32;
            if bytes.len() < HEADER_LEN as usize {
                return Err(wal_corrupt(idx, format!("header truncated ({}B)", bytes.len())));
            }
            if &bytes[..8] != WAL_MAGIC {
                return Err(wal_corrupt(idx, "bad magic"));
            }
            let version = u32::from_be_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
            if version != WAL_VERSION {
                return Err(wal_corrupt(idx, format!("unsupported wal version {version}")));
            }
            let header_idx = u32::from_be_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]);
            if header_idx != idx {
                return Err(wal_corrupt(
                    idx,
                    format!("segment chain gap: header says index {header_idx}"),
                ));
            }
            let first_seq = u64::from_be_bytes([
                bytes[16], bytes[17], bytes[18], bytes[19], bytes[20], bytes[21], bytes[22],
                bytes[23],
            ]);
            if let Some(expected) = expected_seq {
                if first_seq != expected {
                    return Err(wal_corrupt(
                        idx,
                        format!("first seq {first_seq} breaks sequence (expected {expected})"),
                    ));
                }
            }
            tail = (idx, HEADER_LEN);
            tail_first_seq = first_seq;
            let mut off = HEADER_LEN as usize;
            let mut next = first_seq;
            let mut torn = false;
            while off < bytes.len() {
                let rest = &bytes[off..];
                if rest.len() < FRAME_HEADER_LEN {
                    torn = true;
                    break;
                }
                let len = u32::from_be_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
                let seq = u64::from_be_bytes([
                    rest[4], rest[5], rest[6], rest[7], rest[8], rest[9], rest[10], rest[11],
                ]);
                let checksum = u64::from_be_bytes([
                    rest[12], rest[13], rest[14], rest[15], rest[16], rest[17], rest[18], rest[19],
                ]);
                if rest.len() < FRAME_HEADER_LEN + len {
                    torn = true;
                    break;
                }
                let payload = &rest[FRAME_HEADER_LEN..FRAME_HEADER_LEN + len];
                if frame_checksum(len as u32, seq, payload) != checksum {
                    torn = true;
                    break;
                }
                if seq != next {
                    return Err(wal_corrupt(
                        idx,
                        format!("record seq {seq} breaks sequence (expected {next})"),
                    ));
                }
                records.push(WalRecord { seq, payload: payload.to_vec() });
                next = seq + 1;
                off += FRAME_HEADER_LEN + len;
                tail = (idx, off as u64);
            }
            expected_seq = Some(next);
            if torn {
                // A torn frame ends the log: truncate it here, drop any
                // segments after this one, and stop scanning. Anything past
                // the first unverifiable frame was never acknowledged.
                let keep = off as u64;
                recovery.torn_truncations = 1;
                recovery.truncated_bytes = bytes.len() as u64 - keep;
                let f = OpenOptions::new()
                    .write(true)
                    .open(path)
                    .map_err(|e| io_err("open", path, e))?;
                // udlint: allow(uncovered-io-site) -- recovery truncation is idempotent: a crash here leaves a torn tail that the next open repairs the same way (covered by the torn-append crash matrix); injecting a fault would only re-run this path
                f.set_len(keep).map_err(|e| io_err("truncate", path, e))?;
                // udlint: allow(uncovered-io-site) -- same idempotent recovery window as the set_len above; the tail is already truncated, re-syncing on the next open is equivalent
                f.sync_all().map_err(|e| io_err("sync", path, e))?;
                for later in &paths[chain_pos + 1..] {
                    let len = std::fs::metadata(later).map(|m| m.len()).unwrap_or(0);
                    recovery.truncated_bytes += len;
                    std::fs::remove_file(later).map_err(|e| io_err("remove", later, e))?;
                }
                recovery.segments = chain_pos + 1;
                break;
            }
        }

        recovery.records = records.len();
        if let Some(m) = &metrics {
            m.add(Metric::WalReplayedRecords, records.len() as u64);
            m.add(Metric::WalTornTruncations, recovery.torn_truncations as u64);
        }
        let next_seq = records.last().map(|r| r.seq + 1).unwrap_or(tail_first_seq);
        let path = segment_path(base, tail.0);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| io_err("open", &path, e))?;
        file.seek(SeekFrom::End(0)).map_err(|e| io_err("seek", &path, e))?;
        let wal = Wal {
            base: base.to_path_buf(),
            file,
            faults,
            metrics,
            next_seq,
            segment_index: tail.0,
            segment_len: tail.1,
            synced_len: tail.1,
            synced_seq: next_seq,
            segment_cap: DEFAULT_SEGMENT_CAP,
            poisoned: false,
        };
        Ok((wal, records, recovery))
    }

    /// Overrides the segment roll threshold (tests use tiny caps to
    /// exercise multi-segment chains).
    pub fn set_segment_cap(&mut self, bytes: u64) {
        self.segment_cap = bytes.max(HEADER_LEN + FRAME_HEADER_LEN as u64);
    }

    /// Sequence number the next append will take.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Index of the segment currently appended to.
    pub fn segment_index(&self) -> u32 {
        self.segment_index
    }

    fn incr(&self, metric: Metric) {
        if let Some(m) = &self.metrics {
            m.incr(metric);
        }
    }

    /// Appends one record, returning its sequence number. The record is
    /// **not durable** until the next successful [`Wal::flush`] — callers
    /// must not acknowledge (or apply) it before then.
    ///
    /// Fault site [`Site::WalAppend`] (key `seq:<n>`): only the first half
    /// of the frame reaches the file before the typed error returns — a
    /// genuine torn record that recovery truncates. The handle is poisoned
    /// afterwards.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, StoreError> {
        if self.poisoned {
            return Err(StoreError::Io("wal poisoned by a torn append".into()));
        }
        // Roll to a fresh segment only from a fully durable boundary, so
        // flush-fault rollback never has to span files.
        if self.segment_len >= self.segment_cap && self.synced_len == self.segment_len {
            self.roll_segment()?;
        }
        let seq = self.next_seq;
        let len = u32::try_from(payload.len()).map_err(|_| StoreError::TooLarge {
            what: "wal record".into(),
            size: payload.len(),
            max: u32::MAX as usize,
        })?;
        let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
        frame.extend_from_slice(&len.to_be_bytes());
        frame.extend_from_slice(&seq.to_be_bytes());
        frame.extend_from_slice(&frame_checksum(len, seq, payload).to_be_bytes());
        frame.extend_from_slice(payload);

        let torn = self.faults.check(Site::WalAppend, &format!("seq:{seq}")).err();
        let image: &[u8] = if torn.is_some() { &frame[..frame.len() / 2] } else { &frame[..] };
        let path = segment_path(&self.base, self.segment_index);
        self.file.write_all(image).map_err(|e| io_err("append", &path, e))?;
        self.segment_len += image.len() as u64;
        if let Some(fault) = torn {
            self.poisoned = true;
            return Err(StoreError::Fault(fault));
        }
        self.next_seq = seq + 1;
        self.incr(Metric::WalAppends);
        if let Some(m) = &self.metrics {
            m.add(Metric::WalAppendedBytes, payload.len() as u64);
        }
        Ok(seq)
    }

    /// Makes every appended record durable (fsync), advancing the
    /// acknowledged prefix.
    ///
    /// Fault site [`Site::WalFlush`] (key `segment:<idx>`): the frames
    /// appended since the last successful flush are physically rolled back
    /// — buffered writes that never became durable — and the typed error
    /// returns. The log stays consistent at its last durable prefix, and
    /// the rolled-back records' sequence numbers are reused.
    pub fn flush(&mut self) -> Result<(), StoreError> {
        if self.poisoned {
            return Err(StoreError::Io("wal poisoned by a torn append".into()));
        }
        let path = segment_path(&self.base, self.segment_index);
        if let Err(fault) =
            self.faults.check(Site::WalFlush, &format!("segment:{}", self.segment_index))
        {
            self.file.set_len(self.synced_len).map_err(|e| io_err("rollback", &path, e))?;
            self.file
                .seek(SeekFrom::Start(self.synced_len))
                .map_err(|e| io_err("seek", &path, e))?;
            self.segment_len = self.synced_len;
            self.next_seq = self.synced_seq;
            return Err(StoreError::Fault(fault));
        }
        self.file.sync_all().map_err(|e| io_err("sync", &path, e))?;
        self.synced_len = self.segment_len;
        self.synced_seq = self.next_seq;
        self.incr(Metric::WalFlushes);
        Ok(())
    }

    /// Deletes every segment and starts a fresh one whose numbering
    /// continues at the current `next_seq` — the log half of a checkpoint,
    /// called after the folded snapshot is durably in place.
    ///
    /// Fault site [`Site::WalCheckpoint`] (key `truncate`): fires before
    /// anything is deleted, modelling a crash between snapshot fold and
    /// log truncation; the stale log survives intact and recovery skips
    /// its records by sequence number.
    pub fn truncate_all(&mut self) -> Result<(), StoreError> {
        self.faults.check(Site::WalCheckpoint, "truncate").map_err(StoreError::Fault)?;
        let next = self.next_seq;
        for path in Self::segment_paths(&self.base) {
            std::fs::remove_file(&path).map_err(|e| io_err("remove", &path, e))?;
        }
        let fresh = Wal::create(&self.base, next, self.faults, self.metrics.clone())?;
        let cap = self.segment_cap;
        *self = fresh;
        self.segment_cap = cap;
        Ok(())
    }

    fn roll_segment(&mut self) -> Result<(), StoreError> {
        let index = self.segment_index + 1;
        let path = segment_path(&self.base, index);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| io_err("create", &path, e))?;
        file.write_all(&encode_header(index, self.next_seq))
            .map_err(|e| io_err("write", &path, e))?;
        file.sync_all().map_err(|e| io_err("sync", &path, e))?;
        self.file = file;
        self.segment_index = index;
        self.segment_len = HEADER_LEN;
        self.synced_len = HEADER_LEN;
        self.synced_seq = self.next_seq;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("storekit-wal-{}-{name}", std::process::id()));
        p
    }

    fn cleanup(base: &Path) {
        for p in Wal::segment_paths(base) {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn append_flush_replay_round_trip() {
        let base = tmp("roundtrip");
        cleanup(&base);
        let mut wal = Wal::create(&base, 1, FaultPlan::disabled(), None).unwrap();
        for payload in [b"alpha".as_slice(), b"beta", b"gamma"] {
            wal.append(payload).unwrap();
        }
        wal.flush().unwrap();
        drop(wal);

        let (wal, records, recovery) = Wal::open(&base, FaultPlan::disabled(), None).unwrap();
        assert_eq!(recovery, WalRecovery { segments: 1, records: 3, ..WalRecovery::default() });
        assert_eq!(
            records,
            vec![
                WalRecord { seq: 1, payload: b"alpha".to_vec() },
                WalRecord { seq: 2, payload: b"beta".to_vec() },
                WalRecord { seq: 3, payload: b"gamma".to_vec() },
            ]
        );
        assert_eq!(wal.next_seq(), 4);
        cleanup(&base);
    }

    #[test]
    fn reopened_log_appends_continue_the_sequence() {
        let base = tmp("continue");
        cleanup(&base);
        let mut wal = Wal::create(&base, 1, FaultPlan::disabled(), None).unwrap();
        wal.append(b"one").unwrap();
        wal.flush().unwrap();
        drop(wal);
        let (mut wal, _, _) = Wal::open(&base, FaultPlan::disabled(), None).unwrap();
        assert_eq!(wal.append(b"two").unwrap(), 2);
        wal.flush().unwrap();
        drop(wal);
        let (_, records, _) = Wal::open(&base, FaultPlan::disabled(), None).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1], WalRecord { seq: 2, payload: b"two".to_vec() });
        cleanup(&base);
    }

    #[test]
    fn torn_append_is_truncated_on_recovery() {
        let base = tmp("torn");
        cleanup(&base);
        let mut wal = Wal::create(&base, 1, FaultPlan::disabled(), None).unwrap();
        wal.append(b"kept").unwrap();
        wal.flush().unwrap();
        drop(wal);

        let plan = FaultPlan::single(Site::WalAppend).with_seed(0);
        let (mut wal, _, _) = Wal::open(&base, plan, None).unwrap();
        let err = wal.append(b"doomed-record-payload").unwrap_err();
        assert!(matches!(err, StoreError::Fault(f) if f.site == Site::WalAppend));
        // Poisoned: the handle models a crashed writer.
        assert!(wal.append(b"more").is_err());
        drop(wal);

        let (wal, records, recovery) = Wal::open(&base, FaultPlan::disabled(), None).unwrap();
        assert_eq!(records.len(), 1, "torn record dropped");
        assert_eq!(records[0].payload, b"kept");
        assert_eq!(recovery.torn_truncations, 1);
        assert!(recovery.truncated_bytes > 0);
        assert_eq!(wal.next_seq(), 2, "torn seq is reusable");
        cleanup(&base);
    }

    #[test]
    fn failed_flush_rolls_back_unacknowledged_records() {
        let base = tmp("flushfault");
        cleanup(&base);
        let mut wal = Wal::create(&base, 1, FaultPlan::disabled(), None).unwrap();
        wal.append(b"durable").unwrap();
        wal.flush().unwrap();
        drop(wal);

        let plan = FaultPlan::single(Site::WalFlush).with_seed(0);
        let (mut wal, _, _) = Wal::open(&base, plan, None).unwrap();
        wal.append(b"lost").unwrap();
        let err = wal.flush().unwrap_err();
        assert!(matches!(err, StoreError::Fault(f) if f.site == Site::WalFlush));
        assert_eq!(wal.next_seq(), 2, "rolled-back seq is reused");
        drop(wal);

        let (_, records, recovery) = Wal::open(&base, FaultPlan::disabled(), None).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].payload, b"durable");
        assert_eq!(recovery.torn_truncations, 0, "rollback leaves no torn tail");
        cleanup(&base);
    }

    #[test]
    fn segments_roll_and_chain() {
        let base = tmp("segments");
        cleanup(&base);
        let mut wal = Wal::create(&base, 1, FaultPlan::disabled(), None).unwrap();
        wal.set_segment_cap(64);
        for i in 0..10u32 {
            wal.append(format!("record-{i}-payload-padding").as_bytes()).unwrap();
            wal.flush().unwrap();
        }
        assert!(wal.segment_index() > 0, "cap of 64B must roll");
        drop(wal);
        let (wal, records, recovery) = Wal::open(&base, FaultPlan::disabled(), None).unwrap();
        assert_eq!(records.len(), 10);
        assert!(recovery.segments > 1);
        let seqs: Vec<u64> = records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, (1..=10).collect::<Vec<_>>());
        assert_eq!(wal.next_seq(), 11);
        cleanup(&base);
    }

    #[test]
    fn truncate_all_restarts_numbering_at_next_seq() {
        let base = tmp("truncate");
        cleanup(&base);
        let mut wal = Wal::create(&base, 1, FaultPlan::disabled(), None).unwrap();
        for _ in 0..3 {
            wal.append(b"x").unwrap();
        }
        wal.flush().unwrap();
        wal.truncate_all().unwrap();
        assert_eq!(wal.next_seq(), 4);
        assert_eq!(wal.append(b"after").unwrap(), 4);
        wal.flush().unwrap();
        drop(wal);
        let (_, records, _) = Wal::open(&base, FaultPlan::disabled(), None).unwrap();
        assert_eq!(records, vec![WalRecord { seq: 4, payload: b"after".to_vec() }]);
        cleanup(&base);
    }

    #[test]
    fn checkpoint_fault_preserves_the_log() {
        let base = tmp("ckptfault");
        cleanup(&base);
        let plan = FaultPlan::single(Site::WalCheckpoint).with_seed(0);
        let mut wal = Wal::create(&base, 1, plan, None).unwrap();
        wal.append(b"survives").unwrap();
        wal.flush().unwrap();
        let err = wal.truncate_all().unwrap_err();
        assert!(matches!(err, StoreError::Fault(f) if f.site == Site::WalCheckpoint));
        drop(wal);
        let (_, records, _) = Wal::open(&base, FaultPlan::disabled(), None).unwrap();
        assert_eq!(records.len(), 1, "faulted truncation must not lose the log");
        cleanup(&base);
    }

    #[test]
    fn same_payload_stream_writes_byte_identical_segments() {
        let a = tmp("bytes-a");
        let b = tmp("bytes-b");
        cleanup(&a);
        cleanup(&b);
        for base in [&a, &b] {
            let mut wal = Wal::create(base, 1, FaultPlan::disabled(), None).unwrap();
            wal.set_segment_cap(96);
            for i in 0..8u32 {
                wal.append(format!("delta-{i}").as_bytes()).unwrap();
            }
            wal.flush().unwrap();
        }
        let pa = Wal::segment_paths(&a);
        let pb = Wal::segment_paths(&b);
        assert_eq!(pa.len(), pb.len());
        for (x, y) in pa.iter().zip(&pb) {
            assert_eq!(std::fs::read(x).unwrap(), std::fs::read(y).unwrap());
        }
        cleanup(&a);
        cleanup(&b);
    }

    #[test]
    fn mid_log_damage_is_typed_corruption_not_truncation() {
        let base = tmp("midlog");
        cleanup(&base);
        let mut wal = Wal::create(&base, 1, FaultPlan::disabled(), None).unwrap();
        wal.append(b"first-record-payload").unwrap();
        wal.append(b"second-record-payload").unwrap();
        wal.flush().unwrap();
        drop(wal);
        // Flip a byte inside the FIRST record's payload: the checksum
        // fails, everything after is unreadable, and — because the damage
        // is not at the acknowledged tail — recovery still truncates to
        // the last verifiable prefix (zero records) rather than erroring:
        // a torn tail and mid-log rot are indistinguishable to a scanner.
        let path = segment_path(&base, 0);
        let mut bytes = std::fs::read(&path).unwrap();
        let off = HEADER_LEN as usize + FRAME_HEADER_LEN + 2;
        bytes[off] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (_, records, recovery) = Wal::open(&base, FaultPlan::disabled(), None).unwrap();
        assert_eq!(records.len(), 0);
        assert_eq!(recovery.torn_truncations, 1);
        cleanup(&base);
    }

    #[test]
    fn bad_header_is_rejected() {
        let base = tmp("badheader");
        cleanup(&base);
        let mut wal = Wal::create(&base, 1, FaultPlan::disabled(), None).unwrap();
        wal.append(b"x").unwrap();
        wal.flush().unwrap();
        drop(wal);
        let path = segment_path(&base, 0);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] ^= 0xFF; // magic
        std::fs::write(&path, &bytes).unwrap();
        let err = Wal::open(&base, FaultPlan::disabled(), None).unwrap_err();
        assert!(matches!(err, StoreError::WalCorrupt { segment: 0, .. }), "{err}");
        // Unsupported version is typed, too.
        bytes[0] ^= 0xFF;
        bytes[11] = 9;
        std::fs::write(&path, &bytes).unwrap();
        let err = Wal::open(&base, FaultPlan::disabled(), None).unwrap_err();
        match err {
            StoreError::WalCorrupt { segment: 0, reason } => {
                assert!(reason.contains("version"), "{reason}")
            }
            other => panic!("expected WalCorrupt, got {other}"),
        }
        cleanup(&base);
    }
}
