//! The fixed-size page: 4 KiB, checksummed header, slotted records.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     4  magic "USK1"
//!      4     4  page id
//!      8     1  kind (meta / blob / leaf / internal / free)
//!      9     1  flags (reserved, zero)
//!     10     2  slot count
//!     12     2  free_start (first free byte after the slot directory)
//!     14     2  free_end   (first used byte of the cell area)
//!     16     4  aux (kind-specific: blob used-bytes, leaf next-leaf,
//!                    internal leftmost child)
//!     20     4  reserved (zero)
//!     24     8  checksum (FNV-1a over every other byte of the page)
//!     32  4064  payload: slot directory grows forward, cells grow
//!               backward from the end of the page
//! ```
//!
//! The checksum covers bytes `[0, 24)` and `[32, 4096)`; a torn write —
//! only a prefix of the page reaching disk — is therefore detected on the
//! next read as a checksum mismatch and surfaces as a typed
//! [`StoreError::Corrupt`], never as a panic.
//!
//! Slotted records: the slot directory holds one `u16` cell offset per
//! record in logical order; cells are re-packed canonically (slot order,
//! back to front) every time a page is rebuilt, so a page image is a pure
//! function of its logical content — the page-level half of the snapshot
//! byte-identity contract.

use crate::StoreError;

/// Page size in bytes.
pub const PAGE_SIZE: usize = 4096;
/// Header bytes preceding the payload.
pub const HEADER_SIZE: usize = 32;
/// Payload capacity of one page.
pub const PAYLOAD_SIZE: usize = PAGE_SIZE - HEADER_SIZE;
/// The file magic, "USK1".
pub const MAGIC: [u8; 4] = *b"USK1";
/// Sentinel for "no page" in link fields.
pub const NO_PAGE: u32 = u32::MAX;

const OFF_MAGIC: usize = 0;
const OFF_PAGE_ID: usize = 4;
const OFF_KIND: usize = 8;
const OFF_SLOT_COUNT: usize = 10;
const OFF_FREE_START: usize = 12;
const OFF_FREE_END: usize = 14;
const OFF_AUX: usize = 16;
const OFF_CHECKSUM: usize = 24;

/// What a page stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageKind {
    /// Page 0: snapshot directory.
    Meta,
    /// A run of raw section bytes.
    Blob,
    /// B-tree leaf: slotted `[klen][vlen][key][value]` cells.
    BtreeLeaf,
    /// B-tree internal node: slotted `[klen][child][key]` cells.
    BtreeInternal,
    /// Unallocated / recycled.
    Free,
}

impl PageKind {
    /// Stable on-disk tag.
    pub fn tag(self) -> u8 {
        match self {
            PageKind::Meta => 0,
            PageKind::Blob => 1,
            PageKind::BtreeLeaf => 2,
            PageKind::BtreeInternal => 3,
            PageKind::Free => 4,
        }
    }

    /// Parses an on-disk tag.
    pub fn from_tag(tag: u8) -> Option<PageKind> {
        match tag {
            0 => Some(PageKind::Meta),
            1 => Some(PageKind::Blob),
            2 => Some(PageKind::BtreeLeaf),
            3 => Some(PageKind::BtreeInternal),
            4 => Some(PageKind::Free),
            _ => None,
        }
    }
}

/// One 4 KiB page image.
#[derive(Clone)]
pub struct Page {
    bytes: [u8; PAGE_SIZE],
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("id", &self.id())
            .field("kind_tag", &self.bytes[OFF_KIND])
            .field("slots", &self.slot_count())
            .finish()
    }
}

impl Page {
    /// A zeroed page initialized with the given id and kind (valid
    /// checksum, empty payload).
    pub fn new(id: u32, kind: PageKind) -> Page {
        let mut p = Page { bytes: [0; PAGE_SIZE] };
        p.bytes[OFF_MAGIC..OFF_MAGIC + 4].copy_from_slice(&MAGIC);
        p.bytes[OFF_PAGE_ID..OFF_PAGE_ID + 4].copy_from_slice(&id.to_le_bytes());
        p.bytes[OFF_KIND] = kind.tag();
        p.set_slot_count(0);
        p.set_free_start(HEADER_SIZE as u16);
        p.set_free_end(PAGE_SIZE as u16);
        p.set_aux(0);
        p.seal();
        p
    }

    /// Wraps raw bytes read from a file, verifying magic, id, kind tag,
    /// and checksum. A short or corrupted (torn) image is a typed error.
    pub fn from_bytes(expected_id: u32, raw: &[u8]) -> Result<Page, StoreError> {
        let bytes: [u8; PAGE_SIZE] = raw.try_into().map_err(|_| StoreError::Corrupt {
            page_id: expected_id,
            reason: format!("short page image: {} bytes", raw.len()),
        })?;
        let p = Page { bytes };
        if p.bytes[OFF_MAGIC..OFF_MAGIC + 4] != MAGIC {
            return Err(StoreError::Corrupt { page_id: expected_id, reason: "bad magic".into() });
        }
        if p.id() != expected_id {
            return Err(StoreError::Corrupt {
                page_id: expected_id,
                reason: format!("page id mismatch: header says {}", p.id()),
            });
        }
        if PageKind::from_tag(p.bytes[OFF_KIND]).is_none() {
            return Err(StoreError::Corrupt {
                page_id: expected_id,
                reason: format!("unknown page kind {}", p.bytes[OFF_KIND]),
            });
        }
        let stored = u64::from_le_bytes(
            p.bytes[OFF_CHECKSUM..OFF_CHECKSUM + 8].try_into().unwrap_or([0; 8]),
        );
        let actual = p.compute_checksum();
        if stored != actual {
            return Err(StoreError::Corrupt {
                page_id: expected_id,
                reason: format!("checksum mismatch: stored {stored:#018x}, actual {actual:#018x}"),
            });
        }
        Ok(p)
    }

    /// The raw page image (checksum must be [`sealed`](Self::seal) first).
    pub fn as_bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.bytes
    }

    /// Page id from the header.
    pub fn id(&self) -> u32 {
        u32::from_le_bytes(self.bytes[OFF_PAGE_ID..OFF_PAGE_ID + 4].try_into().unwrap_or([0; 4]))
    }

    /// Page kind from the header (validated at read time).
    pub fn kind(&self) -> PageKind {
        PageKind::from_tag(self.bytes[OFF_KIND]).unwrap_or(PageKind::Free)
    }

    /// Rewrites the kind tag.
    pub fn set_kind(&mut self, kind: PageKind) {
        self.bytes[OFF_KIND] = kind.tag();
    }

    /// Number of slots in the directory.
    pub fn slot_count(&self) -> u16 {
        u16::from_le_bytes(
            self.bytes[OFF_SLOT_COUNT..OFF_SLOT_COUNT + 2].try_into().unwrap_or([0; 2]),
        )
    }

    fn set_slot_count(&mut self, n: u16) {
        self.bytes[OFF_SLOT_COUNT..OFF_SLOT_COUNT + 2].copy_from_slice(&n.to_le_bytes());
    }

    /// First free byte after the slot directory.
    pub fn free_start(&self) -> u16 {
        u16::from_le_bytes(
            self.bytes[OFF_FREE_START..OFF_FREE_START + 2].try_into().unwrap_or([0; 2]),
        )
    }

    fn set_free_start(&mut self, v: u16) {
        self.bytes[OFF_FREE_START..OFF_FREE_START + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// First used byte of the cell area (cells pack from here to the end).
    pub fn free_end(&self) -> u16 {
        u16::from_le_bytes(self.bytes[OFF_FREE_END..OFF_FREE_END + 2].try_into().unwrap_or([0; 2]))
    }

    fn set_free_end(&mut self, v: u16) {
        self.bytes[OFF_FREE_END..OFF_FREE_END + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Kind-specific auxiliary word.
    pub fn aux(&self) -> u32 {
        u32::from_le_bytes(self.bytes[OFF_AUX..OFF_AUX + 4].try_into().unwrap_or([0; 4]))
    }

    /// Sets the auxiliary word.
    pub fn set_aux(&mut self, v: u32) {
        self.bytes[OFF_AUX..OFF_AUX + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Stored checksum.
    pub fn checksum(&self) -> u64 {
        u64::from_le_bytes(self.bytes[OFF_CHECKSUM..OFF_CHECKSUM + 8].try_into().unwrap_or([0; 8]))
    }

    /// FNV-1a over every byte except the checksum field itself.
    fn compute_checksum(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(&self.bytes[..OFF_CHECKSUM]);
        eat(&self.bytes[HEADER_SIZE..]);
        h
    }

    /// Recomputes and stores the checksum. Must be the last mutation
    /// before the page is written out.
    pub fn seal(&mut self) {
        let sum = self.compute_checksum();
        self.bytes[OFF_CHECKSUM..OFF_CHECKSUM + 8].copy_from_slice(&sum.to_le_bytes());
    }

    /// True when the stored checksum matches the content.
    pub fn verify(&self) -> bool {
        self.checksum() == self.compute_checksum()
    }

    // ------------------------------------------------------ raw payload

    /// Writes raw payload bytes starting at payload offset 0 (blob/meta
    /// pages); records the used length in `aux`.
    pub fn set_payload(&mut self, data: &[u8]) -> Result<(), StoreError> {
        if data.len() > PAYLOAD_SIZE {
            return Err(StoreError::TooLarge {
                what: "page payload".into(),
                size: data.len(),
                max: PAYLOAD_SIZE,
            });
        }
        self.bytes[HEADER_SIZE..HEADER_SIZE + data.len()].copy_from_slice(data);
        for b in &mut self.bytes[HEADER_SIZE + data.len()..] {
            *b = 0;
        }
        self.set_aux(data.len() as u32);
        Ok(())
    }

    /// Reads the `aux`-length payload of a blob/meta page.
    pub fn payload(&self) -> Result<&[u8], StoreError> {
        let len = self.aux() as usize;
        self.bytes.get(HEADER_SIZE..HEADER_SIZE + len).ok_or_else(|| StoreError::Corrupt {
            page_id: self.id(),
            reason: format!("payload length {len} exceeds page"),
        })
    }

    // --------------------------------------------------- slotted records

    /// Total payload bytes a canonical rebuild of these records needs
    /// (slot directory + cells).
    pub fn records_size(records: &[Vec<u8>]) -> usize {
        2 * records.len() + records.iter().map(Vec::len).sum::<usize>()
    }

    /// Replaces the slotted content with `records`, re-packing cells
    /// canonically: slots in logical order, cells back-to-front in slot
    /// order, freed space zeroed. Errors if the records do not fit.
    pub fn set_records(&mut self, records: &[Vec<u8>]) -> Result<(), StoreError> {
        if Self::records_size(records) > PAYLOAD_SIZE || records.len() > u16::MAX as usize {
            return Err(StoreError::TooLarge {
                what: "slotted records".into(),
                size: Self::records_size(records),
                max: PAYLOAD_SIZE,
            });
        }
        for b in &mut self.bytes[HEADER_SIZE..] {
            *b = 0;
        }
        let mut cell_end = PAGE_SIZE;
        for (i, rec) in records.iter().enumerate() {
            let cell_start = cell_end - rec.len();
            self.bytes[cell_start..cell_end].copy_from_slice(rec);
            let slot_off = HEADER_SIZE + 2 * i;
            self.bytes[slot_off..slot_off + 2].copy_from_slice(&(cell_start as u16).to_le_bytes());
            cell_end = cell_start;
        }
        self.set_slot_count(records.len() as u16);
        self.set_free_start((HEADER_SIZE + 2 * records.len()) as u16);
        self.set_free_end(cell_end as u16);
        Ok(())
    }

    /// Decodes record `slot` (cells are delimited by the previous slot's
    /// cell start — canonical packing keeps them contiguous).
    pub fn record(&self, slot: u16) -> Result<&[u8], StoreError> {
        let n = self.slot_count();
        if slot >= n {
            return Err(StoreError::Corrupt {
                page_id: self.id(),
                reason: format!("slot {slot} out of range ({n} slots)"),
            });
        }
        let start = self.slot_offset(slot)? as usize;
        let end = if slot == 0 { PAGE_SIZE } else { self.slot_offset(slot - 1)? as usize };
        self.bytes.get(start..end).ok_or_else(|| StoreError::Corrupt {
            page_id: self.id(),
            reason: format!("slot {slot} offsets out of bounds ({start}..{end})"),
        })
    }

    /// All records, slot order.
    pub fn records(&self) -> Result<Vec<Vec<u8>>, StoreError> {
        (0..self.slot_count()).map(|s| self.record(s).map(<[u8]>::to_vec)).collect()
    }

    fn slot_offset(&self, slot: u16) -> Result<u16, StoreError> {
        let off = HEADER_SIZE + 2 * slot as usize;
        let raw = self.bytes.get(off..off + 2).ok_or_else(|| StoreError::Corrupt {
            page_id: self.id(),
            reason: format!("slot directory truncated at {slot}"),
        })?;
        Ok(u16::from_le_bytes(raw.try_into().unwrap_or([0; 2])))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_page_is_sealed_and_empty() {
        let p = Page::new(7, PageKind::BtreeLeaf);
        assert!(p.verify());
        assert_eq!(p.id(), 7);
        assert_eq!(p.kind(), PageKind::BtreeLeaf);
        assert_eq!(p.slot_count(), 0);
        assert_eq!(p.free_start() as usize, HEADER_SIZE);
        assert_eq!(p.free_end() as usize, PAGE_SIZE);
    }

    #[test]
    fn slotted_records_round_trip_canonically() {
        let mut p = Page::new(1, PageKind::BtreeLeaf);
        let recs = vec![b"alpha".to_vec(), b"b".to_vec(), b"charlie".to_vec()];
        p.set_records(&recs).unwrap();
        p.seal();
        assert!(p.verify());
        assert_eq!(p.records().unwrap(), recs);
        assert_eq!(p.record(0).unwrap(), b"alpha");
        assert_eq!(p.record(2).unwrap(), b"charlie");
        assert!(p.record(3).is_err());

        // Canonical packing: the same records produce the same bytes even
        // after intermediate states differed.
        let mut q = Page::new(1, PageKind::BtreeLeaf);
        q.set_records(&[b"other".to_vec(), b"stuff".to_vec(), b"entirely".to_vec()]).unwrap();
        q.set_records(&recs).unwrap();
        q.seal();
        assert_eq!(p.as_bytes()[..], q.as_bytes()[..], "page image is canonical");
    }

    #[test]
    fn payload_round_trips() {
        let mut p = Page::new(3, PageKind::Blob);
        p.set_payload(b"section bytes").unwrap();
        p.seal();
        assert_eq!(p.payload().unwrap(), b"section bytes");
        assert!(p.set_payload(&vec![0u8; PAYLOAD_SIZE + 1]).is_err());
        assert!(p.set_payload(&vec![9u8; PAYLOAD_SIZE]).is_ok(), "exact fit is fine");
    }

    #[test]
    fn torn_page_is_detected() {
        let mut p = Page::new(5, PageKind::Blob);
        // The payload must reach past the midpoint, else tearing the
        // second half changes nothing.
        p.set_payload(&vec![0xAB; 3000]).unwrap();
        p.seal();
        // Simulate a torn write: only the first half of the image.
        let mut torn = [0u8; PAGE_SIZE];
        torn[..PAGE_SIZE / 2].copy_from_slice(&p.as_bytes()[..PAGE_SIZE / 2]);
        let err = Page::from_bytes(5, &torn).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { page_id: 5, .. }), "{err}");
    }

    #[test]
    fn wrong_id_magic_and_kind_detected() {
        let mut p = Page::new(5, PageKind::Blob);
        p.seal();
        assert!(Page::from_bytes(6, p.as_bytes()).is_err(), "id mismatch");
        let mut bad_magic = *p.as_bytes();
        bad_magic[0] = b'X';
        assert!(Page::from_bytes(5, &bad_magic).is_err());
        assert!(Page::from_bytes(5, &[0u8; 10]).is_err(), "short image");
    }

    #[test]
    fn records_too_large_rejected() {
        let mut p = Page::new(0, PageKind::BtreeLeaf);
        let big = vec![vec![0u8; PAYLOAD_SIZE]];
        assert!(p.set_records(&big).is_err());
    }
}
