//! Model-diff property suite: the persistent B-tree against a
//! `std::collections::BTreeMap` oracle (detkit harness, with shrinking).
//!
//! Random operation scripts (insert / delete / lookup / range scan) run
//! against both the page-backed tree and the in-memory oracle; any
//! divergence shrinks to a minimal failing script. Workload shapes are
//! chosen to force every structural path: leaf splits, internal splits,
//! borrow, merge, and root collapse (fat values make pages overflow
//! after a handful of entries).

use std::collections::BTreeMap;

use detkit::prop::{usizes, vec_of, zip3, Gen};
use detkit::{prop_assert, prop_assert_eq, prop_check};
use faultkit::FaultPlan;
use storekit::{BTree, BufferPool, Pager};

/// One scripted operation over a small key universe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Insert(usize, usize),
    Delete(usize),
    Lookup(usize),
    Scan(usize, usize),
}

/// Generator: scripts of up to `len` ops over `keys` distinct keys, with
/// values fat enough (`val_stride` bytes times a small factor) to force
/// splits quickly.
fn scripts(keys: usize, len: usize) -> Gen<Vec<Op>> {
    let op =
        zip3(&usizes(0, 9), &usizes(0, keys - 1), &usizes(0, keys - 1)).map(
            |&(tag, a, b)| match tag {
                0 | 1 | 2 | 3 | 4 => Op::Insert(a, b),
                5 | 6 => Op::Delete(a),
                7 | 8 => Op::Lookup(a),
                _ => Op::Scan(a.min(b), a.max(b)),
            },
        );
    vec_of(&op, 1, len)
}

fn key_bytes(k: usize) -> Vec<u8> {
    format!("key-{k:06}").into_bytes()
}

/// Values are wide (size varies with the value tag) so a page holds only
/// a few cells — scripts of ~100 ops exercise multi-level trees.
fn val_bytes(v: usize) -> Vec<u8> {
    let width = 200 + (v % 7) * 120;
    vec![(v % 251) as u8; width]
}

fn fresh_pool(tag: &str) -> (BufferPool, std::path::PathBuf) {
    let mut path = std::env::temp_dir();
    path.push(format!(
        "storekit-props-{}-{tag}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let pager = Pager::create(&path, FaultPlan::disabled()).expect("create page file");
    (BufferPool::new(pager, 8, None), path)
}

/// Runs a script against tree + oracle, checking every op's result and
/// the full ordered iteration at the end.
fn run_model_diff(script: &[Op], tag: &str) -> Result<(), String> {
    let (mut pool, path) = fresh_pool(tag);
    let mut tree = BTree::create(&mut pool).map_err(|e| e.to_string())?;
    let mut oracle: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    for (step, op) in script.iter().enumerate() {
        match *op {
            Op::Insert(k, v) => {
                let key = key_bytes(k);
                let val = val_bytes(v);
                let got = tree.insert(&mut pool, &key, &val).map_err(|e| e.to_string())?;
                let want = oracle.insert(key, val);
                prop_assert_eq!(got, want, "insert at step {step}");
            }
            Op::Delete(k) => {
                let key = key_bytes(k);
                let got = tree.delete(&mut pool, &key).map_err(|e| e.to_string())?;
                let want = oracle.remove(&key);
                prop_assert_eq!(got, want, "delete at step {step}");
            }
            Op::Lookup(k) => {
                let key = key_bytes(k);
                let got = tree.get(&mut pool, &key).map_err(|e| e.to_string())?;
                let want = oracle.get(&key).cloned();
                prop_assert_eq!(got, want, "lookup at step {step}");
            }
            Op::Scan(lo, hi) => {
                let lo_k = key_bytes(lo);
                let hi_k = key_bytes(hi);
                let got =
                    tree.scan(&mut pool, Some(&lo_k), Some(&hi_k)).map_err(|e| e.to_string())?;
                let want: Vec<(Vec<u8>, Vec<u8>)> =
                    oracle.range(lo_k..hi_k).map(|(k, v)| (k.clone(), v.clone())).collect();
                prop_assert_eq!(got, want, "range scan at step {step}");
            }
        }
    }
    // Final full ordered iteration must equal the oracle exactly.
    let all = tree.scan(&mut pool, None, None).map_err(|e| e.to_string())?;
    let want: Vec<(Vec<u8>, Vec<u8>)> =
        oracle.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
    prop_assert_eq!(all.len(), want.len(), "final cardinality");
    prop_assert_eq!(all, want, "final ordered iteration");
    let _ = std::fs::remove_file(&path);
    Ok(())
}

// Mixed scripts over a small key universe: heavy overwrite and
// delete-reinsert churn, every op's result diffed against the oracle.
prop_check!(btree_matches_oracle_small_universe, scripts(12, 80), |script| {
    run_model_diff(script, "small")
});

// A wider key universe drives deeper trees (multi-level internal splits)
// before deletes walk them back down (borrow / merge / root collapse).
prop_check!(btree_matches_oracle_wide_universe, scripts(120, 120), |script| {
    run_model_diff(script, "wide")
});

// Insert-then-delete-everything: the tree must drain to empty through
// merges and collapse its root, whatever the interleaving order.
prop_check!(btree_drains_to_empty, vec_of(&usizes(0, 60), 1, 80), |ks| {
    let (mut pool, path) = fresh_pool("drain");
    let mut tree = BTree::create(&mut pool).map_err(|e| e.to_string())?;
    let mut oracle: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    for &k in ks {
        let key = key_bytes(k);
        let val = val_bytes(k);
        tree.insert(&mut pool, &key, &val).map_err(|e| e.to_string())?;
        oracle.insert(key, val);
    }
    prop_assert_eq!(tree.len(&mut pool).map_err(|e| e.to_string())?, oracle.len());
    // Delete in generated (arbitrary) order, diffing each result.
    for &k in ks {
        let key = key_bytes(k);
        let got = tree.delete(&mut pool, &key).map_err(|e| e.to_string())?;
        prop_assert_eq!(got, oracle.remove(&key));
    }
    prop_assert!(tree.is_empty(&mut pool).map_err(|e| e.to_string())?, "tree drained");
    let _ = std::fs::remove_file(&path);
    Ok(())
});

// Determinism: replaying the same script into two fresh files produces
// byte-identical page files — the model-diff side of the snapshot
// byte-identity contract.
prop_check!(btree_replay_is_byte_identical, scripts(40, 60), |script| {
    let run = |tag: &str| -> Result<Vec<u8>, String> {
        let (mut pool, path) = fresh_pool(tag);
        let mut tree = BTree::create(&mut pool).map_err(|e| e.to_string())?;
        for op in script {
            match *op {
                Op::Insert(k, v) => {
                    tree.insert(&mut pool, &key_bytes(k), &val_bytes(v))
                        .map_err(|e| e.to_string())?;
                }
                Op::Delete(k) => {
                    tree.delete(&mut pool, &key_bytes(k)).map_err(|e| e.to_string())?;
                }
                Op::Lookup(k) => {
                    tree.get(&mut pool, &key_bytes(k)).map_err(|e| e.to_string())?;
                }
                Op::Scan(lo, hi) => {
                    tree.scan(&mut pool, Some(&key_bytes(lo)), Some(&key_bytes(hi)))
                        .map_err(|e| e.to_string())?;
                }
            }
        }
        pool.flush_all().map_err(|e| e.to_string())?;
        let bytes = std::fs::read(&path).map_err(|e| e.to_string())?;
        let _ = std::fs::remove_file(&path);
        Ok(bytes)
    };
    let a = run("replay-a")?;
    let b = run("replay-b")?;
    prop_assert_eq!(a.len(), b.len(), "file sizes diverge");
    prop_assert!(a == b, "page files diverge byte-wise");
    Ok(())
});
