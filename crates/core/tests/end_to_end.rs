//! End-to-end integration: UnifiedEngine + baselines over the synthetic
//! workloads, scored against gold answers.

use std::collections::BTreeMap;

use unisem_core::{EngineBuilder, NaiveRagPipeline, QaPipeline, TextToSqlPipeline, UnifiedEngine};
use unisem_workloads::{
    answer_matches, EcommerceConfig, EcommerceWorkload, HealthcareConfig, HealthcareWorkload,
    QaCategory, QaItem,
};

fn build_ecommerce_engine(w: &EcommerceWorkload) -> UnifiedEngine {
    let mut b = EngineBuilder::new(w.lexicon.clone());
    for name in w.db.table_names() {
        b.add_table(name, w.db.table(name).unwrap().clone()).unwrap();
    }
    for coll in w.semi.collections() {
        for doc in w.semi.docs(coll) {
            b.add_json(coll, doc.clone());
        }
    }
    for d in &w.documents {
        b.add_document(d.title.clone(), d.text.clone(), d.source.clone());
    }
    b.build().0
}

fn build_healthcare_engine(w: &HealthcareWorkload) -> UnifiedEngine {
    let mut b = EngineBuilder::new(w.lexicon.clone());
    for name in w.db.table_names() {
        b.add_table(name, w.db.table(name).unwrap().clone()).unwrap();
    }
    for d in &w.documents {
        b.add_document(d.title.clone(), d.text.clone(), d.source.clone());
    }
    b.build().0
}

fn accuracy_by_category(
    pipeline: &dyn QaPipeline,
    qa: &[QaItem],
) -> BTreeMap<QaCategory, (usize, usize)> {
    let mut out: BTreeMap<QaCategory, (usize, usize)> = BTreeMap::new();
    for item in qa {
        let ans = pipeline.answer(&item.question);
        let correct = answer_matches(&item.gold, &ans.text);
        let entry = out.entry(item.category).or_insert((0, 0));
        entry.1 += 1;
        if correct {
            entry.0 += 1;
        }
    }
    out
}

fn overall(acc: &BTreeMap<QaCategory, (usize, usize)>) -> f64 {
    let (c, t) = acc.values().fold((0, 0), |(c, t), (ci, ti)| (c + ci, t + ti));
    c as f64 / t.max(1) as f64
}

#[test]
fn ecommerce_engine_beats_baselines() {
    let w = EcommerceWorkload::generate(EcommerceConfig {
        products: 8,
        quarters: 3,
        reviews_per_product: 2,
        qa_per_category: 3,
        seed: 1234,
        name_offset: 0,
    });
    let engine = build_ecommerce_engine(&w);
    let rag = NaiveRagPipeline::new(engine.slm().clone(), std::sync::Arc::new(w.docstore()), 5);
    let sql = TextToSqlPipeline::new(engine.slm().clone(), w.db.clone());

    let acc_engine = accuracy_by_category(&engine, &w.qa);
    let acc_rag = accuracy_by_category(&rag, &w.qa);
    let acc_sql = accuracy_by_category(&sql, &w.qa);

    let (oe, or_, os) = (overall(&acc_engine), overall(&acc_rag), overall(&acc_sql));
    eprintln!("engine={oe:.2} rag={or_:.2} sql={os:.2}");
    eprintln!("engine detail: {acc_engine:?}");
    eprintln!("rag detail: {acc_rag:?}");
    eprintln!("sql detail: {acc_sql:?}");

    assert!(oe >= 0.7, "unified engine accuracy too low: {oe:.2} {acc_engine:?}");
    assert!(oe > or_, "engine ({oe:.2}) must beat naive RAG ({or_:.2})");
    assert!(oe > os, "engine ({oe:.2}) must beat text-to-SQL ({os:.2})");

    // The paper's headline: aggregates need tables, lookups need text.
    let agg = acc_engine[&QaCategory::Aggregate];
    assert!(agg.0 == agg.1, "engine should ace aggregates: {agg:?}");
}

#[test]
fn healthcare_engine_handles_cross_modal() {
    let w = HealthcareWorkload::generate(HealthcareConfig {
        drugs: 6,
        patients: 9,
        trials_per_drug: 3,
        qa_per_category: 3,
        seed: 77,
    });
    let engine = build_healthcare_engine(&w);
    let acc = accuracy_by_category(&engine, &w.qa);
    let o = overall(&acc);
    eprintln!("healthcare engine: {acc:?} overall={o:.2}");
    assert!(o >= 0.65, "healthcare accuracy too low: {o:.2} {acc:?}");

    // Cross-modal (forum side effects) must work — the class of question
    // the paper says traditional systems miss entirely.
    let cm = acc[&QaCategory::CrossModal];
    assert!(cm.0 >= cm.1 - 1, "cross-modal too weak: {cm:?}");
}

#[test]
fn unanswerable_questions_mostly_abstain() {
    let w = EcommerceWorkload::generate(EcommerceConfig {
        products: 6,
        quarters: 3,
        reviews_per_product: 2,
        qa_per_category: 4,
        seed: 9,
        name_offset: 0,
    });
    let engine = build_ecommerce_engine(&w);
    let unanswerable: Vec<&QaItem> =
        w.qa.iter().filter(|i| i.category == QaCategory::Unanswerable).collect();
    let correct = unanswerable
        .iter()
        .filter(|i| answer_matches(&i.gold, &engine.answer(&i.question).text))
        .count();
    assert!(
        correct * 2 >= unanswerable.len(),
        "abstained on {correct}/{} unanswerable",
        unanswerable.len()
    );
}
