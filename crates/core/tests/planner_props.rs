//! Property-based tests for the cost-based planner (detkit harness,
//! DESIGN.md §11): join reordering preserves semantics and the operator
//! set, the chosen order is invariant to edge-discovery permutation, and
//! cost estimates are monotone in table cardinality.

use detkit::prop::{i32s, i8s, usizes, vec_of, zip, zip3, Gen};
use detkit::{prop_assert, prop_assert_eq, prop_check};
use unisem_core::planner::join_optimizer::{optimize, reorder_plan, JoinEdge};
use unisem_core::planner::{ColumnStats, CostModel, StatsCatalog, TableStats};
use unisem_docstore::DocStore;
use unisem_hetgraph::HetGraph;
use unisem_relstore::plan::LogicalPlan;
use unisem_relstore::{DataType, Database, Expr, Schema, Table, Value};

/// Generator: rows for a two-int-column table, keys in a small range so
/// joins actually match.
fn rows2(key_hi: i8, max_rows: usize) -> Gen<Vec<(i8, i32)>> {
    vec_of(&zip(&i8s(0, key_hi), &i32s(-50, 49)), 0, max_rows)
}

fn int_table(cols: [&str; 2], rows: &[(i8, i32)]) -> Table {
    let schema = Schema::of(&[(cols[0], DataType::Int), (cols[1], DataType::Int)]);
    Table::from_rows(
        schema,
        rows.iter()
            .map(|(k, v)| vec![Value::Int(i64::from(*k)), Value::Int(i64::from(*v))])
            .collect(),
    )
    .expect("typed rows")
}

/// Every row of `t` as a sorted `(column name, rendered value)` record,
/// the whole table sorted — a column-order- and row-order-insensitive
/// fingerprint for comparing join outputs across plan rewrites.
fn row_multiset(t: &Table) -> Vec<Vec<(String, String)>> {
    let names: Vec<String> = t.schema().columns().iter().map(|c| c.name.clone()).collect();
    let mut out: Vec<Vec<(String, String)>> = (0..t.num_rows())
        .map(|r| {
            let mut rec: Vec<(String, String)> = names
                .iter()
                .enumerate()
                .map(|(c, n)| (n.clone(), format!("{:?}", t.cell(r, c))))
                .collect();
            rec.sort();
            rec
        })
        .collect();
    out.sort();
    out
}

fn catalog_of(db: &Database) -> StatsCatalog {
    StatsCatalog::collect(db, &DocStore::default(), &HetGraph::new())
}

// Join reordering preserves semantics: the rewritten plan produces the
// same row multiset as the original, and never adds or drops a relation
// (the operator-set invariant at the join level).
prop_check!(
    reorder_preserves_rows_and_operator_set,
    zip3(&rows2(4, 10), &rows2(4, 10), &rows2(4, 10)),
    |input| {
        let (ra, rb, rc) = input;
        let mut db = Database::new();
        db.create_table("a", int_table(["ka", "va"], ra)).expect("fresh");
        db.create_table("b", int_table(["kb", "jb"], rb)).expect("fresh");
        db.create_table("c", int_table(["jc", "vc"], rc)).expect("fresh");
        let plan = LogicalPlan::scan("a")
            .join(LogicalPlan::scan("b"), vec![("ka".into(), "kb".into())])
            .join(LogicalPlan::scan("c"), vec![("jb".into(), "jc".into())]);
        let cat = catalog_of(&db);
        let model = CostModel::new(&cat);
        let (rewritten, order) = reorder_plan(&plan, &model).expect("pure join tree");
        let mut rels = order.tree.relations();
        rels.sort();
        prop_assert_eq!(rels, vec!["a".to_string(), "b".into(), "c".into()]);
        let original = db.run_plan(&plan).expect("original executes");
        let reordered = db.run_plan(&rewritten).expect("rewritten executes");
        prop_assert_eq!(row_multiset(&original), row_multiset(&reordered));
        Ok(())
    }
);

// The chosen join order is invariant to the permutation in which edges
// were discovered: reversing or rotating the edge list changes nothing.
prop_check!(
    join_order_invariant_to_edge_permutation,
    zip(&vec_of(&usizes(1, 500), 3, 6), &usizes(0, 5)),
    |input| {
        let (sizes, rot) = input;
        let rels: Vec<String> = (0..sizes.len()).map(|i| format!("t{i}")).collect();
        let mut cat = StatsCatalog::default();
        for (name, rows) in rels.iter().zip(sizes.iter()) {
            cat.tables.insert(
                name.clone(),
                TableStats {
                    rows: *rows,
                    columns: vec![ColumnStats {
                        name: "k".into(),
                        distinct: (*rows / 2).max(1),
                        nulls: 0,
                    }],
                },
            );
        }
        let model = CostModel::new(&cat);
        let edges: Vec<JoinEdge> = rels
            .windows(2)
            .map(|w| JoinEdge::new(w[0].clone(), w[1].clone(), vec![("k".into(), "k".into())]))
            .collect();
        let baseline = optimize(&rels, &edges, &model).expect("plan");
        let mut reversed = edges.clone();
        reversed.reverse();
        prop_assert_eq!(&baseline, &optimize(&rels, &reversed, &model).expect("plan"));
        let mut rotated = edges.clone();
        rotated.rotate_left(rot % edges.len().max(1));
        prop_assert_eq!(&baseline, &optimize(&rels, &rotated, &model).expect("plan"));
        let mut tree_rels = baseline.tree.relations();
        tree_rels.sort();
        prop_assert_eq!(tree_rels, rels);
        Ok(())
    }
);

// Cost estimates are monotone in table cardinality: growing a table never
// shrinks the estimated rows or total cost of a scan-filter plan over it.
prop_check!(
    cost_monotone_in_table_cardinality,
    zip3(&usizes(1, 10_000), &usizes(1, 10_000), &usizes(1, 50)),
    |input| {
        let (rows, delta, distinct) = input;
        let cat_with = |n: usize| {
            let mut cat = StatsCatalog::default();
            cat.tables.insert(
                "t".into(),
                TableStats {
                    rows: n,
                    columns: vec![ColumnStats { name: "k".into(), distinct: *distinct, nulls: 0 }],
                },
            );
            cat
        };
        let plan = LogicalPlan::scan("t").filter(Expr::col("k").eq(Expr::lit(1i64)));
        let small_cat = cat_with(*rows);
        let big_cat = cat_with(rows + delta);
        let small = CostModel::new(&small_cat).rel_plan(&plan).cost;
        let big = CostModel::new(&big_cat).rel_plan(&plan).cost;
        prop_assert!(small.rows <= big.rows, "row estimate shrank: {} -> {}", small.rows, big.rows);
        prop_assert!(
            small.total() <= big.total(),
            "total cost shrank: {} -> {}",
            small.total(),
            big.total()
        );
        Ok(())
    }
);
