//! Answer envelope: text + route + provenance + uncertainty.

use std::fmt;

use tracekit::QueryTrace;
use unisem_entropy::EntropyReport;
use unisem_relstore::Table;

/// Which resolution path produced the answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Route {
    /// Compiled to a logical plan over a table.
    Structured {
        /// The table the plan ran against.
        table: String,
    },
    /// Answered from retrieved text chunks.
    Unstructured {
        /// Chunk ids consulted.
        chunks: Vec<usize>,
    },
    /// Structured attempt fell back to retrieval (or vice versa).
    Hybrid {
        /// The table consulted (if any).
        table: Option<String>,
        /// Chunk ids consulted.
        chunks: Vec<usize>,
    },
    /// The engine declined to answer (high uncertainty / no evidence).
    Abstained,
}

impl Route {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Route::Structured { .. } => "structured",
            Route::Unstructured { .. } => "unstructured",
            Route::Hybrid { .. } => "hybrid",
            Route::Abstained => "abstained",
        }
    }
}

/// One rung-to-rung downgrade on the graceful-degradation ladder
/// (structured → hybrid → pure retrieval → abstain; DESIGN.md §8). Every
/// answer that did not take the best route it attempted carries at least
/// one of these, so "why did this route down" is always diagnosable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degradation {
    /// The component that failed or was bounded, e.g. `relstore.exec`,
    /// `hetgraph.traverse`, `slm.generate`, `entropy.confidence`.
    pub component: String,
    /// What happened, human-readable.
    pub reason: String,
}

impl Degradation {
    /// Creates a degradation record. The component must be a label from
    /// the closed registry in [`tracekit::component`] — one namespace
    /// shared with fault-site names and metric prefixes — so degradation
    /// records, fault reports, and metrics always agree on a subsystem's
    /// name. Ad-hoc labels fail debug builds (the test suite) rather than
    /// silently forking the namespace.
    pub fn new(component: impl Into<String>, reason: impl Into<String>) -> Self {
        let component = component.into();
        debug_assert!(
            tracekit::component::is_registered(&component),
            "unregistered degradation component label: {component:?} \
             (add it to tracekit::component or use an existing label)"
        );
        Self { component, reason: reason.into() }
    }
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.component, self.reason)
    }
}

/// One provenance pointer.
#[derive(Debug, Clone, PartialEq)]
pub enum Provenance {
    /// A chunk of a document.
    Chunk {
        /// Chunk id in the engine's docstore.
        chunk_id: usize,
        /// Owning document id.
        doc_id: usize,
    },
    /// Rows of a table.
    TableRows {
        /// Table name.
        table: String,
        /// Number of rows that contributed.
        rows: usize,
    },
}

/// A fully-attributed answer.
#[derive(Debug, Clone, PartialEq)]
pub struct Answer {
    /// The answer text (empty only when abstaining).
    pub text: String,
    /// Confidence in `[0, 1]`: `1 − normalized semantic entropy`.
    pub confidence: f64,
    /// The uncertainty report backing the confidence.
    pub entropy: EntropyReport,
    /// Resolution path.
    pub route: Route,
    /// Supporting evidence pointers.
    pub provenance: Vec<Provenance>,
    /// The result table, when the structured route produced one.
    pub result_table: Option<Table>,
    /// Ladder downgrades taken while resolving this answer, in order.
    /// Empty when the answer took the best route it attempted.
    pub degradations: Vec<Degradation>,
    /// Per-query explain trace (ladder rungs attempted, synthesized plan,
    /// traversal stats, entropy verdict). `None` unless
    /// `EngineConfig::trace` opted in; deterministic when present.
    pub trace: Option<QueryTrace>,
}

impl Answer {
    /// True when the engine abstained.
    pub fn is_abstention(&self) -> bool {
        matches!(self.route, Route::Abstained)
    }

    /// True when any ladder downgrade occurred.
    pub fn is_degraded(&self) -> bool {
        !self.degradations.is_empty()
    }
}

impl fmt::Display for Answer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [route={} confidence={:.2} clusters={}]",
            if self.text.is_empty() { "(abstained)" } else { &self.text },
            self.route.label(),
            self.confidence,
            self.entropy.n_clusters
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> EntropyReport {
        EntropyReport {
            n_samples: 5,
            n_clusters: 1,
            semantic_entropy: 0.0,
            discrete_semantic_entropy: 0.0,
            predictive_entropy: 0.1,
            lexical_variance: 0.2,
            top_answer: Some("x".into()),
        }
    }

    #[test]
    fn route_labels() {
        assert_eq!(Route::Structured { table: "t".into() }.label(), "structured");
        assert_eq!(Route::Abstained.label(), "abstained");
    }

    #[test]
    fn display_and_abstention() {
        let a = Answer {
            text: "42".into(),
            confidence: 0.9,
            entropy: report(),
            route: Route::Structured { table: "t".into() },
            provenance: vec![],
            result_table: None,
            degradations: vec![],
            trace: None,
        };
        assert!(!a.is_abstention());
        assert!(!a.is_degraded());
        assert!(a.to_string().contains("42"));
        let abst = Answer { text: String::new(), route: Route::Abstained, ..a };
        assert!(abst.is_abstention());
        assert!(abst.to_string().contains("abstained"));
    }

    #[test]
    fn degradation_display_and_flag() {
        let d = Degradation::new("relstore.exec", "join budget exceeded");
        assert_eq!(d.to_string(), "relstore.exec: join budget exceeded");
        let a = Answer {
            text: "x".into(),
            confidence: 0.5,
            entropy: report(),
            route: Route::Hybrid { table: None, chunks: vec![] },
            provenance: vec![],
            result_table: None,
            degradations: vec![d],
            trace: None,
        };
        assert!(a.is_degraded());
    }
}
