//! Engine snapshots: byte-stable persistence of a built engine
//! (DESIGN.md §12).
//!
//! A snapshot captures everything [`crate::EngineBuilder::build`] derives
//! from its inputs — documents and chunks, the BM25 inverted index, every
//! relational table (native, flattened, extracted), the heterogeneous
//! graph, the planner's statistics catalog, and the ingest report — into
//! one `storekit` page file. Reopening skips ingestion, flattening,
//! extraction, and graph construction entirely; only the cheap derived
//! structures (dense vectors, retrievers, parser) are rebuilt, from the
//! same seed and lexicon the snapshot records.
//!
//! Byte-identity contract: two engines built from the same inputs with the
//! same seed write byte-identical snapshot files, and an engine reopened
//! from a snapshot answers every query byte-identically to the engine that
//! saved it (`tests/tests/storage.rs` enforces both).
//!
//! Layout: fixed blob sections hold the length-prefixed encodings below;
//! two B-trees make the large keyed collections pageable — `bm25.postings`
//! (term → postings list) and `graph.entities` (canonical entity name →
//! node id, the secondary index load-time verification walks).

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

use faultkit::FaultPlan;
use storekit::{Decoder, Encoder, Snapshot, SnapshotWriter, StoreError};
use tracekit::MetricsRegistry;
use unisem_docstore::{DocStore, Document, StoredChunk};
use unisem_hetgraph::{Edge, EdgeId, EdgeKind, HetGraph, Node, NodeId, NodeKind};
use unisem_relstore::{Column, DataType, Database, Date, Schema, Table, Value};
use unisem_slm::{EntityKind, Lexicon, ModelClass};
use unisem_text::bm25::{Bm25Index, Bm25Params};
use unisem_text::ChunkConfig;

use crate::ingest::{IngestReport, QuarantineReason, Quarantined};
use crate::planner::stats::{ColumnStats, GraphDegreeStats, TableStats, TextStats};
use crate::planner::StatsCatalog;
use crate::EngineError;

/// Everything the writer serializes, borrowed from the live engine.
pub(crate) struct SnapshotSource<'a> {
    /// Engine seed (drives every stochastic path on reopen).
    pub seed: u64,
    /// Simulated model class.
    pub class: ModelClass,
    /// Embedding dimensionality of the SLM that built the indexes.
    pub embed_dim: usize,
    /// Chunking configuration the documents were ingested with.
    pub chunk: ChunkConfig,
    /// Domain lexicon (canonical phrase → entity kind).
    pub lexicon: &'a Lexicon,
    /// Document store (documents, chunks, BM25 index).
    pub docs: &'a DocStore,
    /// Relational catalog (native + flattened + extracted tables).
    pub db: &'a Database,
    /// The heterogeneous graph.
    pub graph: &'a HetGraph,
    /// Build-time planner statistics.
    pub stats: &'a StatsCatalog,
    /// The build's ingest report.
    pub ingest: &'a IngestReport,
    /// Highest WAL sequence number folded into this snapshot (0 when the
    /// engine never ingested a delta). Recovery replays only records with
    /// a higher sequence number.
    pub applied_seq: u64,
}

/// Everything the reader reassembles from a snapshot file.
pub(crate) struct LoadedSnapshot {
    pub seed: u64,
    pub class: ModelClass,
    pub embed_dim: usize,
    pub chunk: ChunkConfig,
    pub lexicon: Lexicon,
    pub docs: DocStore,
    pub db: Database,
    pub graph: HetGraph,
    pub stats: StatsCatalog,
    pub ingest: IngestReport,
    pub applied_seq: u64,
}

pub(crate) fn invalid(msg: impl Into<String>) -> EngineError {
    EngineError::Store(StoreError::InvalidSnapshot(msg.into()))
}

/// Writes a full engine snapshot to `path` (atomically, via `<path>.tmp`).
pub(crate) fn write_snapshot(
    path: &Path,
    faults: FaultPlan,
    metrics: Option<Arc<MetricsRegistry>>,
    src: &SnapshotSource<'_>,
) -> Result<(), EngineError> {
    let mut w = SnapshotWriter::create(path, faults, metrics)?;
    w.add_section("config", &encode_config(src))?;
    w.add_section("lexicon", &encode_lexicon(src.lexicon))?;
    w.add_section("docs", &encode_docs(src.docs))?;
    w.add_section("bm25meta", &encode_bm25_meta(src.docs.index()))?;
    w.add_section("tables", &encode_tables(src.db)?)?;
    w.add_section("graph", &encode_graph(src.graph))?;
    w.add_section("stats", &encode_stats(src.stats))?;
    w.add_section("ingest", &encode_ingest(src.ingest))?;
    w.add_section("walmeta", &encode_walmeta(src.applied_seq))?;
    for (term, posts) in src.docs.index().postings() {
        let mut e = Encoder::new();
        e.u64(posts.len() as u64);
        for &(doc, tf) in posts {
            e.usize(doc);
            e.u32(tf);
        }
        w.tree_insert("bm25.postings", term.as_bytes(), &e.into_bytes())?;
    }
    for node in src.graph.nodes() {
        if let NodeKind::Entity { name, .. } = &node.kind {
            // First node wins, matching `HetGraph::entity_by_name` (which
            // resolves by smallest node id for duplicate surface names).
            if src.graph.entity_by_name(name) == Some(node.id) {
                let mut e = Encoder::new();
                e.u32(node.id.0);
                w.tree_insert("graph.entities", name.as_bytes(), &e.into_bytes())?;
            }
        }
    }
    w.commit(path)?;
    Ok(())
}

/// Opens `path` and reassembles every persisted substrate.
pub(crate) fn read_snapshot(
    path: &Path,
    faults: FaultPlan,
    metrics: Option<Arc<MetricsRegistry>>,
) -> Result<LoadedSnapshot, EngineError> {
    let mut snap = Snapshot::open(path, faults, metrics)?;
    let (seed, class, embed_dim, chunk) = decode_config(&snap.section("config")?)?;
    let lexicon = decode_lexicon(&snap.section("lexicon")?)?;
    let (docs_vec, chunks_vec) = decode_docs(&snap.section("docs")?)?;
    let (params, doc_lens) = decode_bm25_meta(&snap.section("bm25meta")?)?;
    let db = decode_tables(&snap.section("tables")?)?;
    let graph = decode_graph(&snap.section("graph")?)?;
    let stats = decode_stats(&snap.section("stats")?)?;
    let ingest = decode_ingest(&snap.section("ingest")?)?;
    // Absent in pre-WAL snapshots: treat as "no deltas folded".
    let applied_seq = if snap.section_names().iter().any(|s| s == "walmeta") {
        decode_walmeta(&snap.section("walmeta")?)?
    } else {
        0
    };

    let mut postings: BTreeMap<String, Vec<(usize, u32)>> = BTreeMap::new();
    if snap.tree_names().iter().any(|t| t == "bm25.postings") {
        for (key, value) in snap.tree_entries("bm25.postings")? {
            let term =
                String::from_utf8(key).map_err(|_| invalid("bm25 posting key is not UTF-8"))?;
            let mut d = Decoder::new(&value);
            let n = d.u64().map_err(EngineError::Store)? as usize;
            let mut posts = Vec::with_capacity(n);
            for _ in 0..n {
                let doc = d.usize().map_err(EngineError::Store)?;
                let tf = d.u32().map_err(EngineError::Store)?;
                posts.push((doc, tf));
            }
            postings.insert(term, posts);
        }
    }
    let index = Bm25Index::from_parts(params, postings, doc_lens);
    let docs = DocStore::from_parts(chunk, docs_vec, chunks_vec, index);
    if docs.num_chunks() != docs.index().len() {
        return Err(invalid(format!(
            "snapshot chunk count {} disagrees with BM25 document count {}",
            docs.num_chunks(),
            docs.index().len()
        )));
    }

    // Verify the secondary entity index: every persisted (name → node)
    // entry must resolve identically through the reassembled graph.
    if snap.tree_names().iter().any(|t| t == "graph.entities") {
        for (key, value) in snap.tree_entries("graph.entities")? {
            let name =
                String::from_utf8(key).map_err(|_| invalid("entity index key is not UTF-8"))?;
            let mut d = Decoder::new(&value);
            let id = d.u32().map_err(EngineError::Store)?;
            if graph.entity_by_name(&name) != Some(NodeId(id)) {
                return Err(invalid(format!(
                    "entity index entry '{name}' -> node {id} does not resolve in the \
                     reassembled graph"
                )));
            }
        }
    }

    Ok(LoadedSnapshot {
        seed,
        class,
        embed_dim,
        chunk,
        lexicon,
        docs,
        db,
        graph,
        stats,
        ingest,
        applied_seq,
    })
}

fn encode_walmeta(applied_seq: u64) -> Vec<u8> {
    let mut e = Encoder::new();
    e.u64(applied_seq);
    e.into_bytes()
}

fn decode_walmeta(bytes: &[u8]) -> Result<u64, EngineError> {
    let mut d = Decoder::new(bytes);
    d.u64().map_err(EngineError::Store)
}

fn encode_config(src: &SnapshotSource<'_>) -> Vec<u8> {
    let mut e = Encoder::new();
    e.u64(src.seed);
    e.u8(match src.class {
        ModelClass::SlmClass => 0,
        ModelClass::LlmClass => 1,
    });
    e.usize(src.embed_dim);
    e.usize(src.chunk.max_tokens);
    e.usize(src.chunk.overlap_sentences);
    e.into_bytes()
}

fn decode_config(bytes: &[u8]) -> Result<(u64, ModelClass, usize, ChunkConfig), EngineError> {
    let mut d = Decoder::new(bytes);
    let seed = d.u64().map_err(EngineError::Store)?;
    let class = match d.u8().map_err(EngineError::Store)? {
        0 => ModelClass::SlmClass,
        1 => ModelClass::LlmClass,
        t => return Err(invalid(format!("unknown model class tag {t}"))),
    };
    let embed_dim = d.usize().map_err(EngineError::Store)?;
    let max_tokens = d.usize().map_err(EngineError::Store)?;
    let overlap_sentences = d.usize().map_err(EngineError::Store)?;
    Ok((seed, class, embed_dim, ChunkConfig { max_tokens, overlap_sentences }))
}

fn encode_lexicon(lexicon: &Lexicon) -> Vec<u8> {
    let entries = lexicon.entries();
    let mut e = Encoder::new();
    e.u64(entries.len() as u64);
    for (phrase, kind) in &entries {
        e.str(phrase);
        e.str(kind.label());
    }
    e.into_bytes()
}

fn decode_lexicon(bytes: &[u8]) -> Result<Lexicon, EngineError> {
    let mut d = Decoder::new(bytes);
    let n = d.u64().map_err(EngineError::Store)? as usize;
    let mut lexicon = Lexicon::new();
    for _ in 0..n {
        let phrase = d.str().map_err(EngineError::Store)?;
        let label = d.str().map_err(EngineError::Store)?;
        let kind = EntityKind::from_label(&label)
            .ok_or_else(|| invalid(format!("unknown entity kind label '{label}'")))?;
        lexicon.add(&phrase, kind);
    }
    Ok(lexicon)
}

fn encode_docs(docs: &DocStore) -> Vec<u8> {
    let mut e = Encoder::new();
    e.u64(docs.num_documents() as u64);
    for doc in docs.documents() {
        e.usize(doc.id);
        e.str(&doc.title);
        e.str(&doc.text);
        e.str(&doc.source);
    }
    e.u64(docs.num_chunks() as u64);
    for c in docs.chunks() {
        e.usize(c.id);
        e.usize(c.doc_id);
        e.usize(c.index_in_doc);
        e.str(&c.text);
    }
    e.into_bytes()
}

fn decode_docs(bytes: &[u8]) -> Result<(Vec<Document>, Vec<StoredChunk>), EngineError> {
    let mut d = Decoder::new(bytes);
    let ndocs = d.u64().map_err(EngineError::Store)? as usize;
    let mut docs = Vec::with_capacity(ndocs);
    for i in 0..ndocs {
        let id = d.usize().map_err(EngineError::Store)?;
        if id != i {
            return Err(invalid(format!("document {i} persisted with id {id}")));
        }
        let title = d.str().map_err(EngineError::Store)?;
        let text = d.str().map_err(EngineError::Store)?;
        let source = d.str().map_err(EngineError::Store)?;
        docs.push(Document { id, title, text, source });
    }
    let nchunks = d.u64().map_err(EngineError::Store)? as usize;
    let mut chunks = Vec::with_capacity(nchunks);
    for i in 0..nchunks {
        let id = d.usize().map_err(EngineError::Store)?;
        if id != i {
            return Err(invalid(format!("chunk {i} persisted with id {id}")));
        }
        let doc_id = d.usize().map_err(EngineError::Store)?;
        if doc_id >= ndocs {
            return Err(invalid(format!("chunk {i} references unknown document {doc_id}")));
        }
        let index_in_doc = d.usize().map_err(EngineError::Store)?;
        let text = d.str().map_err(EngineError::Store)?;
        chunks.push(StoredChunk { id, doc_id, index_in_doc, text });
    }
    Ok((docs, chunks))
}

fn encode_bm25_meta(index: &Bm25Index) -> Vec<u8> {
    let params = index.params();
    let mut e = Encoder::new();
    e.f64(params.k1);
    e.f64(params.b);
    e.u64(index.doc_lens().len() as u64);
    for &len in index.doc_lens() {
        e.usize(len);
    }
    e.into_bytes()
}

fn decode_bm25_meta(bytes: &[u8]) -> Result<(Bm25Params, Vec<usize>), EngineError> {
    let mut d = Decoder::new(bytes);
    let k1 = d.f64().map_err(EngineError::Store)?;
    let b = d.f64().map_err(EngineError::Store)?;
    let n = d.u64().map_err(EngineError::Store)? as usize;
    let mut doc_lens = Vec::with_capacity(n);
    for _ in 0..n {
        doc_lens.push(d.usize().map_err(EngineError::Store)?);
    }
    Ok((Bm25Params { k1, b }, doc_lens))
}

pub(crate) fn encode_value(e: &mut Encoder, v: &Value) {
    match v {
        Value::Null => e.u8(0),
        Value::Bool(b) => {
            e.u8(1);
            e.bool(*b);
        }
        Value::Int(i) => {
            e.u8(2);
            e.i64(*i);
        }
        Value::Float(f) => {
            e.u8(3);
            e.f64(*f);
        }
        Value::Str(s) => {
            e.u8(4);
            e.str(s);
        }
        Value::Date(date) => {
            e.u8(5);
            e.i64(i64::from(date.year));
            e.u8(date.month);
            e.u8(date.day);
        }
    }
}

pub(crate) fn decode_value(d: &mut Decoder<'_>) -> Result<Value, EngineError> {
    Ok(match d.u8().map_err(EngineError::Store)? {
        0 => Value::Null,
        1 => Value::Bool(d.bool().map_err(EngineError::Store)?),
        2 => Value::Int(d.i64().map_err(EngineError::Store)?),
        3 => Value::Float(d.f64().map_err(EngineError::Store)?),
        4 => Value::Str(d.str().map_err(EngineError::Store)?),
        5 => {
            let year = d.i64().map_err(EngineError::Store)?;
            let year = i32::try_from(year).map_err(|_| invalid("date year out of range"))?;
            let month = d.u8().map_err(EngineError::Store)?;
            let day = d.u8().map_err(EngineError::Store)?;
            let date = Date::new(year, month, day)
                .ok_or_else(|| invalid(format!("invalid date {year}-{month}-{day}")))?;
            Value::Date(date)
        }
        t => return Err(invalid(format!("unknown value tag {t}"))),
    })
}

fn dtype_tag(t: DataType) -> u8 {
    match t {
        DataType::Bool => 0,
        DataType::Int => 1,
        DataType::Float => 2,
        DataType::Str => 3,
        DataType::Date => 4,
    }
}

fn dtype_from_tag(tag: u8) -> Result<DataType, EngineError> {
    Ok(match tag {
        0 => DataType::Bool,
        1 => DataType::Int,
        2 => DataType::Float,
        3 => DataType::Str,
        4 => DataType::Date,
        t => return Err(invalid(format!("unknown data type tag {t}"))),
    })
}

fn encode_tables(db: &Database) -> Result<Vec<u8>, EngineError> {
    let mut names: Vec<String> = db.table_names().into_iter().map(String::from).collect();
    names.sort_unstable();
    let mut e = Encoder::new();
    e.u64(names.len() as u64);
    for name in &names {
        let table = db.table(name)?;
        e.str(name);
        e.u64(table.schema().columns().len() as u64);
        for col in table.schema().columns() {
            e.str(&col.name);
            e.u8(dtype_tag(col.dtype));
        }
        e.u64(table.num_rows() as u64);
        for row in table.rows() {
            for v in &row {
                encode_value(&mut e, v);
            }
        }
    }
    Ok(e.into_bytes())
}

fn decode_tables(bytes: &[u8]) -> Result<Database, EngineError> {
    let mut d = Decoder::new(bytes);
    let ntables = d.u64().map_err(EngineError::Store)? as usize;
    let mut db = Database::new();
    for _ in 0..ntables {
        let name = d.str().map_err(EngineError::Store)?;
        let ncols = d.u64().map_err(EngineError::Store)? as usize;
        let mut columns = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let col_name = d.str().map_err(EngineError::Store)?;
            let dtype = dtype_from_tag(d.u8().map_err(EngineError::Store)?)?;
            columns.push(Column::new(col_name, dtype));
        }
        let schema = Schema::new(columns)?;
        let nrows = d.u64().map_err(EngineError::Store)? as usize;
        let mut rows = Vec::with_capacity(nrows);
        for _ in 0..nrows {
            let mut row = Vec::with_capacity(ncols);
            for _ in 0..ncols {
                row.push(decode_value(&mut d)?);
            }
            rows.push(row);
        }
        let table = Table::from_rows(schema, rows)?;
        db.create_table(&name, table)?;
    }
    Ok(db)
}

fn encode_graph(graph: &HetGraph) -> Vec<u8> {
    let mut e = Encoder::new();
    e.u64(graph.num_nodes() as u64);
    for node in graph.nodes() {
        e.u32(node.id.0);
        match &node.kind {
            NodeKind::Chunk { chunk_id, doc_id } => {
                e.u8(0);
                e.usize(*chunk_id);
                e.usize(*doc_id);
            }
            NodeKind::Entity { name, kind } => {
                e.u8(1);
                e.str(name);
                e.str(kind.label());
            }
            NodeKind::Record { table, row } => {
                e.u8(2);
                e.str(table);
                e.usize(*row);
            }
            NodeKind::Table { name } => {
                e.u8(3);
                e.str(name);
            }
        }
        e.str(&node.label);
    }
    e.u64(graph.num_edges() as u64);
    for edge in graph.edges() {
        e.u32(edge.id.0);
        e.u32(edge.a.0);
        e.u32(edge.b.0);
        match &edge.kind {
            EdgeKind::Mentions => e.u8(0),
            EdgeKind::RelatesTo(v) => {
                e.u8(1);
                e.str(v);
            }
            EdgeKind::Temporal => e.u8(2),
            EdgeKind::BelongsTo => e.u8(3),
            EdgeKind::HasAttribute(a) => {
                e.u8(4);
                e.str(a);
            }
            EdgeKind::NextChunk => e.u8(5),
        }
    }
    e.into_bytes()
}

fn decode_graph(bytes: &[u8]) -> Result<HetGraph, EngineError> {
    let mut d = Decoder::new(bytes);
    let nnodes = d.u64().map_err(EngineError::Store)? as usize;
    let mut nodes = Vec::with_capacity(nnodes);
    for _ in 0..nnodes {
        let id = NodeId(d.u32().map_err(EngineError::Store)?);
        let kind = match d.u8().map_err(EngineError::Store)? {
            0 => {
                let chunk_id = d.usize().map_err(EngineError::Store)?;
                let doc_id = d.usize().map_err(EngineError::Store)?;
                NodeKind::Chunk { chunk_id, doc_id }
            }
            1 => {
                let name = d.str().map_err(EngineError::Store)?;
                let label = d.str().map_err(EngineError::Store)?;
                let kind = EntityKind::from_label(&label)
                    .ok_or_else(|| invalid(format!("unknown entity kind label '{label}'")))?;
                NodeKind::Entity { name, kind }
            }
            2 => {
                let table = d.str().map_err(EngineError::Store)?;
                let row = d.usize().map_err(EngineError::Store)?;
                NodeKind::Record { table, row }
            }
            3 => NodeKind::Table { name: d.str().map_err(EngineError::Store)? },
            t => return Err(invalid(format!("unknown node kind tag {t}"))),
        };
        let label = d.str().map_err(EngineError::Store)?;
        nodes.push(Node { id, kind, label });
    }
    let nedges = d.u64().map_err(EngineError::Store)? as usize;
    let mut edges = Vec::with_capacity(nedges);
    for _ in 0..nedges {
        let id = EdgeId(d.u32().map_err(EngineError::Store)?);
        let a = NodeId(d.u32().map_err(EngineError::Store)?);
        let b = NodeId(d.u32().map_err(EngineError::Store)?);
        let kind = match d.u8().map_err(EngineError::Store)? {
            0 => EdgeKind::Mentions,
            1 => EdgeKind::RelatesTo(d.str().map_err(EngineError::Store)?),
            2 => EdgeKind::Temporal,
            3 => EdgeKind::BelongsTo,
            4 => EdgeKind::HasAttribute(d.str().map_err(EngineError::Store)?),
            5 => EdgeKind::NextChunk,
            t => return Err(invalid(format!("unknown edge kind tag {t}"))),
        };
        edges.push(Edge { id, a, b, kind });
    }
    HetGraph::from_parts(nodes, edges).map_err(invalid)
}

fn encode_stats(stats: &StatsCatalog) -> Vec<u8> {
    let mut e = Encoder::new();
    e.u64(stats.tables.len() as u64);
    for (name, t) in &stats.tables {
        e.str(name);
        e.usize(t.rows);
        e.u64(t.columns.len() as u64);
        for c in &t.columns {
            e.str(&c.name);
            e.usize(c.distinct);
            e.usize(c.nulls);
        }
    }
    e.usize(stats.text.documents);
    e.usize(stats.text.chunks);
    e.usize(stats.text.terms);
    e.usize(stats.text.postings);
    e.usize(stats.text.max_posting);
    e.usize(stats.graph.nodes);
    e.usize(stats.graph.edges);
    e.usize(stats.graph.max_degree);
    e.usize(stats.graph.avg_degree_x1000);
    e.u64(stats.graph.histogram.len() as u64);
    for &(bound, count) in &stats.graph.histogram {
        e.usize(bound);
        e.usize(count);
    }
    e.into_bytes()
}

fn decode_stats(bytes: &[u8]) -> Result<StatsCatalog, EngineError> {
    let mut d = Decoder::new(bytes);
    let ntables = d.u64().map_err(EngineError::Store)? as usize;
    let mut tables = BTreeMap::new();
    for _ in 0..ntables {
        let name = d.str().map_err(EngineError::Store)?;
        let rows = d.usize().map_err(EngineError::Store)?;
        let ncols = d.u64().map_err(EngineError::Store)? as usize;
        let mut columns = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let col_name = d.str().map_err(EngineError::Store)?;
            let distinct = d.usize().map_err(EngineError::Store)?;
            let nulls = d.usize().map_err(EngineError::Store)?;
            columns.push(ColumnStats { name: col_name, distinct, nulls });
        }
        tables.insert(name, TableStats { rows, columns });
    }
    let text = TextStats {
        documents: d.usize().map_err(EngineError::Store)?,
        chunks: d.usize().map_err(EngineError::Store)?,
        terms: d.usize().map_err(EngineError::Store)?,
        postings: d.usize().map_err(EngineError::Store)?,
        max_posting: d.usize().map_err(EngineError::Store)?,
    };
    let nodes = d.usize().map_err(EngineError::Store)?;
    let edges = d.usize().map_err(EngineError::Store)?;
    let max_degree = d.usize().map_err(EngineError::Store)?;
    let avg_degree_x1000 = d.usize().map_err(EngineError::Store)?;
    let nhist = d.u64().map_err(EngineError::Store)? as usize;
    let mut histogram = Vec::with_capacity(nhist);
    for _ in 0..nhist {
        let bound = d.usize().map_err(EngineError::Store)?;
        let count = d.usize().map_err(EngineError::Store)?;
        histogram.push((bound, count));
    }
    let graph = GraphDegreeStats { nodes, edges, max_degree, avg_degree_x1000, histogram };
    Ok(StatsCatalog { tables, text, graph })
}

fn encode_ingest(report: &IngestReport) -> Vec<u8> {
    let mut e = Encoder::new();
    e.u64(report.quarantined.len() as u64);
    for q in &report.quarantined {
        e.str(&q.source);
        let (tag, msg) = match &q.reason {
            QuarantineReason::Json(m) => (0u8, m),
            QuarantineReason::Xml(m) => (1, m),
            QuarantineReason::Flatten(m) => (2, m),
            QuarantineReason::Extraction(m) => (3, m),
            QuarantineReason::InjectedFault(m) => (4, m),
        };
        e.u8(tag);
        e.str(msg);
    }
    e.usize(report.tables);
    e.usize(report.collections_flattened);
    e.usize(report.documents);
    e.usize(report.extracted_rows);
    e.into_bytes()
}

fn decode_ingest(bytes: &[u8]) -> Result<IngestReport, EngineError> {
    let mut d = Decoder::new(bytes);
    let nquar = d.u64().map_err(EngineError::Store)? as usize;
    let mut quarantined = Vec::with_capacity(nquar);
    for _ in 0..nquar {
        let source = d.str().map_err(EngineError::Store)?;
        let tag = d.u8().map_err(EngineError::Store)?;
        let msg = d.str().map_err(EngineError::Store)?;
        let reason = match tag {
            0 => QuarantineReason::Json(msg),
            1 => QuarantineReason::Xml(msg),
            2 => QuarantineReason::Flatten(msg),
            3 => QuarantineReason::Extraction(msg),
            4 => QuarantineReason::InjectedFault(msg),
            t => return Err(invalid(format!("unknown quarantine reason tag {t}"))),
        };
        quarantined.push(Quarantined { source, reason });
    }
    Ok(IngestReport {
        quarantined,
        tables: d.usize().map_err(EngineError::Store)?,
        collections_flattened: d.usize().map_err(EngineError::Store)?,
        documents: d.usize().map_err(EngineError::Store)?,
        extracted_rows: d.usize().map_err(EngineError::Store)?,
    })
}
