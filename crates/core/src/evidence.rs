//! Sentence-level evidence extraction from retrieved chunks.
//!
//! The SLM's answer generator (see `unisem-slm::generate`) consumes
//! *candidate answers with support weights*. For lookup questions the
//! candidates are sentences from retrieved chunks, weighted by how well
//! they cover the query's content terms and entities — a deterministic
//! stand-in for extractive answer selection.

use std::collections::{BTreeSet, HashSet};

use unisem_slm::SupportedAnswer;
use unisem_text::normalize::{is_stopword, normalize_token};
use unisem_text::sentence::split_sentences;
use unisem_text::tokenize::tokenize_words;

/// A scored evidence sentence with its chunk of origin.
#[derive(Debug, Clone, PartialEq)]
pub struct EvidenceSentence {
    /// The sentence text.
    pub text: String,
    /// Chunk id it came from.
    pub chunk_id: usize,
    /// Combined support score.
    pub support: f64,
}

/// Normalized content terms of a query.
pub fn query_terms(query: &str) -> BTreeSet<String> {
    tokenize_words(query)
        .into_iter()
        .filter(|w| !is_stopword(w) && w.len() > 1)
        .map(|w| normalize_token(&w))
        .collect()
}

/// Extracts scored evidence sentences from `(chunk_id, chunk_text, chunk_score)`
/// triples.
///
/// A sentence's support is `chunk_score × coverage`, where coverage is the
/// fraction of query content terms it contains, with a small length prior
/// penalizing fragments. Sentences covering nothing are dropped.
pub fn extract_evidence(
    query: &str,
    chunks: &[(usize, String, f64)],
    max_sentences: usize,
) -> Vec<EvidenceSentence> {
    extract_evidence_grounded(query, chunks, max_sentences, &[])
}

/// Like [`extract_evidence`], but restricts candidates to sentences that
/// mention at least one of `required_entities` (canonical lowercase forms).
///
/// Grounding *before* IDF weighting matters: once off-entity sentences are
/// gone, terms like a quarter label become rare within the pool and
/// correctly dominate the ranking.
pub fn extract_evidence_grounded(
    query: &str,
    chunks: &[(usize, String, f64)],
    max_sentences: usize,
    required_entities: &[String],
) -> Vec<EvidenceSentence> {
    let terms = query_terms(query);
    if terms.is_empty() {
        return Vec::new();
    }
    // Rank-normalize chunk scores into [0.5, 1]: retrieval decides the
    // candidate pool, but *sentence coverage* decides the winner — raw
    // retriever scores vary by orders of magnitude across retrievers and
    // would otherwise drown the coverage signal.
    let max_score = chunks.iter().map(|(_, _, s)| *s).fold(0.0f64, f64::max).max(1e-12);

    // Materialize candidate sentences with their term sets first, so query
    // terms can be IDF-weighted *within the candidate pool*: a term every
    // candidate contains ("sales") cannot discriminate, while a rare one
    // ("q3") pins the right sentence.
    struct Cand {
        text: String,
        chunk_id: usize,
        chunk_score: f64,
        terms: HashSet<String>,
    }
    let mut cands: Vec<Cand> = Vec::new();
    for (chunk_id, text, raw_score) in chunks {
        let chunk_score = 0.5 + 0.5 * raw_score / max_score;
        for sentence in split_sentences(text) {
            if !required_entities.is_empty() {
                let lower = sentence.to_lowercase();
                if !required_entities.iter().any(|e| lower.contains(e.as_str())) {
                    continue;
                }
            }
            let sent_terms: HashSet<String> =
                tokenize_words(&sentence).into_iter().map(|w| normalize_token(&w)).collect();
            cands.push(Cand {
                text: sentence,
                chunk_id: *chunk_id,
                chunk_score,
                terms: sent_terms,
            });
        }
    }
    let n_cands = cands.len().max(1) as f64;
    // Terms no candidate contains cannot discriminate between candidates;
    // keeping them in the denominator would only flatten all coverages
    // (framing words like "according to the report" rarely appear in
    // evidence verbatim).
    let idf: Vec<(&String, f64)> = terms
        .iter()
        .filter_map(|t| {
            let df = cands.iter().filter(|c| c.terms.contains(t)).count() as f64;
            (df > 0.0).then(|| (t, (1.0 + n_cands / (1.0 + df)).ln()))
        })
        .collect();
    let idf_total: f64 = idf.iter().map(|(_, w)| w).sum::<f64>().max(1e-12);

    let mut out: Vec<EvidenceSentence> = Vec::new();
    for c in cands {
        let covered_weight: f64 =
            idf.iter().filter(|(t, _)| c.terms.contains(t.as_str())).map(|(_, w)| w).sum();
        if covered_weight <= 0.0 {
            continue;
        }
        let coverage = covered_weight / idf_total;
        let length_prior = (c.terms.len().min(30) as f64 / 30.0).max(0.2);
        out.push(EvidenceSentence {
            text: c.text,
            chunk_id: c.chunk_id,
            support: c.chunk_score * coverage * (0.7 + 0.3 * length_prior),
        });
    }
    out.sort_by(|a, b| {
        b.support
            .partial_cmp(&a.support)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.chunk_id.cmp(&b.chunk_id))
    });
    out.dedup_by(|a, b| a.text == b.text);
    out.truncate(max_sentences);
    out
}

/// Gain applied to evidence supports before sampling.
///
/// Supports live in roughly `[0, 1]`; the generator's softmax at typical
/// temperatures would treat 0.5-vs-0.7 as near-uniform. The gain sharpens
/// real distinctions while leaving genuinely flat evidence flat — so weak
/// evidence still produces high entropy and triggers abstention.
const SUPPORT_GAIN: f64 = 8.0;

/// Converts evidence sentences into the generator's candidate-answer form.
pub fn to_supported_answers(evidence: &[EvidenceSentence]) -> Vec<SupportedAnswer> {
    evidence
        .iter()
        .map(|e| SupportedAnswer::new(e.text.clone(), e.support * SUPPORT_GAIN))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunks() -> Vec<(usize, String, f64)> {
        vec![
            (
                0,
                "Acme Corp launched the Aero Widget. The Aero Widget is manufactured by \
                 Acme Corp and targets the electronics segment."
                    .to_string(),
                1.0,
            ),
            (1, "The cafeteria menu changed. Nothing relevant here.".to_string(), 0.8),
        ]
    }

    #[test]
    fn relevant_sentence_ranks_first() {
        let ev = extract_evidence("Which manufacturer makes the Aero Widget?", &chunks(), 5);
        assert!(!ev.is_empty());
        assert!(ev[0].text.contains("Acme Corp"));
        assert_eq!(ev[0].chunk_id, 0);
    }

    #[test]
    fn irrelevant_sentences_dropped() {
        let ev = extract_evidence("Aero Widget manufacturer", &chunks(), 10);
        assert!(ev.iter().all(|e| !e.text.contains("cafeteria")));
    }

    #[test]
    fn coverage_orders_support() {
        let ev = extract_evidence("manufacturer of the Aero Widget", &chunks(), 5);
        for w in ev.windows(2) {
            assert!(w[0].support >= w[1].support);
        }
    }

    #[test]
    fn max_sentences_respected() {
        let ev = extract_evidence("Aero Widget", &chunks(), 1);
        assert_eq!(ev.len(), 1);
    }

    #[test]
    fn empty_query_or_chunks() {
        assert!(extract_evidence("", &chunks(), 5).is_empty());
        assert!(extract_evidence("the of and", &chunks(), 5).is_empty());
        assert!(extract_evidence("aero", &[], 5).is_empty());
    }

    #[test]
    fn stemming_bridges_variants() {
        let c = vec![(0, "Sales increased sharply last quarter.".to_string(), 1.0)];
        let ev = extract_evidence("how did the sales increase go", &c, 5);
        assert!(!ev.is_empty());
    }

    #[test]
    fn to_supported_preserves_order_and_support() {
        let ev = extract_evidence("Aero Widget manufacturer", &chunks(), 3);
        let sup = to_supported_answers(&ev);
        assert_eq!(sup.len(), ev.len());
        assert_eq!(sup[0].text, ev[0].text);
        assert_eq!(sup[0].support, ev[0].support * SUPPORT_GAIN);
    }
}
