//! The unified query engine: ingestion, indexing, routing, answering.

use std::fmt;
use std::sync::Arc;

use parkit::Pool;
use unisem_docstore::{DocStore, DocumentId};
use unisem_entropy::EntropyEstimator;
use unisem_extract::TableGenerator;
use unisem_hetgraph::{GraphBuilder, HetGraph};
use unisem_relstore::plan::AggFunc;
use unisem_relstore::{Database, RelError, Table};
use unisem_retrieval::{
    ChunkRetriever, DenseRetriever, RetrievalResult, TopologyConfig, TopologyRetriever,
};
use unisem_semistore::{FlattenError, JsonValue, SemiStore};
use unisem_semops::synthesize::resolve_subject_column;
use unisem_semops::{IntentParser, OperatorSynthesizer, QueryIntent};
use unisem_slm::{CostMeter, Lexicon, ModelClass, Slm, SlmConfig, SupportedAnswer};
use unisem_text::ChunkConfig;

use crate::answer::{Answer, Provenance, Route};
use crate::evidence::{extract_evidence_grounded, to_supported_answers};

/// Engine construction / ingestion errors.
#[derive(Debug)]
pub enum EngineError {
    /// Relational layer failure.
    Rel(RelError),
    /// JSON flattening failure.
    Flatten(FlattenError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Rel(e) => write!(f, "relational error: {e}"),
            EngineError::Flatten(e) => write!(f, "flatten error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<RelError> for EngineError {
    fn from(e: RelError) -> Self {
        EngineError::Rel(e)
    }
}

impl From<FlattenError> for EngineError {
    fn from(e: FlattenError) -> Self {
        EngineError::Flatten(e)
    }
}

/// Parallel execution settings (DESIGN.md §6: determinism under
/// parallelism). Thread count never affects results — only wall-clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker threads for batch answering, index building, and the
    /// parallel scans underneath. `0` (the default) resolves at use time
    /// from `UNISEM_THREADS`, falling back to the machine's available
    /// parallelism.
    pub threads: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self { threads: 0 }
    }
}

impl ParallelConfig {
    /// An explicit thread count (`0` = auto).
    pub fn with_threads(threads: usize) -> Self {
        Self { threads }
    }

    /// The parkit pool this configuration resolves to.
    pub fn pool(&self) -> Pool {
        if self.threads == 0 {
            parkit::global()
        } else {
            Pool::new(self.threads)
        }
    }
}

/// Engine configuration, including the ablation switches exercised by
/// experiment E7.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Master seed for the SLM's stochastic paths.
    pub seed: u64,
    /// Simulated model class (cost accounting).
    pub model_class: ModelClass,
    /// Document chunking parameters.
    pub chunk: ChunkConfig,
    /// Topology retrieval parameters.
    pub topology: TopologyConfig,
    /// Chunks retrieved per lookup question.
    pub retrieval_top_k: usize,
    /// Samples drawn for semantic entropy.
    pub entropy_samples: usize,
    /// Sampling temperature for entropy estimation.
    pub entropy_temperature: f64,
    /// Abstain when confidence falls below this.
    pub abstain_confidence: f64,
    /// Ablation: run Relational Table Generation over ingested documents.
    pub enable_extraction: bool,
    /// Ablation: synthesize operators for analytical questions.
    pub enable_synthesis: bool,
    /// Ablation: use topology-enhanced retrieval (false = dense baseline
    /// retrieval inside the same engine).
    pub enable_topology: bool,
    /// Ablation: index entity nodes in the graph (false = chunks/records
    /// stay unlinked and retrieval loses its anchors).
    pub enable_entity_nodes: bool,
    /// Parallel execution settings (never affects results, only speed).
    pub parallel: ParallelConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            seed: 0x0515,
            model_class: ModelClass::SlmClass,
            chunk: ChunkConfig::default(),
            topology: TopologyConfig::default(),
            retrieval_top_k: 5,
            entropy_samples: 10,
            entropy_temperature: 0.8,
            abstain_confidence: 0.4,
            enable_extraction: true,
            enable_synthesis: true,
            enable_topology: true,
            enable_entity_nodes: true,
            parallel: ParallelConfig::default(),
        }
    }
}

/// Accumulates heterogeneous sources, then builds a [`UnifiedEngine`].
#[derive(Debug)]
pub struct EngineBuilder {
    config: EngineConfig,
    lexicon: Lexicon,
    docs: DocStore,
    db: Database,
    semi: SemiStore,
}

impl EngineBuilder {
    /// Starts a builder with a domain lexicon (the SLM's world knowledge).
    pub fn new(lexicon: Lexicon) -> Self {
        Self::with_config(lexicon, EngineConfig::default())
    }

    /// Starts a builder with explicit configuration.
    pub fn with_config(lexicon: Lexicon, config: EngineConfig) -> Self {
        Self {
            config,
            lexicon,
            docs: DocStore::new(config.chunk),
            db: Database::new(),
            semi: SemiStore::new(),
        }
    }

    /// Ingests an unstructured document.
    pub fn add_document(
        &mut self,
        title: impl Into<String>,
        text: impl Into<String>,
        source: impl Into<String>,
    ) -> DocumentId {
        self.docs.add_document(title, text, source)
    }

    /// Ingests a relational table.
    pub fn add_table(&mut self, name: &str, table: Table) -> Result<(), EngineError> {
        self.db.create_table(name, table)?;
        Ok(())
    }

    /// Ingests one JSON document into a named collection.
    pub fn add_json(&mut self, collection: &str, doc: JsonValue) {
        self.semi.insert(collection, doc);
    }

    /// Ingests one XML document into a named collection ("XML
    /// configurations", §I). The root element's *contents* become the
    /// record (attributes as `@name`, text as `#text`).
    pub fn add_xml(&mut self, collection: &str, xml: &str) -> Result<(), EngineError> {
        let parsed = unisem_semistore::parse_xml(xml).map_err(|e| {
            EngineError::Flatten(unisem_semistore::FlattenError::Rel(RelError::Parse(
                e.to_string(),
            )))
        })?;
        // Unwrap the single root-name key so sibling documents with the
        // same root element flatten into one schema.
        let doc = match &parsed {
            JsonValue::Object(fields) if fields.len() == 1 => fields[0].1.clone(),
            other => other.clone(),
        };
        self.semi.insert(collection, doc);
        Ok(())
    }

    /// Builds the engine: flattens JSON, runs extraction, builds the graph,
    /// and wires the retrievers.
    pub fn build(self) -> Result<UnifiedEngine, EngineError> {
        let EngineBuilder { config, lexicon, docs, mut db, semi } = self;
        let slm = Slm::new(SlmConfig {
            lexicon,
            class: config.model_class,
            seed: config.seed,
            ..SlmConfig::default()
        });

        // Semi-structured → tables.
        for coll in semi.collections() {
            let table = semi.to_table(coll)?;
            if db.has_table(coll) {
                db.create_or_replace_table(&format!("json_{coll}"), table);
            } else {
                db.create_or_replace_table(coll, table);
            }
        }

        // Unstructured → extracted table (§III.C task 1).
        if config.enable_extraction && !docs.is_empty() {
            let texts: Vec<&str> = docs.documents().iter().map(|d| d.text.as_str()).collect();
            let (extracted, _) = TableGenerator::new(slm.clone())
                .generate_table(&texts)
                .map_err(EngineError::Rel)?;
            if !extracted.is_empty() {
                db.create_or_replace_table("extracted", extracted);
            }
        }

        // Graph index over every modality (§III.A).
        let mut gb = GraphBuilder::new(slm.clone());
        gb.set_index_entities(config.enable_entity_nodes);
        gb.add_docstore(&docs);
        for name in db.table_names().into_iter().map(String::from).collect::<Vec<_>>() {
            // Extracted-table records duplicate chunk facts; indexing them
            // is still useful (they join text to values) but keep the
            // "extracted" table out to avoid double-counting mentions.
            if name != "extracted" {
                let table = db.table(&name)?.clone();
                gb.add_table(&name, &table);
            }
        }
        let (graph, _) = gb.finish();

        let docs = Arc::new(docs);
        let graph = Arc::new(graph);
        let topo =
            TopologyRetriever::new(slm.clone(), graph.clone(), docs.clone(), config.topology);
        let dense = DenseRetriever::build_with_pool(slm.clone(), &docs, config.parallel.pool());
        let estimator = {
            let mut e = EntropyEstimator::new(slm.clone());
            e.n_samples = config.entropy_samples;
            e.temperature = config.entropy_temperature;
            e
        };

        Ok(UnifiedEngine {
            parser: IntentParser::new(slm.clone()),
            synthesizer: OperatorSynthesizer::new(),
            estimator,
            slm,
            docs,
            graph,
            db,
            topo,
            dense,
            config,
        })
    }
}

/// The unified semantic query engine.
#[derive(Debug, Clone)]
pub struct UnifiedEngine {
    slm: Slm,
    docs: Arc<DocStore>,
    graph: Arc<HetGraph>,
    db: Database,
    topo: TopologyRetriever,
    dense: DenseRetriever,
    parser: IntentParser,
    synthesizer: OperatorSynthesizer,
    estimator: EntropyEstimator,
    config: EngineConfig,
}

impl UnifiedEngine {
    /// The configuration in effect.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// The relational catalog (native + flattened + extracted tables).
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The document store.
    pub fn docs(&self) -> &DocStore {
        &self.docs
    }

    /// The heterogeneous graph index.
    pub fn graph(&self) -> &HetGraph {
        &self.graph
    }

    /// The SLM (shared cost meter included).
    pub fn slm(&self) -> &Slm {
        &self.slm
    }

    /// The SLM usage meter for cost experiments.
    pub fn meter(&self) -> &CostMeter {
        self.slm.meter()
    }

    /// Total index footprint in bytes (graph + lexical postings + dense
    /// vectors if the dense path is active).
    pub fn index_bytes(&self) -> usize {
        if self.config.enable_topology {
            self.topo.index_bytes()
        } else {
            self.dense.index_bytes() + self.docs.index_bytes()
        }
    }

    /// Retrieves chunks for a query using the configured retriever.
    pub fn retrieve(&self, query: &str, k: usize) -> Vec<RetrievalResult> {
        if self.config.enable_topology {
            self.topo.retrieve(query, k)
        } else {
            self.dense.retrieve(query, k)
        }
    }

    /// Parses a question into its intent (exposed for diagnostics).
    pub fn analyze(&self, question: &str) -> QueryIntent {
        self.parser.analyze(question)
    }

    /// Answers a natural-language question across all ingested modalities.
    pub fn answer(&self, question: &str) -> Answer {
        let intent = self.parser.analyze(question);

        // Structured route for analytical intents (§III.C task 2).
        let mut attempted_structured = false;
        if self.config.enable_synthesis && !intent.is_plain_lookup() {
            attempted_structured = true;
            if let Some((table, result)) = self.try_structured(&intent) {
                let text = render_structured(&intent, &self.db, &table, &result);
                if !text.is_empty() {
                    // Deterministic plan output = maximally grounded
                    // evidence; entropy sampling confirms stability.
                    let evidence = vec![SupportedAnswer::new(text.clone(), 6.0)];
                    let report = self.estimator.estimate(question, &evidence);
                    let confidence = confidence_from(&report);
                    return Answer {
                        text,
                        confidence,
                        entropy: report,
                        route: Route::Structured { table: table.clone() },
                        provenance: vec![Provenance::TableRows { table, rows: result.num_rows() }],
                        result_table: Some(result),
                    };
                }
            }
        }

        // Retrieval route (§III.B).
        let hits = self.retrieve(question, self.config.retrieval_top_k);
        let chunk_triples: Vec<(usize, String, f64)> = hits
            .iter()
            .filter_map(|h| {
                self.docs.chunk(h.chunk_id).ok().map(|c| (c.id, c.text.clone(), h.score))
            })
            .collect();
        // Grounding: when the question names entities, only sentences
        // mentioning them are admissible evidence — ungrounded context is
        // exactly the hallucination source §I warns about. Filtering before
        // IDF weighting also sharpens discriminative terms.
        let evidence = extract_evidence_grounded(question, &chunk_triples, 6, &intent.entities);
        let supported = to_supported_answers(&evidence);
        let report = self.estimator.estimate(question, &supported);
        let confidence = confidence_from(&report);

        let chunks: Vec<usize> = evidence.iter().map(|e| e.chunk_id).collect();
        let provenance: Vec<Provenance> = evidence
            .iter()
            .filter_map(|e| {
                self.docs
                    .chunk(e.chunk_id)
                    .ok()
                    .map(|c| Provenance::Chunk { chunk_id: c.id, doc_id: c.doc_id })
            })
            .collect();

        if supported.is_empty() || confidence < self.config.abstain_confidence {
            return Answer {
                text: "This cannot be determined from the available data.".to_string(),
                confidence,
                entropy: report,
                route: Route::Abstained,
                provenance,
                result_table: None,
            };
        }

        let text = report.top_answer.clone().unwrap_or_else(|| evidence[0].text.clone());
        let route = if attempted_structured {
            Route::Hybrid { table: None, chunks }
        } else {
            Route::Unstructured { chunks }
        };
        Answer { text, confidence, entropy: report, route, provenance, result_table: None }
    }

    /// Answers a batch of independent questions across the configured
    /// pool ([`ParallelConfig`]), returning answers in input order.
    ///
    /// Each question is answered exactly as [`UnifiedEngine::answer`]
    /// would sequentially — all per-question randomness is derived from
    /// the engine seed and the question itself, never from scheduling — so
    /// the output is byte-identical for any thread count, including 1.
    pub fn answer_batch<S: AsRef<str> + Sync>(&self, questions: &[S]) -> Vec<Answer> {
        self.config.parallel.pool().par_map(questions, |q| self.answer(q.as_ref()))
    }

    /// Tries the structured route over candidate tables; returns the first
    /// table whose synthesized plan yields a signal-bearing result.
    fn try_structured(&self, intent: &QueryIntent) -> Option<(String, Table)> {
        let mut names: Vec<String> = self.db.table_names().into_iter().map(String::from).collect();
        // Native tables first; the extracted table is the fallback source.
        names.sort_by_key(|n| (n == "extracted", n.clone()));
        for name in names {
            let Ok(plan) = self.synthesizer.synthesize(intent, &self.db, &name) else {
                continue;
            };
            let Ok(result) = self.db.run_plan(&plan) else {
                continue;
            };
            if has_signal(&result) {
                return Some((name, result));
            }
        }
        None
    }
}

/// Confidence = 1 − normalized discrete semantic entropy.
fn confidence_from(report: &unisem_entropy::EntropyReport) -> f64 {
    let n = report.n_samples.max(2) as f64;
    (1.0 - report.discrete_semantic_entropy / n.ln()).clamp(0.0, 1.0)
}

/// A result carries signal when it has rows and at least one non-null cell
/// in its final (aggregate) column.
fn has_signal(result: &Table) -> bool {
    if result.is_empty() || result.num_columns() == 0 {
        return false;
    }
    let last = result.num_columns() - 1;
    (0..result.num_rows()).any(|r| !result.cell(r, last).is_null())
}

/// Renders a structured result into answer text appropriate for the intent.
fn render_structured(intent: &QueryIntent, db: &Database, table: &str, result: &Table) -> String {
    if result.is_empty() {
        return String::new();
    }
    // Single cell: the aggregate value.
    if result.num_rows() == 1 && result.num_columns() == 1 {
        let v = result.cell(0, 0);
        if v.is_null() {
            return String::new();
        }
        let label = intent
            .aggregate
            .as_ref()
            .map(|(f, _)| match f {
                AggFunc::Sum => "total",
                AggFunc::Avg => "average",
                AggFunc::Count | AggFunc::CountDistinct => "count",
                AggFunc::Min => "minimum",
                AggFunc::Max => "maximum",
            })
            .unwrap_or("value");
        return format!("The {label} is {v}.");
    }
    // Comparative / superlative: headline only the top row, so the answer
    // names exactly one entity.
    if intent.comparative
        || matches!(
            intent.aggregate.as_ref().map(|(f, _)| f),
            Some(AggFunc::Max) | Some(AggFunc::Min)
        )
    {
        let subject = result.cell(0, 0);
        let value = result.cell(0, result.num_columns() - 1);
        return format!("{subject} ranks first with {value}.");
    }
    // Multi-entity selection: list distinct subject values.
    let subject_col = db
        .table(table)
        .ok()
        .and_then(|t| resolve_subject_column(t.schema()))
        .and_then(|c| result.schema().index_of(&c))
        .unwrap_or(0);
    let mut seen = std::collections::BTreeSet::new();
    for r in 0..result.num_rows() {
        let v = result.cell(r, subject_col);
        if !v.is_null() {
            seen.insert(v.to_string());
        }
    }
    if seen.is_empty() {
        return String::new();
    }
    format!("Qualifying: {}.", seen.into_iter().collect::<Vec<_>>().join(", "))
}

/// Public wrapper over [`render_structured`] for the baseline pipelines.
pub(crate) fn render_structured_public(
    intent: &QueryIntent,
    db: &Database,
    table: &str,
    result: &Table,
) -> String {
    if has_signal(result) {
        render_structured(intent, db, table, result)
    } else {
        String::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unisem_relstore::{DataType, Schema, Value};
    use unisem_slm::EntityKind;

    fn sample_lexicon() -> Lexicon {
        Lexicon::new().with_entries([
            ("Aero Widget", EntityKind::Product),
            ("Nova Speaker", EntityKind::Product),
            ("Acme Corp", EntityKind::Organization),
        ])
    }

    fn sample_engine() -> UnifiedEngine {
        let mut b = EngineBuilder::new(sample_lexicon());
        let sales = Table::from_rows(
            Schema::of(&[
                ("product", DataType::Str),
                ("quarter", DataType::Str),
                ("amount", DataType::Float),
            ]),
            vec![
                vec![Value::str("Aero Widget"), Value::str("Q1 2024"), Value::Float(100.0)],
                vec![Value::str("Aero Widget"), Value::str("Q2 2024"), Value::Float(150.0)],
                vec![Value::str("Nova Speaker"), Value::str("Q1 2024"), Value::Float(90.0)],
                vec![Value::str("Nova Speaker"), Value::str("Q2 2024"), Value::Float(50.0)],
            ],
        )
        .unwrap();
        b.add_table("sales", sales).unwrap();
        b.add_document(
            "news",
            "Acme Corp launched the Aero Widget. The Aero Widget is manufactured by Acme Corp.",
            "news",
        );
        b.add_document(
            "report",
            "In Q2 2024, Aero Widget sales increased 50% to $150. Customers were pleased.",
            "report",
        );
        b.add_json(
            "orders",
            unisem_semistore::parse_json(
                r#"{"product": "Aero Widget", "quarter": "Q1 2024", "units": 10}"#,
            )
            .unwrap(),
        );
        b.build().unwrap()
    }

    #[test]
    fn builder_registers_all_modalities() {
        let e = sample_engine();
        assert!(e.db().has_table("sales"));
        assert!(e.db().has_table("orders"), "flattened JSON collection");
        assert!(e.db().has_table("extracted"), "extraction output");
        assert!(e.docs().num_documents() == 2);
        assert!(e.graph().num_nodes() > 0);
    }

    #[test]
    fn structured_aggregate_answer() {
        let e = sample_engine();
        let a = e.answer("What was the total sales amount of Aero Widget across all quarters?");
        assert_eq!(a.route.label(), "structured");
        assert!(a.text.contains("250"), "{}", a.text);
        assert!(a.confidence > 0.7);
        assert!(a.result_table.is_some());
    }

    #[test]
    fn comparative_names_only_winner() {
        let e = sample_engine();
        let a = e.answer(
            "Compare the total sales of Aero Widget and Nova Speaker: which product sold more?",
        );
        assert!(a.text.contains("Aero Widget"), "{}", a.text);
        assert!(!a.text.contains("Nova Speaker"), "must not name the loser: {}", a.text);
    }

    #[test]
    fn lookup_goes_through_retrieval() {
        let e = sample_engine();
        let a = e.answer("Which manufacturer makes the Aero Widget?");
        assert!(a.text.to_lowercase().contains("acme"), "{}", a.text);
        assert!(matches!(a.route, Route::Unstructured { .. }));
        assert!(!a.provenance.is_empty());
    }

    #[test]
    fn unanswerable_abstains() {
        let e = sample_engine();
        let a = e.answer("What was the total sales of the Phantom Gizmo in Q2 2024?");
        assert!(
            a.is_abstention() || a.text.to_lowercase().contains("cannot"),
            "expected abstention, got: {a}"
        );
    }

    #[test]
    fn answers_are_deterministic() {
        let a = sample_engine().answer("Which manufacturer makes the Aero Widget?");
        let b = sample_engine().answer("Which manufacturer makes the Aero Widget?");
        assert_eq!(a, b);
    }

    #[test]
    fn ablation_flags_respected() {
        let config = EngineConfig {
            enable_extraction: false,
            enable_topology: false,
            ..EngineConfig::default()
        };
        let mut b = EngineBuilder::with_config(sample_lexicon(), config);
        b.add_document("d", "Aero Widget sales increased 10% in Q1 2024.", "x");
        let e = b.build().unwrap();
        assert!(!e.db().has_table("extracted"));
        // Dense retrieval still answers.
        let hits = e.retrieve("Aero Widget sales", 2);
        assert!(!hits.is_empty());
    }

    #[test]
    fn meter_accumulates_usage() {
        let e = sample_engine();
        let before = e.meter().snapshot().total_tokens();
        e.answer("Which manufacturer makes the Aero Widget?");
        assert!(e.meter().snapshot().total_tokens() > before);
    }

    #[test]
    fn has_signal_rules() {
        let t = Table::from_rows(Schema::of(&[("x", DataType::Float)]), vec![vec![Value::Null]])
            .unwrap();
        assert!(!has_signal(&t));
        let t2 =
            Table::from_rows(Schema::of(&[("x", DataType::Float)]), vec![vec![Value::Float(1.0)]])
                .unwrap();
        assert!(has_signal(&t2));
        assert!(!has_signal(&Table::empty(Schema::of(&[("x", DataType::Int)]))));
    }

    #[test]
    fn json_name_clash_prefixed() {
        let mut b = EngineBuilder::new(Lexicon::new());
        let t = Table::from_rows(Schema::of(&[("x", DataType::Int)]), vec![vec![Value::Int(1)]])
            .unwrap();
        b.add_table("orders", t).unwrap();
        b.add_json("orders", unisem_semistore::parse_json(r#"{"y": 2}"#).unwrap());
        let e = b.build().unwrap();
        assert!(e.db().has_table("orders"));
        assert!(e.db().has_table("json_orders"));
    }

    #[test]
    fn xml_ingestion_flattens() {
        let mut b = EngineBuilder::new(Lexicon::new());
        b.add_xml("configs", r#"<cfg><host>alpha</host><port>80</port></cfg>"#).unwrap();
        b.add_xml("configs", r#"<cfg><host>beta</host><port>443</port></cfg>"#).unwrap();
        assert!(b.add_xml("configs", "<broken>").is_err());
        let e = b.build().unwrap();
        let t = e.db().table("configs").unwrap();
        assert_eq!(t.num_rows(), 2);
        let out = e.db().run_sql("SELECT host FROM configs WHERE port = 443").unwrap();
        assert_eq!(out.cell(0, 0), &Value::str("beta"));
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut b = EngineBuilder::new(Lexicon::new());
        let t = Table::empty(Schema::of(&[("x", DataType::Int)]));
        b.add_table("t", t.clone()).unwrap();
        assert!(b.add_table("t", t).is_err());
    }
}
