//! The unified query engine: ingestion, indexing, routing, answering.

use std::fmt;
use std::path::Path;
use std::sync::Arc;

use faultkit::{FaultPlan, InjectedFault, Site};
use parkit::Pool;
use tracekit::{
    component, EntropyVerdict, Hist, Metric, MetricsRegistry, MetricsReport, ResourceMeter,
    RungOutcome, Stage, TimingReport, TraceScope, TraceSink, TraversalTrace,
};
use unisem_docstore::{DocStore, DocumentId};
use unisem_entropy::EntropyEstimator;
use unisem_extract::TableGenerator;
use unisem_hetgraph::{GraphBuilder, HetGraph};
use unisem_relstore::plan::AggFunc;
use unisem_relstore::{Database, ExecLimits, RelError, Table, Value};
use unisem_retrieval::{
    ChunkRetriever, DenseRetriever, RetrievalResult, TopologyConfig, TopologyRetriever,
};
use unisem_semistore::{FlattenError, JsonError, JsonValue, SemiStore, XmlError};
use unisem_semops::synthesize::resolve_subject_column;
use unisem_semops::{IntentParser, OperatorSynthesizer, QueryIntent};
use unisem_slm::{CostMeter, Lexicon, ModelClass, Slm, SlmConfig, SupportedAnswer};
use unisem_text::ChunkConfig;

use crate::answer::{Answer, Degradation, Provenance, Route};
use crate::evidence::{extract_evidence_grounded, to_supported_answers};
use crate::ingest::{IngestReport, QuarantineReason, Quarantined};
use crate::planner::physical::{self, ExecActuals};
use crate::planner::{CandidatePlan, CostModel, JoinEdge, JoinOrder, LogicalNode, StatsCatalog};

/// Engine construction / ingestion errors.
#[derive(Debug)]
pub enum EngineError {
    /// Relational layer failure.
    Rel(RelError),
    /// JSON flattening failure.
    Flatten(FlattenError),
    /// XML parse failure at ingestion.
    Xml(XmlError),
    /// JSON parse failure at ingestion.
    Json(JsonError),
    /// A deterministic fault-injection hook fired (see `faultkit`).
    Fault(InjectedFault),
    /// Persistent-storage failure while saving or opening a snapshot
    /// (see `storekit`).
    Store(storekit::StoreError),
    /// An incremental delta could not be applied (unknown table, schema
    /// mismatch, unresolvable graph endpoint). Nothing is logged or
    /// applied when this is returned.
    Delta(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Rel(e) => write!(f, "relational error: {e}"),
            EngineError::Flatten(e) => write!(f, "flatten error: {e}"),
            EngineError::Xml(e) => write!(f, "xml error: {e}"),
            EngineError::Json(e) => write!(f, "json error: {e}"),
            EngineError::Fault(e) => write!(f, "{e}"),
            EngineError::Store(e) => write!(f, "storage error: {e}"),
            EngineError::Delta(e) => write!(f, "delta error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<RelError> for EngineError {
    fn from(e: RelError) -> Self {
        EngineError::Rel(e)
    }
}

impl From<FlattenError> for EngineError {
    fn from(e: FlattenError) -> Self {
        EngineError::Flatten(e)
    }
}

impl From<XmlError> for EngineError {
    fn from(e: XmlError) -> Self {
        EngineError::Xml(e)
    }
}

impl From<JsonError> for EngineError {
    fn from(e: JsonError) -> Self {
        EngineError::Json(e)
    }
}

impl From<InjectedFault> for EngineError {
    fn from(e: InjectedFault) -> Self {
        EngineError::Fault(e)
    }
}

impl From<storekit::StoreError> for EngineError {
    fn from(e: storekit::StoreError) -> Self {
        EngineError::Store(e)
    }
}

/// Parallel execution settings (DESIGN.md §6: determinism under
/// parallelism). Thread count never affects results — only wall-clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker threads for batch answering, index building, and the
    /// parallel scans underneath. `0` (the default) resolves at use time
    /// from `UNISEM_THREADS`, falling back to the machine's available
    /// parallelism.
    pub threads: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self { threads: 0 }
    }
}

impl ParallelConfig {
    /// An explicit thread count (`0` = auto).
    pub fn with_threads(threads: usize) -> Self {
        Self { threads }
    }

    /// The parkit pool this configuration resolves to.
    pub fn pool(&self) -> Pool {
        if self.threads == 0 {
            parkit::global()
        } else {
            Pool::new(self.threads)
        }
    }
}

/// Deterministic resource governors (DESIGN.md §8). Each bound is a pure
/// function of the data — never of timing — so a governed run replays
/// identically; breaching one triggers a ladder downgrade instead of
/// unbounded work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GovernorConfig {
    /// Maximum nodes a single topology traversal may discover before the
    /// frontier is truncated (recorded as a degradation).
    pub max_traversal_frontier: usize,
    /// Maximum rows a single join may materialize on the structured route;
    /// beyond it the table is skipped with a recorded failure.
    pub max_join_rows: usize,
    /// Minimum entropy samples required to certify a confidence score;
    /// below it the engine abstains rather than trust the estimate.
    pub entropy_sample_floor: usize,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        Self { max_traversal_frontier: 4096, max_join_rows: 1_000_000, entropy_sample_floor: 2 }
    }
}

/// Engine configuration, including the ablation switches exercised by
/// experiment E7.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Master seed for the SLM's stochastic paths.
    pub seed: u64,
    /// Simulated model class (cost accounting).
    pub model_class: ModelClass,
    /// Document chunking parameters.
    pub chunk: ChunkConfig,
    /// Topology retrieval parameters.
    pub topology: TopologyConfig,
    /// Chunks retrieved per lookup question.
    pub retrieval_top_k: usize,
    /// Samples drawn for semantic entropy.
    pub entropy_samples: usize,
    /// Sampling temperature for entropy estimation.
    pub entropy_temperature: f64,
    /// Abstain when confidence falls below this.
    pub abstain_confidence: f64,
    /// Ablation: run Relational Table Generation over ingested documents.
    pub enable_extraction: bool,
    /// Ablation: synthesize operators for analytical questions.
    pub enable_synthesis: bool,
    /// Ablation: use topology-enhanced retrieval (false = dense baseline
    /// retrieval inside the same engine).
    pub enable_topology: bool,
    /// Ablation: index entity nodes in the graph (false = chunks/records
    /// stay unlinked and retrieval loses its anchors).
    pub enable_entity_nodes: bool,
    /// Parallel execution settings (never affects results, only speed).
    pub parallel: ParallelConfig,
    /// Deterministic fault-injection plan. The default (`unset`) defers to
    /// the `UNISEM_FAULTS` environment variable, resolved once when the
    /// builder is created; `FaultPlan::disabled()` opts out entirely.
    pub faults: FaultPlan,
    /// Deterministic resource governors (frontier cap, join row budget,
    /// entropy sample floor).
    pub governors: GovernorConfig,
    /// Attach a deterministic per-query explain trace to every
    /// [`Answer::trace`] (DESIGN.md §9). Off by default: the hot path then
    /// performs zero trace allocations. Independent of the `UNISEM_TRACE`
    /// sink — `trace` controls the in-`Answer` copy, the sink controls
    /// emitted JSON-lines; either alone enables recording.
    pub trace: bool,
    /// Resolve answers through the pre-planner degradation ladder instead
    /// of the cost-based planner (DESIGN.md §11). The ladder is kept
    /// verbatim as the differential-testing oracle: for every query the
    /// planner's answer must be byte-identical to the ladder's
    /// (`tests/tests/planner_diff.rs`). Off by default — the planner is
    /// the production path.
    pub legacy_ladder: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            seed: 0x0515,
            model_class: ModelClass::SlmClass,
            chunk: ChunkConfig::default(),
            topology: TopologyConfig::default(),
            retrieval_top_k: 5,
            entropy_samples: 10,
            entropy_temperature: 0.8,
            abstain_confidence: 0.4,
            enable_extraction: true,
            enable_synthesis: true,
            enable_topology: true,
            enable_entity_nodes: true,
            parallel: ParallelConfig::default(),
            faults: FaultPlan::unset(),
            governors: GovernorConfig::default(),
            trace: false,
            legacy_ladder: false,
        }
    }
}

/// Accumulates heterogeneous sources, then builds a [`UnifiedEngine`].
#[derive(Debug)]
pub struct EngineBuilder {
    config: EngineConfig,
    lexicon: Lexicon,
    docs: DocStore,
    db: Database,
    semi: SemiStore,
    /// Sources quarantined during ingestion (bad JSON/XML); joined at
    /// build time by flatten/extraction quarantines.
    quarantined: Vec<Quarantined>,
    /// Monotonic counter over semi-structured ingestion attempts — the
    /// fault-injection call key, so a given document's parse fault replays
    /// identically for the same ingestion sequence.
    ingest_attempts: usize,
}

impl EngineBuilder {
    /// Starts a builder with a domain lexicon (the SLM's world knowledge).
    pub fn new(lexicon: Lexicon) -> Self {
        Self::with_config(lexicon, EngineConfig::default())
    }

    /// Starts a builder with explicit configuration. An `unset` fault plan
    /// resolves against `UNISEM_FAULTS` here, once, so builder, build, and
    /// every answer see the same plan.
    pub fn with_config(lexicon: Lexicon, mut config: EngineConfig) -> Self {
        config.faults = config.faults.resolve();
        Self {
            config,
            lexicon,
            docs: DocStore::new(config.chunk),
            db: Database::new(),
            semi: SemiStore::new(),
            quarantined: Vec::new(),
            ingest_attempts: 0,
        }
    }

    /// Reopens an engine from a snapshot written by
    /// [`UnifiedEngine::save_snapshot`], skipping ingestion, flattening,
    /// extraction, and graph construction entirely.
    ///
    /// The snapshot's seed, model class, embedding dimensionality, and
    /// chunking configuration override the corresponding `config` fields:
    /// the persisted indexes were built with them, and reusing anything
    /// else would silently desynchronize the reopened engine from its
    /// data. Everything else in `config` (governors, ablations, fault
    /// plan, thread pool, tracing) applies as given. Answers from the
    /// reopened engine are byte-identical to the saving engine's under
    /// the same configuration (`tests/tests/storage.rs`).
    pub fn open_snapshot(
        path: &Path,
        mut config: EngineConfig,
    ) -> Result<(UnifiedEngine, IngestReport), EngineError> {
        config.faults = config.faults.resolve();
        let metrics = Arc::new(MetricsRegistry::new());
        let build_start = tracekit::wall::Stopwatch::start();
        let loaded = crate::snapshot::read_snapshot(path, config.faults, Some(metrics.clone()))?;
        // The snapshot read is the one page-fault-heavy phase: every page
        // the pager missed on was read from disk, so the miss count is the
        // open's pages-read cost (a pure function of the snapshot layout).
        metrics.observe(Hist::MeterPagesRead, metrics.get(Metric::StorePageMisses));
        config.seed = loaded.seed;
        config.model_class = loaded.class;
        config.chunk = loaded.chunk;
        let slm = Slm::new(SlmConfig {
            lexicon: loaded.lexicon,
            class: config.model_class,
            seed: config.seed,
            embed_dim: loaded.embed_dim,
        });
        let docs = Arc::new(loaded.docs);
        let graph = Arc::new(loaded.graph);
        let db = loaded.db;
        let stats = Arc::new(loaded.stats);
        let report = loaded.ingest;

        let mut topo_config = config.topology;
        topo_config.max_frontier =
            topo_config.max_frontier.min(config.governors.max_traversal_frontier);
        let topo = TopologyRetriever::new(slm.clone(), graph.clone(), docs.clone(), topo_config);
        let dense_start = tracekit::wall::Stopwatch::start();
        let dense = DenseRetriever::build_with_pool(slm.clone(), &docs, config.parallel.pool());
        metrics.record_stage(Stage::BuildDense, dense_start.elapsed_ns());
        let estimator = {
            let mut e = EntropyEstimator::new(slm.clone());
            e.n_samples = config.entropy_samples;
            e.temperature = config.entropy_temperature;
            e
        };

        // The same build gauges `build` sets, recomputed from the loaded
        // substrates — pure functions of the data, so a snapshot-opened
        // engine reports the same gauge values as the engine that saved it.
        let mut entities = 0usize;
        let mut chunks = 0usize;
        let mut records = 0usize;
        for node in graph.nodes() {
            match &node.kind {
                unisem_hetgraph::NodeKind::Entity { .. } => entities += 1,
                unisem_hetgraph::NodeKind::Chunk { .. } => chunks += 1,
                unisem_hetgraph::NodeKind::Record { .. } => records += 1,
                unisem_hetgraph::NodeKind::Table { .. } => {}
            }
        }
        metrics.set(Metric::IngestTables, report.tables as u64);
        metrics.set(Metric::IngestCollections, report.collections_flattened as u64);
        metrics.set(Metric::IngestDocuments, report.documents as u64);
        metrics.set(Metric::IngestExtractedRows, report.extracted_rows as u64);
        metrics.add(Metric::IngestQuarantined, report.num_quarantined() as u64);
        metrics.set(Metric::GraphNodes, graph.num_nodes() as u64);
        metrics.set(Metric::GraphEdges, graph.num_edges() as u64);
        metrics.set(Metric::GraphEntities, entities as u64);
        metrics.set(Metric::GraphChunks, chunks as u64);
        metrics.set(Metric::GraphRecords, records as u64);
        metrics.set(Metric::PlannerStatsTables, stats.tables.len() as u64);
        metrics.set(Metric::PlannerStatsColumns, stats.num_columns() as u64);
        metrics.set(Metric::PlannerStatsPostings, stats.text.postings as u64);
        metrics.set(Metric::PlannerStatsMaxDegree, stats.graph.max_degree as u64);
        metrics.record_stage(Stage::BuildTotal, build_start.elapsed_ns());

        let engine = UnifiedEngine {
            parser: IntentParser::new(slm.clone()),
            synthesizer: OperatorSynthesizer::new(),
            estimator,
            slm,
            docs,
            graph,
            db,
            topo,
            dense,
            config,
            ingest: Arc::new(report.clone()),
            stats,
            metrics,
            sink: Arc::new(TraceSink::from_env()),
            wal: None,
            applied_seq: loaded.applied_seq,
        };
        Ok((engine, report))
    }

    /// [`Self::open_snapshot`] plus the crash-recovery phase (DESIGN.md
    /// §13): opens the write-ahead log at `wal_base`, truncates any torn
    /// tail, replays every durable delta past the snapshot's fold point,
    /// and leaves the log attached so further [`UnifiedEngine::ingest_delta`]
    /// calls continue its sequence. Returns the number of deltas replayed.
    ///
    /// A missing log is not an error — a fresh one is created (the
    /// snapshot is simply up to date).
    pub fn open_snapshot_with_wal(
        path: &Path,
        wal_base: &Path,
        config: EngineConfig,
    ) -> Result<(UnifiedEngine, IngestReport, usize), EngineError> {
        let (mut engine, report) = Self::open_snapshot(path, config)?;
        let replayed = engine.enable_wal(wal_base)?;
        Ok((engine, report, replayed))
    }

    /// Ingests an unstructured document.
    pub fn add_document(
        &mut self,
        title: impl Into<String>,
        text: impl Into<String>,
        source: impl Into<String>,
    ) -> DocumentId {
        self.docs.add_document(title, text, source)
    }

    /// Ingests a relational table.
    pub fn add_table(&mut self, name: &str, table: Table) -> Result<(), EngineError> {
        self.db.create_table(name, table)?;
        Ok(())
    }

    /// Ingests one JSON document into a named collection.
    pub fn add_json(&mut self, collection: &str, doc: JsonValue) {
        self.semi.insert(collection, doc);
    }

    /// Parses and ingests one JSON text document into a named collection.
    ///
    /// A malformed document is **quarantined** — recorded in the build's
    /// [`IngestReport`] and excluded — rather than aborting ingestion; the
    /// parse error is still returned for immediate caller feedback.
    pub fn add_json_text(&mut self, collection: &str, text: &str) -> Result<(), EngineError> {
        let key = format!("{collection}:{}", self.ingest_attempts);
        self.ingest_attempts += 1;
        if let Err(f) = self.config.faults.check(Site::SemiParse, &key) {
            self.quarantined.push(Quarantined {
                source: format!("json document '{key}'"),
                reason: QuarantineReason::InjectedFault(f.to_string()),
            });
            return Err(EngineError::Fault(f));
        }
        match unisem_semistore::parse_json(text) {
            Ok(doc) => {
                self.semi.insert(collection, doc);
                Ok(())
            }
            Err(e) => {
                self.quarantined.push(Quarantined {
                    source: format!("json document '{key}'"),
                    reason: QuarantineReason::Json(e.to_string()),
                });
                Err(EngineError::Json(e))
            }
        }
    }

    /// Ingests one XML document into a named collection ("XML
    /// configurations", §I). The root element's *contents* become the
    /// record (attributes as `@name`, text as `#text`).
    ///
    /// Like [`Self::add_json_text`], a malformed document is quarantined
    /// (the build still succeeds) and the parse error returned.
    pub fn add_xml(&mut self, collection: &str, xml: &str) -> Result<(), EngineError> {
        let key = format!("{collection}:{}", self.ingest_attempts);
        self.ingest_attempts += 1;
        if let Err(f) = self.config.faults.check(Site::SemiParse, &key) {
            self.quarantined.push(Quarantined {
                source: format!("xml document '{key}'"),
                reason: QuarantineReason::InjectedFault(f.to_string()),
            });
            return Err(EngineError::Fault(f));
        }
        let parsed = match unisem_semistore::parse_xml(xml) {
            Ok(p) => p,
            Err(e) => {
                self.quarantined.push(Quarantined {
                    source: format!("xml document '{key}'"),
                    reason: QuarantineReason::Xml(e.to_string()),
                });
                return Err(EngineError::Xml(e));
            }
        };
        // Unwrap the single root-name key so sibling documents with the
        // same root element flatten into one schema.
        let doc = match &parsed {
            JsonValue::Object(fields) if fields.len() == 1 => fields[0].1.clone(),
            other => other.clone(),
        };
        self.semi.insert(collection, doc);
        Ok(())
    }

    /// Builds the engine: flattens JSON, runs extraction, builds the graph,
    /// and wires the retrievers.
    ///
    /// Build never aborts on a bad source. Per-source failures — flatten
    /// conflicts, extraction errors, injected faults — are quarantined
    /// with typed reasons in the returned [`IngestReport`]; the engine is
    /// built from everything that survived.
    pub fn build(self) -> (UnifiedEngine, IngestReport) {
        let EngineBuilder { config, lexicon, docs, mut db, semi, mut quarantined, .. } = self;
        let faults = config.faults;
        let metrics = Arc::new(MetricsRegistry::new());
        let build_start = tracekit::wall::Stopwatch::start();
        let slm = Slm::new(SlmConfig {
            lexicon,
            class: config.model_class,
            seed: config.seed,
            ..SlmConfig::default()
        });
        let mut report =
            IngestReport { documents: docs.num_documents(), ..IngestReport::default() };

        // Semi-structured → tables; a collection that fails to flatten is
        // quarantined whole (its documents share one schema).
        let flatten_start = tracekit::wall::Stopwatch::start();
        for coll in semi.collections() {
            if let Err(f) = faults.check(Site::SemiFlatten, coll) {
                quarantined.push(Quarantined {
                    source: format!("collection '{coll}'"),
                    reason: QuarantineReason::InjectedFault(f.to_string()),
                });
                continue;
            }
            match semi.to_table(coll) {
                Ok(table) => {
                    if db.has_table(coll) {
                        db.create_or_replace_table(&format!("json_{coll}"), table);
                    } else {
                        db.create_or_replace_table(coll, table);
                    }
                    report.collections_flattened += 1;
                }
                Err(e) => quarantined.push(Quarantined {
                    source: format!("collection '{coll}'"),
                    reason: QuarantineReason::Flatten(e.to_string()),
                }),
            }
        }
        metrics.record_stage(Stage::BuildFlatten, flatten_start.elapsed_ns());

        // Unstructured → extracted table (§III.C task 1); failures cost the
        // extracted table, not the build.
        let extract_start = tracekit::wall::Stopwatch::start();
        if config.enable_extraction && !docs.is_empty() {
            match faults.check(Site::ExtractTablegen, "extracted") {
                Err(f) => quarantined.push(Quarantined {
                    source: "document extraction".into(),
                    reason: QuarantineReason::InjectedFault(f.to_string()),
                }),
                Ok(()) => {
                    let texts: Vec<&str> =
                        docs.documents().iter().map(|d| d.text.as_str()).collect();
                    match TableGenerator::new(slm.clone()).generate_table(&texts) {
                        Ok((extracted, _)) => {
                            if !extracted.is_empty() {
                                report.extracted_rows = extracted.num_rows();
                                db.create_or_replace_table("extracted", extracted);
                            }
                        }
                        Err(e) => quarantined.push(Quarantined {
                            source: "document extraction".into(),
                            reason: QuarantineReason::Extraction(e.to_string()),
                        }),
                    }
                }
            }
        }

        metrics.record_stage(Stage::BuildExtract, extract_start.elapsed_ns());

        // Graph index over every modality (§III.A).
        let graph_start = tracekit::wall::Stopwatch::start();
        let mut gb = GraphBuilder::new(slm.clone());
        gb.set_index_entities(config.enable_entity_nodes);
        gb.add_docstore(&docs);
        for name in db.table_names().into_iter().map(String::from).collect::<Vec<_>>() {
            // Extracted-table records duplicate chunk facts; indexing them
            // is still useful (they join text to values) but keep the
            // "extracted" table out to avoid double-counting mentions.
            if name != "extracted" {
                if let Ok(table) = db.table(&name) {
                    let table = table.clone();
                    gb.add_table(&name, &table);
                }
            }
        }
        let (graph, graph_stats) = gb.finish();
        metrics.record_stage(Stage::BuildGraph, graph_start.elapsed_ns());

        let docs = Arc::new(docs);
        let graph = Arc::new(graph);
        // The traversal frontier governor clamps whatever the topology
        // config asks for.
        let mut topo_config = config.topology;
        topo_config.max_frontier =
            topo_config.max_frontier.min(config.governors.max_traversal_frontier);
        let topo = TopologyRetriever::new(slm.clone(), graph.clone(), docs.clone(), topo_config);
        let dense_start = tracekit::wall::Stopwatch::start();
        let dense = DenseRetriever::build_with_pool(slm.clone(), &docs, config.parallel.pool());
        metrics.record_stage(Stage::BuildDense, dense_start.elapsed_ns());
        let estimator = {
            let mut e = EntropyEstimator::new(slm.clone());
            e.n_samples = config.entropy_samples;
            e.temperature = config.entropy_temperature;
            e
        };

        // Planner statistics (DESIGN.md §11): collected single-threaded
        // from the final substrates, so the catalog — like every build
        // gauge — is a pure function of the ingested data.
        let stats_start = tracekit::wall::Stopwatch::start();
        let stats = Arc::new(StatsCatalog::collect(&db, &docs, &graph));
        metrics.record_stage(Stage::BuildStats, stats_start.elapsed_ns());

        report.tables = db.len();
        report.quarantined = quarantined;

        // Build gauges: pure functions of the ingested data, never of
        // timing, so a metrics snapshot stays byte-identical at any thread
        // count (DESIGN.md §9).
        metrics.set(Metric::IngestTables, report.tables as u64);
        metrics.set(Metric::IngestCollections, report.collections_flattened as u64);
        metrics.set(Metric::IngestDocuments, report.documents as u64);
        metrics.set(Metric::IngestExtractedRows, report.extracted_rows as u64);
        metrics.add(Metric::IngestQuarantined, report.num_quarantined() as u64);
        metrics.set(Metric::GraphNodes, graph_stats.nodes as u64);
        metrics.set(Metric::GraphEdges, graph_stats.edges as u64);
        metrics.set(Metric::GraphEntities, graph_stats.entities as u64);
        metrics.set(Metric::GraphChunks, graph_stats.chunks as u64);
        metrics.set(Metric::GraphRecords, graph_stats.records as u64);
        metrics.set(Metric::PlannerStatsTables, stats.tables.len() as u64);
        metrics.set(Metric::PlannerStatsColumns, stats.num_columns() as u64);
        metrics.set(Metric::PlannerStatsPostings, stats.text.postings as u64);
        metrics.set(Metric::PlannerStatsMaxDegree, stats.graph.max_degree as u64);
        metrics.record_stage(Stage::BuildTotal, build_start.elapsed_ns());

        let engine = UnifiedEngine {
            parser: IntentParser::new(slm.clone()),
            synthesizer: OperatorSynthesizer::new(),
            estimator,
            slm,
            docs,
            graph,
            db,
            topo,
            dense,
            config,
            ingest: Arc::new(report.clone()),
            stats,
            metrics,
            sink: Arc::new(TraceSink::from_env()),
            wal: None,
            applied_seq: 0,
        };
        (engine, report)
    }
}

/// The unified semantic query engine.
#[derive(Debug, Clone)]
pub struct UnifiedEngine {
    slm: Slm,
    docs: Arc<DocStore>,
    graph: Arc<HetGraph>,
    db: Database,
    topo: TopologyRetriever,
    dense: DenseRetriever,
    parser: IntentParser,
    synthesizer: OperatorSynthesizer,
    estimator: EntropyEstimator,
    config: EngineConfig,
    ingest: Arc<IngestReport>,
    /// Build-time per-substrate statistics catalog (DESIGN.md §11).
    stats: Arc<StatsCatalog>,
    /// Closed-registry metrics for this engine instance (shared by clones).
    metrics: Arc<MetricsRegistry>,
    /// Trace sink resolved once at build from `UNISEM_TRACE` (like the
    /// fault plan), overridable for tests via [`Self::set_trace_sink`].
    sink: Arc<TraceSink>,
    /// Write-ahead log for incremental ingest (attached by
    /// [`Self::enable_wal`]; clones share the log, so only one clone
    /// should ingest).
    wal: Option<Arc<std::sync::Mutex<storekit::Wal>>>,
    /// Highest WAL sequence number applied to the in-memory substrates
    /// (0 before any delta).
    applied_seq: u64,
}

impl UnifiedEngine {
    /// The configuration in effect (fault plan already resolved).
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// The ingestion report from the build: what was indexed, what was
    /// quarantined, and why.
    pub fn ingest_report(&self) -> &IngestReport {
        &self.ingest
    }

    /// The relational catalog (native + flattened + extracted tables).
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The document store.
    pub fn docs(&self) -> &DocStore {
        &self.docs
    }

    /// The heterogeneous graph index.
    pub fn graph(&self) -> &HetGraph {
        &self.graph
    }

    /// The SLM (shared cost meter included).
    pub fn slm(&self) -> &Slm {
        &self.slm
    }

    /// The SLM usage meter for cost experiments.
    pub fn meter(&self) -> &CostMeter {
        self.slm.meter()
    }

    /// The engine's closed-registry metrics (live; snapshot with
    /// [`Self::metrics_report`]).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Deterministic metrics snapshot: every registered counter, gauge,
    /// and histogram. Byte-identical at any thread count for the same
    /// workload (DESIGN.md §9).
    pub fn metrics_report(&self) -> MetricsReport {
        self.metrics.snapshot()
    }

    /// Wall-clock stage timings (non-deterministic; kept separate from
    /// [`Self::metrics_report`] so determinism checks never see them).
    pub fn timing_report(&self) -> TimingReport {
        self.metrics.timings()
    }

    /// The trace sink in effect (resolved from `UNISEM_TRACE` at build).
    pub fn trace_sink(&self) -> &TraceSink {
        &self.sink
    }

    /// Replaces the trace sink — e.g. with [`TraceSink::memory`] so tests
    /// capture emitted trace blocks without touching the environment.
    pub fn set_trace_sink(&mut self, sink: Arc<TraceSink>) {
        self.sink = sink;
    }

    /// Total index footprint in bytes (graph + lexical postings + dense
    /// vectors if the dense path is active).
    pub fn index_bytes(&self) -> usize {
        if self.config.enable_topology {
            self.topo.index_bytes()
        } else {
            self.dense.index_bytes() + self.docs.index_bytes()
        }
    }

    /// Retrieves chunks for a query using the configured retriever.
    pub fn retrieve(&self, query: &str, k: usize) -> Vec<RetrievalResult> {
        if self.config.enable_topology {
            self.topo.retrieve(query, k)
        } else {
            self.dense.retrieve(query, k)
        }
    }

    /// Parses a question into its intent (exposed for diagnostics).
    pub fn analyze(&self, question: &str) -> QueryIntent {
        self.parser.analyze(question)
    }

    /// Answers a natural-language question across all ingested modalities.
    ///
    /// Resolution walks a graceful-degradation ladder (DESIGN.md §8):
    /// structured → hybrid → pure retrieval → abstain. Every downgrade —
    /// a failed component, an injected fault, a tripped resource governor
    /// — is recorded in [`Answer::degradations`], so a degraded answer is
    /// always diagnosable and never silent.
    pub fn answer(&self, question: &str) -> Answer {
        let (answer, block) = self.answer_traced(question);
        if let Some(block) = block {
            self.sink.write_block(&block);
        }
        answer
    }

    /// [`Self::answer`] split for the batch path: resolves the answer and
    /// renders — but does not write — the trace-sink block, so
    /// [`Self::answer_batch`] can merge blocks in input order after its
    /// parallel map (cross-query interleaving is unrepresentable).
    ///
    /// Zero-cost-when-disabled contract: with tracing off
    /// (`config.trace == false` and an off sink) the scope is disabled —
    /// every recording call is one branch, no allocation — the block is
    /// `None`, and the sink is never touched.
    fn answer_traced(&self, question: &str) -> (Answer, Option<String>) {
        let start = tracekit::wall::Stopwatch::start();
        let sinking = !self.sink.is_off();
        let mut scope = if self.config.trace || sinking {
            TraceScope::enabled(question)
        } else {
            TraceScope::disabled()
        };

        let mut meter = ResourceMeter::default();
        let mut answer = self.answer_impl(question, &mut scope, &mut meter);

        self.metrics.incr(Metric::QueryAnswered);
        if answer.is_abstention() {
            self.metrics.incr(Metric::QueryAbstained);
        }
        if matches!(answer.route, Route::Structured { .. }) {
            self.metrics.incr(Metric::QueryStructuredHits);
        }
        self.metrics.add(Metric::QueryDegradations, answer.degradations.len() as u64);
        // Per-query resource accounting: one histogram observation per
        // meter field per query (zeros included — the histogram shape is
        // a pure function of the workload, never of which branches ran).
        self.metrics.observe(Hist::QueryDegradationDepth, answer.degradations.len() as u64);
        self.metrics.observe(Hist::QueryProvenance, answer.provenance.len() as u64);
        self.metrics.observe(Hist::MeterPagesRead, meter.pages_read);
        self.metrics.observe(Hist::MeterPostingsScanned, meter.postings_scanned);
        self.metrics.observe(Hist::MeterNodesPopped, meter.nodes_popped);
        self.metrics.observe(Hist::MeterDenseCompared, meter.dense_compared);
        self.metrics.observe(Hist::MeterSlmCalls, meter.slm_calls);
        self.metrics.observe(Hist::MeterSlmSamples, meter.slm_samples);
        self.metrics.observe(Hist::MeterWalBytes, meter.wal_bytes);
        self.metrics.record_stage(Stage::AnswerTotal, start.elapsed_ns());

        scope.set_meter(meter);
        let trace = scope.finish(answer.route.label());
        let block = match (&trace, sinking) {
            (Some(t), true) => Some(tracekit::render_block(t, start.elapsed_ns())),
            _ => None,
        };
        if self.config.trace {
            answer.trace = trace;
        }
        (answer, block)
    }

    /// Dispatches resolution to the cost-based planner (the default) or
    /// the legacy degradation ladder ([`EngineConfig::legacy_ladder`]).
    /// The two paths are differentially tested to produce byte-identical
    /// answers; only the recorded explain plan differs.
    fn answer_impl(
        &self,
        question: &str,
        scope: &mut TraceScope,
        meter: &mut ResourceMeter,
    ) -> Answer {
        if self.config.legacy_ladder {
            self.answer_ladder(question, scope, meter)
        } else {
            self.answer_planned(question, scope, meter)
        }
    }

    /// The pre-planner resolution ladder, kept verbatim as the
    /// differential-testing oracle; `scope` collects the explain trace
    /// (free when disabled).
    fn answer_ladder(
        &self,
        question: &str,
        scope: &mut TraceScope,
        meter: &mut ResourceMeter,
    ) -> Answer {
        let faults = self.config.faults;
        let governors = self.config.governors;
        let mut degradations: Vec<Degradation> = Vec::new();

        // Entropy gate first: without a working generator, or enough
        // samples to make the estimate meaningful, no confidence can be
        // certified — and an uncertifiable answer is worse than an
        // abstention (§III.D).
        if let Err(f) = faults.check(Site::SlmGenerate, question) {
            self.metrics.incr(Metric::FaultsFired);
            scope.event("fault.fired", || f.to_string());
            scope.rung("entropy_gate", RungOutcome::Failed, || {
                "answer sampling unavailable; abstaining".to_string()
            });
            degradations.push(Degradation::new(
                component::SLM_GENERATE,
                format!("answer sampling unavailable: {f}"),
            ));
            return abstained(degradations);
        }
        if self.config.entropy_samples < governors.entropy_sample_floor {
            scope.rung("entropy_gate", RungOutcome::Failed, || {
                format!(
                    "{} samples below floor {}",
                    self.config.entropy_samples, governors.entropy_sample_floor
                )
            });
            degradations.push(Degradation::new(
                component::ENTROPY_SAMPLES,
                format!(
                    "{} entropy samples below floor {}; confidence uncertifiable",
                    self.config.entropy_samples, governors.entropy_sample_floor
                ),
            ));
            return abstained(degradations);
        }

        let intent = self.parser.analyze(question);
        meter.slm_calls += 1;
        scope.event("intent.parsed", || {
            format!(
                "entities={} plain_lookup={} comparative={}",
                intent.entities.len(),
                intent.is_plain_lookup(),
                intent.comparative
            )
        });

        // Structured route for analytical intents (§III.C task 2).
        let mut attempted_structured = false;
        if self.config.enable_synthesis && !intent.is_plain_lookup() {
            attempted_structured = true;
            let structured_start = tracekit::wall::Stopwatch::start();
            let (hit, failures) = self.try_structured_traced(&intent, scope);
            self.metrics.record_stage(Stage::AnswerStructured, structured_start.elapsed_ns());
            if let Some((table, result)) = hit {
                let text = render_structured(&intent, &self.db, &table, &result);
                if !text.is_empty() {
                    // Deterministic plan output = maximally grounded
                    // evidence; entropy sampling confirms stability.
                    let entropy_start = tracekit::wall::Stopwatch::start();
                    let evidence = vec![SupportedAnswer::new(text.clone(), 6.0)];
                    let report = self.estimator.estimate(question, &evidence);
                    self.metrics.record_stage(Stage::AnswerEntropy, entropy_start.elapsed_ns());
                    self.record_entropy(&report, meter);
                    let confidence = report.confidence();
                    scope.rung("structured", RungOutcome::Succeeded, || {
                        format!("table '{table}' ({} result rows)", result.num_rows())
                    });
                    scope.set_entropy(entropy_verdict(&report, confidence, false));
                    return Answer {
                        text,
                        confidence,
                        entropy: report,
                        route: Route::Structured { table: table.clone() },
                        provenance: vec![Provenance::TableRows { table, rows: result.num_rows() }],
                        result_table: Some(result),
                        degradations,
                        trace: None,
                    };
                }
            }
            // The structured rung yielded nothing — record why before
            // stepping down, surfacing the last failure when there was one.
            match failures.last() {
                Some((table, err)) => {
                    scope.rung("structured", RungOutcome::Failed, || {
                        format!("last failure on '{table}': {err}")
                    });
                    degradations.push(Degradation::new(
                        component::REL_EXEC,
                        format!("structured route failed on '{table}': {err}"),
                    ));
                }
                None => {
                    scope.rung("structured", RungOutcome::Failed, || {
                        "no table produced a signal-bearing result".to_string()
                    });
                    degradations.push(Degradation::new(
                        component::ENGINE_STRUCTURED,
                        "no table produced a signal-bearing result",
                    ));
                }
            }
        } else {
            scope.rung("structured", RungOutcome::Skipped, || {
                if self.config.enable_synthesis {
                    "plain lookup intent".to_string()
                } else {
                    "operator synthesis disabled".to_string()
                }
            });
        }

        // Retrieval rung (§III.B): a traversal fault or frontier cap falls
        // back to dense scoring rather than failing the query.
        let retrieval_start = tracekit::wall::Stopwatch::start();
        let hits = if self.config.enable_topology {
            if let Err(f) = faults.check(Site::GraphTraverse, question) {
                self.metrics.incr(Metric::FaultsFired);
                self.metrics.incr(Metric::DenseFallbackQueries);
                scope.event("fault.fired", || f.to_string());
                scope.set_traversal(TraversalTrace {
                    dense_fallback: true,
                    ..TraversalTrace::default()
                });
                degradations.push(Degradation::new(
                    component::GRAPH_TRAVERSE,
                    format!("topology traversal unavailable: {f}; using dense retrieval"),
                ));
                self.dense_retrieve_metered(question, meter)
            } else {
                let (hits, stats) =
                    self.topo.retrieve_with_stats(question, self.config.retrieval_top_k);
                // One SLM call for anchor entity tagging; traversal work
                // and posting scans are pure functions of query + corpus.
                meter.slm_calls += 1;
                meter.nodes_popped += stats.nodes_popped as u64;
                meter.postings_scanned += stats.postings_scanned as u64;
                self.metrics.incr(Metric::TraverseQueries);
                self.metrics.add(Metric::TraverseAnchors, stats.anchors as u64);
                self.metrics.add(Metric::TraverseNodesTouched, stats.nodes_touched as u64);
                self.metrics.add(Metric::TraverseNodesPopped, stats.nodes_popped as u64);
                self.metrics.add(Metric::TraverseChunksScored, stats.chunks_scored as u64);
                self.metrics.observe(Hist::TraverseFrontier, stats.nodes_touched as u64);
                if stats.lexical_fallback {
                    self.metrics.incr(Metric::TraverseLexicalFallback);
                }
                scope.set_traversal(TraversalTrace {
                    anchors: stats.anchors,
                    nodes_touched: stats.nodes_touched,
                    nodes_popped: stats.nodes_popped,
                    chunks_scored: stats.chunks_scored,
                    frontier_capped: stats.frontier_capped,
                    lexical_fallback: stats.lexical_fallback,
                    dense_fallback: false,
                });
                if stats.frontier_capped {
                    self.metrics.incr(Metric::TraverseFrontierCapped);
                    degradations.push(Degradation::new(
                        component::GRAPH_TRAVERSE,
                        format!(
                            "traversal frontier capped at {} nodes; candidates truncated",
                            self.topo.config().max_frontier
                        ),
                    ));
                }
                hits
            }
        } else {
            scope.set_traversal(TraversalTrace {
                dense_fallback: true,
                ..TraversalTrace::default()
            });
            self.dense_retrieve_metered(question, meter)
        };
        self.metrics.record_stage(Stage::AnswerRetrieval, retrieval_start.elapsed_ns());
        let chunk_triples: Vec<(usize, String, f64)> = hits
            .iter()
            .filter_map(|h| {
                self.docs.chunk(h.chunk_id).ok().map(|c| (c.id, c.text.clone(), h.score))
            })
            .collect();
        // Grounding: when the question names entities, only sentences
        // mentioning them are admissible evidence — ungrounded context is
        // exactly the hallucination source §I warns about. Filtering before
        // IDF weighting also sharpens discriminative terms.
        let evidence = extract_evidence_grounded(question, &chunk_triples, 6, &intent.entities);
        let supported = to_supported_answers(&evidence);
        let entropy_start = tracekit::wall::Stopwatch::start();
        let report = self.estimator.estimate(question, &supported);
        self.metrics.record_stage(Stage::AnswerEntropy, entropy_start.elapsed_ns());
        self.record_entropy(&report, meter);
        let confidence = report.confidence();

        let chunks: Vec<usize> = evidence.iter().map(|e| e.chunk_id).collect();
        let provenance: Vec<Provenance> = evidence
            .iter()
            .filter_map(|e| {
                self.docs
                    .chunk(e.chunk_id)
                    .ok()
                    .map(|c| Provenance::Chunk { chunk_id: c.id, doc_id: c.doc_id })
            })
            .collect();

        if supported.is_empty() || confidence < self.config.abstain_confidence {
            // Last rung: the semantic-entropy gate declines to answer.
            scope.rung("retrieval", RungOutcome::Failed, || {
                if supported.is_empty() {
                    "no grounded supporting evidence".to_string()
                } else {
                    format!(
                        "confidence {confidence:.2} below abstain threshold {:.2}",
                        self.config.abstain_confidence
                    )
                }
            });
            scope.set_entropy(entropy_verdict(&report, confidence, true));
            degradations.push(if supported.is_empty() {
                Degradation::new(component::RETRIEVAL_EVIDENCE, "no grounded supporting evidence")
            } else {
                Degradation::new(
                    component::ENTROPY_CONFIDENCE,
                    format!(
                        "confidence {confidence:.2} below abstain threshold {:.2}",
                        self.config.abstain_confidence
                    ),
                )
            });
            return Answer {
                text: "This cannot be determined from the available data.".to_string(),
                confidence,
                entropy: report,
                route: Route::Abstained,
                provenance,
                result_table: None,
                degradations,
                trace: None,
            };
        }

        scope.rung("retrieval", RungOutcome::Succeeded, || {
            format!("{} evidence sentences from {} chunks", evidence.len(), chunks.len())
        });
        scope.set_entropy(entropy_verdict(&report, confidence, false));
        let text = report.top_answer.clone().unwrap_or_else(|| evidence[0].text.clone());
        let route = if attempted_structured {
            Route::Hybrid { table: None, chunks }
        } else {
            Route::Unstructured { chunks }
        };
        Answer {
            text,
            confidence,
            entropy: report,
            route,
            provenance,
            result_table: None,
            degradations,
            trace: None,
        }
    }

    /// Cost-based resolution (DESIGN.md §11): synthesize a logical plan
    /// spanning every substrate, cost it against the build-time statistics
    /// catalog, execute it, and record the physical plan — with per-node
    /// estimated vs actual costs — in the explain trace.
    ///
    /// Execution drives the same substrate primitives, in the same
    /// semantic order, with the same bookkeeping as [`Self::answer_ladder`]
    /// — that equivalence is the planner's correctness contract, enforced
    /// byte-for-byte by `tests/tests/planner_diff.rs`. Join reordering is
    /// deliberately *not* applied here: physically re-joining in a
    /// different order changes row enumeration order and therefore
    /// float-accumulation order in aggregates. The reordering optimizer is
    /// exposed through [`Self::optimized_multi_join`] instead.
    fn answer_planned(
        &self,
        question: &str,
        scope: &mut TraceScope,
        meter: &mut ResourceMeter,
    ) -> Answer {
        let faults = self.config.faults;
        let governors = self.config.governors;
        let mut degradations: Vec<Degradation> = Vec::new();
        let mut actuals = ExecActuals::default();

        // Admission gates run before any plan is built: without a working
        // generator or enough entropy samples nothing downstream can be
        // certified, so the only plan is the gate itself.
        if let Err(f) = faults.check(Site::SlmGenerate, question) {
            self.metrics.incr(Metric::FaultsFired);
            scope.event("fault.fired", || f.to_string());
            scope.rung("entropy_gate", RungOutcome::Failed, || {
                "answer sampling unavailable; abstaining".to_string()
            });
            degradations.push(Degradation::new(
                component::SLM_GENERATE,
                format!("answer sampling unavailable: {f}"),
            ));
            actuals.gate = Some(format!("failed: {f}"));
            actuals.outcome = Some("abstained".to_string());
            self.set_physical_plan(scope, &self.gate_only_plan(), &actuals);
            return abstained(degradations);
        }
        if self.config.entropy_samples < governors.entropy_sample_floor {
            scope.rung("entropy_gate", RungOutcome::Failed, || {
                format!(
                    "{} samples below floor {}",
                    self.config.entropy_samples, governors.entropy_sample_floor
                )
            });
            degradations.push(Degradation::new(
                component::ENTROPY_SAMPLES,
                format!(
                    "{} entropy samples below floor {}; confidence uncertifiable",
                    self.config.entropy_samples, governors.entropy_sample_floor
                ),
            ));
            actuals.gate = Some(format!(
                "failed: {} samples below floor {}",
                self.config.entropy_samples, governors.entropy_sample_floor
            ));
            actuals.outcome = Some("abstained".to_string());
            self.set_physical_plan(scope, &self.gate_only_plan(), &actuals);
            return abstained(degradations);
        }
        actuals.gate = Some("passed".to_string());

        let intent = self.parser.analyze(question);
        meter.slm_calls += 1;
        scope.event("intent.parsed", || {
            format!(
                "entities={} plain_lookup={} comparative={}",
                intent.entities.len(),
                intent.is_plain_lookup(),
                intent.comparative
            )
        });
        actuals.tag = Some(format!(
            "entities={} plain_lookup={} comparative={}",
            intent.entities.len(),
            intent.is_plain_lookup(),
            intent.comparative
        ));

        // Plan synthesis: candidate relational plans are synthesized up
        // front (synthesis is pure), faulted tables marked without
        // synthesis — exactly the tables the ladder never synthesizes.
        let structured = self.config.enable_synthesis && !intent.is_plain_lookup();
        let structured_start = tracekit::wall::Stopwatch::start();
        let candidates = if structured { self.plan_candidates(&intent) } else { Vec::new() };
        let logical = self.assemble_logical(&intent, &candidates, structured);
        self.metrics.incr(Metric::PlannerPlansBuilt);

        // Structured branch: first signal-bearing candidate wins; every
        // failure on the way is bookkept like the ladder's.
        if structured {
            let limits = ExecLimits { max_join_rows: governors.max_join_rows };
            let mut failures: Vec<(String, String)> = Vec::new();
            let mut hit: Option<(String, Table)> = None;
            for (name, state) in &candidates {
                match state {
                    CandidatePlan::Faulted => {
                        if let Err(f) = faults.check(Site::RelExec, name) {
                            self.metrics.incr(Metric::FaultsFired);
                            scope.event("fault.fired", || f.to_string());
                            failures.push((name.clone(), f.to_string()));
                            actuals.structured.insert(name.clone(), format!("fault: {f}"));
                        }
                    }
                    CandidatePlan::Unplannable(e) => {
                        self.metrics.incr(Metric::RelSynthesisErrors);
                        failures.push((name.clone(), format!("synthesis: {e}")));
                        actuals.structured.insert(name.clone(), format!("synthesis failed: {e}"));
                    }
                    CandidatePlan::Planned(plan) => {
                        let (outcome, stats) = self.db.run_plan_with_limits_stats(plan, &limits);
                        self.metrics.incr(Metric::RelPlansExecuted);
                        self.metrics.add(Metric::RelRowsScanned, stats.rows_scanned as u64);
                        self.metrics.add(Metric::RelRowsJoined, stats.rows_joined as u64);
                        match outcome {
                            Ok(result) if has_signal(&result) => {
                                self.metrics.observe(Hist::RelResultRows, result.num_rows() as u64);
                                actuals.structured.insert(
                                    name.clone(),
                                    format!("rows={} (signal)", result.num_rows()),
                                );
                                hit = Some((name.clone(), result));
                                break;
                            }
                            Ok(result) => {
                                actuals.structured.insert(
                                    name.clone(),
                                    format!("rows={} (no signal)", result.num_rows()),
                                );
                            }
                            Err(e) => {
                                if matches!(e, RelError::ResourceExhausted { .. }) {
                                    self.metrics.incr(Metric::RelBudgetHits);
                                } else {
                                    self.metrics.incr(Metric::RelExecErrors);
                                }
                                failures.push((name.clone(), format!("execution: {e}")));
                                actuals
                                    .structured
                                    .insert(name.clone(), format!("execution error: {e}"));
                            }
                        }
                    }
                }
            }
            self.metrics.record_stage(Stage::AnswerStructured, structured_start.elapsed_ns());
            if let Some((table, result)) = hit {
                let text = render_structured(&intent, &self.db, &table, &result);
                if !text.is_empty() {
                    let entropy_start = tracekit::wall::Stopwatch::start();
                    let evidence = vec![SupportedAnswer::new(text.clone(), 6.0)];
                    let report = self.estimator.estimate(question, &evidence);
                    self.metrics.record_stage(Stage::AnswerEntropy, entropy_start.elapsed_ns());
                    self.record_entropy(&report, meter);
                    let confidence = report.confidence();
                    scope.rung("structured", RungOutcome::Succeeded, || {
                        format!("table '{table}' ({} result rows)", result.num_rows())
                    });
                    scope.set_entropy(entropy_verdict(&report, confidence, false));
                    actuals.entail = Some(format!(
                        "samples={} clusters={} confidence={confidence:.2}",
                        report.n_samples, report.n_clusters
                    ));
                    actuals.outcome = Some("structured".to_string());
                    self.set_physical_plan(scope, &logical, &actuals);
                    return Answer {
                        text,
                        confidence,
                        entropy: report,
                        route: Route::Structured { table: table.clone() },
                        provenance: vec![Provenance::TableRows { table, rows: result.num_rows() }],
                        result_table: Some(result),
                        degradations,
                        trace: None,
                    };
                }
            }
            match failures.last() {
                Some((table, err)) => {
                    scope.rung("structured", RungOutcome::Failed, || {
                        format!("last failure on '{table}': {err}")
                    });
                    degradations.push(Degradation::new(
                        component::REL_EXEC,
                        format!("structured route failed on '{table}': {err}"),
                    ));
                }
                None => {
                    scope.rung("structured", RungOutcome::Failed, || {
                        "no table produced a signal-bearing result".to_string()
                    });
                    degradations.push(Degradation::new(
                        component::ENGINE_STRUCTURED,
                        "no table produced a signal-bearing result",
                    ));
                }
            }
        } else {
            scope.rung("structured", RungOutcome::Skipped, || {
                if self.config.enable_synthesis {
                    "plain lookup intent".to_string()
                } else {
                    "operator synthesis disabled".to_string()
                }
            });
        }

        // Retrieval branch: identical traversal / dense-fallback semantics
        // to the ladder.
        let retrieval_start = tracekit::wall::Stopwatch::start();
        let hits = if self.config.enable_topology {
            if let Err(f) = faults.check(Site::GraphTraverse, question) {
                self.metrics.incr(Metric::FaultsFired);
                self.metrics.incr(Metric::DenseFallbackQueries);
                scope.event("fault.fired", || f.to_string());
                scope.set_traversal(TraversalTrace {
                    dense_fallback: true,
                    ..TraversalTrace::default()
                });
                degradations.push(Degradation::new(
                    component::GRAPH_TRAVERSE,
                    format!("topology traversal unavailable: {f}; using dense retrieval"),
                ));
                actuals.retrieval = Some(format!("dense fallback ({f})"));
                self.dense_retrieve_metered(question, meter)
            } else {
                let (hits, stats) =
                    self.topo.retrieve_with_stats(question, self.config.retrieval_top_k);
                // One SLM call for anchor entity tagging; traversal work
                // and posting scans are pure functions of query + corpus.
                meter.slm_calls += 1;
                meter.nodes_popped += stats.nodes_popped as u64;
                meter.postings_scanned += stats.postings_scanned as u64;
                self.metrics.incr(Metric::TraverseQueries);
                self.metrics.add(Metric::TraverseAnchors, stats.anchors as u64);
                self.metrics.add(Metric::TraverseNodesTouched, stats.nodes_touched as u64);
                self.metrics.add(Metric::TraverseNodesPopped, stats.nodes_popped as u64);
                self.metrics.add(Metric::TraverseChunksScored, stats.chunks_scored as u64);
                self.metrics.observe(Hist::TraverseFrontier, stats.nodes_touched as u64);
                if stats.lexical_fallback {
                    self.metrics.incr(Metric::TraverseLexicalFallback);
                }
                scope.set_traversal(TraversalTrace {
                    anchors: stats.anchors,
                    nodes_touched: stats.nodes_touched,
                    nodes_popped: stats.nodes_popped,
                    chunks_scored: stats.chunks_scored,
                    frontier_capped: stats.frontier_capped,
                    lexical_fallback: stats.lexical_fallback,
                    dense_fallback: false,
                });
                if stats.frontier_capped {
                    self.metrics.incr(Metric::TraverseFrontierCapped);
                    degradations.push(Degradation::new(
                        component::GRAPH_TRAVERSE,
                        format!(
                            "traversal frontier capped at {} nodes; candidates truncated",
                            self.topo.config().max_frontier
                        ),
                    ));
                }
                actuals.retrieval = Some(format!(
                    "anchors={} nodes_touched={} chunks_scored={} hits={}",
                    stats.anchors,
                    stats.nodes_touched,
                    stats.chunks_scored,
                    hits.len()
                ));
                hits
            }
        } else {
            scope.set_traversal(TraversalTrace {
                dense_fallback: true,
                ..TraversalTrace::default()
            });
            let hits = self.dense_retrieve_metered(question, meter);
            actuals.retrieval = Some(format!("dense scan hits={}", hits.len()));
            hits
        };
        self.metrics.record_stage(Stage::AnswerRetrieval, retrieval_start.elapsed_ns());
        let chunk_triples: Vec<(usize, String, f64)> = hits
            .iter()
            .filter_map(|h| {
                self.docs.chunk(h.chunk_id).ok().map(|c| (c.id, c.text.clone(), h.score))
            })
            .collect();
        let evidence = extract_evidence_grounded(question, &chunk_triples, 6, &intent.entities);
        let supported = to_supported_answers(&evidence);
        actuals.extract = Some(format!("evidence={} sentences", evidence.len()));
        let entropy_start = tracekit::wall::Stopwatch::start();
        let report = self.estimator.estimate(question, &supported);
        self.metrics.record_stage(Stage::AnswerEntropy, entropy_start.elapsed_ns());
        self.record_entropy(&report, meter);
        let confidence = report.confidence();
        actuals.entail = Some(format!(
            "samples={} clusters={} confidence={confidence:.2}",
            report.n_samples, report.n_clusters
        ));

        let chunks: Vec<usize> = evidence.iter().map(|e| e.chunk_id).collect();
        let provenance: Vec<Provenance> = evidence
            .iter()
            .filter_map(|e| {
                self.docs
                    .chunk(e.chunk_id)
                    .ok()
                    .map(|c| Provenance::Chunk { chunk_id: c.id, doc_id: c.doc_id })
            })
            .collect();

        if supported.is_empty() || confidence < self.config.abstain_confidence {
            scope.rung("retrieval", RungOutcome::Failed, || {
                if supported.is_empty() {
                    "no grounded supporting evidence".to_string()
                } else {
                    format!(
                        "confidence {confidence:.2} below abstain threshold {:.2}",
                        self.config.abstain_confidence
                    )
                }
            });
            scope.set_entropy(entropy_verdict(&report, confidence, true));
            degradations.push(if supported.is_empty() {
                Degradation::new(component::RETRIEVAL_EVIDENCE, "no grounded supporting evidence")
            } else {
                Degradation::new(
                    component::ENTROPY_CONFIDENCE,
                    format!(
                        "confidence {confidence:.2} below abstain threshold {:.2}",
                        self.config.abstain_confidence
                    ),
                )
            });
            actuals.confidence = Some(if supported.is_empty() {
                "abstained: no grounded supporting evidence".to_string()
            } else {
                format!(
                    "abstained: confidence {confidence:.2} below threshold {:.2}",
                    self.config.abstain_confidence
                )
            });
            actuals.outcome = Some("abstained".to_string());
            self.set_physical_plan(scope, &logical, &actuals);
            return Answer {
                text: "This cannot be determined from the available data.".to_string(),
                confidence,
                entropy: report,
                route: Route::Abstained,
                provenance,
                result_table: None,
                degradations,
                trace: None,
            };
        }

        scope.rung("retrieval", RungOutcome::Succeeded, || {
            format!("{} evidence sentences from {} chunks", evidence.len(), chunks.len())
        });
        scope.set_entropy(entropy_verdict(&report, confidence, false));
        let text = report.top_answer.clone().unwrap_or_else(|| evidence[0].text.clone());
        let route = if structured {
            Route::Hybrid { table: None, chunks }
        } else {
            Route::Unstructured { chunks }
        };
        actuals.confidence = Some(format!("passed: confidence {confidence:.2}"));
        actuals.outcome = Some(route.label().to_string());
        self.set_physical_plan(scope, &logical, &actuals);
        Answer {
            text,
            confidence,
            entropy: report,
            route,
            provenance,
            result_table: None,
            degradations,
            trace: None,
        }
    }

    /// Synthesizes the per-table relational candidates in ladder order
    /// (native tables first, `extracted` last). Tables the deterministic
    /// fault plan hits are marked [`CandidatePlan::Faulted`] without
    /// synthesis — the ladder never synthesizes them either, and the
    /// bookkeeping for both is deferred to execution.
    fn plan_candidates(&self, intent: &QueryIntent) -> Vec<(String, CandidatePlan)> {
        let faults = self.config.faults;
        let mut names: Vec<String> = self.db.table_names().into_iter().map(String::from).collect();
        names.sort_by_key(|n| (n == "extracted", n.clone()));
        names
            .into_iter()
            .map(|name| {
                let state = if faults.check(Site::RelExec, &name).is_err() {
                    CandidatePlan::Faulted
                } else {
                    match self.synthesizer.synthesize(intent, &self.db, &name) {
                        Ok(p) => CandidatePlan::Planned(p),
                        Err(e) => CandidatePlan::Unplannable(e.to_string()),
                    }
                };
                (name, state)
            })
            .collect()
    }

    /// Assembles the unified logical plan for one query: an entropy gate
    /// admitting a semantic-tagging node over ordered alternatives —
    /// entailment-verified relational candidates, a confidence-gated
    /// retrieval pipeline (topology traversal with dense fallback, or
    /// dense-only), and terminal abstention.
    fn assemble_logical(
        &self,
        intent: &QueryIntent,
        candidates: &[(String, CandidatePlan)],
        structured: bool,
    ) -> LogicalNode {
        let samples = self.config.entropy_samples;
        let top_k = self.config.retrieval_top_k;
        let mut branches: Vec<LogicalNode> = Vec::new();
        if structured {
            let alts = candidates
                .iter()
                .map(|(table, plan)| LogicalNode::Relational {
                    table: table.clone(),
                    plan: plan.clone(),
                })
                .collect();
            branches.push(LogicalNode::SemEntail {
                samples,
                child: Box::new(LogicalNode::Alternatives { children: alts }),
            });
        }
        let retrieval = if self.config.enable_topology {
            LogicalNode::GraphTraverse {
                top_k,
                max_frontier: self.topo.config().max_frontier,
                fallback: Box::new(LogicalNode::DenseScan { top_k, dims: self.dense.dims() }),
            }
        } else {
            LogicalNode::DenseScan { top_k, dims: self.dense.dims() }
        };
        branches.push(LogicalNode::ConfidenceGate {
            threshold: self.config.abstain_confidence,
            child: Box::new(LogicalNode::SemEntail {
                samples,
                child: Box::new(LogicalNode::SemExtract {
                    max_sentences: 6,
                    child: Box::new(retrieval),
                }),
            }),
        });
        branches.push(LogicalNode::Abstain);
        LogicalNode::EntropyGate {
            samples,
            floor: self.config.governors.entropy_sample_floor,
            child: Box::new(LogicalNode::SemTag {
                entities: intent.entities.len(),
                plain_lookup: intent.is_plain_lookup(),
                comparative: intent.comparative,
                child: Box::new(LogicalNode::Alternatives { children: branches }),
            }),
        }
    }

    /// The degenerate plan recorded when an admission gate abstains before
    /// any plan could be built.
    fn gate_only_plan(&self) -> LogicalNode {
        LogicalNode::EntropyGate {
            samples: self.config.entropy_samples,
            floor: self.config.governors.entropy_sample_floor,
            child: Box::new(LogicalNode::Abstain),
        }
    }

    /// Lowers the logical plan to its costed physical form and records it
    /// in the trace scope. The closure only runs when tracing is enabled,
    /// so the planner keeps the zero-cost-when-disabled contract.
    fn set_physical_plan(
        &self,
        scope: &mut TraceScope,
        logical: &LogicalNode,
        actuals: &ExecActuals,
    ) {
        let model = CostModel::new(&self.stats);
        scope.set_plan(|| physical::lower(logical, &model, actuals).render());
    }

    /// The build-time statistics catalog the cost model reads.
    pub fn stats(&self) -> &StatsCatalog {
        &self.stats
    }

    /// Persists the built engine to a `storekit` snapshot at `path`
    /// (atomically: written to `<path>.tmp`, verified page-by-page, then
    /// renamed into place, so a fault mid-save never corrupts an existing
    /// snapshot). Two engines built from the same inputs with the same
    /// seed write byte-identical files; [`EngineBuilder::open_snapshot`]
    /// reopens one without re-running ingestion.
    pub fn save_snapshot(&self, path: &Path) -> Result<(), EngineError> {
        crate::snapshot::write_snapshot(
            path,
            self.config.faults,
            Some(self.metrics.clone()),
            &crate::snapshot::SnapshotSource {
                seed: self.config.seed,
                class: self.config.model_class,
                embed_dim: self.slm.embed_dim(),
                chunk: self.docs.chunk_config(),
                lexicon: self.slm.ner().lexicon(),
                docs: &self.docs,
                db: &self.db,
                graph: &self.graph,
                stats: &self.stats,
                ingest: &self.ingest,
                applied_seq: self.applied_seq,
            },
        )
    }

    /// Attaches a write-ahead log at `wal_base` (DESIGN.md §13). When
    /// segments already exist the log is opened, any torn tail truncated,
    /// and every durable delta with a sequence number past
    /// [`Self::applied_seq`] replayed onto the in-memory substrates;
    /// otherwise a fresh log is created whose numbering continues the
    /// engine's sequence. Returns the number of deltas replayed.
    pub fn enable_wal(&mut self, wal_base: &Path) -> Result<usize, EngineError> {
        let faults = self.config.faults;
        let metrics = Some(self.metrics.clone());
        let (wal, records, _recovery) = if storekit::Wal::exists(wal_base) {
            storekit::Wal::open(wal_base, faults, metrics)?
        } else {
            let wal = storekit::Wal::create(wal_base, self.applied_seq + 1, faults, metrics)?;
            (wal, Vec::new(), storekit::WalRecovery::default())
        };
        // Records at or below `applied_seq` are already folded into the
        // snapshot this engine came from (a crash between snapshot fold
        // and log truncation leaves them behind); skip them by sequence.
        let mut tail: Vec<(u64, crate::delta::Delta)> = Vec::with_capacity(records.len());
        for r in &records {
            if r.seq > self.applied_seq {
                tail.push((r.seq, crate::delta::Delta::decode(&r.payload)?));
            }
        }
        let replayed = tail.len();
        if !tail.is_empty() {
            let mut docs = (*self.docs).clone();
            let mut db = self.db.clone();
            let mut graph = (*self.graph).clone();
            for (seq, delta) in &tail {
                // A logged record passed staged application before it was
                // acknowledged, so redo cannot fail on intact state; if it
                // does, the log disagrees with the snapshot.
                self.apply_delta(&mut docs, &mut db, &mut graph, delta).map_err(|e| {
                    EngineError::Delta(format!("wal record {seq} failed to re-apply: {e}"))
                })?;
            }
            self.applied_seq = tail.last().map(|(s, _)| *s).unwrap_or(self.applied_seq);
            self.docs = Arc::new(docs);
            self.db = db;
            self.graph = Arc::new(graph);
            self.refresh_derived();
        }
        self.wal = Some(Arc::new(std::sync::Mutex::new(wal)));
        Ok(replayed)
    }

    /// Highest WAL sequence number applied to the in-memory substrates.
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq
    }

    /// True when a write-ahead log is attached.
    pub fn wal_attached(&self) -> bool {
        self.wal.is_some()
    }

    /// Ingests one incremental delta: staged in memory, appended to the
    /// write-ahead log, made durable (fsync), and only then applied and
    /// acknowledged. Returns the delta's WAL sequence number (or the
    /// engine's local sequence when no log is attached).
    pub fn ingest_delta(&mut self, delta: crate::delta::Delta) -> Result<u64, EngineError> {
        self.ingest_deltas(std::slice::from_ref(&delta))
    }

    /// Batch form of [`Self::ingest_delta`]: all-or-nothing. The deltas
    /// are staged on cloned substrates first (a bad delta costs nothing),
    /// then logged under a single flush, then swapped in. Returns the
    /// last delta's sequence number.
    ///
    /// Failure atomicity: if staging fails nothing is logged; if the log
    /// append or flush fails (torn record, lost buffer) the staged state
    /// is dropped — the in-memory engine never gets ahead of the durable
    /// log, so an acknowledged delta is always recoverable.
    pub fn ingest_deltas(&mut self, deltas: &[crate::delta::Delta]) -> Result<u64, EngineError> {
        if deltas.is_empty() {
            return Ok(self.applied_seq);
        }
        // Stage on clones: substrate mutation happens only after both
        // validation and durability succeed.
        let mut docs = (*self.docs).clone();
        let mut db = self.db.clone();
        let mut graph = (*self.graph).clone();
        for delta in deltas {
            self.apply_delta(&mut docs, &mut db, &mut graph, delta)?;
        }
        // Log + fsync before acknowledging (the pager's fsync-then-ack
        // discipline). On any failure the staged clones are dropped.
        let last_seq = if let Some(wal) = &self.wal {
            let mut wal = wal.lock().map_err(|_| {
                EngineError::Store(storekit::StoreError::Io("wal lock poisoned".into()))
            })?;
            let mut last = 0;
            let mut wal_bytes = 0u64;
            for delta in deltas {
                let encoded = delta.encode();
                wal_bytes += encoded.len() as u64;
                last = wal.append(&encoded)?;
            }
            wal.flush()?;
            self.metrics.observe(Hist::MeterWalBytes, wal_bytes);
            last
        } else {
            self.applied_seq + deltas.len() as u64
        };
        self.applied_seq = last_seq;
        self.docs = Arc::new(docs);
        self.db = db;
        self.graph = Arc::new(graph);
        self.refresh_derived();
        Ok(last_seq)
    }

    /// Checkpoint (DESIGN.md §13): folds the log into a fresh snapshot at
    /// `path` — written, verified, and renamed into place first — then
    /// truncates the write-ahead log. A crash between the two steps
    /// leaves a stale-but-intact log whose records recovery skips by
    /// sequence number, so the protocol is safe at every boundary.
    pub fn checkpoint(&mut self, path: &Path) -> Result<(), EngineError> {
        self.config.faults.check(Site::WalCheckpoint, "begin")?;
        self.save_snapshot(path)?;
        if let Some(wal) = &self.wal {
            let mut wal = wal.lock().map_err(|_| {
                EngineError::Store(storekit::StoreError::Io("wal lock poisoned".into()))
            })?;
            wal.truncate_all()?;
        }
        self.metrics.incr(Metric::WalCheckpoints);
        Ok(())
    }

    /// Applies one delta to staged substrate clones — the single redo
    /// implementation shared by live ingest and WAL replay, so a
    /// recovered engine's state is the never-crashed engine's state.
    fn apply_delta(
        &self,
        docs: &mut DocStore,
        db: &mut Database,
        graph: &mut HetGraph,
        delta: &crate::delta::Delta,
    ) -> Result<(), EngineError> {
        use crate::delta::Delta;
        match delta {
            Delta::DocAdd { title, text, source } => {
                let from_chunk = docs.num_chunks();
                docs.add_document(title.clone(), text.clone(), source.clone());
                let mut gb = GraphBuilder::resume(self.slm.clone(), std::mem::take(graph));
                gb.set_index_entities(self.config.enable_entity_nodes);
                gb.add_docstore_from(docs, from_chunk);
                *graph = gb.finish().0;
            }
            Delta::TableRow { table, values } => {
                if !db.has_table(table) {
                    return Err(EngineError::Delta(format!(
                        "table_row targets unknown table '{table}'"
                    )));
                }
                let mut t = db.table(table)?.clone();
                let from_row = t.num_rows();
                t.push_row(values.clone())?;
                db.create_or_replace_table(table, t.clone());
                if table != "extracted" {
                    let mut gb = GraphBuilder::resume(self.slm.clone(), std::mem::take(graph));
                    gb.set_index_entities(self.config.enable_entity_nodes);
                    gb.add_table_rows(table, &t, from_row);
                    *graph = gb.finish().0;
                }
            }
            Delta::SemiFragment { collection, json } => {
                let doc = unisem_semistore::parse_json(json)?;
                // Flattened collections land as `<coll>` unless a native
                // table shadowed the name at build time (`json_<coll>`).
                let shadowed = format!("json_{collection}");
                let target = if db.has_table(&shadowed) { shadowed } else { collection.clone() };
                let frag = unisem_semistore::flatten_collection(&[doc])?;
                if !db.has_table(&target) {
                    // First fragment of a new collection: its flattened
                    // schema becomes the table.
                    db.create_table(&target, frag.clone())?;
                    let mut gb = GraphBuilder::resume(self.slm.clone(), std::mem::take(graph));
                    gb.set_index_entities(self.config.enable_entity_nodes);
                    gb.add_table_rows(&target, &frag, 0);
                    *graph = gb.finish().0;
                    return Ok(());
                }
                let mut t = db.table(&target)?.clone();
                for col in frag.schema().columns() {
                    if t.schema().index_of(&col.name).is_none() {
                        return Err(EngineError::Delta(format!(
                            "fragment path '{}' is not a column of '{target}'",
                            col.name
                        )));
                    }
                }
                let row: Vec<Value> = t
                    .schema()
                    .columns()
                    .iter()
                    .map(|c| {
                        let v = frag
                            .schema()
                            .index_of(&c.name)
                            .map(|i| frag.cell(0, i).clone())
                            .unwrap_or(Value::Null);
                        // Mirror the flattener: a Str column absorbs any
                        // typed leaf by stringifying it.
                        if !c.dtype.admits(&v) && c.dtype == unisem_relstore::DataType::Str {
                            Value::str(v.to_string())
                        } else {
                            v
                        }
                    })
                    .collect();
                let from_row = t.num_rows();
                t.push_row(row)?;
                db.create_or_replace_table(&target, t.clone());
                let mut gb = GraphBuilder::resume(self.slm.clone(), std::mem::take(graph));
                gb.set_index_entities(self.config.enable_entity_nodes);
                gb.add_table_rows(&target, &t, from_row);
                *graph = gb.finish().0;
            }
            Delta::GraphEntity { name, kind } => {
                // Under the entity-node ablation this is a no-op, matching
                // build-time behaviour.
                if self.config.enable_entity_nodes {
                    graph.add_entity(name, *kind);
                }
            }
            Delta::GraphEdge { a, b, kind } => {
                if !self.config.enable_entity_nodes {
                    return Ok(());
                }
                let na = graph.entity_by_name(a).ok_or_else(|| {
                    EngineError::Delta(format!("graph_edge endpoint '{a}' is not a known entity"))
                })?;
                let nb = graph.entity_by_name(b).ok_or_else(|| {
                    EngineError::Delta(format!("graph_edge endpoint '{b}' is not a known entity"))
                })?;
                if na == nb {
                    return Err(EngineError::Delta(format!(
                        "graph_edge endpoints '{a}' and '{b}' resolve to the same node"
                    )));
                }
                graph.add_edge(na, nb, kind.clone());
            }
        }
        Ok(())
    }

    /// Rebuilds the cheap derived structures after the substrates change:
    /// the topology retriever re-wraps the new `Arc`s, the dense index
    /// embeds only the new chunks, the planner's statistics catalog is
    /// recollected (so explain traces never show stale row counts), and
    /// every build gauge is re-set from the live substrates.
    fn refresh_derived(&mut self) {
        let mut topo_config = self.config.topology;
        topo_config.max_frontier =
            topo_config.max_frontier.min(self.config.governors.max_traversal_frontier);
        self.topo = TopologyRetriever::new(
            self.slm.clone(),
            self.graph.clone(),
            self.docs.clone(),
            topo_config,
        );
        self.dense.extend_from(&self.docs);
        self.stats = Arc::new(StatsCatalog::collect(&self.db, &self.docs, &self.graph));

        let mut entities = 0usize;
        let mut chunks = 0usize;
        let mut records = 0usize;
        for node in self.graph.nodes() {
            match &node.kind {
                unisem_hetgraph::NodeKind::Entity { .. } => entities += 1,
                unisem_hetgraph::NodeKind::Chunk { .. } => chunks += 1,
                unisem_hetgraph::NodeKind::Record { .. } => records += 1,
                unisem_hetgraph::NodeKind::Table { .. } => {}
            }
        }
        self.metrics.set(Metric::IngestTables, self.db.len() as u64);
        self.metrics.set(Metric::IngestDocuments, self.docs.num_documents() as u64);
        self.metrics.set(Metric::GraphNodes, self.graph.num_nodes() as u64);
        self.metrics.set(Metric::GraphEdges, self.graph.num_edges() as u64);
        self.metrics.set(Metric::GraphEntities, entities as u64);
        self.metrics.set(Metric::GraphChunks, chunks as u64);
        self.metrics.set(Metric::GraphRecords, records as u64);
        self.metrics.set(Metric::PlannerStatsTables, self.stats.tables.len() as u64);
        self.metrics.set(Metric::PlannerStatsColumns, self.stats.num_columns() as u64);
        self.metrics.set(Metric::PlannerStatsPostings, self.stats.text.postings as u64);
        self.metrics.set(Metric::PlannerStatsMaxDegree, self.stats.graph.max_degree as u64);
    }

    /// Chooses a cost-optimal join order over the named tables, inferring
    /// equi-join edges from shared / subject-resolvable columns (the same
    /// inference operator synthesis uses). Returns `None` when no tables
    /// are given or none of them exist. Counts one
    /// [`Metric::PlannerJoinDp`] or [`Metric::PlannerJoinGreedy`]
    /// depending on which optimizer strategy ran.
    pub fn optimized_multi_join(&self, tables: &[&str]) -> Option<JoinOrder> {
        let rels: Vec<String> =
            tables.iter().filter(|t| self.db.has_table(t)).map(|t| (*t).to_string()).collect();
        let mut edges: Vec<JoinEdge> = Vec::new();
        for (i, left) in rels.iter().enumerate() {
            for right in rels.iter().skip(i + 1) {
                if let Ok(Some(on)) = self.synthesizer.join_keys(&self.db, left, right) {
                    edges.push(JoinEdge::new(left.clone(), right.clone(), on));
                }
            }
        }
        let model = CostModel::new(&self.stats);
        let order = crate::planner::optimize_join_order(&rels, &edges, &model)?;
        if order.used_dp {
            self.metrics.incr(Metric::PlannerJoinDp);
        } else {
            self.metrics.incr(Metric::PlannerJoinGreedy);
        }
        Some(order)
    }

    /// Records one entropy estimate in the closed metric registry and on
    /// the per-query resource meter (one SLM call, `n_samples` samples).
    fn record_entropy(&self, report: &unisem_entropy::EntropyReport, meter: &mut ResourceMeter) {
        self.metrics.incr(Metric::EntropyEstimates);
        self.metrics.add(Metric::EntropySamples, report.n_samples as u64);
        self.metrics.add(Metric::EntropyClusters, report.n_clusters as u64);
        meter.slm_calls += 1;
        meter.slm_samples += report.n_samples as u64;
    }

    /// Dense retrieval with resource-meter accounting: one SLM call (the
    /// query embedding) plus one similarity comparison per stored vector.
    fn dense_retrieve_metered(
        &self,
        question: &str,
        meter: &mut ResourceMeter,
    ) -> Vec<RetrievalResult> {
        meter.slm_calls += 1;
        meter.dense_compared += self.dense.len() as u64;
        self.dense.retrieve(question, self.config.retrieval_top_k)
    }

    /// Answers a batch of independent questions across the configured
    /// pool ([`ParallelConfig`]), returning answers in input order.
    ///
    /// Each question is answered exactly as [`UnifiedEngine::answer`]
    /// would sequentially — all per-question randomness is derived from
    /// the engine seed and the question itself, never from scheduling — so
    /// the output is byte-identical for any thread count, including 1.
    /// When a trace sink is active, each query's block is rendered inside
    /// the parallel map but written here, sequentially, in input order —
    /// cross-query interleaving in the sink is unrepresentable.
    pub fn answer_batch<S: AsRef<str> + Sync>(&self, questions: &[S]) -> Vec<Answer> {
        self.metrics.incr(Metric::BatchCalls);
        self.metrics.add(Metric::BatchItems, questions.len() as u64);
        self.metrics.add(Metric::BatchChunks, parkit::auto_chunk_count(questions.len()) as u64);
        let traced =
            self.config.parallel.pool().par_map(questions, |q| self.answer_traced(q.as_ref()));
        traced
            .into_iter()
            .map(|(answer, block)| {
                if let Some(block) = block {
                    self.sink.write_block(&block);
                }
                answer
            })
            .collect()
    }

    /// Tries the structured route over candidate tables; returns the first
    /// table whose synthesized plan yields a signal-bearing result, plus
    /// every per-table failure encountered on the way (synthesis errors,
    /// injected faults, execution errors, tripped governors) so the caller
    /// can surface *why* the route stepped down instead of dropping the
    /// errors on the floor.
    fn try_structured_traced(
        &self,
        intent: &QueryIntent,
        scope: &mut TraceScope,
    ) -> (Option<(String, Table)>, Vec<(String, String)>) {
        let faults = self.config.faults;
        let limits = ExecLimits { max_join_rows: self.config.governors.max_join_rows };
        let mut failures: Vec<(String, String)> = Vec::new();
        let mut names: Vec<String> = self.db.table_names().into_iter().map(String::from).collect();
        // Native tables first; the extracted table is the fallback source.
        names.sort_by_key(|n| (n == "extracted", n.clone()));
        for name in names {
            if let Err(f) = faults.check(Site::RelExec, &name) {
                self.metrics.incr(Metric::FaultsFired);
                scope.event("fault.fired", || f.to_string());
                failures.push((name, f.to_string()));
                continue;
            }
            let plan = match self.synthesizer.synthesize(intent, &self.db, &name) {
                Ok(p) => p,
                Err(e) => {
                    self.metrics.incr(Metric::RelSynthesisErrors);
                    failures.push((name, format!("synthesis: {e}")));
                    continue;
                }
            };
            let (outcome, stats) = self.db.run_plan_with_limits_stats(&plan, &limits);
            self.metrics.incr(Metric::RelPlansExecuted);
            self.metrics.add(Metric::RelRowsScanned, stats.rows_scanned as u64);
            self.metrics.add(Metric::RelRowsJoined, stats.rows_joined as u64);
            match outcome {
                Ok(result) if has_signal(&result) => {
                    self.metrics.observe(Hist::RelResultRows, result.num_rows() as u64);
                    scope.set_plan(|| plan.to_string());
                    return (Some((name, result)), failures);
                }
                Ok(_) => {}
                Err(e) => {
                    if matches!(e, RelError::ResourceExhausted { .. }) {
                        self.metrics.incr(Metric::RelBudgetHits);
                    } else {
                        self.metrics.incr(Metric::RelExecErrors);
                    }
                    failures.push((name, format!("execution: {e}")));
                }
            }
        }
        (None, failures)
    }
}

/// An abstention emitted before entropy estimation could run (generator
/// fault or sample floor): zeroed report, zero confidence.
fn abstained(degradations: Vec<Degradation>) -> Answer {
    Answer {
        text: "This cannot be determined from the available data.".to_string(),
        confidence: 0.0,
        entropy: unisem_entropy::EntropyReport {
            n_samples: 0,
            n_clusters: 0,
            semantic_entropy: 0.0,
            discrete_semantic_entropy: 0.0,
            predictive_entropy: 0.0,
            lexical_variance: 0.0,
            top_answer: None,
        },
        route: Route::Abstained,
        provenance: Vec::new(),
        result_table: None,
        degradations,
        trace: None,
    }
}

/// Packs an entropy report + final confidence into the trace verdict.
fn entropy_verdict(
    report: &unisem_entropy::EntropyReport,
    confidence: f64,
    abstained: bool,
) -> EntropyVerdict {
    EntropyVerdict {
        n_samples: report.n_samples,
        n_clusters: report.n_clusters,
        discrete_semantic_entropy: report.discrete_semantic_entropy,
        confidence,
        abstained,
    }
}

/// A result carries signal when it has rows and at least one non-null cell
/// in its final (aggregate) column.
fn has_signal(result: &Table) -> bool {
    if result.is_empty() || result.num_columns() == 0 {
        return false;
    }
    let last = result.num_columns() - 1;
    (0..result.num_rows()).any(|r| !result.cell(r, last).is_null())
}

/// Renders a structured result into answer text appropriate for the intent.
fn render_structured(intent: &QueryIntent, db: &Database, table: &str, result: &Table) -> String {
    if result.is_empty() {
        return String::new();
    }
    // Single cell: the aggregate value.
    if result.num_rows() == 1 && result.num_columns() == 1 {
        let v = result.cell(0, 0);
        if v.is_null() {
            return String::new();
        }
        let label = intent
            .aggregate
            .as_ref()
            .map(|(f, _)| match f {
                AggFunc::Sum => "total",
                AggFunc::Avg => "average",
                AggFunc::Count | AggFunc::CountDistinct => "count",
                AggFunc::Min => "minimum",
                AggFunc::Max => "maximum",
            })
            .unwrap_or("value");
        return format!("The {label} is {v}.");
    }
    // Comparative / superlative: headline only the top row, so the answer
    // names exactly one entity.
    if intent.comparative
        || matches!(
            intent.aggregate.as_ref().map(|(f, _)| f),
            Some(AggFunc::Max) | Some(AggFunc::Min)
        )
    {
        let subject = result.cell(0, 0);
        let value = result.cell(0, result.num_columns() - 1);
        return format!("{subject} ranks first with {value}.");
    }
    // Multi-entity selection: list distinct subject values.
    let subject_col = db
        .table(table)
        .ok()
        .and_then(|t| resolve_subject_column(t.schema()))
        .and_then(|c| result.schema().index_of(&c))
        .unwrap_or(0);
    let mut seen = std::collections::BTreeSet::new();
    for r in 0..result.num_rows() {
        let v = result.cell(r, subject_col);
        if !v.is_null() {
            seen.insert(v.to_string());
        }
    }
    if seen.is_empty() {
        return String::new();
    }
    format!("Qualifying: {}.", seen.into_iter().collect::<Vec<_>>().join(", "))
}

/// Public wrapper over [`render_structured`] for the baseline pipelines.
pub(crate) fn render_structured_public(
    intent: &QueryIntent,
    db: &Database,
    table: &str,
    result: &Table,
) -> String {
    if has_signal(result) {
        render_structured(intent, db, table, result)
    } else {
        String::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unisem_relstore::{DataType, Schema, Value};
    use unisem_slm::EntityKind;

    fn sample_lexicon() -> Lexicon {
        Lexicon::new().with_entries([
            ("Aero Widget", EntityKind::Product),
            ("Nova Speaker", EntityKind::Product),
            ("Acme Corp", EntityKind::Organization),
        ])
    }

    fn sample_engine() -> UnifiedEngine {
        let mut b = EngineBuilder::new(sample_lexicon());
        let sales = Table::from_rows(
            Schema::of(&[
                ("product", DataType::Str),
                ("quarter", DataType::Str),
                ("amount", DataType::Float),
            ]),
            vec![
                vec![Value::str("Aero Widget"), Value::str("Q1 2024"), Value::Float(100.0)],
                vec![Value::str("Aero Widget"), Value::str("Q2 2024"), Value::Float(150.0)],
                vec![Value::str("Nova Speaker"), Value::str("Q1 2024"), Value::Float(90.0)],
                vec![Value::str("Nova Speaker"), Value::str("Q2 2024"), Value::Float(50.0)],
            ],
        )
        .unwrap();
        b.add_table("sales", sales).unwrap();
        b.add_document(
            "news",
            "Acme Corp launched the Aero Widget. The Aero Widget is manufactured by Acme Corp.",
            "news",
        );
        b.add_document(
            "report",
            "In Q2 2024, Aero Widget sales increased 50% to $150. Customers were pleased.",
            "report",
        );
        b.add_json(
            "orders",
            unisem_semistore::parse_json(
                r#"{"product": "Aero Widget", "quarter": "Q1 2024", "units": 10}"#,
            )
            .unwrap(),
        );
        b.build().0
    }

    #[test]
    fn builder_registers_all_modalities() {
        let e = sample_engine();
        assert!(e.db().has_table("sales"));
        assert!(e.db().has_table("orders"), "flattened JSON collection");
        assert!(e.db().has_table("extracted"), "extraction output");
        assert!(e.docs().num_documents() == 2);
        assert!(e.graph().num_nodes() > 0);
    }

    #[test]
    fn structured_aggregate_answer() {
        let e = sample_engine();
        let a = e.answer("What was the total sales amount of Aero Widget across all quarters?");
        assert_eq!(a.route.label(), "structured");
        assert!(a.text.contains("250"), "{}", a.text);
        assert!(a.confidence > 0.7);
        assert!(a.result_table.is_some());
    }

    #[test]
    fn comparative_names_only_winner() {
        let e = sample_engine();
        let a = e.answer(
            "Compare the total sales of Aero Widget and Nova Speaker: which product sold more?",
        );
        assert!(a.text.contains("Aero Widget"), "{}", a.text);
        assert!(!a.text.contains("Nova Speaker"), "must not name the loser: {}", a.text);
    }

    #[test]
    fn lookup_goes_through_retrieval() {
        let e = sample_engine();
        let a = e.answer("Which manufacturer makes the Aero Widget?");
        assert!(a.text.to_lowercase().contains("acme"), "{}", a.text);
        assert!(matches!(a.route, Route::Unstructured { .. }));
        assert!(!a.provenance.is_empty());
    }

    #[test]
    fn unanswerable_abstains() {
        let e = sample_engine();
        let a = e.answer("What was the total sales of the Phantom Gizmo in Q2 2024?");
        assert!(
            a.is_abstention() || a.text.to_lowercase().contains("cannot"),
            "expected abstention, got: {a}"
        );
    }

    #[test]
    fn answers_are_deterministic() {
        let a = sample_engine().answer("Which manufacturer makes the Aero Widget?");
        let b = sample_engine().answer("Which manufacturer makes the Aero Widget?");
        assert_eq!(a, b);
    }

    #[test]
    fn ablation_flags_respected() {
        let config = EngineConfig {
            enable_extraction: false,
            enable_topology: false,
            ..EngineConfig::default()
        };
        let mut b = EngineBuilder::with_config(sample_lexicon(), config);
        b.add_document("d", "Aero Widget sales increased 10% in Q1 2024.", "x");
        let e = b.build().0;
        assert!(!e.db().has_table("extracted"));
        // Dense retrieval still answers.
        let hits = e.retrieve("Aero Widget sales", 2);
        assert!(!hits.is_empty());
    }

    #[test]
    fn meter_accumulates_usage() {
        let e = sample_engine();
        let before = e.meter().snapshot().total_tokens();
        e.answer("Which manufacturer makes the Aero Widget?");
        assert!(e.meter().snapshot().total_tokens() > before);
    }

    #[test]
    fn has_signal_rules() {
        let t = Table::from_rows(Schema::of(&[("x", DataType::Float)]), vec![vec![Value::Null]])
            .unwrap();
        assert!(!has_signal(&t));
        let t2 =
            Table::from_rows(Schema::of(&[("x", DataType::Float)]), vec![vec![Value::Float(1.0)]])
                .unwrap();
        assert!(has_signal(&t2));
        assert!(!has_signal(&Table::empty(Schema::of(&[("x", DataType::Int)]))));
    }

    #[test]
    fn json_name_clash_prefixed() {
        let mut b = EngineBuilder::new(Lexicon::new());
        let t = Table::from_rows(Schema::of(&[("x", DataType::Int)]), vec![vec![Value::Int(1)]])
            .unwrap();
        b.add_table("orders", t).unwrap();
        b.add_json("orders", unisem_semistore::parse_json(r#"{"y": 2}"#).unwrap());
        let e = b.build().0;
        assert!(e.db().has_table("orders"));
        assert!(e.db().has_table("json_orders"));
    }

    #[test]
    fn xml_ingestion_flattens() {
        let mut b = EngineBuilder::new(Lexicon::new());
        b.add_xml("configs", r#"<cfg><host>alpha</host><port>80</port></cfg>"#).unwrap();
        b.add_xml("configs", r#"<cfg><host>beta</host><port>443</port></cfg>"#).unwrap();
        // Malformed XML: a first-class typed error AND a quarantine record
        // — the build still succeeds with the two good documents.
        let err = b.add_xml("configs", "<broken>").unwrap_err();
        assert!(matches!(err, EngineError::Xml(_)), "{err}");
        let (e, report) = b.build();
        assert_eq!(report.num_quarantined(), 1);
        assert_eq!(report.quarantined[0].reason.kind(), "xml");
        assert!(report.quarantined[0].source.contains("configs"));
        assert_eq!(e.ingest_report(), &report);
        let t = e.db().table("configs").unwrap();
        assert_eq!(t.num_rows(), 2);
        let out = e.db().run_sql("SELECT host FROM configs WHERE port = 443").unwrap();
        assert_eq!(out.cell(0, 0), &Value::str("beta"));
    }

    #[test]
    fn json_text_quarantines_bad_documents() {
        let mut b = EngineBuilder::new(Lexicon::new());
        b.add_json_text("orders", r#"{"id": 1, "amount": 10}"#).unwrap();
        let err = b.add_json_text("orders", r#"{"id": 2, "amount":"#).unwrap_err();
        assert!(matches!(err, EngineError::Json(_)), "{err}");
        let (e, report) = b.build();
        assert_eq!(report.num_quarantined(), 1);
        assert_eq!(report.quarantined[0].reason.kind(), "json");
        assert_eq!(e.db().table("orders").unwrap().num_rows(), 1);
    }

    #[test]
    fn injected_slm_fault_abstains_with_degradation() {
        let config = EngineConfig {
            faults: FaultPlan::single(Site::SlmGenerate),
            ..EngineConfig::default()
        };
        let mut b = EngineBuilder::with_config(sample_lexicon(), config);
        b.add_document("d", "Acme Corp makes the Aero Widget.", "x");
        let e = b.build().0;
        let a = e.answer("Which manufacturer makes the Aero Widget?");
        assert!(a.is_abstention());
        assert!(a.is_degraded());
        assert_eq!(a.degradations[0].component, "slm.generate");
    }

    #[test]
    fn injected_relexec_fault_degrades_to_retrieval() {
        let config =
            EngineConfig { faults: FaultPlan::single(Site::RelExec), ..EngineConfig::default() };
        let mut b = EngineBuilder::with_config(sample_lexicon(), config);
        let sales = Table::from_rows(
            Schema::of(&[("product", DataType::Str), ("amount", DataType::Float)]),
            vec![vec![Value::str("Aero Widget"), Value::Float(100.0)]],
        )
        .unwrap();
        b.add_table("sales", sales).unwrap();
        b.add_document("r", "Aero Widget sales totaled $100 this quarter.", "report");
        let e = b.build().0;
        let a = e.answer("What was the total sales amount of Aero Widget across all quarters?");
        // The structured rung is fully faulted: the answer must step down
        // and say why.
        assert!(!matches!(a.route, Route::Structured { .. }));
        assert!(a.is_degraded());
        assert!(
            a.degradations.iter().any(|d| d.component == "relstore.exec"),
            "{:?}",
            a.degradations
        );
    }

    #[test]
    fn entropy_sample_floor_abstains() {
        let config = EngineConfig { entropy_samples: 1, ..EngineConfig::default() };
        let mut b = EngineBuilder::with_config(sample_lexicon(), config);
        b.add_document("d", "Acme Corp makes the Aero Widget.", "x");
        let e = b.build().0;
        let a = e.answer("Which manufacturer makes the Aero Widget?");
        assert!(a.is_abstention());
        assert_eq!(a.degradations[0].component, "entropy.samples");
    }

    #[test]
    fn flatten_conflict_quarantines_collection() {
        let mut b = EngineBuilder::new(Lexicon::new());
        // Array documents cannot flatten into a record schema.
        b.add_json("bad", unisem_semistore::parse_json("[1, 2, 3]").unwrap());
        b.add_json("good", unisem_semistore::parse_json(r#"{"x": 1}"#).unwrap());
        let (e, report) = b.build();
        assert_eq!(report.num_quarantined(), 1);
        assert_eq!(report.quarantined[0].reason.kind(), "flatten");
        assert!(!e.db().has_table("bad"));
        assert!(e.db().has_table("good"));
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut b = EngineBuilder::new(Lexicon::new());
        let t = Table::empty(Schema::of(&[("x", DataType::Int)]));
        b.add_table("t", t.clone()).unwrap();
        assert!(b.add_table("t", t).is_err());
    }
}
