//! Baseline QA pipelines for the comparative evaluation (E1) and the
//! ablation grid (E7).
//!
//! Each baseline deliberately embodies one of the "fundamental limitations"
//! §I attributes to traditional approaches:
//!
//! - [`NaiveRagPipeline`] — conventional dense-retrieval RAG: no graph, no
//!   tables, no operator synthesis. Fails on aggregates and multi-entity
//!   selection ("LLM-based QA systems often hallucinate plausible but
//!   ungrounded comparisons due to missing cross-modal context").
//! - [`TextToSqlPipeline`] — Text-to-SQL only: operator synthesis over
//!   native tables, nothing else. "Traditional Text-to-SQL engines fail to
//!   parse the unstructured component."
//! - [`DirectSlmPipeline`] — closed-book SLM with no retrieval at all; the
//!   hallucination floor.

use std::sync::Arc;

use unisem_docstore::DocStore;
use unisem_entropy::EntropyEstimator;
use unisem_relstore::Database;
use unisem_retrieval::{ChunkRetriever, DenseRetriever};
use unisem_semops::{IntentParser, OperatorSynthesizer};
use unisem_slm::Slm;

use crate::answer::{Answer, Provenance, Route};
use crate::engine::UnifiedEngine;
use crate::evidence::{extract_evidence, to_supported_answers};

/// Uniform pipeline interface for the evaluation harness.
pub trait QaPipeline {
    /// Report name.
    fn name(&self) -> &'static str;
    /// Answers a question.
    fn answer(&self, question: &str) -> Answer;
}

impl QaPipeline for UnifiedEngine {
    fn name(&self) -> &'static str {
        "unisem"
    }

    fn answer(&self, question: &str) -> Answer {
        UnifiedEngine::answer(self, question)
    }
}

/// Conventional dense-retrieval RAG baseline.
#[derive(Debug, Clone)]
pub struct NaiveRagPipeline {
    slm: Slm,
    docs: Arc<DocStore>,
    dense: DenseRetriever,
    estimator: EntropyEstimator,
    top_k: usize,
}

impl NaiveRagPipeline {
    /// Builds the baseline over a document store.
    pub fn new(slm: Slm, docs: Arc<DocStore>, top_k: usize) -> Self {
        let dense = DenseRetriever::build(slm.clone(), &docs);
        let estimator = EntropyEstimator::new(slm.clone());
        Self { slm, docs, dense, estimator, top_k }
    }

    /// Access to the underlying SLM (cost meter).
    pub fn slm(&self) -> &Slm {
        &self.slm
    }
}

impl QaPipeline for NaiveRagPipeline {
    fn name(&self) -> &'static str {
        "naive_rag"
    }

    fn answer(&self, question: &str) -> Answer {
        let hits = self.dense.retrieve(question, self.top_k);
        let triples: Vec<(usize, String, f64)> = hits
            .iter()
            .filter_map(|h| {
                self.docs.chunk(h.chunk_id).ok().map(|c| (c.id, c.text.clone(), h.score))
            })
            .collect();
        let evidence = extract_evidence(question, &triples, 6);
        let supported = to_supported_answers(&evidence);
        let report = self.estimator.estimate(question, &supported);
        let confidence = report.confidence();
        let provenance: Vec<Provenance> = evidence
            .iter()
            .filter_map(|e| {
                self.docs
                    .chunk(e.chunk_id)
                    .ok()
                    .map(|c| Provenance::Chunk { chunk_id: c.id, doc_id: c.doc_id })
            })
            .collect();
        let chunks: Vec<usize> = evidence.iter().map(|e| e.chunk_id).collect();
        // Naive RAG always answers with its best evidence sentence — it has
        // no abstention logic (that is the point of E5's comparison).
        let text = report
            .top_answer
            .clone()
            .or_else(|| evidence.first().map(|e| e.text.clone()))
            .unwrap_or_else(|| "No relevant context found.".to_string());
        Answer {
            text,
            confidence,
            entropy: report,
            route: Route::Unstructured { chunks },
            provenance,
            result_table: None,
            degradations: vec![],
            trace: None,
        }
    }
}

/// Text-to-SQL-only baseline: operator synthesis over native tables,
/// nothing for unstructured content.
#[derive(Debug, Clone)]
pub struct TextToSqlPipeline {
    slm: Slm,
    db: Database,
    parser: IntentParser,
    synthesizer: OperatorSynthesizer,
    estimator: EntropyEstimator,
}

impl TextToSqlPipeline {
    /// Builds the baseline over a relational catalog (native tables only —
    /// callers must not hand it extraction output, that is the contrast).
    pub fn new(slm: Slm, db: Database) -> Self {
        Self {
            parser: IntentParser::new(slm.clone()),
            synthesizer: OperatorSynthesizer::new(),
            estimator: EntropyEstimator::new(slm.clone()),
            slm,
            db,
        }
    }

    /// Access to the underlying SLM.
    pub fn slm(&self) -> &Slm {
        &self.slm
    }
}

impl QaPipeline for TextToSqlPipeline {
    fn name(&self) -> &'static str {
        "text_to_sql"
    }

    fn answer(&self, question: &str) -> Answer {
        let intent = self.parser.analyze(question);
        if !intent.is_plain_lookup() {
            for name in self.db.table_names().into_iter().map(String::from).collect::<Vec<_>>() {
                let Ok(plan) = self.synthesizer.synthesize(&intent, &self.db, &name) else {
                    continue;
                };
                let Ok(result) = self.db.run_plan(&plan) else {
                    continue;
                };
                let text =
                    crate::engine::render_structured_public(&intent, &self.db, &name, &result);
                if !text.is_empty() {
                    let evidence = vec![unisem_slm::SupportedAnswer::new(text.clone(), 6.0)];
                    let report = self.estimator.estimate(question, &evidence);
                    return Answer {
                        text,
                        confidence: 0.95,
                        entropy: report,
                        route: Route::Structured { table: name.clone() },
                        provenance: vec![Provenance::TableRows {
                            table: name,
                            rows: result.num_rows(),
                        }],
                        result_table: Some(result),
                        degradations: vec![],
                        trace: None,
                    };
                }
            }
        }
        // No SQL-expressible answer: a Text-to-SQL system simply fails.
        let report = self.estimator.estimate(question, &[]);
        Answer {
            text: "Query could not be expressed in SQL over the available tables.".to_string(),
            confidence: 0.0,
            entropy: report,
            route: Route::Abstained,
            provenance: vec![],
            result_table: None,
            degradations: vec![],
            trace: None,
        }
    }
}

/// Closed-book SLM: answers with no evidence at all.
#[derive(Debug, Clone)]
pub struct DirectSlmPipeline {
    slm: Slm,
    estimator: EntropyEstimator,
}

impl DirectSlmPipeline {
    /// Builds the baseline.
    pub fn new(slm: Slm) -> Self {
        Self { estimator: EntropyEstimator::new(slm.clone()), slm }
    }

    /// Access to the underlying SLM.
    pub fn slm(&self) -> &Slm {
        &self.slm
    }
}

impl QaPipeline for DirectSlmPipeline {
    fn name(&self) -> &'static str {
        "direct_slm"
    }

    fn answer(&self, question: &str) -> Answer {
        let report = self.estimator.estimate(question, &[]);
        let confidence = report.confidence();
        Answer {
            text: report.top_answer.clone().unwrap_or_default(),
            confidence,
            entropy: report,
            route: Route::Unstructured { chunks: vec![] },
            provenance: vec![],
            result_table: None,
            degradations: vec![],
            trace: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unisem_relstore::{DataType, Schema, Table, Value};
    use unisem_slm::{EntityKind, Lexicon, SlmConfig};

    fn slm() -> Slm {
        Slm::new(SlmConfig {
            lexicon: Lexicon::new().with_entries([("Aero Widget", EntityKind::Product)]),
            ..SlmConfig::default()
        })
    }

    fn docs() -> Arc<DocStore> {
        let mut d = DocStore::default();
        d.add_document(
            "news",
            "The Aero Widget is manufactured by Acme Corp. It sells well.",
            "news",
        );
        Arc::new(d)
    }

    fn db() -> Database {
        let mut db = Database::new();
        let sales = Table::from_rows(
            Schema::of(&[
                ("product", DataType::Str),
                ("quarter", DataType::Str),
                ("amount", DataType::Float),
            ]),
            vec![
                vec![Value::str("Aero Widget"), Value::str("Q1"), Value::Float(100.0)],
                vec![Value::str("Aero Widget"), Value::str("Q2"), Value::Float(140.0)],
            ],
        )
        .unwrap();
        db.create_table("sales", sales).unwrap();
        db
    }

    #[test]
    fn naive_rag_answers_lookup_but_not_aggregate() {
        let p = NaiveRagPipeline::new(slm(), docs(), 3);
        let lookup = p.answer("Who manufactures the Aero Widget?");
        assert!(lookup.text.contains("Acme"), "{}", lookup.text);
        // Aggregate question: RAG can only parrot a sentence; it cannot
        // compute 240.
        let agg = p.answer("What was the total sales amount of Aero Widget across all quarters?");
        assert!(!agg.text.contains("240"), "{}", agg.text);
    }

    #[test]
    fn text_to_sql_answers_aggregate_but_not_lookup() {
        let p = TextToSqlPipeline::new(slm(), db());
        let agg = p.answer("What was the total sales amount of Aero Widget across all quarters?");
        assert!(agg.text.contains("240"), "{}", agg.text);
        let lookup = p.answer("Who manufactures the Aero Widget?");
        assert!(lookup.is_abstention());
    }

    #[test]
    fn direct_slm_is_ungrounded() {
        let p = DirectSlmPipeline::new(slm());
        let a = p.answer("What was the total sales of Aero Widget?");
        assert!(!a.text.contains("240"));
        assert!(a.entropy.n_clusters >= 2, "hallucinations diverge");
    }

    #[test]
    fn pipeline_names() {
        assert_eq!(NaiveRagPipeline::new(slm(), docs(), 3).name(), "naive_rag");
        assert_eq!(TextToSqlPipeline::new(slm(), db()).name(), "text_to_sql");
        assert_eq!(DirectSlmPipeline::new(slm()).name(), "direct_slm");
    }
}
