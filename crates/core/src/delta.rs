//! Typed incremental-ingest deltas and their WAL payload codec
//! (DESIGN.md §13).
//!
//! A [`Delta`] is one logical mutation of the engine's substrates: a new
//! document, a relational row upsert, a semi-structured fragment, or a
//! graph entity/edge. [`UnifiedEngine::ingest_delta`] appends the encoded
//! delta to the write-ahead log before acknowledging it, and recovery
//! replays decoded deltas as idempotent redo operations.
//!
//! The codec rides on [`storekit`]'s little-endian `Encoder`/`Decoder`
//! and reuses the snapshot layer's value and edge-kind tag schemes, so a
//! value that round-trips through a snapshot and one that round-trips
//! through the WAL are byte-compatible. Encoding is a pure function of
//! the delta, which is what makes same-seed delta streams produce
//! byte-identical WAL segments.
//!
//! [`UnifiedEngine::ingest_delta`]: crate::UnifiedEngine::ingest_delta

use storekit::{Decoder, Encoder};
use unisem_hetgraph::EdgeKind;
use unisem_relstore::Value;
use unisem_slm::EntityKind;

use crate::snapshot::{decode_value, encode_value, invalid};
use crate::EngineError;

/// One logical mutation of the engine's substrates, as carried by a WAL
/// record.
#[derive(Debug, Clone, PartialEq)]
pub enum Delta {
    /// Add a document to the text substrate: chunked, BM25-indexed,
    /// embedded, and wired into the graph exactly as at build time.
    DocAdd {
        /// Document title.
        title: String,
        /// Full document text.
        text: String,
        /// Source label (provenance).
        source: String,
    },
    /// Append a row to an existing relational table (native or
    /// flattened). The row must match the table's schema.
    TableRow {
        /// Target table name.
        table: String,
        /// Cell values in schema column order.
        values: Vec<Value>,
    },
    /// Ingest one semi-structured JSON fragment into a collection's
    /// flattened table, mapping leaves onto the existing schema.
    SemiFragment {
        /// Collection name (resolves to its flattened table).
        collection: String,
        /// The fragment as JSON source text.
        json: String,
    },
    /// Add (or re-assert — the graph dedupes) an entity node.
    GraphEntity {
        /// Entity surface name (canonicalized by the graph).
        name: String,
        /// Entity kind.
        kind: EntityKind,
    },
    /// Add an edge between two entity nodes, resolved by canonical name.
    GraphEdge {
        /// First endpoint's entity name.
        a: String,
        /// Second endpoint's entity name.
        b: String,
        /// Edge kind (typically `RelatesTo` or `Temporal`).
        kind: EdgeKind,
    },
}

impl Delta {
    /// Short label for traces and error messages.
    pub fn label(&self) -> &'static str {
        match self {
            Delta::DocAdd { .. } => "doc_add",
            Delta::TableRow { .. } => "table_row",
            Delta::SemiFragment { .. } => "semi_fragment",
            Delta::GraphEntity { .. } => "graph_entity",
            Delta::GraphEdge { .. } => "graph_edge",
        }
    }

    /// Encodes the delta as a WAL record payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        match self {
            Delta::DocAdd { title, text, source } => {
                e.u8(0);
                e.str(title);
                e.str(text);
                e.str(source);
            }
            Delta::TableRow { table, values } => {
                e.u8(1);
                e.str(table);
                e.u64(values.len() as u64);
                for v in values {
                    encode_value(&mut e, v);
                }
            }
            Delta::SemiFragment { collection, json } => {
                e.u8(2);
                e.str(collection);
                e.str(json);
            }
            Delta::GraphEntity { name, kind } => {
                e.u8(3);
                e.str(name);
                e.str(kind.label());
            }
            Delta::GraphEdge { a, b, kind } => {
                e.u8(4);
                e.str(a);
                e.str(b);
                encode_edge_kind(&mut e, kind);
            }
        }
        e.into_bytes()
    }

    /// Decodes a WAL record payload back into a delta.
    pub fn decode(bytes: &[u8]) -> Result<Delta, EngineError> {
        let mut d = Decoder::new(bytes);
        let delta = match d.u8().map_err(EngineError::Store)? {
            0 => Delta::DocAdd {
                title: d.str().map_err(EngineError::Store)?,
                text: d.str().map_err(EngineError::Store)?,
                source: d.str().map_err(EngineError::Store)?,
            },
            1 => {
                let table = d.str().map_err(EngineError::Store)?;
                let n = d.u64().map_err(EngineError::Store)? as usize;
                let mut values = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    values.push(decode_value(&mut d)?);
                }
                Delta::TableRow { table, values }
            }
            2 => Delta::SemiFragment {
                collection: d.str().map_err(EngineError::Store)?,
                json: d.str().map_err(EngineError::Store)?,
            },
            3 => {
                let name = d.str().map_err(EngineError::Store)?;
                let label = d.str().map_err(EngineError::Store)?;
                let kind = EntityKind::from_label(&label)
                    .ok_or_else(|| invalid(format!("unknown entity kind label '{label}'")))?;
                Delta::GraphEntity { name, kind }
            }
            4 => Delta::GraphEdge {
                a: d.str().map_err(EngineError::Store)?,
                b: d.str().map_err(EngineError::Store)?,
                kind: decode_edge_kind(&mut d)?,
            },
            t => return Err(invalid(format!("unknown delta tag {t}"))),
        };
        if d.remaining() != 0 {
            return Err(invalid(format!(
                "{} bytes of trailing garbage after {} delta",
                d.remaining(),
                delta.label()
            )));
        }
        Ok(delta)
    }
}

// Same tag scheme as the snapshot layer's graph section, so the two
// on-disk formats never disagree about an edge kind.
fn encode_edge_kind(e: &mut Encoder, kind: &EdgeKind) {
    match kind {
        EdgeKind::Mentions => e.u8(0),
        EdgeKind::RelatesTo(v) => {
            e.u8(1);
            e.str(v);
        }
        EdgeKind::Temporal => e.u8(2),
        EdgeKind::BelongsTo => e.u8(3),
        EdgeKind::HasAttribute(a) => {
            e.u8(4);
            e.str(a);
        }
        EdgeKind::NextChunk => e.u8(5),
    }
}

fn decode_edge_kind(d: &mut Decoder<'_>) -> Result<EdgeKind, EngineError> {
    Ok(match d.u8().map_err(EngineError::Store)? {
        0 => EdgeKind::Mentions,
        1 => EdgeKind::RelatesTo(d.str().map_err(EngineError::Store)?),
        2 => EdgeKind::Temporal,
        3 => EdgeKind::BelongsTo,
        4 => EdgeKind::HasAttribute(d.str().map_err(EngineError::Store)?),
        5 => EdgeKind::NextChunk,
        t => return Err(invalid(format!("unknown edge kind tag {t}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use unisem_relstore::Date;

    fn round_trip(delta: Delta) {
        let bytes = delta.encode();
        let back = Delta::decode(&bytes).unwrap();
        assert_eq!(delta, back);
        // Pure function of the delta: re-encoding is byte-identical.
        assert_eq!(bytes, back.encode());
    }

    #[test]
    fn every_variant_round_trips() {
        round_trip(Delta::DocAdd {
            title: "q3 report".into(),
            text: "Revenue grew in Q3 2024.".into(),
            source: "finance".into(),
        });
        round_trip(Delta::TableRow {
            table: "sales".into(),
            values: vec![
                Value::str("Aero Widget"),
                Value::Int(7),
                Value::Float(19.5),
                Value::Bool(true),
                Value::Null,
                Value::Date(Date::new(2024, 7, 1).unwrap()),
            ],
        });
        round_trip(Delta::SemiFragment {
            collection: "orders".into(),
            json: r#"{"id": 9, "status": "shipped"}"#.into(),
        });
        round_trip(Delta::GraphEntity { name: "Acme Corp".into(), kind: EntityKind::Organization });
        round_trip(Delta::GraphEdge {
            a: "Acme Corp".into(),
            b: "Aero Widget".into(),
            kind: EdgeKind::RelatesTo("supply".into()),
        });
        round_trip(Delta::GraphEdge {
            a: "a".into(),
            b: "b".into(),
            kind: EdgeKind::HasAttribute("col".into()),
        });
    }

    #[test]
    fn garbage_is_rejected_not_panicked() {
        assert!(Delta::decode(&[]).is_err());
        assert!(Delta::decode(&[99]).is_err());
        assert!(Delta::decode(&[0, 1, 2]).is_err(), "truncated doc_add");
        // Trailing garbage after a valid delta is an error, not ignored.
        let mut bytes =
            Delta::GraphEntity { name: "x".into(), kind: EntityKind::Organization }.encode();
        bytes.push(0);
        assert!(Delta::decode(&bytes).is_err());
    }
}
