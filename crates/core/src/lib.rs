//! # unisem-core
//!
//! The paper's primary contribution: an **SLM-driven system for unified
//! semantic queries across heterogeneous databases**.
//!
//! [`engine::UnifiedEngine`] ties the substrates together:
//!
//! 1. **Ingestion** ([`engine::EngineBuilder`]) — relational tables, JSON
//!    collections (flattened via `unisem-semistore`), and free-text
//!    documents (chunked via `unisem-docstore`). Unstructured documents
//!    additionally pass through Relational Table Generation
//!    (`unisem-extract`), producing the `extracted` table (§III.C task 1).
//! 2. **Indexing** — one heterogeneous graph over chunks, entities,
//!    records, and relational cues (`unisem-hetgraph`, §III.A).
//! 3. **Query resolution** ([`UnifiedEngine::answer`]) — questions are
//!    parsed into intents (`unisem-semops`, §III.C task 2) and routed:
//!    analytical intents compile to plans over native/flattened/extracted
//!    tables (TableQA); lookup intents go through topology-enhanced
//!    retrieval (§III.B); failures fall back across routes (the hybrid
//!    pipeline of §III.C).
//! 4. **Uncertainty** — every answer carries a semantic-entropy report
//!    (`unisem-entropy`, §III.D); high-entropy answers abstain.
//! 5. **Observability** — a deterministic trace/metrics layer (`tracekit`,
//!    DESIGN.md §9): closed-registry metrics
//!    ([`UnifiedEngine::metrics_report`]), per-query explain traces
//!    ([`Answer::trace`] via [`EngineConfig::trace`]), and JSON-lines
//!    trace emission controlled by `UNISEM_TRACE`.
//!
//! [`baselines`] implements the comparison systems of the evaluation
//! (naive dense RAG, Text-to-SQL-only, direct SLM) and the ablations.

pub mod answer;
pub mod baselines;
pub mod delta;
pub mod engine;
pub mod evidence;
pub mod ingest;
pub mod planner;
pub mod snapshot;

pub use answer::{Answer, Degradation, Provenance, Route};
pub use baselines::{DirectSlmPipeline, NaiveRagPipeline, QaPipeline, TextToSqlPipeline};
pub use delta::Delta;
pub use engine::{
    EngineBuilder, EngineConfig, EngineError, GovernorConfig, ParallelConfig, UnifiedEngine,
};
pub use ingest::{IngestReport, QuarantineReason, Quarantined};
pub use planner::{
    Cost, CostModel, JoinEdge, JoinOrder, JoinTree, LogicalNode, PhysicalPlan, StatsCatalog,
};

// Re-export the pieces examples and benches need most.
pub use faultkit::{FaultPlan, InjectedFault, Site as FaultSite};
pub use storekit::StoreError;
pub use tracekit::{
    component, EntropyVerdict, FlameGraph, MetricsReport, QueryTrace, ResourceMeter, TimingReport,
    TraceSink, TraceSpec, TraversalTrace,
};
pub use unisem_entropy::EntropyReport;
pub use unisem_relstore::{Database, Table, Value};
pub use unisem_slm::{EntityKind, Lexicon, ModelClass, Slm, SlmConfig};
