//! Ingestion quarantine: per-source failure containment (DESIGN.md §8).
//!
//! The paper targets messy heterogeneous sources (§I); a data lake with one
//! malformed XML config must not lose its thousand good documents. Instead
//! of aborting, [`crate::EngineBuilder::build`] quarantines each failing
//! source with a typed reason and returns an [`IngestReport`] alongside the
//! engine, so operators can audit exactly what was excluded and why.

use std::fmt;

/// Why a source was quarantined rather than ingested.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuarantineReason {
    /// JSON document failed to parse.
    Json(String),
    /// XML document failed to parse.
    Xml(String),
    /// A collection failed to flatten into a relational table.
    Flatten(String),
    /// Relational table generation over the documents failed.
    Extraction(String),
    /// A deterministic fault-injection hook fired at this source
    /// (see `faultkit`).
    InjectedFault(String),
}

impl QuarantineReason {
    /// Short category label for summaries.
    pub fn kind(&self) -> &'static str {
        match self {
            QuarantineReason::Json(_) => "json",
            QuarantineReason::Xml(_) => "xml",
            QuarantineReason::Flatten(_) => "flatten",
            QuarantineReason::Extraction(_) => "extraction",
            QuarantineReason::InjectedFault(_) => "injected-fault",
        }
    }

    /// The underlying error message.
    pub fn message(&self) -> &str {
        match self {
            QuarantineReason::Json(m)
            | QuarantineReason::Xml(m)
            | QuarantineReason::Flatten(m)
            | QuarantineReason::Extraction(m)
            | QuarantineReason::InjectedFault(m) => m,
        }
    }
}

impl fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind(), self.message())
    }
}

/// One quarantined source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quarantined {
    /// What was excluded, e.g. `collection 'orders'` or
    /// `xml document 3 of 'configs'`.
    pub source: String,
    /// Why it was excluded.
    pub reason: QuarantineReason,
}

impl fmt::Display for Quarantined {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.source, self.reason)
    }
}

/// What a build ingested and what it had to quarantine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Sources excluded from the engine, in ingestion order.
    pub quarantined: Vec<Quarantined>,
    /// Relational tables registered (native + flattened + extracted).
    pub tables: usize,
    /// Semi-structured collections successfully flattened.
    pub collections_flattened: usize,
    /// Unstructured documents indexed.
    pub documents: usize,
    /// Rows in the `extracted` table (0 when extraction is disabled,
    /// produced nothing, or was quarantined).
    pub extracted_rows: usize,
}

impl IngestReport {
    /// True when nothing was quarantined.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty()
    }

    /// Number of quarantined sources.
    pub fn num_quarantined(&self) -> usize {
        self.quarantined.len()
    }

    /// Quarantined entries of a given category (`"json"`, `"xml"`,
    /// `"flatten"`, `"extraction"`, `"injected-fault"`).
    pub fn quarantined_by_kind(&self, kind: &str) -> Vec<&Quarantined> {
        self.quarantined.iter().filter(|q| q.reason.kind() == kind).collect()
    }

    /// One-line operator summary.
    pub fn summary(&self) -> String {
        format!(
            "{} tables, {} collections, {} documents, {} extracted rows; {} quarantined",
            self.tables,
            self.collections_flattened,
            self.documents,
            self.extracted_rows,
            self.quarantined.len()
        )
    }
}

impl fmt::Display for IngestReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.summary())?;
        for q in &self.quarantined {
            write!(f, "\n  - {q}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_report() {
        let r = IngestReport { tables: 2, documents: 3, ..IngestReport::default() };
        assert!(r.is_clean());
        assert_eq!(r.num_quarantined(), 0);
        assert!(r.summary().contains("0 quarantined"));
    }

    #[test]
    fn quarantine_accounting() {
        let r = IngestReport {
            quarantined: vec![
                Quarantined {
                    source: "collection 'orders'".into(),
                    reason: QuarantineReason::Flatten("boom".into()),
                },
                Quarantined {
                    source: "xml document 0 of 'configs'".into(),
                    reason: QuarantineReason::Xml("mismatched tag".into()),
                },
            ],
            ..IngestReport::default()
        };
        assert!(!r.is_clean());
        assert_eq!(r.num_quarantined(), 2);
        assert_eq!(r.quarantined_by_kind("xml").len(), 1);
        assert_eq!(r.quarantined_by_kind("json").len(), 0);
        let shown = r.to_string();
        assert!(shown.contains("orders") && shown.contains("mismatched tag"), "{shown}");
        assert_eq!(r.quarantined[0].reason.kind(), "flatten");
        assert_eq!(r.quarantined[0].reason.message(), "boom");
    }
}
