//! The unified logical algebra (DESIGN.md §11).
//!
//! One query compiles to one [`LogicalNode`] tree spanning every
//! substrate: relational scans/filters/joins/aggregates (embedded
//! relstore plans), semi-structured path probes, graph-topology
//! traversal, dense document retrieval, and the SLM semantic operators —
//! tagging ([`LogicalNode::SemTag`]), grounded extraction
//! ([`LogicalNode::SemExtract`]), and entailment-based verification
//! ([`LogicalNode::SemEntail`]) — as first-class operators, not
//! pre/post-processing steps.
//!
//! The tree is synthesized by `UnifiedEngine` (which owns the substrate
//! handles), costed by [`super::cost::CostModel`], and lowered to a
//! [`super::physical::PhysicalPlan`] for execution bookkeeping and
//! explain rendering. Ordered [`LogicalNode::Alternatives`] encode the
//! engine's degradation ladder: the first branch to produce a signal
//! wins, later branches are fallbacks.

use unisem_relstore::plan::LogicalPlan as RelPlan;

/// Plan-time state of one relational candidate table.
#[derive(Debug, Clone, PartialEq)]
pub enum CandidatePlan {
    /// Operator synthesis produced an executable relstore plan.
    Planned(RelPlan),
    /// The deterministic fault plan fires for this table; synthesis was
    /// skipped, exactly as the ladder skips it.
    Faulted,
    /// Synthesis failed; the reason is charged (and counted) only if
    /// execution actually visits this candidate.
    Unplannable(String),
}

/// One operator of the unified logical algebra.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalNode {
    /// Admission gate: answer-sampling entropy must be certifiable.
    EntropyGate {
        /// Configured sample count.
        samples: usize,
        /// Governor floor below which the engine abstains.
        floor: usize,
        /// Plan to run once admitted.
        child: Box<LogicalNode>,
    },
    /// Semantic tagging of the question (intent analysis).
    SemTag {
        /// Entities recognized in the question.
        entities: usize,
        /// Whether the intent is a plain lookup.
        plain_lookup: bool,
        /// Whether the intent is comparative.
        comparative: bool,
        /// Downstream plan.
        child: Box<LogicalNode>,
    },
    /// Ordered fallback alternatives: first signal-bearing branch wins.
    Alternatives {
        /// Branches, best first.
        children: Vec<LogicalNode>,
    },
    /// A relational candidate: one table, one synthesized plan.
    Relational {
        /// Candidate table name.
        table: String,
        /// Plan-time synthesis outcome.
        plan: CandidatePlan,
    },
    /// A semi-structured path probe over a flattened collection.
    SemiPath {
        /// Collection (flattened table) name.
        collection: String,
        /// JSONPath expression.
        path: String,
    },
    /// Graph-topology traversal retrieval, with a dense fallback branch.
    GraphTraverse {
        /// Chunks requested.
        top_k: usize,
        /// Governor frontier cap.
        max_frontier: usize,
        /// Fallback when traversal is unavailable.
        fallback: Box<LogicalNode>,
    },
    /// Dense full-scan retrieval over chunk embeddings.
    DenseScan {
        /// Chunks requested.
        top_k: usize,
        /// Embedding dimensionality.
        dims: usize,
    },
    /// Grounded evidence extraction over retrieved chunks.
    SemExtract {
        /// Evidence sentence cap.
        max_sentences: usize,
        /// Retrieval input.
        child: Box<LogicalNode>,
    },
    /// Semantic-entropy verification by sampling and entailment
    /// clustering.
    SemEntail {
        /// Samples drawn.
        samples: usize,
        /// Plan whose answer is verified.
        child: Box<LogicalNode>,
    },
    /// Confidence gate: abstain below the threshold.
    ConfidenceGate {
        /// Abstention threshold in `[0, 1]`.
        threshold: f64,
        /// Gated plan.
        child: Box<LogicalNode>,
    },
    /// Terminal abstention.
    Abstain,
}

impl LogicalNode {
    /// One-line operator label (no children).
    pub fn label(&self) -> String {
        match self {
            LogicalNode::EntropyGate { samples, floor, .. } => {
                format!("EntropyGate: samples={samples} floor={floor}")
            }
            LogicalNode::SemTag { entities, plain_lookup, comparative, .. } => format!(
                "SemTag: entities={entities} plain_lookup={plain_lookup} \
                 comparative={comparative}"
            ),
            LogicalNode::Alternatives { children } => {
                format!("Alternatives: {} branches", children.len())
            }
            LogicalNode::Relational { table, plan } => match plan {
                CandidatePlan::Planned(_) => format!("Relational: table '{table}'"),
                CandidatePlan::Faulted => {
                    format!("Relational: table '{table}' (fault injected)")
                }
                CandidatePlan::Unplannable(reason) => {
                    format!("Relational: table '{table}' (unplannable: {reason})")
                }
            },
            LogicalNode::SemiPath { collection, path } => {
                format!("SemiPath: collection '{collection}' path {path}")
            }
            LogicalNode::GraphTraverse { top_k, max_frontier, .. } => {
                format!("GraphTraverse: top_k={top_k} max_frontier={max_frontier}")
            }
            LogicalNode::DenseScan { top_k, dims } => {
                format!("DenseScan: top_k={top_k} dims={dims}")
            }
            LogicalNode::SemExtract { max_sentences, .. } => {
                format!("SemExtract: max_sentences={max_sentences}")
            }
            LogicalNode::SemEntail { samples, .. } => format!("SemEntail: samples={samples}"),
            LogicalNode::ConfidenceGate { threshold, .. } => {
                format!("ConfidenceGate: threshold={threshold:?}")
            }
            LogicalNode::Abstain => "Abstain".to_string(),
        }
    }

    /// Child nodes in plan order.
    pub fn children(&self) -> Vec<&LogicalNode> {
        match self {
            LogicalNode::EntropyGate { child, .. }
            | LogicalNode::SemTag { child, .. }
            | LogicalNode::SemExtract { child, .. }
            | LogicalNode::SemEntail { child, .. }
            | LogicalNode::ConfidenceGate { child, .. } => vec![child],
            LogicalNode::Alternatives { children } => children.iter().collect(),
            LogicalNode::GraphTraverse { fallback, .. } => vec![fallback],
            LogicalNode::Relational { .. }
            | LogicalNode::SemiPath { .. }
            | LogicalNode::DenseScan { .. }
            | LogicalNode::Abstain => Vec::new(),
        }
    }

    /// Multiset of operator labels in the subtree — the invariant the
    /// optimizer property tests check (optimization may reorder, never
    /// add or drop operators).
    pub fn operator_set(&self) -> Vec<String> {
        let mut out = vec![self.label()];
        for c in self.children() {
            out.extend(c.operator_set());
        }
        out.sort();
        out
    }

    /// Indented tree rendering (two spaces per depth); embedded relstore
    /// plans render through their own `explain`, re-indented in place.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        let indent = "  ".repeat(depth);
        out.push_str(&indent);
        out.push_str(&self.label());
        out.push('\n');
        if let LogicalNode::Relational { plan: CandidatePlan::Planned(rel), .. } = self {
            for line in rel.explain().lines() {
                out.push_str(&indent);
                out.push_str("  ");
                out.push_str(line);
                out.push('\n');
            }
        }
        for c in self.children() {
            c.render_into(out, depth + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unisem_relstore::Expr;

    fn sample() -> LogicalNode {
        LogicalNode::EntropyGate {
            samples: 8,
            floor: 4,
            child: Box::new(LogicalNode::SemTag {
                entities: 2,
                plain_lookup: false,
                comparative: false,
                child: Box::new(LogicalNode::Alternatives {
                    children: vec![
                        LogicalNode::SemEntail {
                            samples: 8,
                            child: Box::new(LogicalNode::Relational {
                                table: "sales".into(),
                                plan: CandidatePlan::Planned(
                                    RelPlan::scan("sales")
                                        .filter(Expr::col("region").eq(Expr::lit("emea"))),
                                ),
                            }),
                        },
                        LogicalNode::ConfidenceGate {
                            threshold: 0.35,
                            child: Box::new(LogicalNode::SemEntail {
                                samples: 8,
                                child: Box::new(LogicalNode::SemExtract {
                                    max_sentences: 6,
                                    child: Box::new(LogicalNode::GraphTraverse {
                                        top_k: 4,
                                        max_frontier: 64,
                                        fallback: Box::new(LogicalNode::DenseScan {
                                            top_k: 4,
                                            dims: 32,
                                        }),
                                    }),
                                }),
                            }),
                        },
                        LogicalNode::Abstain,
                    ],
                }),
            }),
        }
    }

    #[test]
    fn render_spans_every_substrate() {
        let text = sample().render();
        assert!(text.contains("EntropyGate: samples=8 floor=4"), "{text}");
        assert!(text.contains("Relational: table 'sales'"), "{text}");
        assert!(text.contains("Scan: sales"), "embedded relstore plan: {text}");
        assert!(text.contains("GraphTraverse: top_k=4"), "{text}");
        assert!(text.contains("DenseScan: top_k=4 dims=32"), "{text}");
        assert!(text.contains("SemExtract"), "{text}");
        assert!(text.contains("SemEntail"), "{text}");
        assert!(text.contains("Abstain"), "{text}");
    }

    #[test]
    fn operator_set_is_sorted_and_total() {
        let ops = sample().operator_set();
        assert_eq!(ops.len(), 11);
        let mut sorted = ops.clone();
        sorted.sort();
        assert_eq!(ops, sorted);
    }

    #[test]
    fn unplannable_and_faulted_render_reasons() {
        let n = LogicalNode::Relational {
            table: "t".into(),
            plan: CandidatePlan::Unplannable("no aggregate column".into()),
        };
        assert!(n.label().contains("unplannable: no aggregate column"));
        let f = LogicalNode::Relational { table: "t".into(), plan: CandidatePlan::Faulted };
        assert!(f.label().contains("fault injected"));
    }
}
