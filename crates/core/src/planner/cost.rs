//! The deterministic cost model (DESIGN.md §11).
//!
//! Costs are integers — `u64` row estimates and abstract work units — so
//! every estimate is bit-stable by construction and totally ordered
//! without float tie-breaking hazards. Selectivities are fixed-point
//! per-mille fractions (`x / 1000`), monotone in table cardinality.
//!
//! The model charges three currencies, folded into one total:
//!
//! ```text
//! total = cpu + 2·io + 50·slm
//! ```
//!
//! `cpu` counts row visits and comparisons, `io` counts cells touched in
//! base tables and postings walked in indexes, and `slm` counts semantic
//! operator invocations — weighted heaviest because a model call dominates
//! any per-row arithmetic (the premise of every SLM-operator paper the
//! algebra follows).

use unisem_relstore::plan::LogicalPlan;
use unisem_relstore::Expr;
use unisem_semistore::JsonPath;

use super::stats::{StatsCatalog, TableStats};

/// Fixed-point selectivity denominator.
pub const SEL_DENOM: u64 = 1000;
/// io weight in [`Cost::total`].
pub const IO_WEIGHT: u64 = 2;
/// slm weight in [`Cost::total`].
pub const SLM_WEIGHT: u64 = 50;

/// One operator's cumulative cost estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Cost {
    /// Estimated output rows (or items) of this operator.
    pub rows: u64,
    /// Row visits / comparisons.
    pub cpu: u64,
    /// Cells or postings touched.
    pub io: u64,
    /// Semantic operator (SLM) invocations.
    pub slm: u64,
}

impl Cost {
    /// The zero cost.
    pub const ZERO: Cost = Cost { rows: 0, cpu: 0, io: 0, slm: 0 };

    /// Weighted scalar total (saturating).
    pub fn total(self) -> u64 {
        self.cpu
            .saturating_add(self.io.saturating_mul(IO_WEIGHT))
            .saturating_add(self.slm.saturating_mul(SLM_WEIGHT))
    }

    /// Componentwise saturating sum, keeping `self.rows` (the output
    /// cardinality of the downstream operator).
    pub fn plus(self, other: Cost) -> Cost {
        Cost {
            rows: self.rows,
            cpu: self.cpu.saturating_add(other.cpu),
            io: self.io.saturating_add(other.io),
            slm: self.slm.saturating_add(other.slm),
        }
    }

    /// Compact deterministic rendering for explain plans.
    pub fn render(self) -> String {
        format!(
            "rows~{} cpu={} io={} slm={} total={}",
            self.rows,
            self.cpu,
            self.io,
            self.slm,
            self.total()
        )
    }
}

/// Estimate for one relational subtree.
#[derive(Debug, Clone)]
pub struct RelEstimate {
    /// Cumulative cost of the subtree; `cost.rows` is the output estimate.
    pub cost: Cost,
    /// The single base table feeding this subtree, when unambiguous —
    /// the context column selectivities resolve against.
    pub base: Option<String>,
}

/// The cost model: pure functions of a [`StatsCatalog`].
#[derive(Debug, Clone, Copy)]
pub struct CostModel<'a> {
    stats: &'a StatsCatalog,
}

impl<'a> CostModel<'a> {
    /// A model over the given catalog.
    pub fn new(stats: &'a StatsCatalog) -> Self {
        CostModel { stats }
    }

    /// The backing catalog.
    pub fn stats(&self) -> &StatsCatalog {
        self.stats
    }

    /// Row-count estimate for a base table (1 when unknown, so products
    /// never collapse to zero).
    pub fn table_rows(&self, name: &str) -> u64 {
        self.stats.table(name).map(|t| t.rows as u64).unwrap_or(1)
    }

    /// Fixed-point selectivity (`x / 1000`) of a predicate against a
    /// table's column statistics:
    ///
    /// - equality on a column: `1000 / distinct(column)`,
    /// - ordering comparison: 1/3,
    /// - `LIKE` / `IN`: 1/4,
    /// - `IS NULL`: `nulls / rows` (complement when negated),
    /// - `AND`: product; `OR`: capped sum; `NOT`: complement,
    /// - anything else: 1/2.
    pub fn selectivity_permille(&self, table: Option<&TableStats>, pred: &Expr) -> u64 {
        use unisem_relstore::expr::BinOp;
        match pred {
            Expr::Binary { op, left, right } => match op {
                BinOp::And => {
                    let l = self.selectivity_permille(table, left);
                    let r = self.selectivity_permille(table, right);
                    (l.saturating_mul(r) / SEL_DENOM).max(1)
                }
                BinOp::Or => {
                    let l = self.selectivity_permille(table, left);
                    let r = self.selectivity_permille(table, right);
                    l.saturating_add(r).min(SEL_DENOM)
                }
                BinOp::Eq => {
                    let distinct = column_of(left)
                        .or_else(|| column_of(right))
                        .and_then(|c| table.map(|t| t.distinct(c)))
                        .unwrap_or(2) as u64;
                    (SEL_DENOM / distinct.max(1)).max(1)
                }
                BinOp::Ne => {
                    let eq = self.selectivity_permille(
                        table,
                        &Expr::Binary { op: BinOp::Eq, left: left.clone(), right: right.clone() },
                    );
                    SEL_DENOM - eq.min(SEL_DENOM - 1)
                }
                BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => SEL_DENOM / 3,
                _ => SEL_DENOM / 2,
            },
            Expr::Not(inner) => SEL_DENOM - self.selectivity_permille(table, inner).min(SEL_DENOM),
            Expr::IsNull { expr, negated } => {
                let ratio = column_of(expr)
                    .and_then(|c| {
                        table.and_then(|t| {
                            t.column(c).map(|cs| {
                                if t.rows == 0 {
                                    0
                                } else {
                                    cs.nulls as u64 * SEL_DENOM / t.rows as u64
                                }
                            })
                        })
                    })
                    .unwrap_or(SEL_DENOM / 10);
                if *negated {
                    SEL_DENOM - ratio.min(SEL_DENOM)
                } else {
                    ratio.max(1)
                }
            }
            Expr::Like { .. } | Expr::InList { .. } => SEL_DENOM / 4,
            _ => SEL_DENOM / 2,
        }
    }

    /// Recursive estimate for a relational plan subtree.
    pub fn rel_plan(&self, plan: &LogicalPlan) -> RelEstimate {
        match plan {
            LogicalPlan::Scan { table } => {
                let rows = self.table_rows(table);
                let arity =
                    self.stats.table(table).map(|t| t.columns.len() as u64).unwrap_or(1).max(1);
                RelEstimate {
                    cost: Cost { rows, cpu: rows, io: rows.saturating_mul(arity), slm: 0 },
                    base: Some(table.clone()),
                }
            }
            LogicalPlan::Filter { input, predicate } => {
                let inner = self.rel_plan(input);
                let tstats = inner.base.as_deref().and_then(|b| self.stats.table(b));
                let sel = self.selectivity_permille(tstats, predicate);
                let rows = (inner.cost.rows.saturating_mul(sel) / SEL_DENOM)
                    .min(inner.cost.rows)
                    .max(u64::from(inner.cost.rows > 0));
                let cost = Cost { rows, cpu: inner.cost.rows, io: 0, slm: 0 }.plus(inner.cost);
                RelEstimate { cost, base: inner.base }
            }
            LogicalPlan::Project { input, exprs } => {
                let inner = self.rel_plan(input);
                let cost = Cost {
                    rows: inner.cost.rows,
                    cpu: inner.cost.rows.saturating_mul(exprs.len() as u64),
                    io: 0,
                    slm: 0,
                }
                .plus(inner.cost);
                RelEstimate { cost, base: inner.base }
            }
            LogicalPlan::Join { left, right, on, .. } => {
                let l = self.rel_plan(left);
                let r = self.rel_plan(right);
                let rows = self.join_rows(&l, &r, on);
                let cost = Cost {
                    rows,
                    cpu: l.cost.rows.saturating_add(r.cost.rows).saturating_add(rows),
                    io: 0,
                    slm: 0,
                }
                .plus(l.cost)
                .plus(r.cost);
                RelEstimate { cost, base: None }
            }
            LogicalPlan::Aggregate { input, group_by, .. } => {
                let inner = self.rel_plan(input);
                let tstats = inner.base.as_deref().and_then(|b| self.stats.table(b));
                let rows = if group_by.is_empty() {
                    1
                } else {
                    let mut groups: u64 = 1;
                    for (expr, _) in group_by {
                        let d = column_of(expr)
                            .and_then(|c| tstats.map(|t| t.distinct(c) as u64))
                            .unwrap_or(2);
                        groups = groups.saturating_mul(d.max(1));
                    }
                    groups.min(inner.cost.rows.max(1))
                };
                let cost = Cost { rows, cpu: inner.cost.rows, io: 0, slm: 0 }.plus(inner.cost);
                RelEstimate { cost, base: inner.base }
            }
            LogicalPlan::Sort { input, .. } => {
                let inner = self.rel_plan(input);
                let n = inner.cost.rows;
                let cost = Cost {
                    rows: n,
                    cpu: n.saturating_mul(64 - n.leading_zeros() as u64),
                    io: 0,
                    slm: 0,
                }
                .plus(inner.cost);
                RelEstimate { cost, base: inner.base }
            }
            LogicalPlan::Limit { input, n } => {
                let inner = self.rel_plan(input);
                let cost = Cost { rows: inner.cost.rows.min(*n as u64), cpu: 0, io: 0, slm: 0 }
                    .plus(inner.cost);
                RelEstimate { cost, base: inner.base }
            }
            LogicalPlan::Distinct { input } => {
                let inner = self.rel_plan(input);
                let cost = Cost { rows: inner.cost.rows, cpu: inner.cost.rows, io: 0, slm: 0 }
                    .plus(inner.cost);
                RelEstimate { cost, base: inner.base }
            }
        }
    }

    /// Equi-join output estimate: `|L|·|R| / max(distinct keys)` per key
    /// pair, floored at 1 when both sides are non-empty.
    pub fn join_rows(&self, l: &RelEstimate, r: &RelEstimate, on: &[(String, String)]) -> u64 {
        let mut rows = l.cost.rows.saturating_mul(r.cost.rows);
        for (lc, rc) in on {
            let ld = l
                .base
                .as_deref()
                .and_then(|b| self.stats.table(b))
                .map(|t| t.distinct(lc) as u64)
                .unwrap_or(2);
            let rd = r
                .base
                .as_deref()
                .and_then(|b| self.stats.table(b))
                .map(|t| t.distinct(rc) as u64)
                .unwrap_or(2);
            rows /= ld.max(rd).max(1);
        }
        if l.cost.rows > 0 && r.cost.rows > 0 {
            rows.max(1)
        } else {
            0
        }
    }

    /// Semi-structured path query: every document of the (flattened)
    /// collection is visited, charged per path step.
    pub fn semi_path(&self, collection: &str, path: &JsonPath) -> Cost {
        let docs = self.table_rows(collection);
        let depth = (path.depth() as u64).max(1);
        Cost { rows: docs, cpu: docs.saturating_mul(depth), io: docs, slm: 0 }
    }

    /// Topology traversal: anchors expand across the frontier (bounded by
    /// the governor), then candidate chunks are scored.
    pub fn graph_traverse(&self, top_k: usize, max_frontier: usize) -> Cost {
        let frontier = (self.stats.graph.nodes as u64).min(max_frontier as u64);
        let expand = frontier.saturating_mul((self.stats.graph.avg_degree_x1000 as u64) / 1000 + 1);
        let scored = (self.stats.text.chunks as u64).min(frontier);
        Cost { rows: (top_k as u64).min(scored.max(1)), cpu: expand, io: scored, slm: 1 }
    }

    /// Dense fallback: a full cosine scan over every chunk embedding.
    pub fn dense_scan(&self, top_k: usize, vectors: usize, dims: usize) -> Cost {
        let n = vectors as u64;
        Cost {
            rows: (top_k as u64).min(n.max(1)),
            cpu: n.saturating_mul((dims as u64).max(1)),
            io: n,
            slm: 1,
        }
    }

    /// Grounded evidence extraction over retrieved chunks.
    pub fn sem_extract(&self, chunks: u64, max_sentences: usize) -> Cost {
        Cost {
            rows: (max_sentences as u64).min(chunks.saturating_mul(4).max(1)),
            cpu: chunks.saturating_mul(8),
            io: 0,
            slm: chunks,
        }
    }

    /// Semantic-entropy verification: sampling plus pairwise entailment
    /// clustering.
    pub fn sem_entail(&self, samples: usize) -> Cost {
        let s = samples as u64;
        Cost { rows: 1, cpu: s.saturating_mul(s), io: 0, slm: s }
    }
}

/// The column name a predicate side refers to, if it is a plain column.
fn column_of(e: &Expr) -> Option<&str> {
    match e {
        Expr::Column(c) => Some(c),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::stats::{ColumnStats, TableStats};

    fn catalog(rows: usize, distinct: usize) -> StatsCatalog {
        let mut cat = StatsCatalog::default();
        cat.tables.insert(
            "t".into(),
            TableStats {
                rows,
                columns: vec![
                    ColumnStats { name: "k".into(), distinct, nulls: 0 },
                    ColumnStats { name: "v".into(), distinct: rows.max(1), nulls: 0 },
                ],
            },
        );
        cat
    }

    #[test]
    fn totals_weight_slm_heaviest() {
        let c = Cost { rows: 10, cpu: 5, io: 3, slm: 2 };
        assert_eq!(c.total(), 5 + 2 * 3 + 50 * 2);
        assert!(c.render().contains("total=111"));
    }

    #[test]
    fn eq_selectivity_uses_distinct_counts() {
        let cat = catalog(100, 4);
        let model = CostModel::new(&cat);
        let t = cat.table("t");
        let eq = Expr::col("k").eq(Expr::lit(1i64));
        assert_eq!(model.selectivity_permille(t, &eq), 250);
        let conj = Expr::col("k").eq(Expr::lit(1i64)).and(Expr::col("v").gt(Expr::lit(0i64)));
        assert!(model.selectivity_permille(t, &conj) < 250);
    }

    #[test]
    fn filter_estimates_are_monotone_in_cardinality() {
        let plan = LogicalPlan::scan("t").filter(Expr::col("k").eq(Expr::lit(1i64)));
        let mut last = 0u64;
        for rows in [0usize, 1, 10, 100, 1000, 10_000] {
            let cat = catalog(rows, 4);
            let total = CostModel::new(&cat).rel_plan(&plan).cost.total();
            assert!(total >= last, "rows={rows}: {total} < {last}");
            last = total;
        }
    }

    #[test]
    fn aggregate_groups_bound_by_distinct() {
        let cat = catalog(100, 4);
        let model = CostModel::new(&cat);
        let grouped = LogicalPlan::scan("t").aggregate(vec![(Expr::col("k"), "k".into())], vec![]);
        assert_eq!(model.rel_plan(&grouped).cost.rows, 4);
        let global = LogicalPlan::scan("t").aggregate(vec![], vec![]);
        assert_eq!(model.rel_plan(&global).cost.rows, 1);
    }

    #[test]
    fn join_rows_divide_by_key_cardinality() {
        let cat = catalog(100, 10);
        let model = CostModel::new(&cat);
        let l = model.rel_plan(&LogicalPlan::scan("t"));
        let r = model.rel_plan(&LogicalPlan::scan("t"));
        let rows = model.join_rows(&l, &r, &[("k".into(), "k".into())]);
        assert_eq!(rows, 100 * 100 / 10);
    }
}
