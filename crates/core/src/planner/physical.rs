//! Physical plans: the costed, executable lowering of a logical tree.
//!
//! Lowering pairs every logical operator with its [`Cost`] estimate and
//! (after execution) an *actual* outcome string recorded in
//! [`ExecActuals`], so `Answer::trace` can show estimated vs actual costs
//! per node. Embedded relstore plans are expanded operator-by-operator,
//! each subtree costed independently.
//!
//! [`Alternatives`] branches are costed pessimistically — the estimate
//! sums all branches, because the ladder may have to try each one —
//! while a [`GraphTraverse`] fallback is *not* added to its parent: only
//! one of the two retrieval strategies ever runs.
//!
//! [`Alternatives`]: super::logical::LogicalNode::Alternatives
//! [`GraphTraverse`]: super::logical::LogicalNode::GraphTraverse

use std::collections::BTreeMap;

use unisem_relstore::plan::LogicalPlan as RelPlan;
use unisem_semistore::JsonPath;

use super::cost::{Cost, CostModel};
use super::logical::{CandidatePlan, LogicalNode};

/// Execution-time outcomes, keyed to the plan shape, filled in by the
/// engine's physical executor. Every map is a `BTreeMap` so rendering
/// order is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecActuals {
    /// Entropy-gate outcome.
    pub gate: Option<String>,
    /// Intent-tagging outcome.
    pub tag: Option<String>,
    /// Per-candidate structured outcomes, keyed by table name.
    pub structured: BTreeMap<String, String>,
    /// Retrieval outcome (traversal stats or dense-fallback note).
    pub retrieval: Option<String>,
    /// Evidence-extraction outcome.
    pub extract: Option<String>,
    /// Entailment-verification outcome.
    pub entail: Option<String>,
    /// Confidence-gate outcome.
    pub confidence: Option<String>,
    /// Final route label.
    pub outcome: Option<String>,
}

/// One costed physical operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhysNode {
    /// Operator label (logical label or relstore explain line).
    pub op: String,
    /// Cumulative subtree estimate; `estimated.rows` is the output guess.
    pub estimated: Cost,
    /// What actually happened here, when this node executed.
    pub actual: Option<String>,
    /// Child operators.
    pub children: Vec<PhysNode>,
}

/// A complete physical plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhysicalPlan {
    /// Root operator.
    pub root: PhysNode,
}

impl PhysicalPlan {
    /// Indented rendering: `op [est …]` with ` | actual: …` appended on
    /// executed nodes. Byte-deterministic (integer costs, BTreeMap
    /// actuals).
    pub fn render(&self) -> String {
        let mut out = String::new();
        render_node(&self.root, 0, &mut out);
        out
    }
}

fn render_node(node: &PhysNode, depth: usize, out: &mut String) {
    out.push_str(&"  ".repeat(depth));
    out.push_str(&node.op);
    out.push_str(&format!(" [est {}]", node.estimated.render()));
    if let Some(actual) = &node.actual {
        out.push_str(" | actual: ");
        out.push_str(actual);
    }
    out.push('\n');
    for c in &node.children {
        render_node(c, depth + 1, out);
    }
}

/// Lowers a logical tree into a costed physical plan, attaching the
/// executor's recorded actuals.
pub fn lower(logical: &LogicalNode, model: &CostModel, actuals: &ExecActuals) -> PhysicalPlan {
    PhysicalPlan { root: lower_node(logical, model, actuals) }
}

fn lower_node(node: &LogicalNode, model: &CostModel, actuals: &ExecActuals) -> PhysNode {
    match node {
        LogicalNode::EntropyGate { child, .. } => {
            let c = lower_node(child, model, actuals);
            let estimated =
                Cost { rows: c.estimated.rows, cpu: 1, io: 0, slm: 0 }.plus(c.estimated);
            PhysNode {
                op: node.label(),
                estimated,
                actual: actuals.gate.clone(),
                children: vec![c],
            }
        }
        LogicalNode::SemTag { child, .. } => {
            let c = lower_node(child, model, actuals);
            let estimated =
                Cost { rows: c.estimated.rows, cpu: 1, io: 0, slm: 1 }.plus(c.estimated);
            PhysNode { op: node.label(), estimated, actual: actuals.tag.clone(), children: vec![c] }
        }
        LogicalNode::Alternatives { children } => {
            let kids: Vec<PhysNode> =
                children.iter().map(|c| lower_node(c, model, actuals)).collect();
            let mut estimated = Cost::ZERO;
            for k in &kids {
                estimated = estimated.plus(k.estimated);
            }
            estimated.rows = kids.first().map(|k| k.estimated.rows).unwrap_or(0);
            PhysNode { op: node.label(), estimated, actual: None, children: kids }
        }
        LogicalNode::Relational { table, plan } => match plan {
            CandidatePlan::Planned(rel) => {
                let mut root = lower_rel(rel, model);
                root.actual = actuals.structured.get(table).cloned();
                PhysNode {
                    op: node.label(),
                    estimated: root.estimated,
                    actual: root.actual.clone(),
                    children: vec![root],
                }
            }
            CandidatePlan::Faulted | CandidatePlan::Unplannable(_) => PhysNode {
                op: node.label(),
                estimated: Cost::ZERO,
                actual: actuals.structured.get(table).cloned(),
                children: Vec::new(),
            },
        },
        LogicalNode::SemiPath { collection, path } => {
            let estimated = JsonPath::parse(path)
                .map(|p| model.semi_path(collection, &p))
                .unwrap_or(Cost::ZERO);
            PhysNode { op: node.label(), estimated, actual: None, children: Vec::new() }
        }
        LogicalNode::GraphTraverse { top_k, max_frontier, fallback } => {
            let fb = lower_node(fallback, model, actuals);
            let estimated = model.graph_traverse(*top_k, *max_frontier);
            PhysNode {
                op: node.label(),
                estimated,
                actual: actuals.retrieval.clone(),
                children: vec![fb],
            }
        }
        LogicalNode::DenseScan { top_k, dims } => PhysNode {
            op: node.label(),
            estimated: model.dense_scan(*top_k, model.stats().text.chunks, *dims),
            actual: actuals.retrieval.clone(),
            children: Vec::new(),
        },
        LogicalNode::SemExtract { max_sentences, child } => {
            let c = lower_node(child, model, actuals);
            let estimated = model.sem_extract(c.estimated.rows, *max_sentences).plus(c.estimated);
            PhysNode {
                op: node.label(),
                estimated,
                actual: actuals.extract.clone(),
                children: vec![c],
            }
        }
        LogicalNode::SemEntail { samples, child } => {
            let c = lower_node(child, model, actuals);
            let estimated = model.sem_entail(*samples).plus(c.estimated);
            PhysNode {
                op: node.label(),
                estimated,
                actual: actuals.entail.clone(),
                children: vec![c],
            }
        }
        LogicalNode::ConfidenceGate { child, .. } => {
            let c = lower_node(child, model, actuals);
            let estimated =
                Cost { rows: c.estimated.rows, cpu: 1, io: 0, slm: 0 }.plus(c.estimated);
            PhysNode {
                op: node.label(),
                estimated,
                actual: actuals.confidence.clone(),
                children: vec![c],
            }
        }
        LogicalNode::Abstain => PhysNode {
            op: node.label(),
            estimated: Cost::ZERO,
            actual: actuals.outcome.clone(),
            children: Vec::new(),
        },
    }
}

/// Expands a relstore plan operator-by-operator, costing each subtree.
fn lower_rel(plan: &RelPlan, model: &CostModel) -> PhysNode {
    let estimate = model.rel_plan(plan);
    let op = plan.explain().lines().next().unwrap_or("Rel").trim().to_string();
    let children = rel_children(plan).into_iter().map(|c| lower_rel(c, model)).collect();
    PhysNode { op, estimated: estimate.cost, actual: None, children }
}

fn rel_children(plan: &RelPlan) -> Vec<&RelPlan> {
    match plan {
        RelPlan::Scan { .. } => Vec::new(),
        RelPlan::Filter { input, .. }
        | RelPlan::Project { input, .. }
        | RelPlan::Aggregate { input, .. }
        | RelPlan::Sort { input, .. }
        | RelPlan::Limit { input, .. }
        | RelPlan::Distinct { input } => vec![input],
        RelPlan::Join { left, right, .. } => vec![left, right],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::stats::{ColumnStats, StatsCatalog, TableStats};
    use unisem_relstore::Expr;

    fn catalog() -> StatsCatalog {
        let mut cat = StatsCatalog::default();
        cat.tables.insert(
            "sales".into(),
            TableStats {
                rows: 100,
                columns: vec![ColumnStats { name: "region".into(), distinct: 5, nulls: 0 }],
            },
        );
        cat.text.chunks = 40;
        cat
    }

    #[test]
    fn lowering_expands_rel_plans_with_costs() {
        let cat = catalog();
        let model = CostModel::new(&cat);
        let logical = LogicalNode::Relational {
            table: "sales".into(),
            plan: CandidatePlan::Planned(
                RelPlan::scan("sales").filter(Expr::col("region").eq(Expr::lit("emea"))),
            ),
        };
        let mut actuals = ExecActuals::default();
        actuals.structured.insert("sales".into(), "rows=20 (signal)".into());
        let phys = lower(&logical, &model, &actuals);
        let text = phys.render();
        assert!(text.contains("Relational: table 'sales'"), "{text}");
        assert!(text.contains("Scan: sales"), "{text}");
        assert!(text.contains("Filter:"), "{text}");
        assert!(text.contains("[est rows~20"), "selectivity 1/5 of 100: {text}");
        assert!(text.contains("actual: rows=20 (signal)"), "{text}");
    }

    #[test]
    fn fallback_not_charged_to_traverse() {
        let cat = catalog();
        let model = CostModel::new(&cat);
        let traverse = LogicalNode::GraphTraverse {
            top_k: 4,
            max_frontier: 64,
            fallback: Box::new(LogicalNode::DenseScan { top_k: 4, dims: 16 }),
        };
        let phys = lower(&traverse, &model, &ExecActuals::default());
        let dense = &phys.root.children[0];
        assert!(dense.estimated.cpu > 0);
        assert!(
            phys.root.estimated.total() < dense.estimated.total(),
            "fallback cost kept on the fallback branch: {} vs {}",
            phys.root.estimated.total(),
            dense.estimated.total()
        );
    }

    #[test]
    fn render_is_deterministic() {
        let cat = catalog();
        let model = CostModel::new(&cat);
        let node = LogicalNode::Alternatives {
            children: vec![LogicalNode::DenseScan { top_k: 4, dims: 16 }, LogicalNode::Abstain],
        };
        let a = lower(&node, &model, &ExecActuals::default()).render();
        let b = lower(&node, &model, &ExecActuals::default()).render();
        assert_eq!(a, b);
    }
}
