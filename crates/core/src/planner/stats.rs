//! Build-time statistics catalog (DESIGN.md §11).
//!
//! The cost model's only data input. Collected once, at build time, from
//! every substrate: relational row counts and per-column cardinalities,
//! inverted-index posting-list lengths, and the graph degree histogram.
//!
//! Determinism contract: every number here is a pure function of the
//! ingested data — never of timing, thread count, or iteration order.
//! Tables live in a `BTreeMap`, so catalog iteration (and [`render`])
//! is byte-identical at any pool width; the thread-matrix test in
//! `tests/tests/planner_diff.rs` checks exactly that.
//!
//! [`render`]: StatsCatalog::render

use std::collections::BTreeMap;

use unisem_docstore::DocStore;
use unisem_hetgraph::HetGraph;
use unisem_relstore::Database;

/// Cardinality statistics for one column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnStats {
    /// Column name.
    pub name: String,
    /// Distinct non-NULL values (SQL comparison semantics).
    pub distinct: usize,
    /// NULL count.
    pub nulls: usize,
}

/// Statistics for one relational table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableStats {
    /// Row count.
    pub rows: usize,
    /// Per-column statistics, schema order.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Statistics for a named column, if present.
    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Distinct count for a named column; an unknown column estimates as
    /// the full row count (every value unique — the conservative default).
    pub fn distinct(&self, name: &str) -> usize {
        self.column(name).map(|c| c.distinct).unwrap_or(self.rows).max(1)
    }
}

/// Inverted-index statistics for the unstructured substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TextStats {
    /// Documents in the store.
    pub documents: usize,
    /// Chunks indexed.
    pub chunks: usize,
    /// Distinct indexed terms.
    pub terms: usize,
    /// Total posting entries across all terms.
    pub postings: usize,
    /// Longest posting list.
    pub max_posting: usize,
}

/// Degree statistics for the heterogeneous graph.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GraphDegreeStats {
    /// Node count.
    pub nodes: usize,
    /// Edge count.
    pub edges: usize,
    /// Maximum node degree.
    pub max_degree: usize,
    /// Mean degree scaled by 1000 (integer arithmetic keeps the catalog
    /// float-free and therefore trivially byte-stable).
    pub avg_degree_x1000: usize,
    /// Power-of-two degree histogram: `(inclusive upper bound, node
    /// count)`, overflow bucket reported with bound `usize::MAX`.
    pub histogram: Vec<(usize, usize)>,
}

/// The per-substrate statistics catalog the planner costs plans against.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatsCatalog {
    /// Per-table statistics, keyed by table name (deterministic order).
    pub tables: BTreeMap<String, TableStats>,
    /// Inverted-index statistics.
    pub text: TextStats,
    /// Graph degree statistics.
    pub graph: GraphDegreeStats,
}

impl StatsCatalog {
    /// Collects statistics from every substrate. Single-threaded by
    /// design: statistics are part of the build's deterministic output,
    /// and the collection pass is linear in the data.
    pub fn collect(db: &Database, docs: &DocStore, graph: &HetGraph) -> StatsCatalog {
        let mut tables = BTreeMap::new();
        let mut names: Vec<String> = db.table_names().into_iter().map(String::from).collect();
        names.sort_unstable();
        for name in names {
            if let Ok(t) = db.table(&name) {
                let columns = t
                    .schema()
                    .columns()
                    .iter()
                    .enumerate()
                    .map(|(i, c)| {
                        let (distinct, nulls) = t.column_stats(i);
                        ColumnStats { name: c.name.clone(), distinct, nulls }
                    })
                    .collect();
                tables.insert(name, TableStats { rows: t.num_rows(), columns });
            }
        }
        let (terms, postings, max_posting) = docs.posting_stats();
        let text = TextStats {
            documents: docs.num_documents(),
            chunks: docs.num_chunks(),
            terms,
            postings,
            max_posting,
        };
        let nodes = graph.num_nodes();
        let graph = GraphDegreeStats {
            nodes,
            edges: graph.num_edges(),
            max_degree: graph.max_degree(),
            avg_degree_x1000: if nodes == 0 { 0 } else { graph.num_edges() * 2 * 1000 / nodes },
            histogram: graph.degree_histogram(),
        };
        StatsCatalog { tables, text, graph }
    }

    /// Statistics for a named table.
    pub fn table(&self, name: &str) -> Option<&TableStats> {
        self.tables.get(name)
    }

    /// Total column statistics collected (feeds the build gauge).
    pub fn num_columns(&self) -> usize {
        self.tables.values().map(|t| t.columns.len()).sum()
    }

    /// Deterministic plaintext rendering, one fact per line. Tables come
    /// out in `BTreeMap` key order, so the bytes are identical for any
    /// build thread count.
    pub fn render(&self) -> String {
        let mut out = String::from("statistics catalog:\n");
        for (name, t) in &self.tables {
            out.push_str(&format!("  table {name}: rows={}\n", t.rows));
            for c in &t.columns {
                out.push_str(&format!(
                    "    column {}: distinct={} nulls={}\n",
                    c.name, c.distinct, c.nulls
                ));
            }
        }
        out.push_str(&format!(
            "  text: documents={} chunks={} terms={} postings={} max_posting={}\n",
            self.text.documents,
            self.text.chunks,
            self.text.terms,
            self.text.postings,
            self.text.max_posting
        ));
        out.push_str(&format!(
            "  graph: nodes={} edges={} max_degree={} avg_degree_x1000={}\n",
            self.graph.nodes, self.graph.edges, self.graph.max_degree, self.graph.avg_degree_x1000
        ));
        for (bound, count) in &self.graph.histogram {
            if *count > 0 {
                let label =
                    if *bound == usize::MAX { "inf".to_string() } else { format!("{bound}") };
                out.push_str(&format!("    degree<={label}: {count}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unisem_relstore::{DataType, Schema, Table, Value};
    use unisem_text::ChunkConfig;

    fn sample_catalog() -> StatsCatalog {
        let mut db = Database::new();
        let t = Table::from_rows(
            Schema::of(&[("product", DataType::Str), ("amount", DataType::Float)]),
            vec![
                vec![Value::str("a"), Value::Float(1.0)],
                vec![Value::str("a"), Value::Float(2.0)],
                vec![Value::str("b"), Value::Null],
            ],
        )
        .expect("typed rows");
        db.create_table("sales", t).expect("fresh");
        let mut docs = DocStore::new(ChunkConfig::default());
        docs.add_document("d", "alpha beta alpha.", "src");
        StatsCatalog::collect(&db, &docs, &HetGraph::new())
    }

    #[test]
    fn collects_cardinalities_and_text_stats() {
        let cat = sample_catalog();
        let t = cat.table("sales").expect("collected");
        assert_eq!(t.rows, 3);
        assert_eq!(t.distinct("product"), 2);
        assert_eq!(t.column("amount").expect("col").nulls, 1);
        assert_eq!(t.distinct("missing"), 3, "unknown column defaults to row count");
        assert!(cat.text.terms > 0);
        assert!(cat.text.postings >= cat.text.terms);
        assert_eq!(cat.num_columns(), 2);
    }

    #[test]
    fn render_is_stable_and_complete() {
        let cat = sample_catalog();
        assert_eq!(cat.render(), cat.render());
        let text = cat.render();
        assert!(text.contains("table sales: rows=3"), "{text}");
        assert!(text.contains("column product: distinct=2"), "{text}");
        assert!(text.contains("text: documents=1"), "{text}");
    }

    #[test]
    fn empty_substrates_collect_cleanly() {
        let cat = StatsCatalog::collect(&Database::new(), &DocStore::default(), &HetGraph::new());
        assert!(cat.tables.is_empty());
        assert_eq!(cat.graph.nodes, 0);
        assert_eq!(cat.graph.avg_degree_x1000, 0);
    }
}
