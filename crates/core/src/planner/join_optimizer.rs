//! Deterministic join-order optimization (DESIGN.md §11).
//!
//! Small join sets (≤ [`DP_THRESHOLD`] relations) get exact Selinger-style
//! dynamic programming over connected subsets; larger sets fall back to a
//! greedy min-rows heuristic. Both paths canonicalize their input first —
//! relations sorted by name, edges normalized and deduplicated — so the
//! chosen order is invariant to the permutation in which join edges were
//! discovered (the detkit property test in `crates/core/tests` checks
//! this directly).
//!
//! Tie-breaking is total: candidates are compared by `(contains a cross
//! join, cost, estimated rows, smaller left subset)`, and strictly-better
//! acceptance over a deterministic enumeration order means equal-cost
//! plans always resolve to the same tree. Putting the cross-join flag
//! first means a connected order is always preferred when one exists —
//! relstore cannot execute a join without an equality condition, so for
//! edge graphs extracted from runnable plans (always connected) the
//! chosen tree is runnable too.
//!
//! Note the engine's answer path applies reordering as an *annotation*
//! only: physically re-joining in a different order changes row
//! enumeration order, which changes float-accumulation order in
//! downstream aggregates and could flip answer bits. The rewriting API
//! ([`reorder_plan`]) is exercised by property tests and the public
//! [`crate::UnifiedEngine::optimized_multi_join`] entry point instead.

use unisem_relstore::plan::{JoinType, LogicalPlan};

use super::cost::CostModel;

/// Relation count at or below which exact DP runs; above it, greedy.
pub const DP_THRESHOLD: usize = 8;

/// An equi-join edge between two named relations. Canonical form keeps
/// `left <= right` lexicographically, with `on` pairs oriented
/// `(left column, right column)` and sorted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinEdge {
    /// Lexicographically smaller relation.
    pub left: String,
    /// Lexicographically larger relation.
    pub right: String,
    /// `(left column, right column)` equality pairs.
    pub on: Vec<(String, String)>,
}

impl JoinEdge {
    /// A canonicalized edge (sides swapped into name order, pairs sorted).
    pub fn new(a: impl Into<String>, b: impl Into<String>, on: Vec<(String, String)>) -> JoinEdge {
        let a = a.into();
        let b = b.into();
        let mut edge = if a <= b {
            JoinEdge { left: a, right: b, on }
        } else {
            JoinEdge { left: b, right: a, on: on.into_iter().map(|(x, y)| (y, x)).collect() }
        };
        edge.on.sort();
        edge.on.dedup();
        edge
    }
}

/// A join tree over named base relations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinTree {
    /// A base relation.
    Leaf(String),
    /// An inner equi-join of two subtrees.
    Node {
        /// Left subtree.
        left: Box<JoinTree>,
        /// Right subtree.
        right: Box<JoinTree>,
        /// `(left column, right column)` pairs, oriented to the subtrees.
        on: Vec<(String, String)>,
    },
}

impl JoinTree {
    /// All leaf relation names, left to right.
    pub fn relations(&self) -> Vec<String> {
        match self {
            JoinTree::Leaf(name) => vec![name.clone()],
            JoinTree::Node { left, right, .. } => {
                let mut out = left.relations();
                out.extend(right.relations());
                out
            }
        }
    }

    /// Compact parenthesized rendering, e.g. `((a ⨝ b) ⨝ c)`.
    pub fn render(&self) -> String {
        match self {
            JoinTree::Leaf(name) => name.clone(),
            JoinTree::Node { left, right, .. } => {
                format!("({} ⨝ {})", left.render(), right.render())
            }
        }
    }

    /// Whether any node joins without an equality condition (a cross
    /// join, which relstore cannot execute).
    pub fn has_cross_join(&self) -> bool {
        match self {
            JoinTree::Leaf(_) => false,
            JoinTree::Node { left, right, on } => {
                on.is_empty() || left.has_cross_join() || right.has_cross_join()
            }
        }
    }

    /// Lowers the tree to a relstore [`LogicalPlan`] of scans and inner
    /// joins.
    pub fn to_plan(&self) -> LogicalPlan {
        match self {
            JoinTree::Leaf(name) => LogicalPlan::scan(name.clone()),
            JoinTree::Node { left, right, on } => left.to_plan().join(right.to_plan(), on.clone()),
        }
    }
}

/// The optimizer's result: a join tree plus its estimates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinOrder {
    /// The chosen tree.
    pub tree: JoinTree,
    /// Estimated output rows.
    pub estimated_rows: u64,
    /// Estimated total cost units.
    pub cost: u64,
    /// Whether exact DP ran (`false` = greedy fallback).
    pub used_dp: bool,
}

/// One in-progress subtree during optimization.
#[derive(Debug, Clone)]
struct Partial {
    mask: u64,
    tree: JoinTree,
    rows: u64,
    cost: u64,
    /// Any node in the subtree joins without an equality condition.
    cross: bool,
}

/// Chooses a join order for `relations` connected by `edges`.
///
/// Input order never matters: relations are sorted by name and edges are
/// canonicalized before any enumeration. Unconnected splits are treated
/// as cross joins (row product), so a plan always exists; edges only
/// make some splits cheaper. Returns `None` for an empty relation set.
pub fn optimize(relations: &[String], edges: &[JoinEdge], model: &CostModel) -> Option<JoinOrder> {
    let mut rels: Vec<String> = relations.to_vec();
    rels.sort_unstable();
    rels.dedup();
    if rels.is_empty() || rels.len() > 64 {
        return None;
    }
    let mut canon: Vec<JoinEdge> = edges
        .iter()
        .filter(|e| rels.binary_search(&e.left).is_ok() && rels.binary_search(&e.right).is_ok())
        .map(|e| JoinEdge::new(e.left.clone(), e.right.clone(), e.on.clone()))
        .collect();
    canon.sort_by(|a, b| (&a.left, &a.right, &a.on).cmp(&(&b.left, &b.right, &b.on)));
    canon.dedup();

    if rels.len() == 1 {
        let rows = model.table_rows(&rels[0]);
        return Some(JoinOrder {
            tree: JoinTree::Leaf(rels[0].clone()),
            estimated_rows: rows,
            cost: rows,
            used_dp: false,
        });
    }

    let use_dp = rels.len() <= DP_THRESHOLD;
    let best =
        if use_dp { dp_order(&rels, &canon, model)? } else { greedy_order(&rels, &canon, model)? };
    Some(JoinOrder { estimated_rows: best.rows, cost: best.cost, tree: best.tree, used_dp: use_dp })
}

/// Exact bitmask DP over all subset splits.
fn dp_order(rels: &[String], edges: &[JoinEdge], model: &CostModel) -> Option<Partial> {
    let n = rels.len();
    let full: u64 = (1u64 << n) - 1;
    let mut table: Vec<Option<Partial>> = vec![None; (full + 1) as usize];
    for (i, name) in rels.iter().enumerate() {
        let rows = model.table_rows(name);
        table[1usize << i] = Some(Partial {
            mask: 1u64 << i,
            tree: JoinTree::Leaf(name.clone()),
            rows,
            cost: rows,
            cross: false,
        });
    }
    for mask in 1..=full {
        if mask.count_ones() < 2 {
            continue;
        }
        let mut best: Option<Partial> = None;
        // `None` until the first candidate: estimates can saturate at
        // `u64::MAX` on huge cross products, so a sentinel key would
        // wrongly reject them under strictly-better acceptance.
        let mut best_key: Option<(u64, u64, u64, u64)> = None;
        // Enumerate proper submasks deterministically (descending).
        let mut sub = (mask - 1) & mask;
        while sub > 0 {
            let rest = mask & !sub;
            if let (Some(l), Some(r)) = (&table[sub as usize], &table[rest as usize]) {
                if let Some(candidate) = join_partials(rels, edges, model, l, r) {
                    let key = (u64::from(candidate.cross), candidate.cost, candidate.rows, sub);
                    if best_key.map(|b| key < b).unwrap_or(true) {
                        best_key = Some(key);
                        best = Some(candidate);
                    }
                }
            }
            sub = (sub - 1) & mask;
        }
        table[mask as usize] = best;
    }
    table[full as usize].clone()
}

/// Greedy fallback: repeatedly merge the pair with the smallest estimated
/// joined row count (strictly-better acceptance over index order breaks
/// ties deterministically).
fn greedy_order(rels: &[String], edges: &[JoinEdge], model: &CostModel) -> Option<Partial> {
    let mut parts: Vec<Partial> = rels
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let rows = model.table_rows(name);
            Partial {
                mask: 1u64 << i,
                tree: JoinTree::Leaf(name.clone()),
                rows,
                cost: rows,
                cross: false,
            }
        })
        .collect();
    while parts.len() > 1 {
        let mut best: Option<(usize, usize, Partial)> = None;
        let mut best_key: Option<(u64, u64, u64)> = None;
        for i in 0..parts.len() {
            for j in (i + 1)..parts.len() {
                if let Some(candidate) = join_partials(rels, edges, model, &parts[i], &parts[j]) {
                    let key = (u64::from(candidate.cross), candidate.rows, candidate.cost);
                    if best_key.map(|b| key < b).unwrap_or(true) {
                        best_key = Some(key);
                        best = Some((i, j, candidate));
                    }
                }
            }
        }
        let (i, j, merged) = best?;
        parts.remove(j);
        parts.remove(i);
        parts.insert(0, merged);
    }
    parts.pop()
}

/// Joins two partial subtrees, estimating the merged cardinality from the
/// edges that cross the split.
fn join_partials(
    rels: &[String],
    edges: &[JoinEdge],
    model: &CostModel,
    l: &Partial,
    r: &Partial,
) -> Option<Partial> {
    let mut on: Vec<(String, String)> = Vec::new();
    let mut rows = l.rows.saturating_mul(r.rows);
    for e in edges {
        let li = rels.binary_search(&e.left).ok()?;
        let ri = rels.binary_search(&e.right).ok()?;
        let (lbit, rbit) = (1u64 << li, 1u64 << ri);
        let crossing = if l.mask & lbit != 0 && r.mask & rbit != 0 {
            Some(false)
        } else if l.mask & rbit != 0 && r.mask & lbit != 0 {
            Some(true)
        } else {
            None
        };
        if let Some(flipped) = crossing {
            for (a, b) in &e.on {
                let (lc, rc, lrel, rrel) = if flipped {
                    (b.clone(), a.clone(), &e.right, &e.left)
                } else {
                    (a.clone(), b.clone(), &e.left, &e.right)
                };
                let ld = distinct_of(model, lrel, &lc);
                let rd = distinct_of(model, rrel, &rc);
                rows /= ld.max(rd).max(1);
                on.push((lc, rc));
            }
        }
    }
    if l.rows > 0 && r.rows > 0 {
        rows = rows.max(1);
    }
    on.sort();
    on.dedup();
    let cost = l
        .cost
        .saturating_add(r.cost)
        .saturating_add(l.rows)
        .saturating_add(r.rows)
        .saturating_add(rows);
    let cross = l.cross || r.cross || on.is_empty();
    Some(Partial {
        mask: l.mask | r.mask,
        tree: JoinTree::Node {
            left: Box::new(l.tree.clone()),
            right: Box::new(r.tree.clone()),
            on,
        },
        rows,
        cost,
        cross,
    })
}

fn distinct_of(model: &CostModel, rel: &str, col: &str) -> u64 {
    model.stats().table(rel).map(|t| t.distinct(col) as u64).unwrap_or(2)
}

/// Rewrites a pure inner-join tree of base-table scans into the
/// cost-optimal join order. Returns `None` (leaving the caller's plan
/// untouched) when the plan contains anything other than scans and inner
/// equi-joins, repeats a table, or has no join at all — reordering is
/// only defined where it provably preserves set semantics.
pub fn reorder_plan(plan: &LogicalPlan, model: &CostModel) -> Option<(LogicalPlan, JoinOrder)> {
    let mut edges: Vec<JoinEdge> = Vec::new();
    let rels = collect_join_tree(plan, model, &mut edges)?;
    if rels.len() < 2 {
        return None;
    }
    let mut unique = rels.clone();
    unique.sort_unstable();
    unique.dedup();
    if unique.len() != rels.len() {
        return None;
    }
    let order = optimize(&unique, &edges, model)?;
    // A runnable input plan yields a connected edge graph, so the
    // cross-averse tie-break should never pick a cross join here; the
    // guard keeps the promise airtight regardless.
    if order.tree.has_cross_join() {
        return None;
    }
    Some((order.tree.to_plan(), order))
}

/// Collects scan leaves and crossing edges from a scan/inner-join tree;
/// `None` when any other operator appears. Column-to-relation attribution
/// asks the statistics catalog which side's table actually declares the
/// column, falling back to the first relation of the subtree.
fn collect_join_tree(
    plan: &LogicalPlan,
    model: &CostModel,
    edges: &mut Vec<JoinEdge>,
) -> Option<Vec<String>> {
    match plan {
        LogicalPlan::Scan { table } => Some(vec![table.clone()]),
        LogicalPlan::Join { left, right, join_type, on } => {
            if *join_type != JoinType::Inner {
                return None;
            }
            let lrels = collect_join_tree(left, model, edges)?;
            let rrels = collect_join_tree(right, model, edges)?;
            for (lc, rc) in on {
                let lrel = owner_of(model, &lrels, lc)?;
                let rrel = owner_of(model, &rrels, rc)?;
                edges.push(JoinEdge::new(lrel, rrel, vec![(lc.clone(), rc.clone())]));
            }
            let mut out = lrels;
            out.extend(rrels);
            Some(out)
        }
        _ => None,
    }
}

/// The first relation of a subtree whose table declares `col`, falling
/// back to the subtree's first relation when the catalog has no match.
fn owner_of(model: &CostModel, rels: &[String], col: &str) -> Option<String> {
    rels.iter()
        .find(|r| model.stats().table(r).map(|t| t.column(col).is_some()).unwrap_or(false))
        .or_else(|| rels.first())
        .cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::stats::{ColumnStats, StatsCatalog, TableStats};

    fn catalog(specs: &[(&str, usize, &[(&str, usize)])]) -> StatsCatalog {
        let mut cat = StatsCatalog::default();
        for (name, rows, cols) in specs {
            cat.tables.insert(
                (*name).to_string(),
                TableStats {
                    rows: *rows,
                    columns: cols
                        .iter()
                        .map(|(c, d)| ColumnStats {
                            name: (*c).to_string(),
                            distinct: *d,
                            nulls: 0,
                        })
                        .collect(),
                },
            );
        }
        cat
    }

    fn star_edges() -> Vec<JoinEdge> {
        vec![
            JoinEdge::new("orders", "customers", vec![("cid".into(), "cid".into())]),
            JoinEdge::new("orders", "products", vec![("pid".into(), "pid".into())]),
        ]
    }

    #[test]
    fn dp_puts_selective_join_first() {
        let cat = catalog(&[
            ("orders", 10_000, &[("cid", 100), ("pid", 50)]),
            ("customers", 100, &[("cid", 100)]),
            ("products", 50, &[("pid", 50)]),
        ]);
        let model = CostModel::new(&cat);
        let rels: Vec<String> =
            ["customers", "orders", "products"].iter().map(|s| s.to_string()).collect();
        let order = optimize(&rels, &star_edges(), &model).expect("plan");
        assert!(order.used_dp);
        assert_eq!(order.estimated_rows, 10_000);
        assert_eq!(order.tree.relations().len(), 3);
    }

    #[test]
    fn edge_permutation_is_invariant() {
        let cat = catalog(&[
            ("a", 10, &[("k", 10)]),
            ("b", 200, &[("k", 10), ("j", 20)]),
            ("c", 3_000, &[("j", 20)]),
        ]);
        let model = CostModel::new(&cat);
        let rels: Vec<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
        let e1 = JoinEdge::new("a", "b", vec![("k".into(), "k".into())]);
        let e2 = JoinEdge::new("c", "b", vec![("j".into(), "j".into())]);
        let fwd = optimize(&rels, &[e1.clone(), e2.clone()], &model).expect("plan");
        let rev = optimize(&rels, &[e2, e1], &model).expect("plan");
        assert_eq!(fwd, rev);
    }

    #[test]
    fn greedy_handles_large_sets() {
        let specs: Vec<(String, usize)> =
            (0..12).map(|i| (format!("t{i:02}"), 10 + i * 7)).collect();
        let cat_specs: Vec<(&str, usize, &[(&str, usize)])> =
            specs.iter().map(|(n, r)| (n.as_str(), *r, &[][..])).collect();
        let cat = catalog(&cat_specs);
        let model = CostModel::new(&cat);
        let rels: Vec<String> = specs.iter().map(|(n, _)| n.clone()).collect();
        let order = optimize(&rels, &[], &model).expect("plan");
        assert!(!order.used_dp);
        assert_eq!(order.tree.relations().len(), 12);
    }

    #[test]
    fn reorder_rejects_non_join_shapes() {
        let cat = catalog(&[("a", 10, &[]), ("b", 10, &[])]);
        let model = CostModel::new(&cat);
        let single = LogicalPlan::scan("a");
        assert!(reorder_plan(&single, &model).is_none());
        let with_limit = LogicalPlan::scan("a").join(LogicalPlan::scan("b"), vec![]).limit(3);
        assert!(reorder_plan(&with_limit, &model).is_none());
        let self_join = LogicalPlan::scan("a").join(LogicalPlan::scan("a"), vec![]);
        assert!(reorder_plan(&self_join, &model).is_none());
    }

    #[test]
    fn reorder_emits_runnable_plan() {
        let cat = catalog(&[
            ("orders", 10_000, &[("cid", 100), ("pid", 50)]),
            ("customers", 100, &[("cid", 100)]),
            ("products", 50, &[("pid", 50)]),
        ]);
        let model = CostModel::new(&cat);
        let plan = LogicalPlan::scan("customers")
            .join(LogicalPlan::scan("orders"), vec![("cid".into(), "cid".into())])
            .join(LogicalPlan::scan("products"), vec![("pid".into(), "pid".into())]);
        let (rewritten, order) = reorder_plan(&plan, &model).expect("reordered");
        assert_eq!(order.tree.relations().len(), 3);
        assert!(matches!(rewritten, LogicalPlan::Join { .. }));
        assert!(order.tree.render().contains("⨝"));
    }
}
