//! Unified cost-based query planner (DESIGN.md §11).
//!
//! The planner splits query resolution into a **logical** algebra
//! ([`logical::LogicalNode`]) spanning every substrate — relational,
//! semi-structured, document, graph — with the SLM semantic operators as
//! first-class nodes; a deterministic, integer-only **cost model**
//! ([`cost::CostModel`]) fed by build-time per-substrate statistics
//! ([`stats::StatsCatalog`]); a **join-order optimizer**
//! ([`join_optimizer`]) with exact DP below
//! [`join_optimizer::DP_THRESHOLD`] relations and a greedy fallback
//! above; and a **physical** lowering ([`physical::PhysicalPlan`]) that
//! pairs every operator with estimated and actual costs for the explain
//! trace.
//!
//! `UnifiedEngine::answer` synthesizes, optimizes, and executes these
//! plans; the pre-planner degradation ladder survives verbatim behind
//! `EngineConfig::legacy_ladder` as the differential-testing oracle
//! (`tests/tests/planner_diff.rs` proves byte-identical answers).

pub mod cost;
pub mod join_optimizer;
pub mod logical;
pub mod physical;
pub mod stats;

pub use cost::{Cost, CostModel, RelEstimate};
pub use join_optimizer::{optimize as optimize_join_order, JoinEdge, JoinOrder, JoinTree};
pub use logical::{CandidatePlan, LogicalNode};
pub use physical::{ExecActuals, PhysNode, PhysicalPlan};
pub use stats::{ColumnStats, GraphDegreeStats, StatsCatalog, TableStats, TextStats};
