//! Property-based tests: JSON round-trips and flattening invariants.

use proptest::prelude::*;
use unisem_semistore::{discover_schema, flatten_collection, parse_json, JsonValue};

/// Strategy for arbitrary JSON values of bounded depth.
fn arb_json() -> impl Strategy<Value = JsonValue> {
    let leaf = prop_oneof![
        Just(JsonValue::Null),
        any::<bool>().prop_map(JsonValue::Bool),
        (-1e9f64..1e9).prop_map(|n| JsonValue::Number((n * 100.0).round() / 100.0)),
        "[a-zA-Z0-9 _.-]{0,12}".prop_map(JsonValue::String),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(JsonValue::Array),
            proptest::collection::vec(("[a-z]{1,6}", inner), 0..4).prop_map(|pairs| {
                // Deduplicate keys (objects keep first occurrence).
                let mut seen = std::collections::HashSet::new();
                JsonValue::Object(
                    pairs
                        .into_iter()
                        .filter(|(k, _)| seen.insert(k.clone()))
                        .collect(),
                )
            }),
        ]
    })
}

/// Strategy for flat-ish JSON objects (flattening input).
fn arb_object() -> impl Strategy<Value = JsonValue> {
    proptest::collection::vec(
        (
            "[a-z]{1,5}",
            prop_oneof![
                (-1000i64..1000).prop_map(|n| JsonValue::Number(n as f64)),
                any::<bool>().prop_map(JsonValue::Bool),
                "[a-z]{0,6}".prop_map(JsonValue::String),
            ],
        ),
        0..6,
    )
    .prop_map(|pairs| {
        let mut seen = std::collections::HashSet::new();
        JsonValue::Object(pairs.into_iter().filter(|(k, _)| seen.insert(k.clone())).collect())
    })
}

proptest! {
    /// serialize → parse is the identity.
    #[test]
    fn json_roundtrip(v in arb_json()) {
        let text = v.to_json();
        let back = parse_json(&text).unwrap();
        prop_assert_eq!(back, v);
    }

    /// Flattening: one output row per input document, and the schema covers
    /// exactly the union of observed keys.
    #[test]
    fn flatten_row_per_doc(docs in proptest::collection::vec(arb_object(), 0..8)) {
        let t = flatten_collection(&docs).unwrap();
        prop_assert_eq!(t.num_rows(), docs.len());
        let schema = discover_schema(&docs).unwrap();
        prop_assert_eq!(schema.arity(), t.num_columns());
        // Every document key appears as a column.
        for d in &docs {
            if let JsonValue::Object(fields) = d {
                for (k, _) in fields {
                    prop_assert!(schema.index_of(k).is_some(), "missing column {}", k);
                }
            }
        }
    }

    /// Flattened cells type-check against the discovered schema (push_row
    /// inside flatten_collection would fail otherwise, so this asserts no
    /// panic and a clean construction).
    #[test]
    fn flatten_type_consistent(docs in proptest::collection::vec(arb_object(), 0..8)) {
        let t = flatten_collection(&docs).unwrap();
        for i in 0..t.num_rows() {
            for j in 0..t.num_columns() {
                let cell = t.cell(i, j);
                let dtype = t.schema().column(j).dtype;
                prop_assert!(dtype.admits(cell), "{cell:?} in {dtype:?}");
            }
        }
    }
}
