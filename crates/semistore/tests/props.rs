//! Property-based tests: JSON round-trips and flattening invariants
//! (detkit harness).

use detkit::prop::{bools, i64s, one_of, string_of, vec_of, zip, Config, Gen};
use detkit::rng::Rng;
use detkit::{file_regressions, prop_assert, prop_assert_eq, prop_check};
use unisem_semistore::{discover_schema, flatten_collection, parse_json, JsonValue};

/// Arbitrary JSON values of bounded depth (hand-rolled recursion; these
/// trees do not shrink, the flat-object generators below do).
fn arb_json() -> Gen<JsonValue> {
    Gen::raw(|rng| json_value(rng, 3))
}

fn json_value(rng: &mut Rng, depth: u32) -> JsonValue {
    let branch = if depth == 0 { rng.gen_range(0..4) } else { rng.gen_range(0..6) };
    match branch {
        0 => JsonValue::Null,
        1 => JsonValue::Bool(rng.gen_bool(0.5)),
        2 => {
            let n = rng.gen_range(-1e9f64..1e9);
            JsonValue::Number((n * 100.0).round() / 100.0)
        }
        3 => JsonValue::String(random_string(rng, "abcXYZ019 _.-", 0, 12)),
        4 => {
            let n = rng.gen_range(0..4usize);
            JsonValue::Array((0..n).map(|_| json_value(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.gen_range(0..4usize);
            let mut seen = std::collections::HashSet::new();
            JsonValue::Object(
                (0..n)
                    .map(|_| (random_string(rng, "abcdef", 1, 6), json_value(rng, depth - 1)))
                    .filter(|(k, _)| seen.insert(k.clone()))
                    .collect(),
            )
        }
    }
}

fn random_string(rng: &mut Rng, pool: &str, min: usize, max: usize) -> String {
    let chars: Vec<char> = pool.chars().collect();
    let n = rng.gen_range(min..=max);
    (0..n).map(|_| *rng.choose(&chars).expect("non-empty pool")).collect()
}

/// Flat-ish JSON objects (flattening input); shrinks through the
/// combinators down to `Object([])`.
fn arb_object() -> Gen<JsonValue> {
    let leaf = one_of(vec![
        i64s(-1000, 999).map(|&n| JsonValue::Number(n as f64)),
        bools().map(|&b| JsonValue::Bool(b)),
        string_of("abcdef", 0, 6).map(|s| JsonValue::String(s.clone())),
    ]);
    vec_of(&zip(&string_of("abcde", 1, 5), &leaf), 0, 6).map(|pairs| {
        let mut seen = std::collections::HashSet::new();
        JsonValue::Object(pairs.iter().filter(|(k, _)| seen.insert(k.clone())).cloned().collect())
    })
}

// serialize → parse is the identity.
prop_check!(json_roundtrip, arb_json(), |v| {
    let text = v.to_json();
    let back = parse_json(&text).unwrap();
    prop_assert_eq!(&back, v);
    Ok(())
});

// Flattening: one output row per input document, and the schema covers
// exactly the union of observed keys. Replays the seeds stored in
// `props.regressions` before generating fresh cases.
prop_check!(
    flatten_row_per_doc,
    Config::default()
        .with_regressions(file_regressions!("props.regressions", "flatten_row_per_doc")),
    vec_of(&arb_object(), 0, 8),
    |docs| {
        let t = flatten_collection(docs).unwrap();
        prop_assert_eq!(t.num_rows(), docs.len());
        let schema = discover_schema(docs).unwrap();
        prop_assert_eq!(schema.arity(), t.num_columns());
        // Every document key appears as a column.
        for d in docs {
            if let JsonValue::Object(fields) = d {
                for (k, _) in fields {
                    prop_assert!(schema.index_of(k).is_some(), "missing column {}", k);
                }
            }
        }
        Ok(())
    }
);

// Flattened cells type-check against the discovered schema (push_row
// inside flatten_collection would fail otherwise, so this asserts no
// panic and a clean construction).
prop_check!(flatten_type_consistent, vec_of(&arb_object(), 0, 8), |docs| {
    let t = flatten_collection(docs).unwrap();
    for i in 0..t.num_rows() {
        for j in 0..t.num_columns() {
            let cell = t.cell(i, j);
            let dtype = t.schema().column(j).dtype;
            prop_assert!(dtype.admits(cell), "{cell:?} in {dtype:?}");
        }
    }
    Ok(())
});

/// Ported from the retired `props.proptest-regressions` file: proptest
/// once shrank a `flatten_row_per_doc` failure to `docs = [Object([])]`
/// (a single document with no fields). Keep the exact input alive as a
/// named unit test so the historical regression can never silently
/// reappear.
#[test]
fn regression_single_empty_object_document() {
    let docs = vec![JsonValue::Object(vec![])];
    let t = flatten_collection(&docs).expect("empty object flattens");
    assert_eq!(t.num_rows(), 1, "one row per document, even with no fields");
    let schema = discover_schema(&docs).expect("schema of empty object");
    assert_eq!(schema.arity(), t.num_columns());
    assert_eq!(t.num_columns(), 0);
}

/// Same shape, mixed in with non-empty documents: the empty object must
/// produce an all-NULL row, not lose the row.
#[test]
fn regression_empty_object_among_populated_documents() {
    let docs = vec![
        JsonValue::Object(vec![("a".into(), JsonValue::Number(1.0))]),
        JsonValue::Object(vec![]),
    ];
    let t = flatten_collection(&docs).expect("mixed docs flatten");
    assert_eq!(t.num_rows(), 2);
    assert_eq!(t.num_columns(), 1);
    assert!(t.cell(1, 0).is_null(), "missing field must flatten to NULL");
}
