//! Named collections of JSON documents.

use std::collections::BTreeMap;

use unisem_relstore::Table;

use crate::flatten::{flatten_collection, FlattenError};
use crate::json::JsonValue;
use crate::path::JsonPath;

/// Identifier of a document within a collection (insertion order).
pub type DocId = usize;

/// A semi-structured store: named collections of JSON documents.
#[derive(Debug, Clone, Default)]
pub struct SemiStore {
    collections: BTreeMap<String, Vec<JsonValue>>,
}

impl SemiStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a document, creating the collection on first use.
    /// Returns the document's id within the collection.
    pub fn insert(&mut self, collection: &str, doc: JsonValue) -> DocId {
        let coll = self.collections.entry(collection.to_string()).or_default();
        coll.push(doc);
        coll.len() - 1
    }

    /// All collection names, alphabetical.
    pub fn collections(&self) -> Vec<&str> {
        self.collections.keys().map(String::as_str).collect()
    }

    /// Documents in a collection (empty slice if absent).
    pub fn docs(&self, collection: &str) -> &[JsonValue] {
        self.collections.get(collection).map_or(&[], Vec::as_slice)
    }

    /// A single document.
    pub fn doc(&self, collection: &str, id: DocId) -> Option<&JsonValue> {
        self.collections.get(collection)?.get(id)
    }

    /// Total number of documents across collections.
    pub fn len(&self) -> usize {
        self.collections.values().map(Vec::len).sum()
    }

    /// True when the store holds no documents.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Evaluates a path against every document of a collection, returning
    /// `(doc id, matched value)` pairs.
    pub fn query<'a>(&'a self, collection: &str, path: &JsonPath) -> Vec<(DocId, &'a JsonValue)> {
        self.docs(collection)
            .iter()
            .enumerate()
            .flat_map(|(id, d)| path.eval(d).into_iter().map(move |v| (id, v)))
            .collect()
    }

    /// Flattens a collection to a relational table (see
    /// [`crate::flatten::flatten_collection`]).
    pub fn to_table(&self, collection: &str) -> Result<Table, FlattenError> {
        flatten_collection(self.docs(collection))
    }

    /// Approximate resident bytes (serialized length of all documents).
    pub fn approx_bytes(&self) -> usize {
        self.collections.values().flat_map(|docs| docs.iter()).map(|d| d.to_json().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_json;

    fn store() -> SemiStore {
        let mut s = SemiStore::new();
        s.insert("logs", parse_json(r#"{"level": "info", "code": 200}"#).unwrap());
        s.insert("logs", parse_json(r#"{"level": "error", "code": 500}"#).unwrap());
        s.insert("events", parse_json(r#"{"kind": "click"}"#).unwrap());
        s
    }

    #[test]
    fn insert_and_lookup() {
        let s = store();
        assert_eq!(s.len(), 3);
        assert_eq!(s.collections(), vec!["events", "logs"]);
        assert_eq!(s.docs("logs").len(), 2);
        assert!(s.doc("logs", 1).is_some());
        assert!(s.doc("logs", 9).is_none());
        assert!(s.doc("missing", 0).is_none());
    }

    #[test]
    fn query_paths() {
        let s = store();
        let p = JsonPath::parse("$.level").unwrap();
        let hits = s.query("logs", &p);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].1.as_str(), Some("info"));
        assert_eq!(hits[1].0, 1);
    }

    #[test]
    fn query_missing_collection_empty() {
        let s = store();
        let p = JsonPath::parse("$.x").unwrap();
        assert!(s.query("missing", &p).is_empty());
    }

    #[test]
    fn to_table_works() {
        let s = store();
        let t = s.to_table("logs").unwrap();
        assert_eq!(t.num_rows(), 2);
        assert!(t.schema().index_of("code").is_some());
    }

    #[test]
    fn approx_bytes_positive() {
        assert!(store().approx_bytes() > 0);
        assert_eq!(SemiStore::new().approx_bytes(), 0);
    }
}
