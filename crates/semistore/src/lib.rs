//! # unisem-semistore
//!
//! The semi-structured substrate: a self-contained JSON document store.
//!
//! The paper's problem statement (§I) spans "semi-structured formats (e.g.,
//! JSON logs, XML configurations)". This crate provides that modality:
//!
//! - [`json`]: a JSON value model, parser, and serializer (no external
//!   dependency — see DESIGN.md §2),
//! - [`path`]: a JSONPath-lite query language (`$.a.b[0]`, `$.items[*].x`),
//! - [`xml`]: a minimal XML parser mapping into the same value model
//!   ("XML configurations", §I),
//! - [`flatten`]: schema discovery over document collections and conversion
//!   to `unisem-relstore` tables (the bridge that lets semi-structured data
//!   participate in TableQA),
//! - [`store`]: named collections of documents with path queries.

pub mod flatten;
pub mod json;
pub mod path;
pub mod store;
pub mod xml;

pub use flatten::{discover_schema, flatten_collection, FlattenError};
pub use json::{parse_json, JsonError, JsonValue};
pub use path::{JsonPath, PathError};
pub use store::{DocId, SemiStore};
pub use xml::{parse_xml, XmlError};
