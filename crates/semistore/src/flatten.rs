//! Schema discovery and relational flattening.
//!
//! Converts a homogeneous-ish collection of JSON documents into a
//! `unisem-relstore` [`Table`]: nested objects flatten to dot-separated
//! column names (`user.name`), scalar arrays are serialized to JSON text,
//! and column types are inferred as the narrowest type admitting every
//! observed value.
//!
//! This is the bridge that lets JSON logs participate in the TableQA
//! pipelines of §III.C.

use std::collections::BTreeMap;
use std::fmt;

use unisem_relstore::{Column, DataType, Date, RelError, Schema, Table, Value};

use crate::json::JsonValue;

/// Errors from flattening.
#[derive(Debug, Clone, PartialEq)]
pub enum FlattenError {
    /// A document was not an object.
    NonObjectDocument(usize),
    /// The relational layer rejected the result.
    Rel(RelError),
}

impl fmt::Display for FlattenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlattenError::NonObjectDocument(i) => {
                write!(f, "document {i} is not a JSON object")
            }
            FlattenError::Rel(e) => write!(f, "relational error: {e}"),
        }
    }
}

impl std::error::Error for FlattenError {}

impl From<RelError> for FlattenError {
    fn from(e: RelError) -> Self {
        FlattenError::Rel(e)
    }
}

/// Flattens one object into `(dotted path, leaf value)` pairs.
fn flatten_doc(doc: &JsonValue, prefix: &str, out: &mut Vec<(String, JsonValue)>) {
    match doc {
        JsonValue::Object(fields) => {
            for (k, v) in fields {
                let path = if prefix.is_empty() { k.clone() } else { format!("{prefix}.{k}") };
                match v {
                    JsonValue::Object(_) => flatten_doc(v, &path, out),
                    other => out.push((path, other.clone())),
                }
            }
        }
        other => out.push((prefix.to_string(), other.clone())),
    }
}

/// Converts a JSON leaf into a relational value.
fn leaf_value(v: &JsonValue) -> Value {
    match v {
        JsonValue::Null => Value::Null,
        JsonValue::Bool(b) => Value::Bool(*b),
        JsonValue::Number(n) => {
            if n.fract() == 0.0 && n.abs() < 9e15 {
                Value::Int(*n as i64)
            } else {
                Value::float(*n)
            }
        }
        JsonValue::String(s) => {
            // Date-looking strings become dates.
            match Date::parse(s) {
                Some(d) => Value::Date(d),
                None => Value::str(s.clone()),
            }
        }
        // Arrays (and any nested structure reaching here) serialize to text.
        other => Value::str(other.to_json()),
    }
}

/// Discovers the union schema of a document collection.
///
/// Column order is alphabetical by dotted path (deterministic); types are
/// the narrowest unifying type, falling back to `Str` on conflict.
pub fn discover_schema(docs: &[JsonValue]) -> Result<Schema, FlattenError> {
    let mut types: BTreeMap<String, Option<DataType>> = BTreeMap::new();
    for (i, d) in docs.iter().enumerate() {
        if !matches!(d, JsonValue::Object(_)) {
            return Err(FlattenError::NonObjectDocument(i));
        }
        let mut pairs = Vec::new();
        flatten_doc(d, "", &mut pairs);
        for (path, v) in pairs {
            let val = leaf_value(&v);
            let entry = types.entry(path).or_insert(None);
            if let Some(dt) = DataType::of(&val) {
                *entry = match entry {
                    None => Some(dt),
                    Some(prev) => Some(DataType::unify(*prev, dt).unwrap_or(DataType::Str)),
                };
            }
        }
    }
    let cols: Vec<Column> = types
        .into_iter()
        .map(|(name, dt)| Column::new(name, dt.unwrap_or(DataType::Str)))
        .collect();
    Schema::new(cols).map_err(FlattenError::from)
}

/// Flattens a document collection into a table with the discovered schema.
///
/// Missing fields become NULL; type conflicts stringify the column.
pub fn flatten_collection(docs: &[JsonValue]) -> Result<Table, FlattenError> {
    let schema = discover_schema(docs)?;
    let mut table = Table::empty(schema.clone());
    for d in docs {
        let mut pairs = Vec::new();
        flatten_doc(d, "", &mut pairs);
        let by_path: BTreeMap<String, Value> =
            pairs.into_iter().map(|(p, v)| (p, leaf_value(&v))).collect();
        let row: Vec<Value> = schema
            .columns()
            .iter()
            .map(|c| {
                let v = by_path.get(&c.name).cloned().unwrap_or(Value::Null);
                // Stringify when the column fell back to Str but the value
                // is typed differently.
                if !c.dtype.admits(&v) {
                    Value::str(v.to_string())
                } else {
                    v
                }
            })
            .collect();
        table.push_row(row)?;
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_json;

    fn docs() -> Vec<JsonValue> {
        vec![
            parse_json(r#"{"id": 1, "user": {"name": "alice"}, "score": 9.5, "ts": "2024-01-02"}"#)
                .unwrap(),
            parse_json(r#"{"id": 2, "user": {"name": "bob", "vip": true}, "score": 7}"#).unwrap(),
        ]
    }

    #[test]
    fn schema_union_and_order() {
        let s = discover_schema(&docs()).unwrap();
        let names: Vec<&str> = s.columns().iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["id", "score", "ts", "user.name", "user.vip"]);
    }

    #[test]
    fn types_inferred() {
        let s = discover_schema(&docs()).unwrap();
        let ty = |n: &str| s.column(s.index_of(n).unwrap()).dtype;
        assert_eq!(ty("id"), DataType::Int);
        assert_eq!(ty("score"), DataType::Float); // 9.5 and 7 unify to Float
        assert_eq!(ty("ts"), DataType::Date);
        assert_eq!(ty("user.vip"), DataType::Bool);
    }

    #[test]
    fn missing_fields_are_null() {
        let t = flatten_collection(&docs()).unwrap();
        assert_eq!(t.num_rows(), 2);
        let vip = t.schema().index_of("user.vip").unwrap();
        assert!(t.cell(0, vip).is_null());
        assert_eq!(t.cell(1, vip), &Value::Bool(true));
        let ts = t.schema().index_of("ts").unwrap();
        assert!(t.cell(1, ts).is_null());
    }

    #[test]
    fn type_conflict_stringifies() {
        let docs = vec![parse_json(r#"{"x": 1}"#).unwrap(), parse_json(r#"{"x": "one"}"#).unwrap()];
        let t = flatten_collection(&docs).unwrap();
        let x = t.schema().index_of("x").unwrap();
        assert_eq!(t.schema().column(x).dtype, DataType::Str);
        assert_eq!(t.cell(0, x), &Value::str("1"));
        assert_eq!(t.cell(1, x), &Value::str("one"));
    }

    #[test]
    fn arrays_serialize() {
        let docs = vec![parse_json(r#"{"tags": ["a", "b"]}"#).unwrap()];
        let t = flatten_collection(&docs).unwrap();
        assert_eq!(t.cell(0, 0), &Value::str("[\"a\",\"b\"]"));
    }

    #[test]
    fn non_object_rejected() {
        let docs = vec![parse_json("[1,2]").unwrap()];
        assert!(matches!(flatten_collection(&docs), Err(FlattenError::NonObjectDocument(0))));
    }

    #[test]
    fn empty_collection() {
        let t = flatten_collection(&[]).unwrap();
        assert_eq!(t.num_rows(), 0);
        assert_eq!(t.num_columns(), 0);
    }

    #[test]
    fn flattened_table_queryable() {
        use unisem_relstore::Database;
        let t = flatten_collection(&docs()).unwrap();
        let mut db = Database::new();
        db.create_table("logs", t).unwrap();
        // Dotted column names need no quoting in our SQL because idents
        // allow dots; `user.name` normalizes to... the qualifier strip would
        // break it, so query by the unqualified tail.
        let out = db.run_sql("SELECT id FROM logs WHERE score > 8").unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.cell(0, 0), &Value::Int(1));
    }
}
