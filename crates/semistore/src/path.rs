//! JSONPath-lite: `$.field.nested[0].x`, `$.items[*].name`.
//!
//! Supported steps after the root `$`:
//! - `.name` — object field,
//! - `[N]` — array index,
//! - `[*]` — all array elements (fan-out),
//! - `.*` — all object values (fan-out).

use std::fmt;

use crate::json::JsonValue;

/// Path parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathError(pub String);

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "path error: {}", self.0)
    }
}

impl std::error::Error for PathError {}

/// One step of a parsed path.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Step {
    Field(String),
    Index(usize),
    AllElements,
    AllValues,
}

/// A compiled JSON path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonPath {
    steps: Vec<Step>,
    source: String,
}

impl JsonPath {
    /// Number of steps after the root `$` — the path-query depth the
    /// planner's cost model charges per scanned document.
    pub fn depth(&self) -> usize {
        self.steps.len()
    }

    /// Parses a path expression.
    ///
    /// ```
    /// use unisem_semistore::{parse_json, JsonPath};
    /// let doc = parse_json(r#"{"items": [{"n": 1}, {"n": 2}]}"#).unwrap();
    /// let path = JsonPath::parse("$.items[*].n").unwrap();
    /// let hits = path.eval(&doc);
    /// assert_eq!(hits.len(), 2);
    /// ```
    pub fn parse(path: &str) -> Result<JsonPath, PathError> {
        let mut chars = path.chars().peekable();
        if chars.next() != Some('$') {
            return Err(PathError("path must start with '$'".into()));
        }
        let mut steps = Vec::new();
        while let Some(&c) = chars.peek() {
            match c {
                '.' => {
                    chars.next();
                    if chars.peek() == Some(&'*') {
                        chars.next();
                        steps.push(Step::AllValues);
                        continue;
                    }
                    let mut name = String::new();
                    while let Some(&c2) = chars.peek() {
                        if c2 == '.' || c2 == '[' {
                            break;
                        }
                        name.push(c2);
                        chars.next();
                    }
                    if name.is_empty() {
                        return Err(PathError("empty field name".into()));
                    }
                    steps.push(Step::Field(name));
                }
                '[' => {
                    chars.next();
                    if chars.peek() == Some(&'*') {
                        chars.next();
                        if chars.next() != Some(']') {
                            return Err(PathError("expected ']' after '*'".into()));
                        }
                        steps.push(Step::AllElements);
                        continue;
                    }
                    let mut digits = String::new();
                    while let Some(&c2) = chars.peek() {
                        if c2 == ']' {
                            break;
                        }
                        digits.push(c2);
                        chars.next();
                    }
                    if chars.next() != Some(']') {
                        return Err(PathError("unterminated index".into()));
                    }
                    let idx: usize =
                        digits.parse().map_err(|_| PathError(format!("bad index: {digits}")))?;
                    steps.push(Step::Index(idx));
                }
                other => return Err(PathError(format!("unexpected character: {other}"))),
            }
        }
        Ok(JsonPath { steps, source: path.to_string() })
    }

    /// The original path text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Evaluates the path, returning all matching values.
    pub fn eval<'a>(&self, root: &'a JsonValue) -> Vec<&'a JsonValue> {
        let mut current: Vec<&'a JsonValue> = vec![root];
        for step in &self.steps {
            let mut next = Vec::new();
            for v in current {
                match step {
                    Step::Field(name) => {
                        if let Some(x) = v.get(name) {
                            next.push(x);
                        }
                    }
                    Step::Index(i) => {
                        if let Some(x) = v.at(*i) {
                            next.push(x);
                        }
                    }
                    Step::AllElements => {
                        if let JsonValue::Array(items) = v {
                            next.extend(items.iter());
                        }
                    }
                    Step::AllValues => {
                        if let JsonValue::Object(fields) = v {
                            next.extend(fields.iter().map(|(_, x)| x));
                        }
                    }
                }
            }
            current = next;
        }
        current
    }

    /// Evaluates expecting exactly one match.
    pub fn eval_one<'a>(&self, root: &'a JsonValue) -> Option<&'a JsonValue> {
        let hits = self.eval(root);
        if hits.len() == 1 {
            Some(hits[0])
        } else {
            None
        }
    }
}

impl fmt::Display for JsonPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_json;

    fn doc() -> JsonValue {
        parse_json(
            r#"{
                "user": {"name": "alice", "age": 30},
                "orders": [
                    {"sku": "A1", "qty": 2},
                    {"sku": "B2", "qty": 5}
                ]
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn field_chain() {
        let p = JsonPath::parse("$.user.name").unwrap();
        assert_eq!(p.eval_one(&doc()).unwrap().as_str(), Some("alice"));
    }

    #[test]
    fn array_index() {
        let p = JsonPath::parse("$.orders[1].sku").unwrap();
        assert_eq!(p.eval_one(&doc()).unwrap().as_str(), Some("B2"));
    }

    #[test]
    fn wildcard_elements() {
        let p = JsonPath::parse("$.orders[*].qty").unwrap();
        let d = doc();
        let hits = p.eval(&d);
        let qtys: Vec<f64> = hits.iter().filter_map(|v| v.as_f64()).collect();
        assert_eq!(qtys, vec![2.0, 5.0]);
    }

    #[test]
    fn wildcard_values() {
        let p = JsonPath::parse("$.user.*").unwrap();
        assert_eq!(p.eval(&doc()).len(), 2);
    }

    #[test]
    fn missing_yields_empty() {
        let p = JsonPath::parse("$.nope.deeper").unwrap();
        assert!(p.eval(&doc()).is_empty());
        assert!(p.eval_one(&doc()).is_none());
    }

    #[test]
    fn root_only() {
        let p = JsonPath::parse("$").unwrap();
        assert_eq!(p.eval(&doc()).len(), 1);
    }

    #[test]
    fn out_of_bounds_index() {
        let p = JsonPath::parse("$.orders[9]").unwrap();
        assert!(p.eval(&doc()).is_empty());
    }

    #[test]
    fn eval_one_rejects_multi() {
        let p = JsonPath::parse("$.orders[*]").unwrap();
        assert!(p.eval_one(&doc()).is_none());
    }

    #[test]
    fn parse_errors() {
        assert!(JsonPath::parse("user.name").is_err());
        assert!(JsonPath::parse("$.").is_err());
        assert!(JsonPath::parse("$.a[b]").is_err());
        assert!(JsonPath::parse("$.a[1").is_err());
        assert!(JsonPath::parse("$.a[*").is_err());
        assert!(JsonPath::parse("$x").is_err());
    }

    #[test]
    fn display_roundtrip() {
        let p = JsonPath::parse("$.orders[*].sku").unwrap();
        assert_eq!(p.to_string(), "$.orders[*].sku");
    }
}
