//! Minimal XML support: the paper's §I lists "XML configurations" among the
//! semi-structured formats. Parsed documents convert into the same
//! [`JsonValue`] model as JSON, so the whole downstream pipeline (path
//! queries, flattening, TableQA) works unchanged.
//!
//! Supported subset: elements, attributes, text content, self-closing tags,
//! comments, XML declarations, and the five predefined entities. Not
//! supported (rejected or skipped): DTDs, CDATA, processing instructions,
//! namespaces-as-semantics (prefixes are kept verbatim in names).
//!
//! Mapping rules (the common "attributes with `@`, text with `#text`"
//! convention):
//! - `<a x="1">t</a>`        → `{"@x": "1", "#text": "t"}`
//! - repeated child elements → a JSON array,
//! - a pure-text element     → its text string,
//! - an empty element        → `null`.

use std::fmt;

use crate::json::JsonValue;

/// XML parse errors with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Human-readable message.
    pub message: String,
    /// Byte offset where the error was detected.
    pub position: usize,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for XmlError {}

/// Parses an XML document into a [`JsonValue`] rooted at an object with one
/// key — the root element's name.
pub fn parse_xml(input: &str) -> Result<JsonValue, XmlError> {
    let mut p = XmlParser { chars: input.char_indices().collect(), pos: 0 };
    p.skip_prolog()?;
    let (name, value) = p.parse_element()?;
    p.skip_ws_and_comments()?;
    if p.pos < p.chars.len() {
        return Err(p.err("trailing content after root element"));
    }
    Ok(JsonValue::object([(name, value)]))
}

struct XmlParser {
    chars: Vec<(usize, char)>,
    pos: usize,
}

impl XmlParser {
    fn err(&self, msg: &str) -> XmlError {
        let position = self.chars.get(self.pos).map_or(0, |&(b, _)| b);
        XmlError { message: msg.to_string(), position }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).map(|&(_, c)| c)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.chars[self.pos..].iter().map(|&(_, c)| c).take(s.chars().count()).eq(s.chars())
    }

    fn advance(&mut self, n: usize) {
        self.pos += n;
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn skip_ws_and_comments(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.advance(4);
                loop {
                    if self.pos >= self.chars.len() {
                        return Err(self.err("unterminated comment"));
                    }
                    if self.starts_with("-->") {
                        self.advance(3);
                        break;
                    }
                    self.pos += 1;
                }
            } else {
                return Ok(());
            }
        }
    }

    fn skip_prolog(&mut self) -> Result<(), XmlError> {
        self.skip_ws_and_comments()?;
        if self.starts_with("<?") {
            while self.pos < self.chars.len() && !self.starts_with("?>") {
                self.pos += 1;
            }
            if !self.starts_with("?>") {
                return Err(self.err("unterminated XML declaration"));
            }
            self.advance(2);
        }
        self.skip_ws_and_comments()
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        let mut name = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':') {
                name.push(c);
                self.pos += 1;
            } else {
                break;
            }
        }
        if name.is_empty() {
            Err(self.err("expected a name"))
        } else {
            Ok(name)
        }
    }

    /// Parses `<name attr="v" ...>children</name>` starting at `<`.
    /// Returns `(name, value)`.
    fn parse_element(&mut self) -> Result<(String, JsonValue), XmlError> {
        if self.peek() != Some('<') {
            return Err(self.err("expected '<'"));
        }
        self.advance(1);
        let name = self.parse_name()?;
        let mut fields: Vec<(String, JsonValue)> = Vec::new();

        // Attributes.
        loop {
            self.skip_ws();
            match self.peek() {
                Some('/') => {
                    self.advance(1);
                    if self.peek() != Some('>') {
                        return Err(self.err("expected '>' after '/'"));
                    }
                    self.advance(1);
                    return Ok((name, finalize(fields, String::new())));
                }
                Some('>') => {
                    self.advance(1);
                    break;
                }
                Some(c) if c.is_alphanumeric() || c == '_' => {
                    let attr = self.parse_name()?;
                    self.skip_ws();
                    if self.peek() != Some('=') {
                        return Err(self.err("expected '=' after attribute name"));
                    }
                    self.advance(1);
                    self.skip_ws();
                    let quote = match self.peek() {
                        Some(q @ ('"' | '\'')) => q,
                        _ => return Err(self.err("expected quoted attribute value")),
                    };
                    self.advance(1);
                    let mut value = String::new();
                    loop {
                        match self.peek() {
                            None => return Err(self.err("unterminated attribute value")),
                            Some(c) if c == quote => {
                                self.advance(1);
                                break;
                            }
                            Some('&') => value.push_str(&self.parse_entity()?),
                            Some(c) => {
                                value.push(c);
                                self.advance(1);
                            }
                        }
                    }
                    fields.push((format!("@{attr}"), JsonValue::String(value)));
                }
                _ => return Err(self.err("malformed tag")),
            }
        }

        // Children and text.
        let mut text = String::new();
        loop {
            if self.pos >= self.chars.len() {
                return Err(self.err("unterminated element"));
            }
            if self.starts_with("<!--") {
                self.skip_ws_and_comments()?;
                continue;
            }
            if self.starts_with("</") {
                self.advance(2);
                let close = self.parse_name()?;
                if close != name {
                    return Err(self.err(&format!("mismatched close tag </{close}> for <{name}>")));
                }
                self.skip_ws();
                if self.peek() != Some('>') {
                    return Err(self.err("expected '>' in close tag"));
                }
                self.advance(1);
                return Ok((name, finalize(fields, text)));
            }
            if self.peek() == Some('<') {
                let (child_name, child_value) = self.parse_element()?;
                fields.push((child_name, child_value));
                continue;
            }
            match self.peek() {
                Some('&') => text.push_str(&self.parse_entity()?),
                Some(c) => {
                    text.push(c);
                    self.advance(1);
                }
                None => return Err(self.err("unterminated element")),
            }
        }
    }

    fn parse_entity(&mut self) -> Result<String, XmlError> {
        // At '&'.
        let entities: [(&str, &str); 5] =
            [("&lt;", "<"), ("&gt;", ">"), ("&amp;", "&"), ("&quot;", "\""), ("&apos;", "'")];
        for (pat, rep) in entities {
            if self.starts_with(pat) {
                self.advance(pat.chars().count());
                return Ok(rep.to_string());
            }
        }
        Err(self.err("unknown entity"))
    }
}

/// XML carries no value types; infer numbers and booleans from text so
/// downstream flattening produces typed columns (`<port>8080</port>` →
/// an INT column, not a STR one).
fn infer_text(s: &str) -> JsonValue {
    if s.eq_ignore_ascii_case("true") {
        return JsonValue::Bool(true);
    }
    if s.eq_ignore_ascii_case("false") {
        return JsonValue::Bool(false);
    }
    if let Ok(n) = s.parse::<f64>() {
        if n.is_finite() {
            return JsonValue::Number(n);
        }
    }
    JsonValue::String(s.to_string())
}

/// Builds the element's JSON value from attribute/child fields plus text.
fn finalize(mut fields: Vec<(String, JsonValue)>, text: String) -> JsonValue {
    let text = text.trim();
    if fields.is_empty() {
        return if text.is_empty() { JsonValue::Null } else { infer_text(text) };
    }
    if !text.is_empty() {
        fields.push(("#text".to_string(), infer_text(text)));
    }
    // Merge repeated child names into arrays (stable order of first
    // occurrence).
    let mut merged: Vec<(String, JsonValue)> = Vec::new();
    for (k, v) in fields {
        match merged.iter_mut().find(|(mk, _)| *mk == k) {
            Some((_, existing)) => match existing {
                JsonValue::Array(items) => items.push(v),
                other => {
                    let prev = std::mem::replace(other, JsonValue::Null);
                    *other = JsonValue::Array(vec![prev, v]);
                }
            },
            None => merged.push((k, v)),
        }
    }
    JsonValue::Object(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::JsonPath;

    #[test]
    fn simple_element() {
        let v = parse_xml("<config><host>localhost</host><port>8080</port></config>").unwrap();
        let c = v.get("config").unwrap();
        assert_eq!(c.get("host").unwrap().as_str(), Some("localhost"));
        assert_eq!(c.get("port").unwrap().as_f64(), Some(8080.0));
    }

    #[test]
    fn attributes_and_text() {
        let v = parse_xml(r#"<server env="prod">primary</server>"#).unwrap();
        let s = v.get("server").unwrap();
        assert_eq!(s.get("@env").unwrap().as_str(), Some("prod"));
        assert_eq!(s.get("#text").unwrap().as_str(), Some("primary"));
    }

    #[test]
    fn repeated_children_become_array() {
        let v = parse_xml("<list><item>a</item><item>b</item><item>c</item></list>").unwrap();
        let items = v.get("list").unwrap().get("item").unwrap();
        match items {
            JsonValue::Array(xs) => assert_eq!(xs.len(), 3),
            other => panic!("expected array, got {other}"),
        }
    }

    #[test]
    fn self_closing_and_empty() {
        let v = parse_xml("<a><b/><c></c></a>").unwrap();
        assert!(v.get("a").unwrap().get("b").unwrap().is_null());
        assert!(v.get("a").unwrap().get("c").unwrap().is_null());
    }

    #[test]
    fn prolog_and_comments_skipped() {
        let v = parse_xml("<?xml version=\"1.0\"?>\n<!-- top comment -->\n<r><!-- inner -->ok</r>")
            .unwrap();
        assert_eq!(v.get("r").unwrap().as_str(), Some("ok"));
    }

    #[test]
    fn entities_decoded() {
        let v = parse_xml("<t>a &lt; b &amp; c &quot;q&quot;</t>").unwrap();
        assert_eq!(v.get("t").unwrap().as_str(), Some("a < b & c \"q\""));
    }

    #[test]
    fn nested_structures() {
        let xml = r#"
            <catalog>
              <product sku="A1"><name>Aero Widget</name><price>99.5</price></product>
              <product sku="B2"><name>Nova Speaker</name><price>59.0</price></product>
            </catalog>"#;
        let v = parse_xml(xml).unwrap();
        let path = JsonPath::parse("$.catalog.product[*].name").unwrap();
        let names: Vec<&str> = path.eval(&v).iter().filter_map(|n| n.as_str()).collect();
        assert_eq!(names, vec!["Aero Widget", "Nova Speaker"]);
    }

    #[test]
    fn errors() {
        assert!(parse_xml("").is_err());
        assert!(parse_xml("<a><b></a></b>").is_err());
        assert!(parse_xml("<a>unclosed").is_err());
        assert!(parse_xml("<a x=unquoted></a>").is_err());
        assert!(parse_xml("<a>&unknown;</a>").is_err());
        assert!(parse_xml("<a></a><b></b>").is_err());
        let e = parse_xml("<a><b>x</c></a>").unwrap_err();
        assert!(e.to_string().contains("mismatched"));
    }

    #[test]
    fn xml_flattens_into_tables() {
        use crate::flatten::flatten_collection;
        let docs: Vec<JsonValue> = [
            r#"<log><level>info</level><code>200</code></log>"#,
            r#"<log><level>error</level><code>500</code></log>"#,
        ]
        .iter()
        .map(|x| parse_xml(x).unwrap().get("log").unwrap().clone())
        .collect();
        let t = flatten_collection(&docs).unwrap();
        assert_eq!(t.num_rows(), 2);
        assert!(t.schema().index_of("level").is_some());
    }
}
