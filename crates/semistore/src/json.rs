//! JSON value model, parser, and serializer.
//!
//! Object key order is preserved (insertion order), which keeps schema
//! discovery and serialization deterministic.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as f64; integral values print without
    /// decimals).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element lookup.
    pub fn at(&self, idx: usize) -> Option<&JsonValue> {
        match self {
            JsonValue::Array(items) => items.get(idx),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// Number view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Bool view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }

    /// Builds an object from pairs.
    pub fn object<I: IntoIterator<Item = (S, JsonValue)>, S: Into<String>>(pairs: I) -> Self {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Serializes compactly.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            JsonValue::String(s) => write_escaped(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_json())
    }
}

/// JSON parse errors with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable message.
    pub message: String,
    /// Byte offset where the error was detected.
    pub position: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a JSON document. Trailing non-whitespace is an error.
pub fn parse_json(input: &str) -> Result<JsonValue, JsonError> {
    let bytes = input.as_bytes();
    let mut p = JsonParser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError { message: msg.to_string(), position: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_lit("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_lit("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal, expected {lit}")))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf8 in number"))?;
        let n: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        if n.is_nan() || n.is_infinite() {
            return Err(self.err("number out of range"));
        }
        Ok(JsonValue::Number(n))
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not reconstructed; replace.
                            s.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                            self.pos += 3; // +1 below
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid utf8 in string"))?;
                    let c = text.chars().next().ok_or_else(|| self.err("unterminated string"))?;
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse_json("null").unwrap(), JsonValue::Null);
        assert_eq!(parse_json("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse_json("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse_json("42").unwrap(), JsonValue::Number(42.0));
        assert_eq!(parse_json("-3.5e2").unwrap(), JsonValue::Number(-350.0));
        assert_eq!(parse_json("\"hi\"").unwrap(), JsonValue::String("hi".into()));
    }

    #[test]
    fn parses_nested() {
        let v = parse_json(r#"{"a": [1, {"b": "x"}], "c": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().at(0), Some(&JsonValue::Number(1.0)));
        assert_eq!(v.get("a").unwrap().at(1).unwrap().get("b").unwrap().as_str(), Some("x"));
        assert!(v.get("c").unwrap().is_null());
    }

    #[test]
    fn preserves_key_order() {
        let v = parse_json(r#"{"z": 1, "a": 2, "m": 3}"#).unwrap();
        match v {
            JsonValue::Object(fields) => {
                let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(keys, vec!["z", "a", "m"]);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn escapes_roundtrip() {
        let original = JsonValue::String("line1\nline2\t\"quoted\" \\slash".into());
        let text = original.to_json();
        assert_eq!(parse_json(&text).unwrap(), original);
    }

    #[test]
    fn unicode_escape() {
        let v = parse_json(r#""Aé""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé"));
    }

    #[test]
    fn serialize_roundtrip_nested() {
        let v = parse_json(r#"{"a":[1,2.5,null,true],"b":{"c":"d"}}"#).unwrap();
        assert_eq!(parse_json(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn integral_numbers_print_clean() {
        assert_eq!(JsonValue::Number(5.0).to_json(), "5");
        assert_eq!(JsonValue::Number(5.5).to_json(), "5.5");
    }

    #[test]
    fn errors_report_position() {
        let e = parse_json("{\"a\": }").unwrap_err();
        assert!(e.position > 0);
        assert!(parse_json("").is_err());
        assert!(parse_json("[1, 2").is_err());
        assert!(parse_json("{\"a\" 1}").is_err());
        assert!(parse_json("tru").is_err());
        assert!(parse_json("1 2").is_err());
        assert!(parse_json("\"unterminated").is_err());
    }

    #[test]
    fn whitespace_tolerant() {
        let v = parse_json("  {\n\t\"a\" :\r [ 1 , 2 ]\n} ").unwrap();
        assert_eq!(v.get("a").unwrap().at(1), Some(&JsonValue::Number(2.0)));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse_json("[]").unwrap(), JsonValue::Array(vec![]));
        assert_eq!(parse_json("{}").unwrap(), JsonValue::Object(vec![]));
    }

    #[test]
    fn object_builder() {
        let v = JsonValue::object([("x", JsonValue::Number(1.0))]);
        assert_eq!(v.get("x").unwrap().as_f64(), Some(1.0));
        assert!(v.get("y").is_none());
    }

    #[test]
    fn nan_rejected() {
        assert!(parse_json("1e999").is_err());
    }
}
