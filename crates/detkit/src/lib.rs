//! # detkit
//!
//! Deterministic toolkit backing the unisem workspace's hermetic,
//! zero-dependency build policy (see DESIGN.md §"Hermetic builds").
//!
//! Three modules, each a drop-in replacement for a crates-io dependency
//! the build environment cannot resolve offline:
//!
//! - [`rng`] — a seedable SplitMix64/xoshiro256** PRNG (replaces `rand`).
//! - [`prop`] — a property-testing harness with generators, deterministic
//!   per-test seed derivation, linear shrinking, and stored-seed
//!   regression replay (replaces `proptest`).
//! - [`bench`] — a wall-clock micro-benchmark harness with warmup,
//!   median/p95/mean statistics, and machine-readable JSON lines output
//!   (replaces `criterion`).
//!
//! Everything here is reproducible: the same seed always yields the same
//! random stream, the same test name always replays the same cases, and
//! bench output is schema-stable so `BENCH_*.json` files can be tracked
//! across commits.

pub mod bench;
pub mod prop;
pub mod rng;

pub use rng::Rng;
