//! Wall-clock micro-benchmark harness.
//!
//! Replaces `criterion` for this workspace's `[[bench]]` targets (all
//! declared with `harness = false`). Each benchmark is a closure timed
//! over a warmup phase plus `iters` measured iterations; the harness
//! reports min/median/mean/p95/max and emits one machine-readable JSON
//! line per benchmark, suitable for appending to the repo's `BENCH_*.json`
//! tracking files.
//!
//! Modes:
//! - `cargo bench` passes `--bench` to the binary → full measurement.
//! - any other invocation (notably `cargo test`, which runs bench
//!   targets to keep them honest) → *quick mode*: one iteration per
//!   benchmark, no warmup, so test runs stay fast while still executing
//!   every benchmark body end to end.
//!
//! Environment:
//! - `DETKIT_BENCH_ITERS` / `DETKIT_BENCH_WARMUP` override iteration
//!   counts globally.
//! - `DETKIT_BENCH_JSON=<path>` additionally appends the JSON lines to
//!   the given file.

use std::hint::black_box;
use std::io::Write as _;
use std::time::Instant;

/// Iteration policy for a [`Harness`].
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Untimed warmup iterations before measurement.
    pub warmup_iters: u32,
    /// Timed iterations per benchmark.
    pub iters: u32,
}

impl Default for BenchConfig {
    fn default() -> Self {
        let iters = env_u32("DETKIT_BENCH_ITERS").unwrap_or(25);
        let warmup_iters = env_u32("DETKIT_BENCH_WARMUP").unwrap_or(3);
        Self { warmup_iters, iters }
    }
}

fn env_u32(name: &str) -> Option<u32> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// Summary statistics for one benchmark, in nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct Stats {
    /// Suite name (one per bench binary).
    pub suite: String,
    /// Benchmark name within the suite.
    pub name: String,
    /// Timed iterations measured.
    pub iters: u32,
    /// Arithmetic mean.
    pub mean_ns: u64,
    /// Median (lower-middle element).
    pub median_ns: u64,
    /// 95th percentile (ceil index).
    pub p95_ns: u64,
    /// Fastest iteration.
    pub min_ns: u64,
    /// Slowest iteration.
    pub max_ns: u64,
}

impl Stats {
    /// Computes real order statistics (mean/median/p95/min/max) from raw
    /// per-iteration samples in nanoseconds. Public so external harnesses
    /// that collect their own samples (e.g. the per-stage profiler) report
    /// true quantiles instead of copying a mean into every field.
    ///
    /// Panics on an empty sample vector.
    pub fn from_samples(suite: &str, name: &str, ns: Vec<u64>) -> Self {
        Self::from_durations(suite, name, ns)
    }

    fn from_durations(suite: &str, name: &str, mut ns: Vec<u64>) -> Self {
        assert!(!ns.is_empty());
        ns.sort_unstable();
        let n = ns.len();
        let mean = ns.iter().sum::<u64>() / n as u64;
        let median = ns[(n - 1) / 2];
        let p95_idx = ((n as f64 * 0.95).ceil() as usize).clamp(1, n) - 1;
        Self {
            suite: suite.to_string(),
            name: name.to_string(),
            iters: n as u32,
            mean_ns: mean,
            median_ns: median,
            p95_ns: ns[p95_idx],
            min_ns: ns[0],
            max_ns: ns[n - 1],
        }
    }

    /// One JSON object on one line. The key set and order are stable —
    /// `BENCH_*.json` consumers and the schema test depend on it.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"suite\":\"{}\",\"name\":\"{}\",\"iters\":{},\"mean_ns\":{},\
             \"median_ns\":{},\"p95_ns\":{},\"min_ns\":{},\"max_ns\":{}}}",
            escape(&self.suite),
            escape(&self.name),
            self.iters,
            self.mean_ns,
            self.median_ns,
            self.p95_ns,
            self.min_ns,
            self.max_ns,
        )
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c => vec![c],
        })
        .collect()
}

fn human_time(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Collects and reports a suite of benchmarks; construct one per bench
/// binary, call [`bench`](Harness::bench) per case, then
/// [`finish`](Harness::finish).
pub struct Harness {
    suite: String,
    config: BenchConfig,
    quick: bool,
    results: Vec<Stats>,
}

impl Harness {
    /// A harness named after the bench binary. Reads process arguments:
    /// full measurement only when invoked with `--bench` (as `cargo
    /// bench` does); quick single-iteration mode otherwise.
    pub fn new(suite: &str) -> Self {
        let quick = !std::env::args().any(|a| a == "--bench");
        Self::with_mode(suite, quick)
    }

    /// Explicit mode selection (used by tests).
    pub fn with_mode(suite: &str, quick: bool) -> Self {
        Self {
            suite: suite.to_string(),
            config: BenchConfig::default(),
            quick,
            results: Vec::new(),
        }
    }

    /// Overrides the iteration policy for subsequent benchmarks.
    pub fn set_config(&mut self, config: BenchConfig) -> &mut Self {
        self.config = config;
        self
    }

    /// Overrides only the timed iteration count.
    pub fn set_iters(&mut self, iters: u32) -> &mut Self {
        self.config.iters = iters;
        self
    }

    /// True when running in quick (single-iteration) mode.
    pub fn is_quick(&self) -> bool {
        self.quick
    }

    /// Times `f`, records the statistics, and prints a human line.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) -> &Stats {
        let (warmup, iters) =
            if self.quick { (0, 1) } else { (self.config.warmup_iters, self.config.iters.max(1)) };
        for _ in 0..warmup {
            black_box(f());
        }
        let mut ns = Vec::with_capacity(iters as usize);
        for _ in 0..iters {
            let t0 = Instant::now();
            black_box(f());
            ns.push(t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
        }
        let stats = Stats::from_durations(&self.suite, name, ns);
        println!(
            "{}/{}: median {} p95 {} mean {} [{} .. {}] ({} iters{})",
            self.suite,
            name,
            human_time(stats.median_ns),
            human_time(stats.p95_ns),
            human_time(stats.mean_ns),
            human_time(stats.min_ns),
            human_time(stats.max_ns),
            stats.iters,
            if self.quick { ", quick mode" } else { "" },
        );
        self.results.push(stats);
        self.results.last().expect("just pushed")
    }

    /// Prints every result as a JSON line (and appends to the file named
    /// by `DETKIT_BENCH_JSON`, when set), then returns the statistics.
    pub fn finish(self) -> Vec<Stats> {
        let mut lines = String::new();
        for s in &self.results {
            lines.push_str(&s.to_json_line());
            lines.push('\n');
        }
        print!("{lines}");
        if let Ok(path) = std::env::var("DETKIT_BENCH_JSON") {
            if !path.is_empty() {
                match std::fs::OpenOptions::new().create(true).append(true).open(&path) {
                    Ok(mut f) => {
                        let _ = f.write_all(lines.as_bytes());
                    }
                    Err(e) => eprintln!("detkit: cannot append bench JSON to {path}: {e}"),
                }
            }
        }
        self.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_schema_is_stable() {
        // BENCH_*.json tracking depends on this exact shape; change it
        // only together with every consumer.
        let s = Stats {
            suite: "relstore".into(),
            name: "filter_scan_10k".into(),
            iters: 25,
            mean_ns: 1_500,
            median_ns: 1_400,
            p95_ns: 2_000,
            min_ns: 1_000,
            max_ns: 2_500,
        };
        assert_eq!(
            s.to_json_line(),
            "{\"suite\":\"relstore\",\"name\":\"filter_scan_10k\",\"iters\":25,\
             \"mean_ns\":1500,\"median_ns\":1400,\"p95_ns\":2000,\
             \"min_ns\":1000,\"max_ns\":2500}"
        );
    }

    #[test]
    fn json_escapes_special_characters() {
        let s = Stats {
            suite: "a\"b".into(),
            name: "c\\d".into(),
            iters: 1,
            mean_ns: 0,
            median_ns: 0,
            p95_ns: 0,
            min_ns: 0,
            max_ns: 0,
        };
        let line = s.to_json_line();
        assert!(line.contains("a\\\"b"), "{line}");
        assert!(line.contains("c\\\\d"), "{line}");
    }

    #[test]
    fn stats_are_order_invariant_and_sane() {
        let a = Stats::from_durations("s", "n", vec![5, 1, 3, 2, 4]);
        let b = Stats::from_durations("s", "n", vec![1, 2, 3, 4, 5]);
        assert_eq!(a, b);
        assert_eq!(a.min_ns, 1);
        assert_eq!(a.max_ns, 5);
        assert_eq!(a.median_ns, 3);
        assert_eq!(a.mean_ns, 3);
        assert_eq!(a.p95_ns, 5);
        assert!(a.min_ns <= a.median_ns && a.median_ns <= a.p95_ns && a.p95_ns <= a.max_ns);
    }

    #[test]
    fn from_samples_reports_distinct_quantiles() {
        // The regression this guards: a harness feeding aggregate means
        // produced identical mean/median/p95/min/max at iters > 1. Real
        // samples must yield a real spread.
        let s = Stats::from_samples("profile", "stage", vec![100, 200, 300, 400, 1000]);
        assert_eq!(s.iters, 5);
        assert_eq!(s.min_ns, 100);
        assert_eq!(s.median_ns, 300);
        assert_eq!(s.mean_ns, 400);
        assert_eq!(s.p95_ns, 1000);
        assert_eq!(s.max_ns, 1000);
        assert_ne!(s.median_ns, s.mean_ns, "skewed samples must not collapse");
    }

    #[test]
    fn quick_mode_runs_once() {
        let mut h = Harness::with_mode("t", true);
        let mut calls = 0;
        h.bench("once", || calls += 1);
        assert_eq!(calls, 1);
        let results = h.finish();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].iters, 1);
    }

    #[test]
    fn full_mode_runs_warmup_plus_iters() {
        let mut h = Harness::with_mode("t", false);
        h.set_config(BenchConfig { warmup_iters: 2, iters: 5 });
        let mut calls = 0;
        let s = h.bench("counted", || calls += 1).clone();
        assert_eq!(calls, 7);
        assert_eq!(s.iters, 5);
    }
}
