//! Minimal property-based testing harness.
//!
//! Replaces `proptest` for this workspace. The design is a small
//! hedgehog-style integrated-shrinking system:
//!
//! - a [`Gen<T>`] produces a [`Sample<T>`]: a value plus a lazy tree of
//!   smaller candidate values;
//! - combinators ([`Gen::map`], [`zip`], [`vec_of`], [`one_of`], …)
//!   compose both the value and its shrink tree, so shrinking works
//!   through mapped and tupled generators without extra plumbing;
//! - [`check`] derives a deterministic seed from the test *name* (mixed
//!   with a global seed overridable via `DETKIT_SEED`), runs
//!   `DETKIT_CASES` cases (default 64), and on failure performs greedy
//!   linear shrinking: repeatedly take the first shrink candidate that
//!   still fails, until none does or the step budget runs out;
//! - stored regression seeds replay before any fresh cases — see
//!   [`parse_regressions`] and the [`file_regressions!`](crate::file_regressions)
//!   macro.
//!
//! Properties are closures `Fn(&T) -> Result<(), String>`; the
//! [`prop_assert!`](crate::prop_assert), [`prop_assert_eq!`](crate::prop_assert_eq)
//! and [`prop_assert_ne!`](crate::prop_assert_ne) macros early-return an
//! `Err` with a rendered message. Panics inside a property are caught and
//! treated as failures (and shrunk like any other).

use std::any::Any;
use std::fmt::Debug;
use std::panic::{self, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::Mutex;

use crate::rng::{splitmix64, Rng};

// ---------------------------------------------------------------------------
// Samples: a value plus its lazy shrink tree.
// ---------------------------------------------------------------------------

struct SampleInner<T> {
    value: T,
    shrinks: Box<dyn Fn() -> Vec<Sample<T>>>,
}

/// A generated value together with a lazily-computed list of smaller
/// candidate samples (each itself shrinkable).
pub struct Sample<T>(Rc<SampleInner<T>>);

impl<T> Clone for Sample<T> {
    fn clone(&self) -> Self {
        Sample(Rc::clone(&self.0))
    }
}

impl<T: 'static> Sample<T> {
    /// A sample with no shrink candidates.
    pub fn leaf(value: T) -> Self {
        Self::with_shrinks(value, Vec::new)
    }

    /// A sample whose shrink candidates are produced by `shrinks`.
    pub fn with_shrinks(value: T, shrinks: impl Fn() -> Vec<Sample<T>> + 'static) -> Self {
        Sample(Rc::new(SampleInner { value, shrinks: Box::new(shrinks) }))
    }

    /// The generated value.
    pub fn value(&self) -> &T {
        &self.0.value
    }

    /// Smaller candidates, ordered most-aggressive first.
    pub fn shrinks(&self) -> Vec<Sample<T>> {
        (self.0.shrinks)()
    }

    fn map_rc<U: 'static>(&self, f: Rc<dyn Fn(&T) -> U>) -> Sample<U> {
        let value = f(self.value());
        let this = self.clone();
        Sample::with_shrinks(value, move || {
            this.shrinks().into_iter().map(|s| s.map_rc(Rc::clone(&f))).collect()
        })
    }
}

// ---------------------------------------------------------------------------
// Generators.
// ---------------------------------------------------------------------------

/// A reusable generator of shrinkable values.
pub struct Gen<T> {
    f: Rc<dyn Fn(&mut Rng) -> Sample<T>>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Gen { f: Rc::clone(&self.f) }
    }
}

impl<T: 'static> Gen<T> {
    /// A generator from a sample-producing function.
    pub fn from_fn(f: impl Fn(&mut Rng) -> Sample<T> + 'static) -> Self {
        Gen { f: Rc::new(f) }
    }

    /// A generator from a plain value function; such values do not shrink.
    /// Useful for hand-rolled recursive structures (e.g. JSON trees).
    pub fn raw(f: impl Fn(&mut Rng) -> T + 'static) -> Self {
        Gen::from_fn(move |rng| Sample::leaf(f(rng)))
    }

    /// Draws one sample.
    pub fn generate(&self, rng: &mut Rng) -> Sample<T> {
        (self.f)(rng)
    }

    /// Maps generated values; shrinking passes through the mapping.
    pub fn map<U: 'static>(&self, f: impl Fn(&T) -> U + 'static) -> Gen<U> {
        let g = Rc::clone(&self.f);
        let f: Rc<dyn Fn(&T) -> U> = Rc::new(f);
        Gen::from_fn(move |rng| g(rng).map_rc(Rc::clone(&f)))
    }

    /// Dependent generation: the drawn value selects the next generator.
    /// Only the inner generator's shrinks are kept (the outer choice is
    /// frozen), matching the harness's linear-shrinking contract.
    pub fn flat_map<U: 'static>(&self, f: impl Fn(&T) -> Gen<U> + 'static) -> Gen<U> {
        let g = Rc::clone(&self.f);
        Gen::from_fn(move |rng| {
            let outer = g(rng);
            f(outer.value()).generate(rng)
        })
    }
}

/// Always produces `value` (no shrinking).
pub fn just<T: Clone + 'static>(value: T) -> Gen<T> {
    Gen::raw(move |_| value.clone())
}

/// Uniform booleans; `true` shrinks to `false`.
pub fn bools() -> Gen<bool> {
    Gen::from_fn(|rng| {
        if rng.gen_bool(0.5) {
            Sample::with_shrinks(true, || vec![Sample::leaf(false)])
        } else {
            Sample::leaf(false)
        }
    })
}

fn int_origin(lo: i128, hi: i128) -> i128 {
    0i128.clamp(lo, hi)
}

/// Halving-delta candidates toward the origin: for value `v` the
/// candidates are `origin, v - d/2, v - d/4, …, v - 1` (binary-search-like
/// descent), each itself shrinkable the same way.
fn shrinkable_int(origin: i128, v: i128) -> Sample<i128> {
    Sample::with_shrinks(v, move || {
        let mut out = Vec::new();
        let mut delta = v - origin;
        while delta != 0 {
            out.push(shrinkable_int(origin, v - delta));
            delta /= 2;
        }
        out
    })
}

macro_rules! int_gens {
    ($($fn_name:ident: $t:ty),* $(,)?) => {$(
        /// Uniform integers in `[lo, hi]` (inclusive), shrinking toward
        /// zero (clamped into the range).
        pub fn $fn_name(lo: $t, hi: $t) -> Gen<$t> {
            assert!(lo <= hi, "empty range");
            Gen::from_fn(move |rng| {
                let v = rng.gen_range(lo..=hi);
                let origin = int_origin(lo as i128, hi as i128);
                shrinkable_int(origin, v as i128).map_rc(Rc::new(|v: &i128| *v as $t))
            })
        }
    )*};
}

int_gens! {
    i8s: i8, i16s: i16, i32s: i32, i64s: i64, isizes: isize,
    u8s: u8, u16s: u16, u32s: u32, u64s: u64, usizes: usize,
}

/// Uniform `f64` in `[lo, hi)`, shrinking toward zero (clamped into the
/// range) then toward the midpoint.
pub fn f64s(lo: f64, hi: f64) -> Gen<f64> {
    assert!(lo < hi, "empty range");
    Gen::from_fn(move |rng| {
        let v = rng.gen_range(lo..hi);
        let origin = 0f64.clamp(lo, hi - (hi - lo) * 1e-9);
        f64_sample(origin, v)
    })
}

fn f64_sample(origin: f64, v: f64) -> Sample<f64> {
    Sample::with_shrinks(v, move || {
        let mut out = Vec::new();
        if v != origin {
            out.push(f64_sample(origin, origin));
            let mid = origin + (v - origin) / 2.0;
            if mid != v && mid != origin {
                out.push(f64_sample(origin, mid));
            }
        }
        out
    })
}

/// Pairs of independently-generated values; each side shrinks while the
/// other is held fixed.
pub fn zip<A, B>(a: &Gen<A>, b: &Gen<B>) -> Gen<(A, B)>
where
    A: Clone + 'static,
    B: Clone + 'static,
{
    let (a, b) = (a.clone(), b.clone());
    Gen::from_fn(move |rng| {
        let sa = a.generate(rng);
        let sb = b.generate(rng);
        zip_sample(sa, sb)
    })
}

fn zip_sample<A: Clone + 'static, B: Clone + 'static>(
    a: Sample<A>,
    b: Sample<B>,
) -> Sample<(A, B)> {
    let value = (a.value().clone(), b.value().clone());
    Sample::with_shrinks(value, move || {
        let mut out = Vec::new();
        for sa in a.shrinks() {
            out.push(zip_sample(sa, b.clone()));
        }
        for sb in b.shrinks() {
            out.push(zip_sample(a.clone(), sb));
        }
        out
    })
}

/// Triples; see [`zip`].
pub fn zip3<A, B, C>(a: &Gen<A>, b: &Gen<B>, c: &Gen<C>) -> Gen<(A, B, C)>
where
    A: Clone + 'static,
    B: Clone + 'static,
    C: Clone + 'static,
{
    zip(&zip(a, b), c).map(|((a, b), c)| (a.clone(), b.clone(), c.clone()))
}

/// Vectors of `min..=max` elements. Shrinks by halving the length,
/// dropping single elements (never below `min`), and shrinking elements
/// in place.
pub fn vec_of<T: Clone + 'static>(elem: &Gen<T>, min: usize, max: usize) -> Gen<Vec<T>> {
    assert!(min <= max, "empty size range");
    let elem = elem.clone();
    Gen::from_fn(move |rng| {
        let n = rng.gen_range(min..=max);
        let elems: Vec<Sample<T>> = (0..n).map(|_| elem.generate(rng)).collect();
        vec_sample(elems, min)
    })
}

fn vec_sample<T: Clone + 'static>(elems: Vec<Sample<T>>, min: usize) -> Sample<Vec<T>> {
    let value: Vec<T> = elems.iter().map(|s| s.value().clone()).collect();
    Sample::with_shrinks(value, move || {
        let mut out = Vec::new();
        let n = elems.len();
        // 1. Halve the length (aggressive).
        if n / 2 >= min && n / 2 < n {
            out.push(vec_sample(elems[..n / 2].to_vec(), min));
        }
        // 2. Drop one element at a time.
        if n > min {
            for i in 0..n {
                let mut fewer = elems.clone();
                fewer.remove(i);
                out.push(vec_sample(fewer, min));
            }
        }
        // 3. Shrink each element in place.
        for i in 0..n {
            for s in elems[i].shrinks() {
                let mut e2 = elems.clone();
                e2[i] = s;
                out.push(vec_sample(e2, min));
            }
        }
        out
    })
}

/// Picks uniformly among alternative generators of the same type.
pub fn one_of<T: 'static>(gens: Vec<Gen<T>>) -> Gen<T> {
    assert!(!gens.is_empty(), "one_of: no alternatives");
    Gen::from_fn(move |rng| {
        let i = rng.gen_range(0..gens.len());
        gens[i].generate(rng)
    })
}

/// Single characters drawn from an explicit pool; shrink toward the
/// first pool character.
pub fn chars_in(pool: &str) -> Gen<char> {
    let pool: Vec<char> = pool.chars().collect();
    assert!(!pool.is_empty(), "chars_in: empty pool");
    let first = pool[0];
    Gen::from_fn(move |rng| {
        let c = *rng.choose(&pool).expect("non-empty pool");
        if c == first {
            Sample::leaf(c)
        } else {
            Sample::with_shrinks(c, move || vec![Sample::leaf(first)])
        }
    })
}

/// Strings of `min..=max` characters from `pool` (the analogue of a
/// proptest `[pool]{min,max}` regex strategy).
pub fn string_of(pool: &str, min: usize, max: usize) -> Gen<String> {
    vec_of(&chars_in(pool), min, max).map(|cs| cs.iter().collect())
}

/// Printable-ish strings mixing ASCII with multi-byte code points —
/// the workhorse replacement for proptest's `\PC` (any printable char)
/// strategies. Lengths are in characters, not bytes.
pub fn unicode_strings(min: usize, max: usize) -> Gen<String> {
    string_of(
        "abc XYZ 019 .,!?-_%$#@/\\\"'()[]~\u{e9}\u{df}\u{f1}\u{3bb}\u{4e2d}\u{6587}\u{1f980}\u{2603}",
        min,
        max,
    )
}

/// Space-separated words, each `wlen_min..=wlen_max` chars from `pool`,
/// `n_min..=n_max` words total (the analogue of proptest's
/// `[pool]{a,b}( [pool]{a,b}){c,d}` patterns).
pub fn words_of(
    pool: &str,
    wlen_min: usize,
    wlen_max: usize,
    n_min: usize,
    n_max: usize,
) -> Gen<String> {
    vec_of(&string_of(pool, wlen_min, wlen_max), n_min, n_max).map(|ws| ws.join(" "))
}

// ---------------------------------------------------------------------------
// Runner.
// ---------------------------------------------------------------------------

/// Harness configuration. `DETKIT_CASES` and `DETKIT_SEED` environment
/// variables override the defaults for a whole run.
#[derive(Debug, Clone)]
pub struct Config {
    /// Fresh random cases per property.
    pub cases: u32,
    /// Global seed mixed with the test name to derive per-case seeds.
    pub seed: u64,
    /// Max property evaluations spent shrinking a failure.
    pub max_shrink_steps: u32,
    /// Stored seeds replayed (in order) before any fresh cases.
    pub regression_seeds: Vec<u64>,
}

impl Default for Config {
    fn default() -> Self {
        let cases = std::env::var("DETKIT_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64);
        let seed = std::env::var("DETKIT_SEED")
            .ok()
            .and_then(|v| parse_seed(&v))
            .unwrap_or(0x00DE_7417_0000_0001);
        Self { cases, seed, max_shrink_steps: 512, regression_seeds: Vec::new() }
    }
}

impl Config {
    /// Overrides the number of fresh cases.
    pub fn with_cases(mut self, cases: u32) -> Self {
        self.cases = cases;
        self
    }

    /// Appends stored regression seeds to replay first.
    pub fn with_regressions(mut self, seeds: Vec<u64>) -> Self {
        self.regression_seeds.extend(seeds);
        self
    }
}

fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Parses a regression file: lines of `<test_name> <seed>` (decimal or
/// `0x` hex), `#` comments and blank lines ignored. Returns the seeds
/// recorded for `test`.
pub fn parse_regressions(contents: &str, test: &str) -> Vec<u64> {
    contents
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let mut it = l.split_whitespace();
            let name = it.next()?;
            let seed = parse_seed(it.next()?)?;
            (name == test).then_some(seed)
        })
        .collect()
}

/// Loads the regression seeds for `$name` from a file next to the test
/// source (path is relative to the including file, as in `include_str!`).
#[macro_export]
macro_rules! file_regressions {
    ($path:expr, $name:expr) => {
        $crate::prop::parse_regressions(include_str!($path), $name)
    };
}

/// Outcome of [`run_check`].
#[derive(Debug)]
pub enum CheckResult<T> {
    /// Every case passed.
    Passed {
        /// Total cases evaluated (regressions + fresh).
        cases: u32,
    },
    /// A case failed; the counterexample has been shrunk.
    Falsified {
        /// Seed of the failing case (store in a regression file to replay).
        seed: u64,
        /// The shrunk counterexample.
        minimal: T,
        /// Failure message for the minimal counterexample.
        message: String,
        /// Accepted shrink steps between original and minimal.
        shrink_steps: u32,
    },
}

/// FNV-1a, used to give every test name its own seed stream.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Checks `prop` against `cfg.cases` generated values, panicking with a
/// shrunk counterexample on failure. Case seeds derive deterministically
/// from `(cfg.seed, name)`, so a failure reproduces by name alone.
pub fn check_with<T, F>(cfg: &Config, name: &str, gen: &Gen<T>, prop: F)
where
    T: Clone + Debug + 'static,
    F: Fn(&T) -> Result<(), String>,
{
    match run_check(cfg, name, gen, prop) {
        CheckResult::Passed { .. } => {}
        CheckResult::Falsified { seed, minimal, message, shrink_steps } => panic!(
            "property '{name}' falsified\n  \
             case seed: {seed:#018x}  (add `{name} {seed:#x}` to a regression \
             file to replay first)\n  \
             minimal counterexample (after {shrink_steps} shrink steps): {minimal:?}\n  \
             failure: {message}"
        ),
    }
}

/// [`check_with`] under the default [`Config`].
pub fn check<T, F>(name: &str, gen: &Gen<T>, prop: F)
where
    T: Clone + Debug + 'static,
    F: Fn(&T) -> Result<(), String>,
{
    check_with(&Config::default(), name, gen, prop);
}

/// Non-panicking core of [`check_with`]; exposed so the harness itself
/// can be tested (a deliberately failing property must shrink to a
/// minimal counterexample).
pub fn run_check<T, F>(cfg: &Config, name: &str, gen: &Gen<T>, prop: F) -> CheckResult<T>
where
    T: Clone + 'static,
    F: Fn(&T) -> Result<(), String>,
{
    let mut stream = fnv1a(name.as_bytes()) ^ cfg.seed;
    let fresh = (0..cfg.cases).map(move |_| splitmix64(&mut stream));
    let all_seeds = cfg.regression_seeds.iter().copied().chain(fresh);

    let _quiet = QuietPanics::install();
    let mut evaluated = 0;
    for case_seed in all_seeds {
        evaluated += 1;
        let mut rng = Rng::new(case_seed);
        let sample = gen.generate(&mut rng);
        if let Err(msg) = eval(&prop, sample.value()) {
            let (minimal, message, shrink_steps) =
                shrink_to_minimal(sample, &prop, cfg.max_shrink_steps, msg);
            return CheckResult::Falsified {
                seed: case_seed,
                minimal: minimal.value().clone(),
                message,
                shrink_steps,
            };
        }
    }
    CheckResult::Passed { cases: evaluated }
}

fn eval<T>(prop: &impl Fn(&T) -> Result<(), String>, value: &T) -> Result<(), String> {
    match panic::catch_unwind(AssertUnwindSafe(|| prop(value))) {
        Ok(r) => r,
        Err(payload) => Err(panic_message(&payload)),
    }
}

fn panic_message(payload: &Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked with a non-string payload".to_string()
    }
}

/// Greedy linear shrinking: descend into the first shrink candidate that
/// still fails, until no candidate fails or the evaluation budget is
/// exhausted.
fn shrink_to_minimal<T: 'static>(
    failing: Sample<T>,
    prop: &impl Fn(&T) -> Result<(), String>,
    mut budget: u32,
    mut message: String,
) -> (Sample<T>, String, u32) {
    let mut current = failing;
    let mut steps = 0;
    'descend: loop {
        for candidate in current.shrinks() {
            if budget == 0 {
                break 'descend;
            }
            budget -= 1;
            if let Err(msg) = eval(prop, candidate.value()) {
                current = candidate;
                message = msg;
                steps += 1;
                continue 'descend;
            }
        }
        break; // no candidate fails: minimal
    }
    (current, message, steps)
}

// ---------------------------------------------------------------------------
// Panic-hook silencing while properties run (shrinking evaluates failing
// cases dozens of times; without this every one prints a backtrace line).
// ---------------------------------------------------------------------------

type Hook = Box<dyn Fn(&panic::PanicHookInfo<'_>) + Sync + Send>;

static HOOK_STATE: Mutex<(usize, Option<Hook>)> = Mutex::new((0, None));

struct QuietPanics;

impl QuietPanics {
    fn install() -> Self {
        let mut state = HOOK_STATE.lock().unwrap_or_else(|e| e.into_inner());
        if state.0 == 0 {
            state.1 = Some(panic::take_hook());
            panic::set_hook(Box::new(|_| {}));
        }
        state.0 += 1;
        QuietPanics
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        let mut state = HOOK_STATE.lock().unwrap_or_else(|e| e.into_inner());
        state.0 -= 1;
        if state.0 == 0 {
            if let Some(old) = state.1.take() {
                panic::set_hook(old);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Assertion macros for use inside properties.
// ---------------------------------------------------------------------------

/// Asserts a condition inside a property, early-returning `Err` with the
/// stringified condition (or a custom formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n  right: {:?}",
                stringify!($a), stringify!($b), a, b
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err(format!(
                "{}\n  left: {:?}\n  right: {:?}",
                format!($($fmt)+), a, b
            ));
        }
    }};
}

/// Asserts two expressions are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                a
            ));
        }
    }};
}

/// Declares a `#[test]` that checks a property over a generator:
///
/// ```ignore
/// prop_check!(my_property, detkit::prop::i64s(0, 100), |&v| {
///     prop_assert!(v >= 0);
///     Ok(())
/// });
/// ```
///
/// An optional first argument supplies a [`Config`] expression.
#[macro_export]
macro_rules! prop_check {
    ($name:ident, $gen:expr, $prop:expr) => {
        #[test]
        fn $name() {
            $crate::prop::check(stringify!($name), &$gen, $prop);
        }
    };
    ($name:ident, $cfg:expr, $gen:expr, $prop:expr) => {
        #[test]
        fn $name() {
            $crate::prop::check_with(&$cfg, stringify!($name), &$gen, $prop);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_passes() {
        let g = i64s(0, 100);
        match run_check(&Config::default(), "passes", &g, |&v| {
            prop_assert!((0..=100).contains(&v));
            Ok(())
        }) {
            CheckResult::Passed { cases } => assert_eq!(cases, Config::default().cases),
            CheckResult::Falsified { .. } => panic!("should pass"),
        }
    }

    #[test]
    fn failing_int_property_shrinks_to_boundary() {
        // `v < 100` over [0, 10_000]: the minimal counterexample is
        // exactly 100.
        let g = i64s(0, 10_000);
        let cfg = Config { cases: 200, seed: 1, max_shrink_steps: 2_000, regression_seeds: vec![] };
        match run_check(&cfg, "shrinks_to_boundary", &g, |&v| {
            prop_assert!(v < 100, "saw {v}");
            Ok(())
        }) {
            CheckResult::Falsified { minimal, shrink_steps, .. } => {
                assert_eq!(minimal, 100, "linear shrinking must reach the boundary");
                assert!(shrink_steps > 0);
            }
            CheckResult::Passed { .. } => panic!("property must fail"),
        }
    }

    #[test]
    fn failing_vec_property_shrinks_to_singleton() {
        // "no element ≥ 50" fails minimally on the one-element vector [50].
        let g = vec_of(&i64s(0, 1_000), 0, 20);
        let cfg = Config { cases: 300, seed: 2, max_shrink_steps: 5_000, regression_seeds: vec![] };
        match run_check(&cfg, "vec_shrinks", &g, |v| {
            prop_assert!(v.iter().all(|&x| x < 50), "{v:?}");
            Ok(())
        }) {
            CheckResult::Falsified { minimal, .. } => {
                assert_eq!(minimal, vec![50]);
            }
            CheckResult::Passed { .. } => panic!("property must fail"),
        }
    }

    #[test]
    fn shrinking_works_through_map_and_zip() {
        // Sum ≥ 120 over pairs: minimal total is 120 with one side 0.
        let g = zip(&i64s(0, 1_000), &i64s(0, 1_000)).map(|&(a, b)| (a, b, a + b));
        let cfg = Config { cases: 300, seed: 3, max_shrink_steps: 5_000, regression_seeds: vec![] };
        match run_check(&cfg, "map_zip_shrinks", &g, |&(_, _, sum)| {
            prop_assert!(sum < 120, "sum {sum}");
            Ok(())
        }) {
            CheckResult::Falsified { minimal, .. } => {
                assert_eq!(minimal.2, 120, "minimal sum must sit on the boundary: {minimal:?}");
            }
            CheckResult::Passed { .. } => panic!("property must fail"),
        }
    }

    #[test]
    fn panics_are_caught_and_shrunk() {
        let g = i64s(0, 1_000);
        let cfg = Config { cases: 200, seed: 4, max_shrink_steps: 2_000, regression_seeds: vec![] };
        match run_check(&cfg, "panic_shrinks", &g, |&v| {
            assert!(v < 200, "kaboom at {v}");
            Ok(())
        }) {
            CheckResult::Falsified { minimal, message, .. } => {
                assert_eq!(minimal, 200);
                assert!(message.contains("kaboom"), "{message}");
            }
            CheckResult::Passed { .. } => panic!("property must fail"),
        }
    }

    #[test]
    fn same_name_same_cases() {
        // Seed derivation is a pure function of (config seed, name).
        let g = u64s(0, u64::MAX);
        let collect = |name: &str| {
            let mut seen = Vec::new();
            let cfg = Config { cases: 10, seed: 7, max_shrink_steps: 0, regression_seeds: vec![] };
            // Record by failing on everything with the value in the message.
            match run_check(&cfg, name, &g, |&v| Err(format!("{v}"))) {
                CheckResult::Falsified { message, .. } => seen.push(message),
                CheckResult::Passed { .. } => {}
            }
            seen
        };
        assert_eq!(collect("alpha"), collect("alpha"));
        assert_ne!(collect("alpha"), collect("beta"));
    }

    #[test]
    fn regression_seeds_replay_first() {
        let g = i64s(0, 1_000_000);
        // Find the value seed 99 generates, then require that a config
        // carrying seed 99 as a regression fails on it immediately.
        let mut rng = Rng::new(99);
        let planted = *g.generate(&mut rng).value();
        let cfg = Config { cases: 0, seed: 0, max_shrink_steps: 0, regression_seeds: vec![99] };
        match run_check(&cfg, "regressions", &g, |&v| {
            prop_assert!(v != planted, "replayed the stored case");
            Ok(())
        }) {
            CheckResult::Falsified { seed, .. } => assert_eq!(seed, 99),
            CheckResult::Passed { .. } => panic!("stored seed must replay"),
        }
    }

    #[test]
    fn parse_regressions_filters_by_name() {
        let file = "# comment\n\nfoo 12\nbar 0x1F\nfoo 0xff\nmalformed\n";
        assert_eq!(parse_regressions(file, "foo"), vec![12, 255]);
        assert_eq!(parse_regressions(file, "bar"), vec![31]);
        assert!(parse_regressions(file, "baz").is_empty());
    }

    #[test]
    fn string_generators_respect_pool_and_length() {
        let g = string_of("abc", 2, 5);
        let mut rng = Rng::new(42);
        for _ in 0..200 {
            let s = g.generate(&mut rng);
            let s = s.value();
            assert!((2..=5).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| "abc".contains(c)), "{s:?}");
        }
        let w = words_of("xy", 1, 3, 2, 4);
        let s = w.generate(&mut rng);
        let words: Vec<&str> = s.value().split(' ').collect();
        assert!((2..=4).contains(&words.len()));
    }

    #[test]
    fn one_of_hits_every_alternative() {
        let g = one_of(vec![just(1u8), just(2), just(3)]);
        let mut rng = Rng::new(5);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*g.generate(&mut rng).value() as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn poisoned_hook_state_recovers() {
        // Install first so the panic below is silenced, then poison
        // HOOK_STATE by panicking while holding its guard. Install and
        // Drop both recover via `PoisonError::into_inner`, so the
        // refcounted hook swap must keep balancing afterwards.
        let quiet = QuietPanics::install();
        let _ = panic::catch_unwind(AssertUnwindSafe(|| {
            let _guard = HOOK_STATE.lock().unwrap_or_else(|e| e.into_inner());
            panic!("poison the hook state");
        }));
        assert!(HOOK_STATE.is_poisoned(), "mutex must be poisoned for this test to bite");
        // Nested install/drop traverse the poisoned-lock branch.
        let quiet2 = QuietPanics::install();
        assert!(HOOK_STATE.lock().unwrap_or_else(|e| e.into_inner()).0 >= 2);
        drop(quiet2);
        drop(quiet);
        // A fresh cycle on the (still) poisoned mutex also works.
        let _quiet3 = QuietPanics::install();
    }

    #[test]
    fn bools_shrink_to_false() {
        let mut rng = Rng::new(1);
        let g = bools();
        loop {
            let s = g.generate(&mut rng);
            if *s.value() {
                let shrinks = s.shrinks();
                assert_eq!(shrinks.len(), 1);
                assert!(!*shrinks[0].value());
                break;
            }
        }
    }
}
