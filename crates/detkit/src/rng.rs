//! Seedable, portable PRNG: SplitMix64 seeding into xoshiro256**.
//!
//! The generator is deterministic across platforms and Rust versions —
//! unlike `rand`'s `StdRng`, whose stream is explicitly unstable between
//! releases — which makes it safe to bake expected values into tests and
//! to reproduce any workload corpus from its seed alone.

/// SplitMix64 step: expands a 64-bit seed into a well-mixed stream.
///
/// Used for state initialisation and for deriving independent seeds from
/// names/indices (see [`crate::prop`]).
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// xoshiro256** — fast, high-quality, 256-bit-state PRNG
/// (Blackman & Vigna, 2018). Not cryptographically secure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Self { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform draw from a half-open or inclusive range, e.g.
    /// `rng.gen_range(0..10)`, `rng.gen_range(-5..=5)`,
    /// `rng.gen_range(0.5..2.0)`.
    #[inline]
    pub fn gen_range<R: RangeSample>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Unbiased uniform `u64` in `[0, bound)` via rejection sampling.
    #[inline]
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Reject the tail of the u64 space that would bias the modulus.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.bounded_u64(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// A uniformly random element, or `None` if empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.bounded_u64(xs.len() as u64) as usize])
        }
    }

    /// `k` distinct indices sampled without replacement from `0..n`
    /// (partial Fisher–Yates; `k` is capped at `n`).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.bounded_u64((n - i) as u64) as usize;
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// `k` elements sampled without replacement, in draw order.
    pub fn sample<'a, T>(&mut self, xs: &'a [T], k: usize) -> Vec<&'a T> {
        self.sample_indices(xs.len(), k).into_iter().map(|i| &xs[i]).collect()
    }

    /// Splits off an independently-seeded child generator.
    ///
    /// The child's stream is decorrelated from the parent's continuation,
    /// so forked streams can be consumed in any order.
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }
}

/// Ranges that [`Rng::gen_range`] can sample uniformly.
pub trait RangeSample {
    /// Element type produced by the draw.
    type Output;
    /// Draws one uniform value from the range. Panics on empty ranges.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl RangeSample for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(rng.bounded_u64(span) as $wide) as $t
            }
        }
        impl RangeSample for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as $wide).wrapping_add(rng.bounded_u64(span + 1) as $wide) as $t
            }
        }
    )*};
}

impl_int_range! {
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
}

impl RangeSample for core::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl RangeSample for core::ops::Range<f32> {
    type Output = f32;
    #[inline]
    fn sample(self, rng: &mut Rng) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn known_answer_vector_is_stable() {
        // Pins the stream so corpus seeds stay reproducible across
        // refactors. If this fails the PRNG implementation changed.
        let mut r = Rng::new(0);
        let first = r.next_u64();
        let mut r2 = Rng::new(0);
        assert_eq!(first, r2.next_u64());
        assert_ne!(first, r.next_u64());
    }

    #[test]
    fn range_draws_stay_in_bounds() {
        let mut r = Rng::new(7);
        for _ in 0..2000 {
            let v = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = r.gen_range(0..1usize);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = Rng::new(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 10 values should appear: {seen:?}");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(11);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Rng::new(13);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.7)).count();
        assert!((6500..7500).contains(&hits), "p=0.7 gave {hits}/10000");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(5);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // A 50-element shuffle is a fixed point with probability 1/50!.
        assert_ne!(xs, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_handles_degenerate_slices() {
        let mut r = Rng::new(5);
        let mut empty: [u8; 0] = [];
        r.shuffle(&mut empty);
        let mut one = [42];
        r.shuffle(&mut one);
        assert_eq!(one, [42]);
    }

    #[test]
    fn sample_without_replacement() {
        let mut r = Rng::new(9);
        let xs: Vec<u32> = (0..30).collect();
        let picked = r.sample(&xs, 10);
        assert_eq!(picked.len(), 10);
        let mut vals: Vec<u32> = picked.iter().map(|&&v| v).collect();
        vals.sort_unstable();
        vals.dedup();
        assert_eq!(vals.len(), 10, "sample must not repeat elements");
        // Oversampling caps at the population size.
        assert_eq!(r.sample(&xs, 100).len(), 30);
        assert!(r.sample::<u32>(&[], 3).is_empty());
    }

    #[test]
    fn choose_uniformish() {
        let mut r = Rng::new(17);
        let xs = [1, 2, 3, 4];
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[*r.choose(&xs).unwrap() as usize - 1] += 1;
        }
        assert!(counts.iter().all(|&c| c > 800), "{counts:?}");
        assert!(r.choose::<u8>(&[]).is_none());
    }

    #[test]
    fn fork_decorrelates() {
        let mut parent = Rng::new(1);
        let mut child = parent.fork();
        let a: Vec<u64> = (0..8).map(|_| parent.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn full_u64_inclusive_range_works() {
        let mut r = Rng::new(21);
        // Must not overflow span arithmetic.
        let _ = r.gen_range(0u64..=u64::MAX);
        let _ = r.gen_range(i64::MIN..=i64::MAX);
    }
}
