//! Extracted records and the canonical wide schema.

use std::collections::BTreeMap;

use unisem_relstore::{Column, DataType, Schema, Value};

/// Canonical fields an extracted record may populate.
///
/// The order here is the column order of generated tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Field {
    /// The subject entity ("Product Alpha", "Drug A").
    Subject,
    /// Subject entity kind label ("product", "drug").
    SubjectKind,
    /// The measured metric ("sales", "efficacy").
    Metric,
    /// Reporting period ("Q2 2024" or a date).
    Period,
    /// Signed percentage change.
    ChangePct,
    /// Monetary amount.
    Amount,
    /// Bare quantity.
    Quantity,
    /// Secondary entity in the sentence (object of the relation).
    Object,
    /// The relation verb (stemmed).
    Relation,
}

impl Field {
    /// All fields in canonical order.
    pub const ALL: [Field; 9] = [
        Field::Subject,
        Field::SubjectKind,
        Field::Metric,
        Field::Period,
        Field::ChangePct,
        Field::Amount,
        Field::Quantity,
        Field::Object,
        Field::Relation,
    ];

    /// Column name in generated tables.
    pub fn column_name(self) -> &'static str {
        match self {
            Field::Subject => "subject",
            Field::SubjectKind => "subject_kind",
            Field::Metric => "metric",
            Field::Period => "period",
            Field::ChangePct => "change_pct",
            Field::Amount => "amount",
            Field::Quantity => "quantity",
            Field::Object => "object",
            Field::Relation => "relation",
        }
    }

    /// Declared column type.
    pub fn data_type(self) -> DataType {
        match self {
            Field::ChangePct | Field::Amount | Field::Quantity => DataType::Float,
            Field::Period => DataType::Str, // quarters are strings; dates stringify
            _ => DataType::Str,
        }
    }
}

/// One record extracted from one sentence.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExtractedRecord {
    fields: BTreeMap<Field, Value>,
    /// The source sentence (provenance).
    pub sentence: String,
}

impl ExtractedRecord {
    /// Creates an empty record for a sentence.
    pub fn new(sentence: impl Into<String>) -> Self {
        Self { fields: BTreeMap::new(), sentence: sentence.into() }
    }

    /// Sets a field (overwrites).
    pub fn set(&mut self, field: Field, value: Value) {
        if !value.is_null() {
            self.fields.insert(field, value);
        }
    }

    /// Reads a field.
    pub fn get(&self, field: Field) -> Option<&Value> {
        self.fields.get(&field)
    }

    /// Number of populated fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when no fields are populated.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Populated fields in canonical order.
    pub fn fields(&self) -> impl Iterator<Item = (Field, &Value)> + '_ {
        self.fields.iter().map(|(f, v)| (*f, v))
    }

    /// True when the record carries enough signal to be worth emitting:
    /// a subject plus at least one measurement or relation.
    pub fn is_informative(&self) -> bool {
        self.fields.contains_key(&Field::Subject)
            && [Field::ChangePct, Field::Amount, Field::Quantity, Field::Metric, Field::Object]
                .iter()
                .any(|f| self.fields.contains_key(f))
    }
}

/// Builds the schema covering the union of populated fields across records
/// (always in canonical field order).
pub fn union_schema(records: &[ExtractedRecord]) -> Schema {
    let mut present: Vec<Field> =
        Field::ALL.into_iter().filter(|f| records.iter().any(|r| r.get(*f).is_some())).collect();
    if present.is_empty() {
        present.push(Field::Subject);
    }
    Schema::new(present.into_iter().map(|f| Column::new(f.column_name(), f.data_type())).collect())
        .expect("canonical fields are unique")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_and_informative() {
        let mut r = ExtractedRecord::new("s");
        assert!(!r.is_informative());
        r.set(Field::Subject, Value::str("alpha"));
        assert!(!r.is_informative(), "subject alone is not informative");
        r.set(Field::ChangePct, Value::Float(20.0));
        assert!(r.is_informative());
        assert_eq!(r.get(Field::Subject), Some(&Value::str("alpha")));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn null_values_ignored() {
        let mut r = ExtractedRecord::new("s");
        r.set(Field::Amount, Value::Null);
        assert!(r.is_empty());
    }

    #[test]
    fn union_schema_orders_canonically() {
        let mut a = ExtractedRecord::new("s1");
        a.set(Field::Amount, Value::Float(5.0));
        let mut b = ExtractedRecord::new("s2");
        b.set(Field::Subject, Value::str("x"));
        b.set(Field::Period, Value::str("Q1"));
        let s = union_schema(&[a, b]);
        let names: Vec<&str> = s.columns().iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["subject", "period", "amount"]);
    }

    #[test]
    fn empty_union_schema_nonempty() {
        let s = union_schema(&[]);
        assert_eq!(s.arity(), 1);
    }
}
