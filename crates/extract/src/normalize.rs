//! Surface-form normalization for extracted values.

use unisem_relstore::{Date, Value};

/// Parses a percent mention ("20%", "12.5 percent") into its numeric value.
pub fn parse_percent(text: &str) -> Option<f64> {
    let t = text.trim();
    let num_part =
        t.trim_end_matches('%').trim_end_matches("percent").trim_end_matches("pct").trim();
    parse_number(num_part)
}

/// Parses a money mention ("$1,500.75", "1500 dollars") into its amount.
pub fn parse_money(text: &str) -> Option<f64> {
    let t = text
        .trim()
        .trim_start_matches('$')
        .trim_end_matches("dollars")
        .trim_end_matches("usd")
        .trim_end_matches("eur")
        .trim();
    parse_number(t)
}

/// Parses a number with optional thousands separators.
pub fn parse_number(text: &str) -> Option<f64> {
    let cleaned: String = text.trim().replace(',', "");
    if cleaned.is_empty() {
        return None;
    }
    cleaned.parse::<f64>().ok().filter(|f| f.is_finite())
}

/// Normalizes a period mention: quarters to `Qn YYYY` / `Qn`, month-name
/// dates and ISO dates to [`Value::Date`], bare years to the year string.
pub fn normalize_period(text: &str) -> Value {
    let t = text.trim();
    // Quarter: "Q2", "q2 2024".
    let lower = t.to_lowercase();
    if lower.starts_with('q') && lower.len() >= 2 {
        let rest = &lower[1..];
        let mut parts = rest.split_whitespace();
        if let Some(qn) = parts.next() {
            if let Ok(q) = qn.parse::<u8>() {
                if (1..=4).contains(&q) {
                    return match parts.next().and_then(|y| y.parse::<i32>().ok()) {
                        Some(year) => Value::str(format!("Q{q} {year}")),
                        None => Value::str(format!("Q{q}")),
                    };
                }
            }
        }
    }
    // ISO date.
    if let Some(d) = Date::parse(t) {
        return Value::Date(d);
    }
    // Month-name date: "March 5, 2024" / "March 2024".
    if let Some(d) = parse_month_date(t) {
        return Value::Date(d);
    }
    Value::str(t.to_string())
}

/// Parses "March 5, 2024", "March 2024", or "March 5" (year 0 marker not
/// used; missing pieces default to day 1 / year 2000-less forms are
/// rejected).
fn parse_month_date(t: &str) -> Option<Date> {
    const MONTHS: &[&str] = &[
        "january",
        "february",
        "march",
        "april",
        "may",
        "june",
        "july",
        "august",
        "september",
        "october",
        "november",
        "december",
    ];
    let mut tokens = t.split(|c: char| c.is_whitespace() || c == ',').filter(|s| !s.is_empty());
    let month_word = tokens.next()?.to_lowercase();
    let month = MONTHS.iter().position(|m| *m == month_word)? as u8 + 1;
    let second = tokens.next();
    let third = tokens.next();
    match (second, third) {
        (Some(a), Some(b)) => {
            let day: u8 = a.parse().ok()?;
            let year: i32 = b.parse().ok()?;
            Date::new(year, month, day)
        }
        (Some(a), None) => {
            let n: i64 = a.parse().ok()?;
            if (1000..=9999).contains(&n) {
                Date::new(n as i32, month, 1)
            } else {
                None // "March 5" without a year is too ambiguous to type.
            }
        }
        _ => None,
    }
}

/// Change direction implied by a verb: `+1` for growth verbs, `-1` for
/// decline verbs, `0` for neutral/unknown.
pub fn direction_from_verb(verb: &str) -> i8 {
    const UP: &[&str] = &[
        "increase",
        "increased",
        "rose",
        "rise",
        "grew",
        "grow",
        "gained",
        "gain",
        "climbed",
        "climb",
        "surged",
        "surge",
        "jumped",
        "jump",
        "improved",
        "improve",
        "exceeded",
        "expanded",
        "up",
    ];
    const DOWN: &[&str] = &[
        "decrease",
        "decreased",
        "fell",
        "fall",
        "dropped",
        "drop",
        "declined",
        "decline",
        "lost",
        "lose",
        "slipped",
        "slip",
        "shrank",
        "shrink",
        "worsened",
        "down",
        "plunged",
        "contracted",
    ];
    let v = verb.to_lowercase();
    if UP.contains(&v.as_str()) {
        1
    } else if DOWN.contains(&v.as_str()) {
        -1
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percents() {
        assert_eq!(parse_percent("20%"), Some(20.0));
        assert_eq!(parse_percent("12.5 percent"), Some(12.5));
        assert_eq!(parse_percent("1,250%"), Some(1250.0));
        assert_eq!(parse_percent("garbage"), None);
    }

    #[test]
    fn money() {
        assert_eq!(parse_money("$1,500.75"), Some(1500.75));
        assert_eq!(parse_money("1500 dollars"), Some(1500.0));
        assert_eq!(parse_money("$"), None);
    }

    #[test]
    fn numbers() {
        assert_eq!(parse_number("1,234"), Some(1234.0));
        assert_eq!(parse_number("-3.5"), Some(-3.5));
        assert_eq!(parse_number(""), None);
        assert_eq!(parse_number("abc"), None);
    }

    #[test]
    fn quarters() {
        assert_eq!(normalize_period("Q2"), Value::str("Q2"));
        assert_eq!(normalize_period("q3 2024"), Value::str("Q3 2024"));
        assert_eq!(normalize_period("Q9"), Value::str("Q9")); // not a quarter
    }

    #[test]
    fn dates() {
        assert_eq!(normalize_period("2024-03-05"), Value::Date(Date::new(2024, 3, 5).unwrap()));
        assert_eq!(normalize_period("March 5, 2024"), Value::Date(Date::new(2024, 3, 5).unwrap()));
        assert_eq!(normalize_period("March 2024"), Value::Date(Date::new(2024, 3, 1).unwrap()));
        // Ambiguous "March 5" stays a string.
        assert_eq!(normalize_period("March 5"), Value::str("March 5"));
    }

    #[test]
    fn directions() {
        assert_eq!(direction_from_verb("increased"), 1);
        assert_eq!(direction_from_verb("FELL"), -1);
        assert_eq!(direction_from_verb("reported"), 0);
        assert_eq!(direction_from_verb("surged"), 1);
        assert_eq!(direction_from_verb("plunged"), -1);
    }
}
