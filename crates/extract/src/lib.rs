//! # unisem-extract
//!
//! SLM-driven **Relational Table Generation** (§III.C task 1 of the paper):
//! "transforming the unstructured nature of free-text data into a more
//! organized and analyzable format … The table might have columns such as
//! 'Quarter', 'Sales Metrics', and 'Change Percentage'".
//!
//! Pipeline per sentence:
//!
//! 1. SLM entity tagging ([`unisem_slm::NerTagger`]) finds the subject
//!    entity, metric word, period (quarter/date), and measures (percent,
//!    money, quantity).
//! 2. POS tagging finds the governing verb, whose polarity signs the change
//!    percentage ("decreased 5%" → −5).
//! 3. [`normalize`] converts surface forms into typed
//!    [`unisem_relstore::Value`]s.
//! 4. Records accumulate into a canonical wide schema and emit as a
//!    [`unisem_relstore::Table`] ready for TableQA.

pub mod normalize;
pub mod record;
pub mod tablegen;

pub use normalize::{direction_from_verb, normalize_period, parse_money, parse_percent};
pub use record::{ExtractedRecord, Field};
pub use tablegen::{ExtractionStats, TableGenerator};
