//! The table generator: sentences → extracted records → relational table.

use unisem_relstore::{RelResult, Table, Value};
use unisem_slm::ner::{EntityKind, EntityMention};
use unisem_slm::pos::{pos_tag, PosTag};
use unisem_slm::Slm;
use unisem_text::normalize::stem;
use unisem_text::sentence::split_sentences;

use crate::normalize::{
    direction_from_verb, normalize_period, parse_money, parse_number, parse_percent,
};
use crate::record::{union_schema, ExtractedRecord, Field};

/// Aggregate statistics from a generation run (feeds experiment E4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExtractionStats {
    /// Sentences examined.
    pub sentences: usize,
    /// Records emitted (informative ones only).
    pub records: usize,
    /// Sentences skipped as uninformative.
    pub skipped: usize,
}

/// SLM-driven relational table generator.
#[derive(Debug, Clone)]
pub struct TableGenerator {
    slm: Slm,
}

impl TableGenerator {
    /// Creates a generator using `slm` for tagging.
    pub fn new(slm: Slm) -> Self {
        Self { slm }
    }

    /// Extracts records from one document.
    pub fn extract_records(&self, text: &str) -> (Vec<ExtractedRecord>, ExtractionStats) {
        let mut stats = ExtractionStats::default();
        let mut records = Vec::new();
        for sentence in split_sentences(text) {
            stats.sentences += 1;
            let rec = self.extract_sentence(&sentence);
            if rec.is_informative() {
                stats.records += 1;
                records.push(rec);
            } else {
                stats.skipped += 1;
            }
        }
        (records, stats)
    }

    /// Extracts a single sentence into a (possibly uninformative) record.
    pub fn extract_sentence(&self, sentence: &str) -> ExtractedRecord {
        let mut rec = ExtractedRecord::new(sentence);
        let mentions = self.slm.tag_entities(sentence);
        let tags = pos_tag(sentence);

        // Subject: the first referential (non-value, non-metric) entity.
        let referential: Vec<&EntityMention> = mentions
            .iter()
            .filter(|m| !m.kind.is_value() && m.kind != EntityKind::Metric)
            .collect();
        if let Some(subj) = referential.first() {
            rec.set(Field::Subject, Value::str(subj.canonical()));
            rec.set(Field::SubjectKind, Value::str(subj.kind.label()));
            // Object: the next referential entity after the subject.
            if let Some(obj) = referential.get(1) {
                rec.set(Field::Object, Value::str(obj.canonical()));
            }
        }

        // Metric: the first metric word.
        if let Some(metric) = mentions.iter().find(|m| m.kind == EntityKind::Metric) {
            rec.set(Field::Metric, Value::str(metric.canonical()));
        }

        // Period: quarter preferred over date.
        let period = mentions
            .iter()
            .find(|m| m.kind == EntityKind::Quarter)
            .or_else(|| mentions.iter().find(|m| m.kind == EntityKind::Date));
        if let Some(p) = period {
            let v = normalize_period(&p.text);
            // Periods are stored as display strings for stable grouping.
            rec.set(Field::Period, Value::str(v.to_string()));
        }

        // Governing verb: the first verb token; its polarity signs the
        // percent change.
        let verb = tags
            .iter()
            .find(|(t, p)| *p == PosTag::Verb && t.text.len() > 2)
            .map(|(t, _)| t.lower());
        if let Some(v) = &verb {
            rec.set(Field::Relation, Value::str(stem(v)));
        }

        // Measures.
        if let Some(pct) = mentions.iter().find(|m| m.kind == EntityKind::Percent) {
            if let Some(raw) = parse_percent(&pct.text) {
                let sign = verb.as_deref().map_or(0, direction_from_verb);
                let signed = if sign < 0 { -raw } else { raw };
                rec.set(Field::ChangePct, Value::float(signed));
            }
        }
        if let Some(money) = mentions.iter().find(|m| m.kind == EntityKind::Money) {
            if let Some(amt) = parse_money(&money.text) {
                rec.set(Field::Amount, Value::float(amt));
            }
        }
        // Quantity: a bare number not already consumed by percent/money/
        // period spans.
        let consumed: Vec<(usize, usize)> = mentions
            .iter()
            .filter(|m| {
                matches!(
                    m.kind,
                    EntityKind::Percent
                        | EntityKind::Money
                        | EntityKind::Date
                        | EntityKind::Quarter
                )
            })
            .map(|m| (m.start, m.end))
            .collect();
        if let Some(q) = mentions.iter().find(|m| {
            m.kind == EntityKind::Quantity
                && !consumed.iter().any(|&(s, e)| m.start >= s && m.end <= e)
        }) {
            if let Some(n) = parse_number(&q.text) {
                rec.set(Field::Quantity, Value::float(n));
            }
        }
        rec
    }

    /// Generates one table covering all `texts` (union schema, canonical
    /// column order), together with run statistics.
    pub fn generate_table(&self, texts: &[&str]) -> RelResult<(Table, ExtractionStats)> {
        let mut all = Vec::new();
        let mut stats = ExtractionStats::default();
        for t in texts {
            let (recs, s) = self.extract_records(t);
            stats.sentences += s.sentences;
            stats.records += s.records;
            stats.skipped += s.skipped;
            all.extend(recs);
        }
        let schema = union_schema(&all);
        let mut table = Table::empty(schema.clone());
        for rec in &all {
            let row: Vec<Value> = schema
                .columns()
                .iter()
                .map(|c| {
                    Field::ALL
                        .into_iter()
                        .find(|f| f.column_name() == c.name)
                        .and_then(|f| rec.get(f).cloned())
                        .unwrap_or(Value::Null)
                })
                .collect();
            table.push_row(row)?;
        }
        Ok((table, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unisem_slm::{Lexicon, SlmConfig};

    fn gen() -> TableGenerator {
        let lexicon = Lexicon::new().with_entries([
            ("Product Alpha", EntityKind::Product),
            ("Product Beta", EntityKind::Product),
            ("Drug A", EntityKind::Drug),
            ("Acme Corp", EntityKind::Organization),
            ("Patient X", EntityKind::Person),
        ]);
        TableGenerator::new(Slm::new(SlmConfig { lexicon, ..SlmConfig::default() }))
    }

    #[test]
    fn paper_example_sentence() {
        // The paper's own running example: "Q2 sales increased 20%".
        let g = gen();
        let rec = g.extract_sentence("Q2 sales increased 20%.");
        assert_eq!(rec.get(Field::Metric), Some(&Value::str("sales")));
        assert_eq!(rec.get(Field::Period), Some(&Value::str("Q2")));
        assert_eq!(rec.get(Field::ChangePct), Some(&Value::Float(20.0)));
    }

    #[test]
    fn subject_and_signed_change() {
        let g = gen();
        let rec = g.extract_sentence("Product Alpha sales decreased 15% in Q3 2024.");
        assert_eq!(rec.get(Field::Subject), Some(&Value::str("product alpha")));
        assert_eq!(rec.get(Field::SubjectKind), Some(&Value::str("product")));
        assert_eq!(rec.get(Field::ChangePct), Some(&Value::Float(-15.0)));
        assert_eq!(rec.get(Field::Period), Some(&Value::str("Q3 2024")));
        assert!(rec.is_informative());
    }

    #[test]
    fn money_amount() {
        let g = gen();
        let rec = g.extract_sentence("Product Beta revenue reached $12,500.50 in Q1.");
        assert_eq!(rec.get(Field::Amount), Some(&Value::Float(12500.5)));
        assert_eq!(rec.get(Field::Metric), Some(&Value::str("revenue")));
    }

    #[test]
    fn relation_and_object() {
        let g = gen();
        let rec = g.extract_sentence("Patient X received Drug A on 2024-02-10.");
        assert_eq!(rec.get(Field::Subject), Some(&Value::str("patient x")));
        assert_eq!(rec.get(Field::Object), Some(&Value::str("drug a")));
        assert_eq!(rec.get(Field::Relation), Some(&Value::str("receiv")));
        assert!(rec.get(Field::Period).is_some());
    }

    #[test]
    fn uninformative_sentence_skipped() {
        let g = gen();
        let (recs, stats) = g.extract_records("The weather was pleasant. Nothing happened.");
        assert!(recs.is_empty());
        assert_eq!(stats.sentences, 2);
        assert_eq!(stats.skipped, 2);
    }

    #[test]
    fn table_generation_union_schema() {
        let g = gen();
        let (t, stats) = g
            .generate_table(&[
                "Product Alpha sales increased 20% in Q2.",
                "Product Beta revenue reached $900 in Q2.",
            ])
            .unwrap();
        assert_eq!(stats.records, 2);
        assert_eq!(t.num_rows(), 2);
        for col in ["subject", "metric", "period", "change_pct", "amount"] {
            assert!(t.schema().index_of(col).is_some(), "missing column {col}");
        }
        // Row 0 has no amount; row 1 has no change_pct.
        let amount = t.schema().index_of("amount").unwrap();
        assert!(t.cell(0, amount).is_null());
        assert_eq!(t.cell(1, amount), &Value::Float(900.0));
    }

    #[test]
    fn generated_table_queryable_via_sql() {
        use unisem_relstore::Database;
        let g = gen();
        let (t, _) = g
            .generate_table(&[
                "Product Alpha sales increased 20% in Q2.",
                "Product Beta sales decreased 5% in Q2.",
                "Product Alpha sales increased 10% in Q3.",
            ])
            .unwrap();
        let mut db = Database::new();
        db.create_table("extracted", t).unwrap();
        let out = db
            .run_sql(
                "SELECT subject, AVG(change_pct) AS avg_change FROM extracted \
                 GROUP BY subject ORDER BY subject",
            )
            .unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.cell(0, 0), &Value::str("product alpha"));
        assert_eq!(out.cell(0, 1), &Value::Float(15.0));
        assert_eq!(out.cell(1, 1), &Value::Float(-5.0));
    }

    #[test]
    fn quantity_not_confused_with_percent() {
        let g = gen();
        let rec = g.extract_sentence("Acme Corp shipped 500 units, up 10%.");
        assert_eq!(rec.get(Field::Quantity), Some(&Value::Float(500.0)));
        assert_eq!(rec.get(Field::ChangePct), Some(&Value::Float(10.0)));
    }

    #[test]
    fn stats_add_up() {
        let g = gen();
        let (_, stats) = g.extract_records(
            "Product Alpha sales rose 5%. Irrelevant filler sentence. \
             Product Beta sales fell 3%.",
        );
        assert_eq!(stats.sentences, 3);
        assert_eq!(stats.records + stats.skipped, 3);
        assert_eq!(stats.records, 2);
    }
}
