//! # unisem-retrieval
//!
//! Retrieval over the heterogeneous index — the paper's §III.B
//! ("Topology-Enhanced Retrieval") plus the baselines its efficiency claims
//! are measured against:
//!
//! - [`topology`]: anchor-entity extraction → personalized-PageRank
//!   traversal bounded to `max_hops` → hybrid topological/lexical chunk
//!   scoring. This is the sparse, "reduced computational overhead" path the
//!   paper contrasts with dense retrieval.
//! - [`dense`]: the conventional-RAG baseline — embed every chunk, embed
//!   the query, scan cosine similarities (what EVAPORATE-style pipelines
//!   do, §I gap 1).
//! - [`lexical`]: BM25 over chunks.
//! - [`hybrid`]: weighted dense + lexical fusion.
//! - [`metrics`]: recall@k / hit@k / MRR used by experiments E3 and E6.
//!
//! All retrievers implement [`ChunkRetriever`], so experiment harnesses can
//! sweep them uniformly.

pub mod dense;
pub mod hybrid;
pub mod lexical;
pub mod metrics;
pub mod topology;

pub use dense::DenseRetriever;
pub use hybrid::HybridRetriever;
pub use lexical::LexicalRetriever;
pub use metrics::{hit_at_k, mrr, recall_at_k};
pub use topology::{TopologyConfig, TopologyRetriever, TraversalStats};

/// One retrieved chunk with its score (higher = more relevant).
#[derive(Debug, Clone, PartialEq)]
pub struct RetrievalResult {
    /// Chunk id in the document store.
    pub chunk_id: usize,
    /// Retriever-specific relevance score.
    pub score: f64,
}

/// Common retriever interface.
pub trait ChunkRetriever {
    /// Short name for reports ("topology", "dense", "bm25", "hybrid").
    fn name(&self) -> &'static str;

    /// Retrieves the top `k` chunks for a query, best first.
    fn retrieve(&self, query: &str, k: usize) -> Vec<RetrievalResult>;

    /// Approximate resident bytes of this retriever's index structures
    /// (experiment E2).
    fn index_bytes(&self) -> usize;
}
