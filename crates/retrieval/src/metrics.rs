//! Retrieval quality metrics.

use crate::RetrievalResult;

/// Fraction of `gold` chunk ids present in the top `k` results.
///
/// Returns 1.0 when `gold` is empty (vacuously satisfied).
pub fn recall_at_k(gold: &[usize], results: &[RetrievalResult], k: usize) -> f64 {
    if gold.is_empty() {
        return 1.0;
    }
    let top: std::collections::HashSet<usize> =
        results.iter().take(k).map(|r| r.chunk_id).collect();
    let hit = gold.iter().filter(|g| top.contains(g)).count();
    hit as f64 / gold.len() as f64
}

/// 1 if any gold id appears in the top `k`, else 0.
pub fn hit_at_k(gold: &[usize], results: &[RetrievalResult], k: usize) -> f64 {
    if gold.is_empty() {
        return 1.0;
    }
    let hit = results.iter().take(k).any(|r| gold.contains(&r.chunk_id));
    if hit {
        1.0
    } else {
        0.0
    }
}

/// Reciprocal rank of the first gold id (0 when absent).
pub fn mrr(gold: &[usize], results: &[RetrievalResult]) -> f64 {
    if gold.is_empty() {
        return 1.0;
    }
    results
        .iter()
        .position(|r| gold.contains(&r.chunk_id))
        .map_or(0.0, |pos| 1.0 / (pos + 1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn results(ids: &[usize]) -> Vec<RetrievalResult> {
        ids.iter().map(|&chunk_id| RetrievalResult { chunk_id, score: 1.0 }).collect()
    }

    #[test]
    fn recall_counts_fraction() {
        let r = results(&[5, 3, 9]);
        assert_eq!(recall_at_k(&[5, 9], &r, 3), 1.0);
        assert_eq!(recall_at_k(&[5, 9], &r, 1), 0.5);
        assert_eq!(recall_at_k(&[7], &r, 3), 0.0);
    }

    #[test]
    fn empty_gold_is_vacuous() {
        let r = results(&[1]);
        assert_eq!(recall_at_k(&[], &r, 1), 1.0);
        assert_eq!(hit_at_k(&[], &r, 1), 1.0);
        assert_eq!(mrr(&[], &r), 1.0);
    }

    #[test]
    fn hit_binary() {
        let r = results(&[4, 2]);
        assert_eq!(hit_at_k(&[2], &r, 2), 1.0);
        assert_eq!(hit_at_k(&[2], &r, 1), 0.0);
    }

    #[test]
    fn mrr_positions() {
        let r = results(&[8, 3, 1]);
        assert_eq!(mrr(&[8], &r), 1.0);
        assert_eq!(mrr(&[3], &r), 0.5);
        assert!((mrr(&[1], &r) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(mrr(&[99], &r), 0.0);
    }

    #[test]
    fn empty_results() {
        assert_eq!(recall_at_k(&[1], &[], 5), 0.0);
        assert_eq!(mrr(&[1], &[]), 0.0);
    }
}
