//! BM25 lexical retrieval baseline.

use std::sync::Arc;

use unisem_docstore::DocStore;

use crate::{ChunkRetriever, RetrievalResult};

/// Wraps the document store's BM25 chunk index as a retriever.
#[derive(Debug, Clone)]
pub struct LexicalRetriever {
    docs: Arc<DocStore>,
}

impl LexicalRetriever {
    /// Creates the retriever over a shared document store.
    pub fn new(docs: Arc<DocStore>) -> Self {
        Self { docs }
    }
}

impl ChunkRetriever for LexicalRetriever {
    fn name(&self) -> &'static str {
        "bm25"
    }

    fn retrieve(&self, query: &str, k: usize) -> Vec<RetrievalResult> {
        self.docs
            .search(query, k)
            .into_iter()
            .map(|h| RetrievalResult { chunk_id: h.chunk_id, score: h.score })
            .collect()
    }

    fn index_bytes(&self) -> usize {
        self.docs.index_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retrieves_by_terms() {
        let mut d = DocStore::default();
        d.add_document("a", "solar panels generate electricity from sunlight.", "x");
        d.add_document("b", "wind turbines capture kinetic energy.", "x");
        let r = LexicalRetriever::new(Arc::new(d));
        let hits = r.retrieve("solar electricity", 5);
        assert!(!hits.is_empty());
        assert_eq!(hits[0].chunk_id, 0);
        assert_eq!(r.name(), "bm25");
        assert!(r.index_bytes() > 0);
    }
}
