//! Dense-vector retrieval baseline: the "conventional RAG" path of §I.
//!
//! Every chunk is embedded once at build time; every query does a full
//! cosine scan over all chunk vectors. This is deliberately the
//! straightforward dense pipeline — its index size and query cost are the
//! comparison points for experiments E2/E3.

use std::sync::Arc;

use parkit::Pool;
use unisem_docstore::DocStore;
use unisem_slm::Slm;
use unisem_text::similarity::cosine_dense;

use crate::{ChunkRetriever, RetrievalResult};

/// Fixed chunk size for the parallel cosine scan — a constant, never
/// derived from the thread count, per the parkit determinism contract.
const SCAN_CHUNK: usize = 256;

/// Flat (exact) dense retriever.
#[derive(Debug, Clone)]
pub struct DenseRetriever {
    slm: Slm,
    /// chunk_id-aligned embedding matrix.
    vectors: Vec<Vec<f32>>,
    /// Pool used for build-time embedding and query-time scans.
    pool: Pool,
}

impl DenseRetriever {
    /// Builds the index by embedding every chunk of `docs` across the
    /// global parkit pool.
    pub fn build(slm: Slm, docs: &Arc<DocStore>) -> Self {
        Self::build_with_pool(slm, docs, parkit::global())
    }

    /// [`DenseRetriever::build`] on an explicit [`Pool`], which the
    /// retriever also keeps for its query-time scans. Embeddings are a pure
    /// per-chunk function merged in chunk order, so the index is identical
    /// for any pool width.
    pub fn build_with_pool(slm: Slm, docs: &Arc<DocStore>, pool: Pool) -> Self {
        let vectors: Vec<Vec<f32>> =
            pool.par_map(docs.chunks(), |c| slm.embedder().embed_text(&c.text));
        Self { slm, vectors, pool }
    }

    /// Embeds and appends the chunks of `docs` past the already-indexed
    /// prefix — the incremental form used by delta ingest. Embeddings are
    /// a pure per-chunk function, so extending equals rebuilding over the
    /// final store.
    pub fn extend_from(&mut self, docs: &Arc<DocStore>) {
        let chunks = docs.chunks();
        if self.vectors.len() >= chunks.len() {
            return;
        }
        let slm = &self.slm;
        let fresh: Vec<Vec<f32>> = self
            .pool
            .par_map(&chunks[self.vectors.len()..], |c| slm.embedder().embed_text(&c.text));
        self.vectors.extend(fresh);
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// True when no vectors are indexed.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Embedding dimensionality (0 when empty) — with [`Self::len`], the
    /// planner's per-query scan-cost input for the dense fallback.
    pub fn dims(&self) -> usize {
        self.vectors.first().map(Vec::len).unwrap_or(0)
    }
}

impl ChunkRetriever for DenseRetriever {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn retrieve(&self, query: &str, k: usize) -> Vec<RetrievalResult> {
        let q = self.slm.embed(query);
        // Parallel scan in fixed-size spans; per-span hit lists concatenate
        // in span order, so the candidate list is scan-order identical to a
        // sequential pass.
        let mut scored: Vec<RetrievalResult> = self
            .pool
            .par_chunks(&self.vectors, SCAN_CHUNK, |start, span| {
                span.iter()
                    .enumerate()
                    .map(|(i, v)| RetrievalResult {
                        chunk_id: start + i,
                        score: cosine_dense(&q, v),
                    })
                    .filter(|r| r.score > 0.0)
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();
        scored.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.chunk_id.cmp(&b.chunk_id))
        });
        scored.truncate(k);
        scored
    }

    fn index_bytes(&self) -> usize {
        self.vectors.iter().map(|v| v.len() * std::mem::size_of::<f32>()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs() -> Arc<DocStore> {
        let mut d = DocStore::default();
        d.add_document("a", "battery life and charging performance are excellent.", "x");
        d.add_document("b", "the delivery was delayed by the courier.", "x");
        d.add_document("c", "battery drains too fast under load.", "x");
        Arc::new(d)
    }

    #[test]
    fn retrieves_semantically_overlapping() {
        let d = docs();
        let r = DenseRetriever::build(Slm::default(), &d);
        let hits = r.retrieve("battery problems", 2);
        assert_eq!(hits.len(), 2);
        let ids: Vec<usize> = hits.iter().map(|h| h.chunk_id).collect();
        assert!(ids.contains(&0) || ids.contains(&2));
        assert!(!ids.contains(&1));
    }

    #[test]
    fn index_size_scales_with_chunks() {
        let d = docs();
        let r = DenseRetriever::build(Slm::default(), &d);
        assert_eq!(r.len(), d.num_chunks());
        assert_eq!(r.index_bytes(), d.num_chunks() * 256 * 4);
    }

    #[test]
    fn deterministic_scores() {
        let d = docs();
        let r1 = DenseRetriever::build(Slm::default(), &d);
        let r2 = DenseRetriever::build(Slm::default(), &d);
        assert_eq!(r1.retrieve("battery", 3), r2.retrieve("battery", 3));
    }

    #[test]
    fn empty_store() {
        let d = Arc::new(DocStore::default());
        let r = DenseRetriever::build(Slm::default(), &d);
        assert!(r.is_empty());
        assert!(r.retrieve("anything", 3).is_empty());
    }
}
