//! Dense + lexical score fusion baseline.
//!
//! The strongest non-graph baseline: normalizes and mixes dense-cosine and
//! BM25 scores. Included so experiment E1/E7 can show the topology
//! retriever's wins are not just "hybrid beats single-signal".

use std::collections::BTreeMap;
use std::sync::Arc;

use unisem_docstore::DocStore;

use crate::dense::DenseRetriever;
use crate::{ChunkRetriever, RetrievalResult};

/// Weighted fusion of a dense retriever and BM25.
#[derive(Debug, Clone)]
pub struct HybridRetriever {
    dense: DenseRetriever,
    docs: Arc<DocStore>,
    /// Dense weight (lexical weight = 1 − dense_weight).
    pub dense_weight: f64,
}

impl HybridRetriever {
    /// Creates the fusion retriever.
    pub fn new(dense: DenseRetriever, docs: Arc<DocStore>, dense_weight: f64) -> Self {
        assert!((0.0..=1.0).contains(&dense_weight));
        Self { dense, docs, dense_weight }
    }
}

impl ChunkRetriever for HybridRetriever {
    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn retrieve(&self, query: &str, k: usize) -> Vec<RetrievalResult> {
        let pool = (k * 4).max(20);
        let dense_hits = self.dense.retrieve(query, pool);
        let lex_hits = self.docs.search(query, pool);

        let dmax = dense_hits.iter().map(|h| h.score).fold(0.0f64, f64::max).max(1e-12);
        let lmax = lex_hits.iter().map(|h| h.score).fold(0.0f64, f64::max).max(1e-12);

        let mut fused: BTreeMap<usize, f64> = BTreeMap::new();
        for h in &dense_hits {
            *fused.entry(h.chunk_id).or_insert(0.0) += self.dense_weight * h.score / dmax;
        }
        for h in &lex_hits {
            *fused.entry(h.chunk_id).or_insert(0.0) += (1.0 - self.dense_weight) * h.score / lmax;
        }
        let mut out: Vec<RetrievalResult> = fused
            .into_iter()
            .map(|(chunk_id, score)| RetrievalResult { chunk_id, score })
            .collect();
        out.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.chunk_id.cmp(&b.chunk_id))
        });
        out.truncate(k);
        out
    }

    fn index_bytes(&self) -> usize {
        self.dense.index_bytes() + self.docs.index_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unisem_slm::Slm;

    fn docs() -> Arc<DocStore> {
        let mut d = DocStore::default();
        d.add_document("a", "solar panels convert sunlight into power.", "x");
        d.add_document("b", "the cafeteria menu changed last week.", "x");
        Arc::new(d)
    }

    #[test]
    fn fuses_and_ranks() {
        let d = docs();
        let dense = DenseRetriever::build(Slm::default(), &d);
        let h = HybridRetriever::new(dense, d, 0.5);
        let hits = h.retrieve("solar power", 2);
        assert!(!hits.is_empty());
        assert_eq!(hits[0].chunk_id, 0);
        assert_eq!(h.name(), "hybrid");
        assert!(h.index_bytes() > 0);
    }

    #[test]
    fn pure_dense_and_pure_lexical_extremes() {
        let d = docs();
        let dense = DenseRetriever::build(Slm::default(), &d);
        let all_dense = HybridRetriever::new(dense.clone(), d.clone(), 1.0);
        let all_lex = HybridRetriever::new(dense, d, 0.0);
        assert_eq!(all_dense.retrieve("sunlight", 1)[0].chunk_id, 0);
        assert_eq!(all_lex.retrieve("sunlight", 1)[0].chunk_id, 0);
    }

    #[test]
    #[should_panic]
    fn invalid_weight_panics() {
        let d = docs();
        let dense = DenseRetriever::build(Slm::default(), &d);
        HybridRetriever::new(dense, d, 1.5);
    }
}
