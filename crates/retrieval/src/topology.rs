//! Topology-enhanced retrieval (§III.B of the paper).
//!
//! Pipeline per query:
//!
//! 1. **Anchor extraction** — the SLM tags entities in the query; each
//!    mention is linked to a graph entity node (exact canonical match,
//!    falling back to fuzzy Jaro-Winkler linking, falling back to token
//!    containment).
//! 2. **Bounded traversal** — cost-bounded Dijkstra from the anchors
//!    limits scoring to a sparse frontier (this is the efficiency claim:
//!    far-away chunks are *never touched*, unlike a dense scan that must
//!    visit every vector).
//! 3. **Topological scoring** — proximity decay along the traversal,
//!    modulated by a **static PageRank prior** precomputed at index-build
//!    time ("centrality measures help identify influential nodes");
//!    query-time work stays proportional to the frontier.
//! 4. **Hybrid scoring** — the topological score fuses with a BM25 lexical
//!    score so purely-verbal queries still work.

use std::collections::BTreeMap;
use std::sync::Arc;

use unisem_docstore::DocStore;
use unisem_hetgraph::algo::pagerank;
use unisem_hetgraph::{HetGraph, NodeId};
use unisem_slm::ner::EntityKind;
use unisem_slm::Slm;
use unisem_text::normalize::is_stopword;
use unisem_text::similarity::jaro_winkler;
use unisem_text::tokenize::tokenize_words;

use crate::{ChunkRetriever, RetrievalResult};

/// Tuning parameters for the topology retriever.
#[derive(Debug, Clone, Copy)]
pub struct TopologyConfig {
    /// Candidate set radius in hops from the anchors (edge costs make this
    /// a weighted radius: `max_hops × 2.0` traversal cost).
    pub max_hops: usize,
    /// Damping for the *static* PageRank prior (computed once at build).
    pub damping: f64,
    /// Iterations for the static PageRank prior.
    pub iterations: usize,
    /// Per-unit-cost decay of traversal proximity.
    pub decay: f64,
    /// Hub cap: traversal never expands *through* a non-anchor node with
    /// degree above this. Hubs (quarter/date entities touching every
    /// document) carry little routing information and would otherwise pull
    /// the whole graph into every frontier.
    pub hub_cap: usize,
    /// Weight of the topological score in the fusion.
    pub alpha: f64,
    /// Weight of the lexical (BM25) score in the fusion.
    pub beta: f64,
    /// Minimum Jaro-Winkler similarity for fuzzy anchor linking.
    pub fuzzy_threshold: f64,
    /// Resource governor: maximum distinct nodes a single traversal may
    /// discover. Expansion order is deterministic (cost, then node id), so
    /// the cap truncates the same frontier on every run; hitting it sets
    /// [`TraversalStats::frontier_capped`] instead of doing unbounded work.
    pub max_frontier: usize,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        Self {
            max_hops: 2,
            damping: 0.85,
            iterations: 20,
            decay: 0.6,
            hub_cap: 16,
            alpha: 0.65,
            beta: 0.35,
            fuzzy_threshold: 0.88,
            max_frontier: usize::MAX,
        }
    }
}

/// Per-query traversal statistics (experiment E3's efficiency evidence).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TraversalStats {
    /// Anchor entity nodes the query linked to.
    pub anchors: usize,
    /// Nodes within the hop bound (the candidate frontier).
    pub nodes_touched: usize,
    /// Heap expansions performed across all anchor traversals (the
    /// traversal's actual work, as opposed to the frontier it settled on).
    pub nodes_popped: usize,
    /// Chunk candidates actually scored.
    pub chunks_scored: usize,
    /// Whether the query fell back to pure lexical retrieval.
    pub lexical_fallback: bool,
    /// Whether any anchor's traversal hit [`TopologyConfig::max_frontier`]
    /// and was truncated (a degradation signal for the engine).
    pub frontier_capped: bool,
    /// Posting entries the lexical component scanned (both the fallback
    /// and the fusion search hit the same posting lists for a given
    /// query, so this is a pure function of query and corpus).
    pub postings_scanned: usize,
}

/// The topology-enhanced retriever.
#[derive(Debug, Clone)]
pub struct TopologyRetriever {
    slm: Slm,
    graph: Arc<HetGraph>,
    docs: Arc<DocStore>,
    config: TopologyConfig,
    /// Static centrality prior, max-normalized; computed once at build.
    static_prior: Vec<f64>,
}

impl TopologyRetriever {
    /// Creates a retriever over a pre-built graph and document store.
    ///
    /// Computes the static PageRank prior here (index-build cost), so
    /// query-time work is proportional to the traversal frontier only.
    pub fn new(
        slm: Slm,
        graph: Arc<HetGraph>,
        docs: Arc<DocStore>,
        config: TopologyConfig,
    ) -> Self {
        let mut static_prior = pagerank(&graph, config.damping, config.iterations);
        let max = static_prior.iter().cloned().fold(0.0f64, f64::max).max(1e-12);
        for p in static_prior.iter_mut() {
            *p /= max;
        }
        Self { slm, graph, docs, config, static_prior }
    }

    /// The config in effect.
    pub fn config(&self) -> TopologyConfig {
        self.config
    }

    /// Links query entity mentions to graph anchor nodes (primary ∪
    /// constraint — see [`Self::anchor_sets`]).
    pub fn anchors(&self, query: &str) -> Vec<NodeId> {
        let (mut primary, constraints) = self.anchor_sets(query);
        primary.extend(constraints);
        primary.sort();
        primary.dedup();
        primary
    }

    /// Links query mentions to graph nodes, split by role:
    ///
    /// - **primary** anchors are referential entities (products, drugs,
    ///   people, organizations) — traversal *expands* from these;
    /// - **constraint** anchors are value entities (quarters, dates) — they
    ///   boost directly-adjacent nodes but never seed expansion, because a
    ///   temporal hub touches every contemporaneous document in the lake
    ///   and would drag the whole corpus into the frontier.
    pub fn anchor_sets(&self, query: &str) -> (Vec<NodeId>, Vec<NodeId>) {
        let mentions = self.slm.tag_entities(query);
        let mut primary: Vec<NodeId> = Vec::new();
        let mut constraints: Vec<NodeId> = Vec::new();
        let mut unmatched: Vec<String> = Vec::new();
        for m in &mentions {
            // Quantities/percents are filter values; metrics ("sales",
            // "rating") are predicates over whatever entity the query names
            // — neither identifies a location in the graph, and metric
            // entities are the highest-degree hubs of all.
            if matches!(m.kind, EntityKind::Quantity | EntityKind::Percent | EntityKind::Metric) {
                continue;
            }
            match self.graph.entity_by_name(&m.canonical()) {
                Some(id) => {
                    if m.kind.is_value() {
                        constraints.push(id);
                    } else {
                        primary.push(id);
                    }
                }
                None => {
                    if !m.kind.is_value() {
                        unmatched.push(m.canonical());
                    }
                }
            }
        }
        // Fuzzy fallback for unmatched referential mentions.
        for name in unmatched {
            let best = self
                .graph
                .entities()
                .map(|n| (n.id, jaro_winkler(&n.label, &name)))
                .filter(|(_, s)| *s >= self.config.fuzzy_threshold)
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
            if let Some((id, _)) = best {
                primary.push(id);
            }
        }
        // Last resort: content-word containment against entity labels.
        if primary.is_empty() {
            let words: Vec<String> = tokenize_words(query)
                .into_iter()
                .filter(|w| !is_stopword(w) && w.len() > 2)
                .collect();
            for w in &words {
                if let Some(n) = self
                    .graph
                    .entities()
                    .filter(|n| {
                        // Only referential entities make useful anchors;
                        // matching a metric/value hub ("sales") would pull
                        // the entire corpus into the frontier.
                        matches!(
                            &n.kind,
                            unisem_hetgraph::NodeKind::Entity { kind, .. }
                                if !kind.is_value() && *kind != EntityKind::Metric
                        ) && n.label.split_whitespace().any(|part| part == w)
                    })
                    .max_by_key(|n| self.graph.degree(n.id))
                {
                    primary.push(n.id);
                }
            }
        }
        primary.sort();
        primary.dedup();
        constraints.sort();
        constraints.dedup();
        (primary, constraints)
    }

    /// Hub-damped, cost-bounded Dijkstra: like
    /// [`unisem_hetgraph::algo::dijkstra_within`], but a non-start node
    /// whose degree exceeds `hub_cap` is *reached* (it can score) without
    /// being *expanded* (it never fans the frontier out).
    /// Returns the reached nodes with their costs, whether the
    /// `max_frontier` governor truncated the expansion, and how many
    /// non-stale heap pops the search performed (its actual work).
    fn bounded_traversal(
        &self,
        start: NodeId,
        max_cost: f64,
    ) -> (BTreeMap<NodeId, f64>, bool, usize) {
        use std::cmp::Ordering;
        use std::collections::BinaryHeap;

        #[derive(PartialEq)]
        struct Item {
            cost: f64,
            node: NodeId,
        }
        impl Eq for Item {}
        impl Ord for Item {
            fn cmp(&self, other: &Self) -> Ordering {
                other
                    .cost
                    .partial_cmp(&self.cost)
                    .unwrap_or(Ordering::Equal)
                    .then(other.node.cmp(&self.node))
            }
        }
        impl PartialOrd for Item {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }

        let mut dist: BTreeMap<NodeId, f64> = BTreeMap::new();
        let mut heap = BinaryHeap::new();
        let mut capped = false;
        let mut popped = 0usize;
        dist.insert(start, 0.0);
        heap.push(Item { cost: 0.0, node: start });
        while let Some(Item { cost, node }) = heap.pop() {
            if cost > *dist.get(&node).unwrap_or(&f64::INFINITY) {
                continue;
            }
            popped += 1;
            // Hub damping: only the anchor itself may expand past the cap.
            if node != start && self.graph.degree(node) > self.config.hub_cap {
                continue;
            }
            for &(next, edge) in self.graph.neighbors(node) {
                let c = cost + self.graph.edge(edge).kind.traversal_cost();
                if c <= max_cost && c < *dist.get(&next).unwrap_or(&f64::INFINITY) {
                    // Frontier governor: already-reached nodes may still
                    // relax to a cheaper cost, but no *new* node joins a
                    // full frontier. Pop order is (cost, node id), so the
                    // surviving set is identical on every run.
                    if !dist.contains_key(&next) && dist.len() >= self.config.max_frontier {
                        capped = true;
                        continue;
                    }
                    dist.insert(next, c);
                    heap.push(Item { cost: c, node: next });
                }
            }
        }
        (dist, capped, popped)
    }

    /// Retrieval with traversal statistics.
    pub fn retrieve_with_stats(
        &self,
        query: &str,
        k: usize,
    ) -> (Vec<RetrievalResult>, TraversalStats) {
        let (primary, constraints) = self.anchor_sets(query);
        // Traverse from referential anchors; fall back to constraint
        // anchors when the query names only values ("what happened in Q3?").
        let anchors: &[NodeId] = if primary.is_empty() { &constraints } else { &primary };
        let mut stats = TraversalStats {
            anchors: primary.len() + constraints.len(),
            postings_scanned: self.docs.postings_scanned(query),
            ..TraversalStats::default()
        };

        if anchors.is_empty() {
            stats.lexical_fallback = true;
            let hits = self
                .docs
                .search(query, k)
                .into_iter()
                .map(|h| RetrievalResult { chunk_id: h.chunk_id, score: h.score })
                .collect();
            return (hits, stats);
        }

        // Sparse frontier: cost-bounded Dijkstra from each anchor; the
        // proximity of a node is the sum of per-anchor decays, so nodes
        // reachable from *several* anchors (the "connects Products A and B"
        // case of §III.B) rank highest.
        // Value-only queries ("which products grew in Q2?") scope to the
        // documents directly carrying the period — depth 1 — because a
        // temporal anchor's multi-hop neighborhood is the entire
        // contemporaneous corpus.
        let max_cost = if primary.is_empty() { 1.0 } else { self.config.max_hops as f64 * 2.0 };
        let mut proximity: BTreeMap<NodeId, f64> = BTreeMap::new();
        for &a in anchors {
            let (reached, capped, popped) = self.bounded_traversal(a, max_cost);
            stats.frontier_capped |= capped;
            stats.nodes_popped += popped;
            for (node, cost) in reached {
                *proximity.entry(node).or_insert(0.0) += self.config.decay.powf(cost);
            }
        }
        // Constraint anchors boost their direct neighbors *within the
        // frontier* — a chunk matching both the entity and the period
        // outranks the entity-only chunks — without expanding the frontier.
        if !primary.is_empty() {
            for &c in &constraints {
                for &(nb, _) in self.graph.neighbors(c) {
                    if let Some(p) = proximity.get_mut(&nb) {
                        *p += self.config.decay;
                    }
                }
            }
        }
        stats.nodes_touched = proximity.len();

        // Candidate chunks: traversal proximity × static centrality prior.
        let mut topo: BTreeMap<usize, f64> = BTreeMap::new();
        for (&node, &prox) in &proximity {
            if let unisem_hetgraph::NodeKind::Chunk { chunk_id, .. } = &self.graph.node(node).kind {
                let prior = self.static_prior[node.0 as usize];
                topo.insert(*chunk_id, prox * (0.5 + 0.5 * prior));
            }
        }
        stats.chunks_scored = topo.len();

        // Lexical scores over the same corpus (normalized below).
        let lex: BTreeMap<usize, f64> = self
            .docs
            .search(query, (k * 4).max(20))
            .into_iter()
            .map(|h| (h.chunk_id, h.score))
            .collect();

        let topo_max = topo.values().cloned().fold(0.0f64, f64::max).max(1e-12);
        let lex_max = lex.values().cloned().fold(0.0f64, f64::max).max(1e-12);

        // Fuse: candidates get both components; lexical-only hits keep the
        // beta component so verbal queries aren't starved.
        let mut fused: BTreeMap<usize, f64> = BTreeMap::new();
        for (&c, &t) in &topo {
            let l = lex.get(&c).copied().unwrap_or(0.0);
            fused.insert(c, self.config.alpha * t / topo_max + self.config.beta * l / lex_max);
        }
        for (&c, &l) in &lex {
            fused.entry(c).or_insert(self.config.beta * l / lex_max);
        }

        let mut results: Vec<RetrievalResult> = fused
            .into_iter()
            .map(|(chunk_id, score)| RetrievalResult { chunk_id, score })
            .collect();
        results.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.chunk_id.cmp(&b.chunk_id))
        });
        results.truncate(k);
        (results, stats)
    }
}

impl ChunkRetriever for TopologyRetriever {
    fn name(&self) -> &'static str {
        "topology"
    }

    fn retrieve(&self, query: &str, k: usize) -> Vec<RetrievalResult> {
        self.retrieve_with_stats(query, k).0
    }

    fn index_bytes(&self) -> usize {
        // The graph IS the index; BM25 postings are shared with the lexical
        // baseline and charged here too since fusion uses them.
        self.graph.approx_bytes() + self.docs.index_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unisem_hetgraph::GraphBuilder;
    use unisem_slm::{Lexicon, SlmConfig};

    fn setup() -> (Slm, Arc<HetGraph>, Arc<DocStore>) {
        let lexicon = Lexicon::new().with_entries([
            ("Drug A", EntityKind::Drug),
            ("Drug B", EntityKind::Drug),
            ("Product Alpha", EntityKind::Product),
            ("Patient X", EntityKind::Person),
            ("headache", EntityKind::Condition),
        ]);
        let slm = Slm::new(SlmConfig { lexicon, ..SlmConfig::default() });
        let mut docs = DocStore::default();
        docs.add_document(
            "trial",
            "Patient X received Drug A during the trial. The headache resolved quickly.",
            "clinical",
        );
        docs.add_document(
            "forum",
            "Drug B made my symptoms worse. I stopped taking Drug B after a week.",
            "forum",
        );
        docs.add_document(
            "review",
            "Product Alpha is reliable. The battery of Product Alpha lasts days.",
            "review",
        );
        let docs = Arc::new(docs);
        let mut b = GraphBuilder::new(slm.clone());
        b.add_docstore(&docs);
        let (g, _) = b.finish();
        (slm, Arc::new(g), docs)
    }

    fn retriever() -> TopologyRetriever {
        let (slm, g, d) = setup();
        TopologyRetriever::new(slm, g, d, TopologyConfig::default())
    }

    #[test]
    fn anchors_link_exact() {
        let r = retriever();
        let a = r.anchors("What happened to Patient X after Drug A?");
        assert!(a.len() >= 2);
    }

    #[test]
    fn anchors_fuzzy_fallback() {
        let r = retriever();
        // "Drg A" is a typo; fuzzy linking should still find drug a.
        let a = r.anchors("side effects of Druga");
        assert!(!a.is_empty());
    }

    #[test]
    fn anchors_token_containment_fallback() {
        let r = retriever();
        let a = r.anchors("tell me about the headache cases");
        assert!(!a.is_empty());
    }

    #[test]
    fn retrieves_entity_relevant_chunks() {
        let r = retriever();
        let (hits, stats) = r.retrieve_with_stats("How did Drug A affect Patient X?", 2);
        assert!(!hits.is_empty());
        assert!(!stats.lexical_fallback);
        assert!(stats.nodes_touched > 0);
        assert!(
            stats.nodes_popped >= stats.nodes_touched.min(1),
            "a non-lexical traversal performs at least one expansion"
        );
        // Top hit should be from the trial document (chunk of doc 0).
        let (_, _, docs) = setup();
        let top_doc = docs.chunk(hits[0].chunk_id).unwrap().doc_id;
        assert_eq!(top_doc, 0);
    }

    #[test]
    fn distinguishes_drugs() {
        let r = retriever();
        let (_, _, docs) = setup();
        let hits = r.retrieve("experiences with Drug B", 1);
        assert_eq!(docs.chunk(hits[0].chunk_id).unwrap().doc_id, 1);
    }

    #[test]
    fn no_anchor_falls_back_to_lexical() {
        let r = retriever();
        let (hits, stats) = r.retrieve_with_stats("reliable battery lasts", 2);
        assert!(stats.lexical_fallback || !hits.is_empty());
    }

    #[test]
    fn hop_bound_limits_frontier() {
        let (slm, g, d) = setup();
        let narrow = TopologyRetriever::new(
            slm.clone(),
            g.clone(),
            d.clone(),
            TopologyConfig { max_hops: 1, ..TopologyConfig::default() },
        );
        let wide = TopologyRetriever::new(
            slm,
            g,
            d,
            TopologyConfig { max_hops: 4, ..TopologyConfig::default() },
        );
        let (_, s1) = narrow.retrieve_with_stats("Drug A results", 3);
        let (_, s4) = wide.retrieve_with_stats("Drug A results", 3);
        assert!(s1.nodes_touched <= s4.nodes_touched);
        assert!(s1.nodes_touched > 0);
    }

    #[test]
    fn frontier_cap_truncates_and_reports() {
        let (slm, g, d) = setup();
        let capped = TopologyRetriever::new(
            slm.clone(),
            g.clone(),
            d.clone(),
            TopologyConfig { max_frontier: 2, ..TopologyConfig::default() },
        );
        let uncapped = TopologyRetriever::new(slm, g, d, TopologyConfig::default());
        let q = "How did Drug A affect Patient X?";
        let (_, sc) = capped.retrieve_with_stats(q, 3);
        let (_, su) = uncapped.retrieve_with_stats(q, 3);
        assert!(sc.frontier_capped);
        assert!(!su.frontier_capped);
        assert!(sc.nodes_touched <= su.nodes_touched);
        // The truncated frontier is deterministic, too.
        assert_eq!(capped.retrieve(q, 3), capped.retrieve(q, 3));
    }

    #[test]
    fn deterministic() {
        let r = retriever();
        assert_eq!(r.retrieve("Drug A for Patient X", 3), r.retrieve("Drug A for Patient X", 3));
    }

    #[test]
    fn index_bytes_positive_and_name() {
        let r = retriever();
        assert!(r.index_bytes() > 0);
        assert_eq!(r.name(), "topology");
    }
}
