//! Adversarial snippets for udlint: every construct that broke the old
//! awk gates (or would break a naive regex linter) — raw strings holding
//! code-like text, comments, `#[cfg(test)]` placement, multiline calls —
//! proving zero false positives and zero false negatives on each.

use lintkit::runner::check_source;

const CORE: &str = "crates/core/src/x.rs";

fn lints(rel_path: &str, src: &str) -> Vec<String> {
    let r = check_source(rel_path, src, false);
    r.diagnostics.iter().map(|d| d.lint.clone()).collect()
}

// ---------------------------------------------------------------- unwrap

#[test]
fn unwrap_in_raw_string_is_not_flagged() {
    let src = r##"
fn f() -> String {
    let doc = r#"call x.unwrap() and then panic!("boom")"#;
    doc.to_string()
}
"##;
    assert!(lints(CORE, src).is_empty());
}

#[test]
fn unwrap_in_cooked_string_with_escapes_is_not_flagged() {
    let src = "fn f() -> String { \"quote \\\" then .unwrap() inside\".to_string() }\n";
    assert!(lints(CORE, src).is_empty());
}

#[test]
fn unwrap_in_line_and_doc_comments_is_not_flagged() {
    let src = "\
// x.unwrap() here is prose
/// so is this .expect(\"msg\") in docs
//! and panic!(\"inner doc\")
fn f() {}
";
    assert!(lints(CORE, src).is_empty());
}

#[test]
fn unwrap_in_nested_block_comment_is_not_flagged() {
    let src = "/* outer /* x.unwrap() */ still comment panic!(\"no\") */\nfn f() {}\n";
    assert!(lints(CORE, src).is_empty());
}

#[test]
fn real_unwrap_is_flagged() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    assert_eq!(lints(CORE, src), vec!["unwrap-in-core"]);
}

#[test]
fn expect_and_panic_macros_are_flagged() {
    let src = "\
fn f(x: Option<u32>) -> u32 { x.expect(\"msg\") }
fn g() { panic!(\"boom\") }
fn h() -> u32 { unreachable!() }
fn i() { todo!() }
fn j() { unimplemented!() }
";
    assert_eq!(lints(CORE, src).len(), 5);
}

#[test]
fn unwrap_or_and_friends_are_not_flagged() {
    let src = "\
fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }
fn g(x: Option<u32>) -> u32 { x.unwrap_or_else(|| 1) }
fn h(x: Option<u32>) -> u32 { x.unwrap_or_default() }
";
    assert!(lints(CORE, src).is_empty());
}

#[test]
fn unwrap_outside_panic_free_crates_is_not_flagged() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    assert!(lints("crates/text/src/x.rs", src).is_empty());
    assert!(lints("crates/parkit/src/x.rs", src).is_empty());
}

// --------------------------------------------------------- cfg(test) spans

#[test]
fn cfg_test_module_is_exempt_but_code_after_it_is_not() {
    // The old awk gate stopped at the first #[cfg(test)] line, hiding
    // everything after the test module. Token-level span marking does not.
    let src = "\
#[cfg(test)]
mod tests {
    #[test]
    fn t() { Some(1).unwrap(); }
}

fn live(x: Option<u32>) -> u32 { x.unwrap() }
";
    assert_eq!(lints(CORE, src), vec!["unwrap-in-core"]);
}

#[test]
fn cfg_test_on_function_exempts_only_that_function() {
    let src = "\
#[cfg(test)]
fn helper(x: Option<u32>) -> u32 { x.unwrap() }
fn live(x: Option<u32>) -> u32 { x.unwrap() }
";
    assert_eq!(lints(CORE, src).len(), 1);
}

#[test]
fn cfg_not_test_is_still_audited() {
    let src = "#[cfg(not(test))]\nfn live(x: Option<u32>) -> u32 { x.unwrap() }\n";
    assert_eq!(lints(CORE, src), vec!["unwrap-in-core"]);
}

#[test]
fn test_attr_with_stacked_attributes_is_exempt() {
    let src = "#[test]\n#[should_panic]\nfn t() { Option::<u32>::None.unwrap(); }\n";
    assert!(lints(CORE, src).is_empty());
}

// ----------------------------------------------------- unordered iteration

#[test]
fn for_over_hashmap_is_flagged_btreemap_is_not() {
    let hash = "\
use std::collections::HashMap;
fn f(m: &HashMap<u32, f64>) -> f64 {
    let mut acc = 0.0;
    for (_, v) in m { acc += v; }
    acc
}
";
    assert_eq!(lints(CORE, hash), vec!["unordered-iteration"]);
    let btree = hash.replace("HashMap", "BTreeMap");
    assert!(lints(CORE, &btree).is_empty());
}

#[test]
fn hash_iteration_with_order_insensitive_sink_is_not_flagged() {
    let src = "\
use std::collections::{BTreeSet, HashMap, HashSet};
fn count(m: &HashMap<u32, f64>) -> usize { m.iter().count() }
fn rekey(m: &HashMap<u32, f64>) -> BTreeSet<u32> { m.keys().copied().collect::<BTreeSet<u32>>() }
fn isum(m: &HashMap<u32, u64>) -> u64 { m.values().copied().sum::<u64>() }
fn anyv(s: &HashSet<u32>) -> bool { s.iter().any(|&x| x > 3) }
";
    assert!(lints(CORE, src).is_empty(), "{:?}", lints(CORE, src));
}

#[test]
fn hash_iteration_feeding_float_sum_is_flagged() {
    let src = "\
use std::collections::HashMap;
fn fsum(m: &HashMap<u32, f64>) -> f64 { m.values().sum::<f64>() }
";
    assert_eq!(lints(CORE, src), vec!["unordered-iteration"]);
}

#[test]
fn returning_a_hashmap_is_flagged() {
    let src = "\
use std::collections::HashMap;
fn build() -> HashMap<u32, f64> { HashMap::new() }
";
    assert_eq!(lints(CORE, src), vec!["unordered-iteration"]);
}

#[test]
fn hashmap_named_in_string_or_comment_is_not_tracked() {
    let src = "\
// this mentions a HashMap<u32, f64> in prose
fn f() -> String { \"for x in map.iter()\".to_string() }
";
    assert!(lints(CORE, src).is_empty());
}

// ------------------------------------------------------------- wall clock

#[test]
fn instant_now_is_flagged_outside_the_blessed_module() {
    let src = "use std::time::Instant;\nfn f() -> Instant { Instant::now() }\n";
    assert_eq!(lints(CORE, src), vec!["wallclock-in-hot-path"]);
    assert_eq!(lints("crates/tracekit/src/trace.rs", src), vec!["wallclock-in-hot-path"]);
    assert!(lints("crates/tracekit/src/wall.rs", src).is_empty(), "blessed module");
}

#[test]
fn instant_now_in_test_code_is_not_flagged() {
    let src = "#[cfg(test)]\nmod tests {\n fn t() { let _ = std::time::Instant::now(); }\n}\n";
    assert!(lints(CORE, src).is_empty());
}

#[test]
fn systemtime_now_is_flagged() {
    let src = "fn f() -> std::time::SystemTime { std::time::SystemTime::now() }\n";
    assert_eq!(lints(CORE, src), vec!["wallclock-in-hot-path"]);
}

// ------------------------------------------------------------ raw threads

#[test]
fn thread_spawn_is_flagged_outside_parkit() {
    let src = "fn f() { std::thread::spawn(|| {}); }\n";
    assert_eq!(lints(CORE, src), vec!["raw-thread-spawn"]);
    assert!(lints("crates/parkit/src/pool.rs", src).is_empty(), "parkit is the pool");
}

#[test]
fn thread_spawn_in_raw_string_is_not_flagged() {
    let src = r##"fn f() -> &'static str { r#"std::thread::spawn(|| {})"# }"##;
    assert!(lints(CORE, src).is_empty());
}

// -------------------------------------------------------- closed namespace

#[test]
fn multiline_degradation_new_with_string_is_flagged() {
    // The awk gate matched single lines; the token stream does not care
    // where the newlines fall.
    let src = "\
fn f() {
    let _d = Degradation::new(
        \"freeform-component\",
    );
}
";
    assert_eq!(lints(CORE, src), vec!["string-metric-label"]);
}

#[test]
fn metric_call_with_string_label_is_flagged_enum_is_not() {
    let flagged = "fn f(m: &M) { m.incr(\n  \"my_counter\", 1); }\n";
    assert_eq!(lints(CORE, flagged), vec!["string-metric-label"]);
    let ok = "fn f(m: &M) { m.incr(Metric::RowsScanned, 1); }\n";
    assert!(lints(CORE, ok).is_empty());
}

#[test]
fn from_name_with_format_is_flagged_constant_is_not() {
    let flagged = "fn f() { let _ = Metric::from_name(format!(\"q_{}\", 3)); }\n";
    assert_eq!(lints(CORE, flagged), vec!["string-metric-label"]);
    let ok = "fn f() { let _ = Metric::from_name(KNOWN_NAME); }\n";
    assert!(lints(CORE, ok).is_empty());
}

#[test]
fn namespace_rule_only_binds_namespace_crates() {
    let src = "fn f() { let _d = Degradation::new(\"x\"); }\n";
    assert!(lints("crates/tracekit/src/component.rs", src).is_empty());
    assert_eq!(lints("crates/relstore/src/y.rs", src), vec!["string-metric-label"]);
}

// ------------------------------------------------------------- env reads

#[test]
fn blessed_unisem_env_read_is_not_flagged() {
    let src = "fn f() -> Option<String> { std::env::var(\"UNISEM_THREADS\").ok() }\n";
    assert!(lints(CORE, src).is_empty());
}

#[test]
fn non_unisem_env_read_is_flagged() {
    let src = "fn f() -> Option<String> { std::env::var(\"PATH\").ok() }\n";
    assert_eq!(lints(CORE, src), vec!["nondeterministic-env"]);
}

#[test]
fn dynamically_named_env_read_is_flagged() {
    let src = "fn f(name: &str) -> Option<String> { std::env::var(name).ok() }\n";
    assert_eq!(lints(CORE, src), vec!["nondeterministic-env"]);
}

#[test]
fn ambient_env_reads_are_flagged() {
    let src = "\
fn a() { for (_k, _v) in std::env::vars() {} }
fn b() -> std::path::PathBuf { std::env::temp_dir() }
";
    let got = lints(CORE, src);
    assert_eq!(got.iter().filter(|l| *l == "nondeterministic-env").count(), 2, "{got:?}");
}

// ------------------------------------------------------------ suppressions

#[test]
fn suppression_with_reason_silences_and_is_counted() {
    let src = "\
fn f(x: Option<u32>) -> u32 {
    x.unwrap() // udlint: allow(unwrap-in-core) -- input validated at ingestion
}
";
    let r = check_source(CORE, src, false);
    assert!(r.diagnostics.is_empty());
    assert_eq!(r.suppressed.len(), 1);
    assert_eq!(r.suppressed[0].reason, "input validated at ingestion");
}

#[test]
fn suppression_without_reason_is_a_diagnostic() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() // udlint: allow(unwrap-in-core)\n}\n";
    let r = check_source(CORE, src, false);
    assert!(r.diagnostics.iter().any(|d| d.lint == "suppression-syntax"));
    assert!(r.diagnostics.iter().any(|d| d.lint == "unwrap-in-core"), "not silenced");
}

#[test]
fn standalone_suppression_covers_next_line() {
    let src = "\
fn f(x: Option<u32>) -> u32 {
    // udlint: allow(unwrap-in-core) -- caller guarantees Some
    x.unwrap()
}
";
    let r = check_source(CORE, src, false);
    assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    assert_eq!(r.suppressed.len(), 1);
}
