//! Adversarial corpus for the item-level parser (`lintkit::ast`).
//!
//! The parser must be *total*: any byte sequence parses to some item
//! tree without panicking, and a syntax island it cannot read costs at
//! most the island — the next recognizable item parses normally. Every
//! case here is a shape that broke (or would break) a naive
//! recursive-descent pass: macro soup, nested modules, `impl Trait`,
//! multiline where-clauses, attribute stacking, and plain garbage.

use lintkit::ast::{parse, Ast, Item, ItemKind};
use lintkit::source::SourceFile;

fn parse_src(src: &str) -> Ast {
    parse(&SourceFile::parse("crates/core/src/x.rs", src))
}

/// Flattened (kind, name) pairs of the whole tree, depth-first.
fn all_items(ast: &Ast) -> Vec<(ItemKind, String)> {
    let mut out = Vec::new();
    lintkit::ast::walk(&ast.items, &mut |item: &Item| {
        out.push((item.kind, item.name.clone()));
    });
    out
}

#[test]
fn macro_heavy_items_parse_and_recover() {
    let src = r#"
macro_rules! outer {
    ($($x:tt)*) => { inner! { $($x)* } };
    (nested { $($y:tt)* }) => { $($y)* };
}
registry_enum! {
    pub enum Metric {
        A => "a.a",
        B => "b.b",
    }
}
thread_local!(static TL: u32 = 0);
lazy_init![static ARR: [u8; 4] = [0; 4]];
fn after_macros() { vec![1, 2, 3]; write!(f, "{}", 0).ok(); }
"#;
    let ast = parse_src(src);
    let items = all_items(&ast);
    assert!(items.contains(&(ItemKind::MacroDef, "outer".into())), "{items:?}");
    assert!(items.contains(&(ItemKind::MacroCall, "registry_enum".into())), "{items:?}");
    assert!(items.contains(&(ItemKind::MacroCall, "thread_local".into())), "{items:?}");
    assert!(items.contains(&(ItemKind::MacroCall, "lazy_init".into())), "{items:?}");
    assert!(items.contains(&(ItemKind::Fn, "after_macros".into())), "{items:?}");
    // The registry_enum! body is a token range the semantic passes read.
    let call = ast
        .items
        .iter()
        .find(|i| i.kind == ItemKind::MacroCall && i.name == "registry_enum")
        .expect("registry_enum item");
    assert!(call.body.is_some(), "macro invocation keeps its body span");
}

#[test]
fn nested_mods_with_test_markers() {
    let src = r#"
mod a {
    pub mod b {
        pub fn deep() {}
        #[cfg(test)]
        mod tests {
            fn t() {}
        }
    }
    fn mid() {}
}
fn top() {}
"#;
    let ast = parse_src(src);
    let items = all_items(&ast);
    assert!(items.contains(&(ItemKind::Fn, "deep".into())), "{items:?}");
    assert!(items.contains(&(ItemKind::Fn, "mid".into())), "{items:?}");
    assert!(items.contains(&(ItemKind::Fn, "top".into())), "{items:?}");
    // The cfg(test) marking survives into the tree.
    let mut saw_test_fn = false;
    lintkit::ast::walk(&ast.items, &mut |item: &Item| {
        if item.name == "t" {
            assert!(item.in_test, "fn t sits under #[cfg(test)]");
            saw_test_fn = true;
        }
        if item.name == "deep" {
            assert!(!item.in_test);
        }
    });
    assert!(saw_test_fn);
}

#[test]
fn impl_trait_where_clauses_and_generics() {
    let src = r#"
pub fn filtered<'a, T, F>(items: &'a [T], keep: F) -> impl Iterator<Item = &'a T> + 'a
where
    T: Ord + Clone,
    F: Fn(&T) -> bool + 'a,
{
    items.iter().filter(move |t| keep(t))
}
pub fn arrays<const N: usize>(x: [u8; N]) -> Result<Vec<u8>, Box<dyn std::error::Error>> {
    Ok(x.to_vec())
}
impl<K: Ord, V> Store<K, V> where K: Clone {
    fn get(&self, k: &K) -> Option<&V> { self.map.get(k) }
}
fn after() {}
"#;
    let ast = parse_src(src);
    let items = all_items(&ast);
    assert!(items.contains(&(ItemKind::Fn, "filtered".into())), "{items:?}");
    assert!(items.contains(&(ItemKind::Fn, "arrays".into())), "{items:?}");
    assert!(items.contains(&(ItemKind::Impl, "Store".into())), "{items:?}");
    assert!(items.contains(&(ItemKind::Fn, "get".into())), "{items:?}");
    assert!(items.contains(&(ItemKind::Fn, "after".into())), "{items:?}");
}

#[test]
fn attribute_soup_does_not_confuse_item_starts() {
    let src = r#"
#![allow(dead_code)]
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "x", serde(rename_all = "camelCase", bound = "T: Default"))]
#[doc = "a [bracketed] doc with #[fake attr] inside"]
pub struct Annotated<T> { pub field: T }
#[inline(always)]
#[must_use = "reasons"]
pub const fn shouted() -> u32 { 7 }
#[rustfmt::skip]
pub unsafe extern "C" fn ffi(x: *const u8) -> *const u8 { x }
"#;
    let ast = parse_src(src);
    let items = all_items(&ast);
    assert!(items.contains(&(ItemKind::Struct, "Annotated".into())), "{items:?}");
    assert!(items.contains(&(ItemKind::Fn, "shouted".into())), "{items:?}");
    assert!(items.contains(&(ItemKind::Fn, "ffi".into())), "{items:?}");
}

#[test]
fn garbage_islands_cost_only_themselves() {
    let cases = [
        // Unbalanced delimiters before real items.
        ");;;= = = }{ garbage !!\nfn survivor() {}\nstruct Also;\n",
        // An unclosed brace mid-file must not swallow later items.
        "fn broken( { \nfn fine() {}\n",
        // Random punctuation and non-item keywords out of position. (A
        // stray `impl`/`fn` keyword may legitimately consume the next
        // chunk as its own body — islands are bounded, not free.)
        "where for in :: -> => .. <> match loop\nenum Recovered { A }\n",
        // A lone attribute and visibility with nothing to attach to.
        "#[derive(Debug)] pub\nfn attached() {}\n",
    ];
    for src in cases {
        let ast = parse_src(src); // must not panic
        let items = all_items(&ast);
        assert!(
            items.iter().any(|(k, _)| matches!(k, ItemKind::Fn | ItemKind::Enum)),
            "no item recovered from {src:?}: {items:?}"
        );
    }
}

#[test]
fn pathological_inputs_never_panic() {
    // No assertion beyond totality: parse() must return on every input.
    let cases = [
        "",
        "{",
        "}",
        "((((((((((",
        "))))))))))",
        "fn",
        "fn (",
        "impl",
        "impl <",
        "mod",
        "use ::;",
        "macro_rules!",
        "macro_rules! m",
        "#",
        "#[",
        "#![",
        "pub pub pub",
        "const const fn",
        "trait T { fn",
        "enum E { A(",
        "r#\"not closed",
        "fn f() { \"string with } brace\" }",
        "fn g() { '}' }",
        "fn h<T>() where T: Fn() -> (bool) {}",
    ];
    for src in cases {
        let _ = parse_src(src);
    }
    // A long alternating stream exercises the recovery loop's progress
    // guarantee (deterministic, no RNG: the pattern is fixed).
    let mut soup = String::new();
    for i in 0..500 {
        soup.push_str(["{", "}", "(", ")", "fn ", "x", ";", "#[", "]", "::"][i % 10]);
    }
    let _ = parse_src(&soup);
}

#[test]
fn bodies_are_scannable_token_ranges() {
    let src = "fn f() { a.unwrap(); b.c(); }\nfn empty() {}\n";
    let file = SourceFile::parse("crates/core/src/x.rs", src);
    let ast = parse(&file);
    let f = &ast.items[0];
    let (lo, hi) = f.body.expect("f has a body");
    let texts: Vec<&str> = (lo..=hi).map(|k| file.sig_text(k)).collect();
    assert_eq!(texts, vec!["a", ".", "unwrap", "(", ")", ";", "b", ".", "c", "(", ")", ";"]);
    assert_eq!(ast.items[1].body, None, "empty body is None, not a hollow range");
}
