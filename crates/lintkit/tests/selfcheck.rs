//! Self-check: udlint over this very workspace is deterministic and clean.
//!
//! Two full runs must render byte-identical JSON (no timestamps, no
//! absolute paths, no hash-order artifacts in the linter itself), sorted
//! by `(path, line, lint)` — that is what lets CI diff reports across
//! machines and runs.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    // crates/lintkit -> crates -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

#[test]
fn json_report_is_byte_identical_across_runs() {
    let root = workspace_root();
    let a = lintkit::runner::run(&root, false).expect("walk").render_json();
    let b = lintkit::runner::run(&root, false).expect("walk").render_json();
    assert_eq!(a, b, "two udlint runs over the same tree must render identically");
    assert!(!a.contains(root.to_string_lossy().as_ref()), "no absolute paths in the report");
}

#[test]
fn diagnostics_are_sorted_by_path_line_lint() {
    let root = workspace_root();
    let report = lintkit::runner::run(&root, true).expect("walk");
    let keys: Vec<(String, u32, String)> =
        report.diagnostics.iter().map(|d| (d.path.clone(), d.line, d.lint.clone())).collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted);
    let skeys: Vec<(String, u32, String)> = report
        .suppressed
        .iter()
        .map(|s| (s.diag.path.clone(), s.diag.line, s.diag.lint.clone()))
        .collect();
    let mut ssorted = skeys.clone();
    ssorted.sort();
    assert_eq!(skeys, ssorted);
}

#[test]
fn workspace_is_clean_under_default_lints() {
    let root = workspace_root();
    let report = lintkit::runner::run(&root, false).expect("walk");
    assert!(
        report.diagnostics.is_empty(),
        "unsuppressed diagnostics in the tree:\n{}",
        report.render_text()
    );
}

/// The semantic passes run as part of every `run()` — their machinery
/// must be demonstrably *doing work* on the real tree, not silently
/// matching nothing. The symbol graph must know the engine's anchor
/// functions, and the one blessed uncovered-I/O window (WAL recovery
/// truncation) must show up as an exercised suppression.
#[test]
fn semantic_passes_cover_the_real_tree() {
    let root = workspace_root();
    let ws = lintkit::runner::build_workspace(&root).expect("walk");
    for anchor in ["answer_ladder", "answer_planned"] {
        assert!(
            ws.fns.iter().any(|f| f.name == anchor),
            "symbol graph lost the `{anchor}` answer root"
        );
    }
    assert!(
        ws.fns.iter().any(|f| f.qual() == "storekit::wal::Wal::append"),
        "symbol graph lost the WAL append path"
    );
    let report = lintkit::runner::run(&root, false).expect("walk");
    assert!(
        report.suppressed.iter().any(|s| s.diag.lint == "uncovered-io-site"),
        "the WAL recovery-truncation suppressions should be live; if the I/O moved \
         under a fault site, delete them and lower lint-budget.txt"
    );
}

#[test]
fn graph_dump_is_byte_identical_across_runs() {
    let root = workspace_root();
    let a = lintkit::runner::build_workspace(&root).expect("walk").render_graph();
    let b = lintkit::runner::build_workspace(&root).expect("walk").render_graph();
    assert_eq!(a, b, "`udlint --dump-graph` must be byte-stable");
    assert!(a.contains("core::engine"), "dump names the module tree");
    assert!(a.contains(" -> "), "dump contains call edges");
}

#[test]
fn suppression_count_is_within_committed_budget() {
    let root = workspace_root();
    let budget: usize = std::fs::read_to_string(root.join("lint-budget.txt"))
        .expect("lint-budget.txt")
        .trim()
        .parse()
        .expect("budget is a number");
    let report = lintkit::runner::run(&root, false).expect("walk");
    assert!(
        report.suppressed.len() <= budget,
        "suppression count {} exceeds committed budget {budget}; either fix the code or raise \
         the budget in lint-budget.txt under review",
        report.suppressed.len()
    );
}
